/**
 * @file
 * Dumps the T=1 protocol fingerprint behind
 * tests/data/t1_parity_golden.txt: the barrier-separated apps (SOR,
 * SOR+) under every runtime configuration at test scale, with the SMP
 * satellite knobs pinned to their legacy values, printing exec time
 * and every protocol counter.
 *
 * Not built by CMake — compile by hand when the golden needs
 * regenerating (a deliberate protocol change at T=1):
 *
 *   c++ -std=c++20 -O2 -I src tools/t1_parity_dump.cc build/libdsm.a \
 *       -lpthread -o parity_dump && ./parity_dump
 *
 * then keep only the schedule-stable counters (the golden's current
 * counter set; exec times, byte counts and ownership-residency
 * counters like localLockHits/lockForwards/updatesSent vary run to
 * run even in the seed, because the centralized managers serve
 * requests in real arrival order — and home-mode invalidation counts
 * depend on flush-vs-notice arrival order).
 */

#include <cstdio>

#include "driver/experiment.hh"

using namespace dsm;

int
main()
{
    AppParams params = AppParams::testScale();
    ClusterConfig cc;
    cc.nprocs = 8;
    cc.arenaBytes = 16u << 20;
    cc.pageSize = 4096;

    for (const std::string &app : {std::string("SOR"), std::string("SOR+")}) {
        for (const RuntimeConfig &config : RuntimeConfig::all()) {
            for (int home = 0; home <= 1; ++home) {
                if (home &&
                    !(config.model == Model::LRC &&
                      config.collect == CollectMethod::Diffing)) {
                    continue;
                }
                ClusterConfig run_cc = cc;
                run_cc.homeBasedLrc = home != 0;
                // Pin the scenario point the golden was frozen at:
                // one thread per node, legacy GC trigger, legacy
                // (undecayed) home-migration counters.
                run_cc.threadsPerNode = 1;
                run_cc.adaptiveGcThreshold = false;
                run_cc.homeDecayWindow = 0;
                ExperimentResult r =
                    runExperiment(app, config, params, run_cc);
                std::printf("%s %s home=%d exec=%llu msgs=%llu\n",
                            r.app.c_str(), config.name().c_str(), home,
                            static_cast<unsigned long long>(
                                r.run.execTimeNs),
                            static_cast<unsigned long long>(
                                r.run.networkMessages));
                for (const auto &[name, value] : r.run.total.items()) {
                    std::printf("  %s=%llu\n", name.c_str(),
                                static_cast<unsigned long long>(value));
                }
                for (std::size_t n = 0; n < r.run.nodeTimesNs.size();
                     ++n) {
                    std::printf("  node%zu=%llu\n", n,
                                static_cast<unsigned long long>(
                                    r.run.nodeTimesNs[n]));
                }
            }
        }
    }
    return 0;
}
