#!/usr/bin/env python3
"""Declarative parameter-sweep driver.

A sweep spec is a JSON file describing a command, a parameter grid,
and derived parameters; the driver expands the grid to an environment
matrix, runs the command once per point, and records machine-readable
results. This replaces ad-hoc nested bash loops in CI: the nightly
stress legs, the transport grids, and local bisection runs all share
one runner, and a red run leaves behind the exact env block that
reproduces it.

Spec format (all fields except "name" and "command" optional):

    {
      "name": "chaos-mig",
      "command": ["./build/test_property", "--gtest_filter=*Chaos*"],
      "env":    {"DSM_THREADS": "4"},
      "grid":   {"DSM_HOME_MIG": [4, 5, 6], "iter": [1, 2, 3]},
      "derive": {"DSM_CHAOS_SEED": "day * 100 + DSM_HOME_MIG * 1000 + iter",
                 "DSM_COALESCE":   "iter % 2"},
      "timeout_seconds": 600
    }

Semantics:
  - "grid" axes are crossed (cartesian product), in declaration order.
  - "command" arguments may reference parameters as "{name}" (Python
    format fields), so an axis can select the binary itself:
        "command": ["./build/{bin}"],
        "grid":    {"bin": ["bench_micro_diff", "bench_micro_net"]}
  - "derive" entries are arithmetic expressions evaluated per point;
    they may reference any grid axis, earlier derived values, and
    "day" (days since the epoch, overridable with --day so a failing
    nightly is reproducible on any later date).
  - UPPERCASE parameter names are exported into the run's environment
    (grid and derived alike); lowercase names (e.g. "iter") only
    shape the grid and the run label.
  - A failing point keeps its log and appends one line to
    failing-seeds.txt of the form
        FAILED: VAR=value ... <command>
    which pastes straight back into a shell. Passing points have
    their logs deleted unless --keep-logs.

Every run of the driver writes <output-dir>/results-<name>.json with
per-point status, exit code, and wall time, so downstream tooling
(bench trend dashboards, flake triage) consumes one format.

Exit status: 1 when any point failed, else 0.
"""

import argparse
import itertools
import json
import os
import subprocess
import sys
import time


def fail(msg):
    print(f"sweep.py: {msg}", file=sys.stderr)
    return 1


def load_spec(path):
    with open(path) as f:
        spec = json.load(f)
    for field in ("name", "command"):
        if field not in spec:
            raise ValueError(f"{path}: spec is missing '{field}'")
    if not isinstance(spec["command"], list):
        raise ValueError(f"{path}: 'command' must be an argv list")
    return spec


def evaluate(expr, params):
    """Evaluate a derive expression over the point's parameters.

    Expressions are arithmetic over ints (the grids are seeds, node
    ids, thresholds); no builtins are exposed.
    """
    return eval(expr, {"__builtins__": {}}, dict(params))


def expand(spec, day):
    """Yield (label, params, env) per grid point."""
    grid = spec.get("grid", {})
    axes = list(grid.keys())
    value_lists = [grid[a] for a in axes]
    for values in itertools.product(*value_lists) if axes else [()]:
        params = {"day": day}
        params.update(zip(axes, values))
        for name, expr in spec.get("derive", {}).items():
            params[name] = evaluate(expr, params)
        env = dict(spec.get("env", {}))
        for name, value in params.items():
            if name != "day" and name.isupper():
                env[name] = str(value)
        label = "-".join(f"{a}{params[a]}" for a in axes) or "single"
        yield label, params, env


def repro_line(env, command):
    assignments = " ".join(f"{k}={v}" for k, v in sorted(env.items()))
    return f"FAILED: {assignments} {' '.join(command)}"


def run_spec(spec, args, day):
    name = spec["name"]
    outdir = args.output_dir
    os.makedirs(outdir, exist_ok=True)
    runs = []
    failures = 0
    points = list(expand(spec, day))
    print(f"[{name}] {len(points)} points "
          f"(day {day}, timeout {spec.get('timeout_seconds', 900)}s "
          f"per point)")
    for label, params, env in points:
        try:
            command = [arg.format(**params) if "{" in arg else arg
                       for arg in spec["command"]]
        except (KeyError, IndexError) as e:
            raise ValueError(f"{name}: unknown command field {e} "
                             f"(axes: {sorted(params)})")
        log_path = os.path.join(outdir, f"{name}-{label}.log")
        run_env = dict(os.environ)
        run_env.update(env)
        start = time.monotonic()
        try:
            with open(log_path, "w") as log:
                proc = subprocess.run(
                    command, stdout=log, stderr=subprocess.STDOUT,
                    env=run_env,
                    timeout=spec.get("timeout_seconds", 900))
            code = proc.returncode
        except subprocess.TimeoutExpired:
            code = -1
        except FileNotFoundError as e:
            raise ValueError(f"{name}: cannot run {command[0]}: {e}")
        seconds = time.monotonic() - start
        ok = code == 0
        status = "ok" if ok else ("timeout" if code == -1 else "fail")
        print(f"  {status:>7}  {label} ({seconds:.1f}s)")
        if ok:
            if not args.keep_logs:
                os.unlink(log_path)
                log_path = None
        else:
            failures += 1
            line = repro_line(env, command)
            print(f"  {line}")
            with open(os.path.join(outdir, "failing-seeds.txt"),
                      "a") as f:
                f.write(line + "\n")
        runs.append({
            "label": label,
            "params": {k: v for k, v in params.items() if k != "day"},
            "env": env,
            "status": status,
            "exit": code,
            "seconds": round(seconds, 3),
            "log": log_path,
        })
    results = {
        "spec": name,
        "command": spec["command"],
        "day": day,
        "points": len(runs),
        "failures": failures,
        "runs": runs,
    }
    results_path = os.path.join(outdir, f"results-{name}.json")
    with open(results_path, "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(f"[{name}] {failures}/{len(runs)} failed, "
          f"results at {results_path}")
    return failures


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("specs", nargs="+",
                    help="sweep spec JSON files (see sweeps/)")
    ap.add_argument("--output-dir", default="sweep-results",
                    help="where logs, failing-seeds.txt, and "
                         "results-*.json land")
    ap.add_argument("--day", type=int, default=None,
                    help="override the seed-rotation day (defaults to "
                         "days since the epoch; pass a failing run's "
                         "recorded day to reproduce it)")
    ap.add_argument("--keep-logs", action="store_true",
                    help="keep logs of passing points too")
    args = ap.parse_args()

    day = args.day if args.day is not None else int(time.time()) // 86400
    total_failures = 0
    for path in args.specs:
        try:
            spec = load_spec(path)
            total_failures += run_spec(spec, args, day)
        except (ValueError, OSError, json.JSONDecodeError) as e:
            print(f"sweep.py: {e}", file=sys.stderr)
            return 1
    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main())
