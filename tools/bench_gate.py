#!/usr/bin/env python3
"""Bench-regression gate: compare freshly produced BENCH_diff.json /
BENCH_net.json / BENCH_homeread.json against the committed baselines
and fail on regression.

The gated metrics are *ratios* (speedup of one kernel over another on
the same host), not absolute throughput: absolutes vary wildly between
the recording machine and a CI runner, while same-host ratios are
stable. Diff-scan ratios are additionally gated as the geometric mean
over all scenarios of a family: single-scenario ratios wobble 20%+
run to run on loaded hosts, while a real kernel regression — the
injected-slowdown acceptance test halves the diff-scan rate — drags
every scenario down and collapses the mean. Per-scenario values are
printed as informational context.

Usage:
    tools/bench_gate.py --baseline-dir <dir-with-committed-jsons> \
                        [--fresh-dir .] [--tolerance 0.15] \
                        [--net-tolerance 0.35]

Exit status 1 when any gated ratio falls below baseline * (1 - tol).
The net ratios get a wider default tolerance: the RPC/fan-in speedups
depend on the runner's core count, while the diff-kernel ratios only
depend on the ISA.
"""

import argparse
import json
import math
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


class Gate:
    def __init__(self):
        self.failures = []
        self.checked = 0

    def check(self, name, fresh, baseline, tolerance):
        self.checked += 1
        floor = baseline * (1.0 - tolerance)
        status = "ok"
        if fresh < floor:
            status = "REGRESSION"
            self.failures.append(
                f"{name}: {fresh:.3f} < floor {floor:.3f} "
                f"(baseline {baseline:.3f}, tolerance {tolerance:.0%})")
        print(f"  {status:>10}  {name}: fresh {fresh:.3f} vs "
              f"baseline {baseline:.3f} (floor {floor:.3f})")


def geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def gate_diff(gate, fresh, baseline, tolerance):
    print("BENCH_diff.json (diff-scan kernel ratio families, "
          "geometric mean over scenarios):")
    fresh_scenarios = {s["name"]: s for s in fresh.get("scenarios", [])}
    simd_comparable = fresh.get("cpu_simd") and baseline.get("cpu_simd")
    if not simd_comparable:
        print("  (skipping simd ratios: host SIMD support differs "
              "from the baseline recording)")
    families = ["speedup_vs_seed"]
    if simd_comparable:
        families.append("speedup_simd_vs_seed")
    for family in families:
        fresh_vals, base_vals = [], []
        for base_s in baseline.get("scenarios", []):
            name = base_s["name"]
            fresh_s = fresh_scenarios.get(name)
            if fresh_s is None:
                gate.failures.append(f"diff scenario '{name}' missing "
                                     "from fresh results")
                continue
            fresh_vals.append(fresh_s[family])
            base_vals.append(base_s[family])
            print(f"        info  diff/{name}/{family}: "
                  f"fresh {fresh_s[family]:.2f} vs "
                  f"baseline {base_s[family]:.2f}")
        if fresh_vals:
            gate.check(f"diff/geomean/{family}", geomean(fresh_vals),
                       geomean(base_vals), tolerance)


def gate_net(gate, fresh, baseline, tolerance):
    print("BENCH_net.json (MPSC inbox / latency-path ratios):")
    for key in ("rpc_speedup", "fanin_speedup", "rpc_bypass_speedup"):
        if key not in baseline:
            print(f"  net/{key}: no committed baseline, skipping")
            continue
        if key not in fresh:
            # A truncated or renamed fresh file must not slip through
            # as "nothing to check".
            gate.failures.append(f"net/{key}: missing from fresh "
                                 "results")
            continue
        gate.check(f"net/{key}", fresh[key], baseline[key], tolerance)
    # The coalescing ablation's wire-message reduction is a modeled
    # (deterministic) count ratio, not a timing: it is bit-stable
    # across hosts, so it gets a near-zero tolerance regardless of the
    # net timing tolerance.
    key = "coalesce_msg_reduction"
    if key in baseline:
        if key not in fresh:
            gate.failures.append(f"net/{key}: missing from fresh "
                                 "results")
        else:
            gate.check(f"net/{key}", fresh[key], baseline[key], 0.01)
    else:
        print(f"  net/{key}: no committed baseline, skipping")
    # ring_p50 / socket_p50 gates the tier-1 frame path: a regression
    # in the codec or the reader-thread handoff inflates the socket
    # round trip and drags this ratio below its floor, while both
    # numbers coming from the same host keeps it machine-portable.
    key = "rpc_ring_vs_socket_p50"
    if key in baseline:
        if key not in fresh:
            gate.failures.append(f"net/{key}: missing from fresh "
                                 "results")
        else:
            gate.check(f"net/{key}", fresh[key], baseline[key],
                       tolerance)
    else:
        print(f"  net/{key}: no committed baseline, skipping")
    for key in ("rpc_roundtrip_ring_p50_ns", "rpc_roundtrip_ring_p99_ns",
                "rpc_roundtrip_socket_p50_ns",
                "rpc_roundtrip_socket_p99_ns"):
        if key in fresh:
            print(f"        info  net/{key}: {fresh[key]:.0f} "
                  "(not gated: absolute latency)")


def gate_homeread(gate, fresh, baseline, tolerance):
    print("BENCH_homeread.json (optimistic home-read fan-in ratio):")
    key = "optread_speedup"
    if key not in baseline:
        print(f"  homeread/{key}: no committed baseline, skipping")
        return
    if key not in fresh:
        gate.failures.append(f"homeread/{key}: missing from fresh "
                             "results")
        return
    gate.check(f"homeread/{key}", fresh[key], baseline[key], tolerance)
    # The ratio is meaningless if the fast path never actually served:
    # a wiring regression that silently falls back to the locked path
    # would otherwise gate at ~1.0 vs ~1.0 and pass.
    served = fresh.get("opt_reads_served", 0)
    if served <= 0:
        gate.failures.append("homeread/opt_reads_served: fast path "
                             "served 0 reads in the fresh run")
    else:
        print(f"        info  homeread/opt_reads_served: {served}")


def gate_ckpt(gate, fresh, baseline, tolerance):
    print("BENCH_ckpt.json (incremental-checkpoint reduction ratio):")
    key = "delta_reduction"
    if key not in baseline:
        print(f"  ckpt/{key}: no committed baseline, skipping")
        return
    if key not in fresh:
        gate.failures.append(f"ckpt/{key}: missing from fresh results")
        return
    # Stored-bytes ratio of a deterministic workload: bit-exact across
    # hosts, so any drop is a real regression in the delta encoder or
    # the snapshot layout (e.g. a growing section serialized before
    # the arena again would smear the word scan and crater this).
    gate.check(f"ckpt/{key}", fresh[key], baseline[key], tolerance)
    stored = fresh.get("ckpt_delta_bytes", 0)
    if stored <= 0:
        gate.failures.append("ckpt/ckpt_delta_bytes: delta run stored "
                             "nothing in the fresh run")
    else:
        print(f"        info  ckpt/ckpt_delta_bytes: {stored}")
    if "delta_scan_gbps" in fresh:
        print(f"        info  ckpt/delta_scan_gbps: "
              f"{fresh['delta_scan_gbps']:.2f} (not gated: absolute "
              f"throughput)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", required=True,
                    help="directory holding the committed BENCH_*.json")
    ap.add_argument("--fresh-dir", default=".",
                    help="directory holding the freshly produced JSONs")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("BENCH_GATE_TOL",
                                                 "0.15")),
                    help="allowed relative drop for diff ratios "
                         "(default 0.15)")
    ap.add_argument("--net-tolerance", type=float,
                    default=float(os.environ.get("BENCH_GATE_NET_TOL",
                                                 "0.35")),
                    help="allowed relative drop for net ratios "
                         "(default 0.35: core-count sensitive)")
    args = ap.parse_args()

    gate = Gate()
    for fname, fn, tol in (
            ("BENCH_diff.json", gate_diff, args.tolerance),
            ("BENCH_net.json", gate_net, args.net_tolerance),
            ("BENCH_homeread.json", gate_homeread,
             args.net_tolerance),
            ("BENCH_ckpt.json", gate_ckpt, args.tolerance)):
        base_path = os.path.join(args.baseline_dir, fname)
        fresh_path = os.path.join(args.fresh_dir, fname)
        if not os.path.exists(base_path):
            print(f"{fname}: no committed baseline, skipping")
            continue
        if not os.path.exists(fresh_path):
            gate.failures.append(f"{fname}: fresh results missing at "
                                 f"{fresh_path}")
            continue
        fn(gate, load(fresh_path), load(base_path), tol)

    print(f"\nchecked {gate.checked} ratios, "
          f"{len(gate.failures)} regression(s)")
    if gate.failures:
        print("\nFAILED:")
        for f in gate.failures:
            print(f"  - {f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
