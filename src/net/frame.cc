#include "net/frame.hh"

#include <cstring>

#include "net/serde.hh"
#include "util/logging.hh"

namespace dsm {

namespace {

/** Patch the u32 length prefix reserved at offset 0 once the body is
 *  complete, and move the buffer out. */
std::vector<std::byte>
sealFrame(WireWriter &w)
{
    const std::uint32_t body =
        static_cast<std::uint32_t>(w.size() - sizeof(std::uint32_t));
    DSM_ASSERT(body <= kMaxFrameBytes, "frame body %u over the cap",
               body);
    std::memcpy(w.data(), &body, sizeof(body));
    return w.take();
}

} // namespace

std::vector<std::byte>
encodeDataFrame(const Message &msg)
{
    WireWriter w;
    w.putU32(0); // length prefix, patched by sealFrame
    w.putU8(static_cast<std::uint8_t>(FrameKind::Data));
    w.putPod(msg.src);
    w.putPod(msg.dst);
    w.putU8(static_cast<std::uint8_t>(msg.type));
    w.putU8(msg.isReply ? 1 : 0);
    w.putU8(msg.attempt);
    w.putU64(msg.replyToken);
    w.putU64(msg.vtSendNs);
    w.putU64(msg.vtArriveNs);
    w.putBytes(msg.payload.data(), msg.payload.size());
    return sealFrame(w);
}

std::vector<std::byte>
encodeHelloFrame(NodeId self, int nnodes)
{
    WireWriter w;
    w.putU32(0);
    w.putU8(static_cast<std::uint8_t>(FrameKind::Hello));
    w.putU32(kFrameMagic);
    w.putU16(kFrameVersion);
    w.putPod(self);
    w.putPod(nnodes);
    return sealFrame(w);
}

std::vector<std::byte>
encodeGoodbyeFrame(NodeId self, int round)
{
    DSM_ASSERT(round == 1 || round == 2, "bad goodbye round %d", round);
    WireWriter w;
    w.putU32(0);
    w.putU8(static_cast<std::uint8_t>(FrameKind::Goodbye));
    w.putPod(self);
    w.putU8(static_cast<std::uint8_t>(round));
    return sealFrame(w);
}

void
FrameDecoder::feed(std::span<const std::byte> chunk)
{
    if (poisonedFlag)
        return;
    // Compact once the consumed prefix dominates the buffer, so a
    // long-lived connection does not grow its buffer without bound
    // while still amortizing the memmove.
    if (pos > 4096 && pos * 2 > buf.size()) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(pos));
        pos = 0;
    }
    buf.insert(buf.end(), chunk.begin(), chunk.end());
}

bool
FrameDecoder::next(Frame &out)
{
    if (poisonedFlag)
        return false;
    if (buffered() < sizeof(std::uint32_t))
        return false; // torn length prefix: wait for more bytes
    std::uint32_t body = 0;
    std::memcpy(&body, buf.data() + pos, sizeof(body));
    if (body > kMaxFrameBytes || body < 1) {
        // A frame must at least carry its kind byte; anything larger
        // than the cap is stream corruption, not a big message.
        poisonedFlag = true;
        return false;
    }
    if (buffered() < sizeof(std::uint32_t) + body)
        return false; // partial frame
    const std::byte *frame = buf.data() + pos + sizeof(std::uint32_t);
    pos += sizeof(std::uint32_t) + body;

    WireReader r(std::span<const std::byte>(frame, body));
    out = Frame{};
    out.kind = static_cast<FrameKind>(r.getU8());
    switch (out.kind) {
    case FrameKind::Hello: {
        if (r.remaining() != sizeof(std::uint32_t) +
                                 sizeof(std::uint16_t) +
                                 2 * sizeof(NodeId) ||
            r.getU32() != kFrameMagic || r.getU16() != kFrameVersion) {
            poisonedFlag = true;
            return false;
        }
        out.node = r.getPod<NodeId>();
        out.nnodes = r.getPod<int>();
        return true;
    }
    case FrameKind::Data: {
        constexpr std::size_t header = 2 * sizeof(NodeId) + 3 +
                                       3 * sizeof(std::uint64_t);
        if (r.remaining() < header) {
            poisonedFlag = true;
            return false;
        }
        Message &m = out.msg;
        m.src = r.getPod<NodeId>();
        m.dst = r.getPod<NodeId>();
        m.type = static_cast<MsgType>(r.getU8());
        m.isReply = r.getU8() != 0;
        m.attempt = r.getU8();
        m.replyToken = r.getU64();
        m.vtSendNs = r.getU64();
        m.vtArriveNs = r.getU64();
        m.payload.resize(r.remaining());
        if (!m.payload.empty())
            r.getBytes(m.payload.data(), m.payload.size());
        if (m.type == MsgType::Invalid ||
            m.type >= MsgType::NumTypes) {
            poisonedFlag = true;
            return false;
        }
        return true;
    }
    case FrameKind::Goodbye: {
        if (r.remaining() != sizeof(NodeId) + 1) {
            poisonedFlag = true;
            return false;
        }
        out.node = r.getPod<NodeId>();
        out.round = r.getU8();
        if (out.round != 1 && out.round != 2) {
            poisonedFlag = true;
            return false;
        }
        return true;
    }
    default:
        poisonedFlag = true;
        return false;
    }
}

} // namespace dsm
