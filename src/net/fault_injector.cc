#include "net/fault_injector.hh"

#include "util/logging.hh"

namespace dsm {

namespace {

/** splitmix64 finalizer: a cheap, well-distributed 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

FaultInjector::FaultInjector(std::uint64_t seed, double drop_rate)
    : seed(seed), rate(drop_rate)
{
    DSM_ASSERT(drop_rate >= 0 && drop_rate < 1, "bad drop rate %f",
               drop_rate);
}

bool
FaultInjector::droppable(MsgType type)
{
    switch (type) {
    // Direct request/reply RPCs: the requester owns the round trip
    // end to end, so the Endpoint deadline + retransmit path recovers
    // a drop of either direction.
    case MsgType::BarrierArrive:
    case MsgType::BarrierDepart:
    case MsgType::DiffRequest:
    case MsgType::DiffReply:
    case MsgType::PageTsRequest:
    case MsgType::PageTsReply:
    case MsgType::DiffBatchRequest:
    case MsgType::DiffBatchReply:
    case MsgType::PageTsBatchRequest:
    case MsgType::PageTsBatchReply:
        return true;
    // Chain-routed or one-way traffic: a LockRequest is answered via
    // LockForward at a *third* node, home flushes forward along stale
    // mapping chains, HomeMigrate is a broadcast — none has a single
    // owner that could retransmit, so a drop would wedge the protocol
    // instead of exercising recovery. Shutdown is infrastructure.
    case MsgType::LockRequest:
    case MsgType::LockForward:
    case MsgType::LockGrant:
    case MsgType::HomeDiffFlush:
    case MsgType::HomePageRequest:
    case MsgType::HomePageReply:
    case MsgType::HomeMigrate:
    // A coalesced frame carries non-droppable traffic (home flushes,
    // migrate installs) — dropping the frame would drop them all.
    case MsgType::CoalescedFrame:
    case MsgType::Shutdown:
    case MsgType::Invalid:
    case MsgType::NumTypes:
        return false;
    }
    return false;
}

void
FaultInjector::setSilenced(NodeId node, bool is_silenced)
{
    const std::uint64_t bit = std::uint64_t{1} << node;
    if (is_silenced)
        silencedMask.fetch_or(bit, std::memory_order_acq_rel);
    else
        silencedMask.fetch_and(~bit, std::memory_order_acq_rel);
}

bool
FaultInjector::dropMessage(const Message &msg)
{
    if (!droppable(msg.type))
        return false;
    // Silence first: it overrides both the rate gate and the attempt
    // immunity (a silenced peer's retransmits are as dead as its first
    // sends — that is what makes the outage total).
    if (anySilenced()) {
        const std::uint64_t mask =
            silencedMask.load(std::memory_order_acquire);
        if (((mask >> msg.src) & 1) || ((mask >> msg.dst) & 1)) {
            droppedCount.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    if (rate <= 0)
        return false;
    if (msg.attempt >= kAttemptImmunity)
        return false; // bounded retries always get through
    const std::uint64_t n =
        decisionSeq.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t h = mix64(seed ^ mix64(n));
    h = mix64(h ^ (static_cast<std::uint64_t>(msg.src) << 40) ^
              (static_cast<std::uint64_t>(msg.dst) << 20) ^
              static_cast<std::uint64_t>(msg.type));
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u >= rate)
        return false;
    droppedCount.fetch_add(1, std::memory_order_relaxed);
    return true;
}

} // namespace dsm
