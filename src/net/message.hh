/**
 * @file
 * The message types exchanged by the DSM runtimes. One enum covers
 * both models; each runtime only handles the subset it uses.
 */

#ifndef DSM_NET_MESSAGE_HH
#define DSM_NET_MESSAGE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace dsm {

enum class MsgType : std::uint8_t
{
    Invalid = 0,

    // Lock protocol (shared by EC and LRC; Section 6 of the paper).
    LockRequest,   ///< requester -> manager
    LockForward,   ///< manager -> last owner
    LockGrant,     ///< owner -> requester (reply; carries consistency
                   ///< payload: EC data / LRC write notices)

    // Barrier protocol.
    BarrierArrive, ///< node -> barrier manager
    BarrierDepart, ///< manager -> node (reply; LRC: interval records)

    // LRC access-miss servicing.
    DiffRequest,   ///< faulting node -> writer
    DiffReply,
    PageTsRequest, ///< faulting node -> writer (timestamp collection)
    PageTsReply,
    DiffBatchRequest, ///< faulting node -> writer: several pages' worth
                      ///< of missing intervals in one round trip
    DiffBatchReply,
    PageTsBatchRequest, ///< faulting node -> writer: timestamp runs for
                        ///< several pages in one round trip
    PageTsBatchReply,

    // Home-based LRC (pages have homes that absorb diffs eagerly).
    HomeDiffFlush,   ///< writer -> home: diffs of one closed interval
    HomePageRequest, ///< faulting node -> home (forwarded on stale maps)
    HomePageReply,   ///< home -> faulting node: full up-to-date copy
    HomePageSnapshotReply, ///< home -> faulting node: lock-free
                           ///< version-validated snapshot (migration
                           ///< epoch + applied vector + version footer
                           ///< + page copy; no piggybacked records)
    HomeMigrate,     ///< old home -> everyone: mapping update, plus the
                     ///< page copy + home state for the new home

    // Infrastructure.
    CoalescedFrame, ///< send-side coalescing: several small messages to
                    ///< one destination framed into a single ring slot
                    ///< (length-prefixed serde entries; unpacked into
                    ///< the original handler calls on arrival)
    Shutdown,      ///< cluster teardown of the service loop

    NumTypes,
};

/** Human-readable message type name. */
const char *toString(MsgType type);

/**
 * A network message. Fixed header plus opaque payload. The header
 * size approximates the AAL3/4 + protocol header overhead and is
 * charged on the wire.
 */
struct Message
{
    NodeId src = -1;
    NodeId dst = -1;
    MsgType type = MsgType::Invalid;
    bool isReply = false;
    /** Token routing a reply back to the blocked requester; 0 = none. */
    std::uint64_t replyToken = 0;
    /** Sender's virtual clock at send time. */
    std::uint64_t vtSendNs = 0;
    /** Computed arrival virtual time (set by the network). */
    std::uint64_t vtArriveNs = 0;
    /**
     * Delivery-order stamp assigned by the network inbox (ring ticket
     * or per-pair counter; 0 = unstamped). Simulation metadata, not
     * on the modeled wire; recv() asserts it increases per (src, dst)
     * pair — the in-order-per-pair delivery guarantee.
     */
    std::uint64_t pairSeq = 0;
    /**
     * Transmission attempt of this request (0 = first send). Only the
     * Endpoint retransmit path under fault injection ever sets it;
     * simulation metadata, not on the modeled wire. The injector never
     * drops a late attempt, which bounds the retry storm and makes
     * delivery certain.
     */
    std::uint8_t attempt = 0;
    std::vector<std::byte> payload;

    /** Modeled wire header bytes. */
    static constexpr std::size_t kHeaderBytes = 32;

    /** Total modeled size on the wire. */
    std::size_t wireSize() const { return kHeaderBytes + payload.size(); }
};

} // namespace dsm

#endif // DSM_NET_MESSAGE_HH
