/**
 * @file
 * Tier-1 transport: one node per OS process, full-mesh sockets.
 *
 * Each node binds a listener in a shared rendezvous directory
 * (Unix-domain: `<dir>/node-<i>.sock`; TCP: loopback ephemeral port
 * published atomically as `<dir>/node-<i>.port`) and dials every
 * peer's listener with a bounded retry loop, so process start order
 * does not matter. Connections are simplex: the dialing side writes,
 * the accepting side reads — one stream per ordered (src, dst) pair,
 * which carries the in-order-per-pair delivery guarantee for free.
 * Every connection opens with a Hello frame (magic, version, node id,
 * cluster size), so a stranger or a mismatched run is rejected at
 * accept time.
 *
 * Delivery reuses the tier-0 machinery wholesale: one reader thread
 * per inbound stream decodes frames (net/frame.hh) and pushes them
 * into the same lock-free MpscRing the in-process Network uses, so
 * recv()/recvStatus()/recvTimed(), the in-order assert, and the
 * service-thread discipline are identical across tiers. The reply
 * bypass moves from the sender's thread to the receiver's reader
 * thread: the reader offers replies to the local parked caller under
 * the same per-source outstanding-count guard Network::send uses —
 * same invariant, enforced where the shared state now lives.
 *
 * Termination is the two-round goodbye documented in net/frame.hh:
 * finishRun() announces round 1 after the local workers joined, waits
 * for every peer's round 1 (at which point no request chain can be in
 * flight anywhere — a chain implies a blocked worker, which implies
 * an unsent round-1 goodbye at its origin), then announces round 2
 * and waits for every peer's round 2, after which every frame ever
 * written to this node has been pushed into its inbox. Stopping the
 * endpoint then drains the inbox ahead of the Shutdown marker with
 * exactly the in-process semantics.
 */

#ifndef DSM_NET_SOCKET_TRANSPORT_HH
#define DSM_NET_SOCKET_TRANSPORT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hh"

namespace dsm {

/** Socket family of the tier-1 transport. */
enum class SocketKind : std::uint8_t
{
    Unix, ///< AF_UNIX stream sockets in the rendezvous directory
    Tcp,  ///< loopback TCP, ports published via the directory
};

class SocketTransport final : public Transport
{
  public:
    /**
     * Bind this node's listener and start the accept thread. The
     * rendezvous directory @p dir must exist and be shared by all
     * nodes of the run.
     */
    SocketTransport(NodeId self, int nnodes, const CostModel &costModel,
                    SocketKind kind, std::string dir,
                    LossPlan lossPlan = nullptr,
                    std::size_t ringCapacity = MpscRing::kDefaultCapacity);
    ~SocketTransport() override;

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    /**
     * Dial every peer and wait until every peer dialed us (all hello
     * frames exchanged). Must be called once, after construction,
     * before any send. @p timeout_ms bounds the whole rendezvous.
     */
    void connectPeers(int timeout_ms = 30000);

    /**
     * The two-round termination rendezvous (see file header). Call
     * after the local workers joined and before stopping the
     * endpoint. Returns once every frame ever sent to this node has
     * been pushed into its inbox.
     */
    void finishRun();

    // Transport interface.
    void send(Message &&msg, NodeStats &senderStats) override;
    bool recv(NodeId node, Message &out) override;
    RingPop recvStatus(NodeId node, Message &out) override;
    RingPop recvTimed(NodeId node, Message &out,
                      std::uint64_t timeout_ns) override;
    void markNodeDown(NodeId node) override;
    void clearNodeDown(NodeId node) override;
    void setFaultInjector(FaultInjector *injector) override
    {
        faults = injector;
    }
    void setReplyReceiver(NodeId node, ReplyReceiver *receiver) override;
    void noteDispatched(NodeId dst, NodeId src) override;
    void setAdaptiveInboxSpin(bool on) override;
    void shutdown() override;
    int nnodes() const override { return numNodes; }
    const CostModel &costModel() const override { return cm; }
    std::uint64_t totalMessages() const override
    {
        return accepted.load();
    }

    NodeId self() const { return id; }
    SocketKind kind() const { return sockKind; }

  private:
    /** Deliver a message addressed to this node (self-send or decoded
     *  off a peer stream): reply bypass under the outstanding-count
     *  guard, else inbox push. */
    void deliverLocal(Message &&msg);

    /** Reader-thread body for one inbound stream; the first frame
     *  must be the peer's Hello. */
    void readerLoop(int fd);

    /** Accept-thread body: accepts nnodes-1 streams and spawns a
     *  reader for each. */
    void acceptLoop();

    /** Write all of @p bytes to @p peer's outbound stream (serialized
     *  per peer). Panics on a broken stream — by protocol no write
     *  can legally race the peer's exit. */
    void writeTo(NodeId peer, const std::vector<std::byte> &bytes);

    /** Record a goodbye from @p peer and wake finishRun. */
    void noteGoodbye(NodeId peer, int round);

    std::string listenPath() const;

    CostModel cm;
    LossPlan loss;
    NodeId id;
    int numNodes;
    SocketKind sockKind;
    std::string dir;
    FaultInjector *faults = nullptr;

    /** This node's inbox — the same ring the in-process tier uses. */
    std::unique_ptr<MpscRing> inbox;
    /** Last pairSeq delivered per source (in-order-per-pair assert). */
    std::vector<std::uint64_t> lastDelivered;

    /** Reply-bypass state for the one local node: the registered
     *  receiver and the per-source accepted-but-undispatched counts
     *  (the ordering guard Network keeps per (src, dst) pair). */
    std::mutex replyMu;
    ReplyReceiver *replyReceiver = nullptr;
    std::vector<std::atomic<std::uint32_t>> srcOutstanding;

    int listenFd = -1;
    std::uint16_t listenPort = 0; ///< TCP only
    /** Outbound (dialed) stream per peer; -1 until connectPeers. The
     *  mutex serializes frame writes so frames never interleave. */
    struct OutStream
    {
        std::mutex mu;
        int fd = -1;
    };
    std::vector<std::unique_ptr<OutStream>> out;

    std::thread acceptThread;
    std::vector<std::thread> readers;
    std::vector<int> readerFds; ///< for shutdown() wakeups at teardown
    std::mutex readersMu; ///< guards readers/readerFds (accept appends)

    /** Hello/goodbye bookkeeping (rendezvous + finishRun), all under
     *  goodbyeMu / signalled via goodbyeCv. */
    std::mutex goodbyeMu;
    std::condition_variable goodbyeCv;
    int hellosSeen = 0;
    std::vector<std::uint8_t> goodbyeRound; ///< highest round per peer

    std::atomic<std::uint64_t> nextSeq{1};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<bool> closing{false};
};

} // namespace dsm

#endif // DSM_NET_SOCKET_TRANSPORT_HH
