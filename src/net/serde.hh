/**
 * @file
 * Byte-oriented wire serialization. All protocol payloads are encoded
 * through WireWriter/WireReader so byte counts (which the cost model
 * charges) are well defined and platform independent.
 */

#ifndef DSM_NET_SERDE_HH
#define DSM_NET_SERDE_HH

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

/**
 * Append-only little-endian encoder. The backing buffer comes from the
 * process-wide BufferPool, so a writer whose payload is taken and
 * later recycled costs no allocation in steady state; a writer that is
 * destroyed without take() parks its buffer back in the pool.
 */
class WireWriter
{
  public:
    WireWriter() : buf(BufferPool::instance().acquire()) {}

    ~WireWriter()
    {
        BufferPool::instance().release(std::move(buf));
    }

    WireWriter(const WireWriter &) = delete;
    WireWriter &operator=(const WireWriter &) = delete;

    void putU8(std::uint8_t v) { putPod(v); }
    void putU16(std::uint16_t v) { putPod(v); }
    void putU32(std::uint32_t v) { putPod(v); }
    void putU64(std::uint64_t v) { putPod(v); }
    void putI64(std::int64_t v) { putPod(v); }
    void putF64(double v) { putPod(v); }

    /** Raw byte copy of a trivially copyable value. */
    template <typename T>
    void
    putPod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const std::byte *>(&v);
        buf.insert(buf.end(), p, p + sizeof(T));
    }

    /** Raw bytes. */
    void
    putBytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::byte *>(data);
        buf.insert(buf.end(), p, p + n);
    }

    /** Length-prefixed byte vector. */
    void
    putBlob(const std::vector<std::byte> &blob)
    {
        putU32(static_cast<std::uint32_t>(blob.size()));
        buf.insert(buf.end(), blob.begin(), blob.end());
    }

    /** Length-prefixed string. */
    void
    putString(const std::string &s)
    {
        putU32(static_cast<std::uint32_t>(s.size()));
        putBytes(s.data(), s.size());
    }

    std::size_t size() const { return buf.size(); }

    /**
     * Grow the buffer by @p n uninitialized-content bytes and return
     * the region's offset, to be filled in place through data().
     * Growth invalidates pointers into the buffer, so producers that
     * interleave appends address their regions by offset.
     */
    std::size_t
    appendRegion(std::size_t n)
    {
        const std::size_t off = buf.size();
        buf.resize(off + n);
        return off;
    }

    /** Mutable view of the accumulated bytes (for appendRegion). */
    std::byte *data() { return buf.data(); }

    /** Move the accumulated bytes out. */
    std::vector<std::byte> take() { return std::move(buf); }

  private:
    std::vector<std::byte> buf;
};

/** Sequential decoder over a byte span; panics on underrun (internal
 *  protocol error, not user input). */
class WireReader
{
  public:
    explicit WireReader(std::span<const std::byte> data)
        : data(data), pos(0)
    {}

    std::uint8_t getU8() { return getPod<std::uint8_t>(); }
    std::uint16_t getU16() { return getPod<std::uint16_t>(); }
    std::uint32_t getU32() { return getPod<std::uint32_t>(); }
    std::uint64_t getU64() { return getPod<std::uint64_t>(); }
    std::int64_t getI64() { return getPod<std::int64_t>(); }
    double getF64() { return getPod<double>(); }

    template <typename T>
    T
    getPod()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        DSM_ASSERT(pos + sizeof(T) <= data.size(), "wire underrun");
        T v;
        std::memcpy(&v, data.data() + pos, sizeof(T));
        pos += sizeof(T);
        return v;
    }

    void
    getBytes(void *out, std::size_t n)
    {
        DSM_ASSERT(pos + n <= data.size(), "wire underrun");
        std::memcpy(out, data.data() + pos, n);
        pos += n;
    }

    std::vector<std::byte>
    getBlob()
    {
        std::uint32_t n = getU32();
        std::vector<std::byte> out(n);
        if (n)
            getBytes(out.data(), n);
        return out;
    }

    std::string
    getString()
    {
        std::uint32_t n = getU32();
        std::string out(n, '\0');
        if (n)
            getBytes(out.data(), n);
        return out;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return data.size() - pos; }

    bool done() const { return pos == data.size(); }

  private:
    std::span<const std::byte> data;
    std::size_t pos;
};

} // namespace dsm

#endif // DSM_NET_SERDE_HH
