/**
 * @file
 * Length-prefixed framing for the socket transport. A byte stream
 * between two peers carries a sequence of frames:
 *
 *     u32 length   — bytes that follow the prefix (little endian)
 *     u8  kind     — FrameKind
 *     ... body     — kind-specific, encoded with the serde writers
 *
 * Body layouts:
 *  - Hello:   u32 magic, u16 version, i32 sender node id, i32 cluster
 *             size. First frame on every connection, both directions;
 *             identifies the peer and rejects cross-run or cross-size
 *             mismatches at accept time.
 *  - Data:    the Message header fields that travel (src, dst, type,
 *             isReply, attempt, replyToken, vtSendNs, vtArriveNs)
 *             followed by the raw payload bytes. pairSeq deliberately
 *             does NOT travel: it is simulation metadata assigned by
 *             the receiver's local inbox ring at push time, exactly as
 *             on the in-process tier.
 *  - Goodbye: i32 sender node id, u8 round. The two-round termination
 *             rendezvous of the process-per-node launcher: round 1 =
 *             "my workers joined" (no new request chains can start),
 *             round 2 = "I saw everyone's round 1" (nothing I write
 *             after this; a round-2 goodbye therefore seals its
 *             stream — every earlier frame on it has been read once
 *             the receiver decodes it).
 *
 * The decoder is incremental: feed() accepts arbitrary chunkings of
 * the stream (partial length prefixes, frames split at any byte,
 * multiple frames per read) and next() yields complete frames in
 * order. A length prefix above kMaxFrameBytes poisons the decoder —
 * the connection carries garbage and must be torn down, never
 * allocated for.
 */

#ifndef DSM_NET_FRAME_HH
#define DSM_NET_FRAME_HH

#include <cstdint>
#include <span>
#include <vector>

#include "net/message.hh"

namespace dsm {

enum class FrameKind : std::uint8_t
{
    Invalid = 0,
    Hello,
    Data,
    Goodbye,
};

/** Handshake magic ("DSM1" little-endian) — rejects strangers and
 *  byte-order mismatches in the first four body bytes. */
constexpr std::uint32_t kFrameMagic = 0x314d5344;

/** Framing protocol version; bumped on any layout change. */
constexpr std::uint16_t kFrameVersion = 1;

/** Hard ceiling on one frame's post-prefix length. Generously above
 *  any legitimate message (pages are KBs, coalesced frames MBs) while
 *  keeping a corrupt length prefix from turning into a giant
 *  allocation. */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** One decoded frame. For Data, `msg` is fully populated except
 *  pairSeq; for Hello/Goodbye, `node` (and Hello's `nnodes`). */
struct Frame
{
    FrameKind kind = FrameKind::Invalid;
    NodeId node = -1; ///< Hello/Goodbye: the peer's node id
    int nnodes = 0;   ///< Hello: the peer's idea of the cluster size
    int round = 0;    ///< Goodbye: termination round (1 or 2)
    Message msg;      ///< Data: the carried message
};

/** Encode @p msg as a Data frame (length prefix included). */
std::vector<std::byte> encodeDataFrame(const Message &msg);

/** Encode the connection-opening handshake frame. */
std::vector<std::byte> encodeHelloFrame(NodeId self, int nnodes);

/** Encode the run-termination frame for @p round (1 or 2). */
std::vector<std::byte> encodeGoodbyeFrame(NodeId self, int round);

/**
 * Incremental frame decoder for one connection's byte stream.
 * Single-consumer: the connection's reader thread owns it.
 */
class FrameDecoder
{
  public:
    /** Append @p chunk (any size, including empty) to the stream. */
    void feed(std::span<const std::byte> chunk);

    /**
     * Decode the next complete frame into @p out. Returns false when
     * the buffered bytes do not yet form a complete frame (read more
     * and feed again) or the decoder is poisoned.
     */
    bool next(Frame &out);

    /**
     * Stream integrity lost: an oversized or malformed frame was
     * seen. Poisoning is sticky — feed() discards and next() refuses
     * from then on; the owner must drop the connection.
     */
    bool poisoned() const { return poisonedFlag; }

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buf.size() - pos; }

  private:
    std::vector<std::byte> buf;
    std::size_t pos = 0; ///< consumed prefix of buf
    bool poisonedFlag = false;
};

} // namespace dsm

#endif // DSM_NET_FRAME_HH
