#include "net/failure_detector.hh"

#include "net/network.hh"
#include "util/logging.hh"

namespace dsm {

FailureDetector::FailureDetector(Network &net, int nnodes,
                                 std::uint64_t deadline_ns,
                                 FaultInjector *injector)
    : net(net), injector(injector), deadline(deadline_ns),
      epoch(std::chrono::steady_clock::now()), peers(nnodes)
{
    DSM_ASSERT(deadline_ns > 0, "failure detector needs a deadline");
    DSM_ASSERT(nnodes <= 64, "down mask is 64 bits wide");
    // Everyone starts healthy with a full deadline of grace.
    const std::uint64_t now = nowNs();
    for (PeerSlot &slot : peers)
        slot.lastHeardNs.store(now, std::memory_order_relaxed);
}

std::uint64_t
FailureDetector::nowNs()
    const
{
    return static_cast<std::uint64_t>(
        std::chrono::nanoseconds(std::chrono::steady_clock::now() -
                                 epoch)
            .count());
}

void
FailureDetector::heartbeat(NodeId self)
{
    // A silenced node's traffic never arrives anywhere, so its
    // in-process heartbeat must not arrive either — otherwise the
    // injected outage would be undetectable.
    if (injector && injector->silenced(self))
        return;
    peers[self].lastHeardNs.store(nowNs(), std::memory_order_release);
}

bool
FailureDetector::declareDown(NodeId node)
{
    const std::uint64_t bit = std::uint64_t{1} << node;
    std::uint64_t mask = downMask.load(std::memory_order_acquire);
    while (!(mask & bit)) {
        if (downMask.compare_exchange_weak(mask, mask | bit,
                                           std::memory_order_acq_rel)) {
            net.markNodeDown(node);
            detectionCount.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

bool
FailureDetector::declareRecovered(NodeId node)
{
    const std::uint64_t bit = std::uint64_t{1} << node;
    std::uint64_t mask = downMask.load(std::memory_order_acquire);
    while (mask & bit) {
        if (downMask.compare_exchange_weak(mask, mask & ~bit,
                                           std::memory_order_acq_rel)) {
            net.clearNodeDown(node);
            peers[node].recoverySeq.fetch_add(
                1, std::memory_order_acq_rel);
            return true;
        }
    }
    return false;
}

void
FailureDetector::heard(NodeId src, NodeStats &stats)
{
    peers[src].lastHeardNs.store(nowNs(), std::memory_order_release);
    if (isDown(src) && declareRecovered(src))
        stats.peerDownRecoveries++;
}

void
FailureDetector::tick(NodeId self, NodeStats &stats)
{
    const std::uint64_t now = nowNs();
    for (NodeId n = 0; n < static_cast<NodeId>(peers.size()); ++n) {
        if (n == self)
            continue;
        const std::uint64_t last =
            peers[n].lastHeardNs.load(std::memory_order_acquire);
        const bool expired = now > last && now - last > deadline;
        if (expired && !isDown(n)) {
            if (declareDown(n))
                stats.peerDownDetections++;
        } else if (!expired && isDown(n)) {
            if (declareRecovered(n))
                stats.peerDownRecoveries++;
        }
    }
}

} // namespace dsm
