#include "net/message.hh"

namespace dsm {

const char *
toString(MsgType type)
{
    switch (type) {
      case MsgType::Invalid: return "Invalid";
      case MsgType::LockRequest: return "LockRequest";
      case MsgType::LockForward: return "LockForward";
      case MsgType::LockGrant: return "LockGrant";
      case MsgType::BarrierArrive: return "BarrierArrive";
      case MsgType::BarrierDepart: return "BarrierDepart";
      case MsgType::DiffRequest: return "DiffRequest";
      case MsgType::DiffReply: return "DiffReply";
      case MsgType::PageTsRequest: return "PageTsRequest";
      case MsgType::PageTsReply: return "PageTsReply";
      case MsgType::DiffBatchRequest: return "DiffBatchRequest";
      case MsgType::DiffBatchReply: return "DiffBatchReply";
      case MsgType::PageTsBatchRequest: return "PageTsBatchRequest";
      case MsgType::PageTsBatchReply: return "PageTsBatchReply";
      case MsgType::HomeDiffFlush: return "HomeDiffFlush";
      case MsgType::HomePageRequest: return "HomePageRequest";
      case MsgType::HomePageReply: return "HomePageReply";
      case MsgType::HomePageSnapshotReply:
        return "HomePageSnapshotReply";
      case MsgType::HomeMigrate: return "HomeMigrate";
      case MsgType::CoalescedFrame: return "CoalescedFrame";
      case MsgType::Shutdown: return "Shutdown";
      default: return "Unknown";
    }
}

} // namespace dsm
