#include "net/network.hh"

#include "util/logging.hh"

namespace dsm {

Network::Network(int nnodes, const CostModel &cost_model, LossPlan loss_plan)
    : cm(cost_model), loss(std::move(loss_plan))
{
    DSM_ASSERT(nnodes > 0, "network needs at least one node");
    inboxes.reserve(nnodes);
    for (int i = 0; i < nnodes; ++i)
        inboxes.push_back(std::make_unique<Inbox>());
}

void
Network::send(Message &&msg, NodeStats &sender_stats)
{
    DSM_ASSERT(msg.dst >= 0 && msg.dst < nnodes(), "bad destination %d",
               msg.dst);
    DSM_ASSERT(msg.type != MsgType::Invalid, "untyped message");

    const std::uint64_t seq = nextSeq.fetch_add(1);
    const std::size_t bytes = msg.wireSize();

    // Simulate loss + stop-and-wait recovery: each lost attempt costs
    // the retransmission timeout before the next attempt departs.
    std::uint64_t depart = msg.vtSendNs;
    if (loss) {
        int attempt = 0;
        while (loss(msg.src, msg.dst, seq, attempt)) {
            depart += cm.retransTimeoutNs;
            sender_stats.retransmissions++;
            sender_stats.messagesSent++;
            sender_stats.bytesSent += bytes;
            ++attempt;
            DSM_ASSERT(attempt < 64, "loss plan drops forever");
        }
    }
    msg.vtArriveNs = depart + cm.transitNs(bytes);

    sender_stats.messagesSent++;
    sender_stats.bytesSent += bytes;
    accepted.fetch_add(1);

    Inbox &box = *inboxes[msg.dst];
    {
        std::lock_guard<std::mutex> g(box.mu);
        box.queue.push_back(std::move(msg));
    }
    box.cv.notify_one();
}

bool
Network::recv(NodeId node, Message &out)
{
    DSM_ASSERT(node >= 0 && node < nnodes(), "bad node %d", node);
    Inbox &box = *inboxes[node];
    std::unique_lock<std::mutex> g(box.mu);
    box.cv.wait(g, [&] {
        return !box.queue.empty() || down.load(std::memory_order_acquire);
    });
    if (box.queue.empty())
        return false;
    out = std::move(box.queue.front());
    box.queue.pop_front();
    return true;
}

void
Network::shutdown()
{
    down.store(true, std::memory_order_release);
    for (auto &box : inboxes) {
        std::lock_guard<std::mutex> g(box->mu);
        box->cv.notify_all();
    }
}

std::uint64_t
Network::totalMessages() const
{
    return accepted.load();
}

LossPlan
dropEveryNth(std::uint64_t n)
{
    DSM_ASSERT(n > 0, "dropEveryNth(0)");
    return [n](NodeId, NodeId, std::uint64_t seq, int attempt) {
        return attempt == 0 && seq % n == 0;
    };
}

} // namespace dsm
