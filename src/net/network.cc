#include "net/network.hh"

#include <chrono>

#include "util/logging.hh"

namespace dsm {

Network::Network(int nnodes, const CostModel &cost_model,
                 LossPlan loss_plan, InboxPolicy inbox_policy,
                 std::size_t ring_capacity)
    : cm(cost_model), loss(std::move(loss_plan)), policy(inbox_policy)
{
    DSM_ASSERT(nnodes > 0, "network needs at least one node");
    inboxes.reserve(nnodes);
    for (int i = 0; i < nnodes; ++i) {
        inboxes.push_back(std::make_unique<Inbox>());
        if (policy == InboxPolicy::LockFreeRing)
            inboxes.back()->ring =
                std::make_unique<MpscRing>(ring_capacity);
        else
            inboxes.back()->locked = std::make_unique<LockedInbox>();
        inboxes.back()->lastDelivered.assign(nnodes, 0);
        replySlots.push_back(std::make_unique<ReceiverSlot>());
    }
    pairSeqs.assign(static_cast<std::size_t>(nnodes) * nnodes, 0);
    pairOutstanding = std::vector<std::atomic<std::uint32_t>>(
        static_cast<std::size_t>(nnodes) * nnodes);
}

void
Network::send(Message &&msg, NodeStats &sender_stats)
{
    DSM_ASSERT(msg.dst >= 0 && msg.dst < nnodes(), "bad destination %d",
               msg.dst);
    DSM_ASSERT(msg.src >= 0 && msg.src < nnodes(), "bad source %d",
               msg.src);
    DSM_ASSERT(msg.type != MsgType::Invalid, "untyped message");

    const std::uint64_t seq = nextSeq.fetch_add(1);
    const std::size_t bytes = msg.wireSize();

    // Simulate loss + stop-and-wait recovery: each lost attempt costs
    // the retransmission timeout before the next attempt departs.
    std::uint64_t depart = msg.vtSendNs;
    if (loss) {
        int attempt = 0;
        while (loss(msg.src, msg.dst, seq, attempt)) {
            depart += cm.retransTimeoutNs;
            sender_stats.retransmissions++;
            sender_stats.messagesSent++;
            sender_stats.bytesSent += bytes;
            ++attempt;
            DSM_ASSERT(attempt < 64, "loss plan drops forever");
        }
    }
    msg.vtArriveNs = depart + cm.transitNs(bytes);

    sender_stats.messagesSent++;
    sender_stats.bytesSent += bytes;
    accepted.fetch_add(1);

    // Fault-injection layer: the message went on the (modeled) wire —
    // it was counted and charged — but never reaches the destination
    // inbox. The Endpoint deadline/retransmit path recovers it. One
    // pointer test when the layer is off.
    if (faults && faults->dropMessage(msg))
        return;

    // Reply bypass: hand the reply straight to the parked caller
    // instead of paying inbox push + service-thread wake + futex
    // route. All wire accounting above already happened; only the
    // simulation-metadata pairSeq stamp is skipped (bypassed replies
    // never pass recv(), so the in-order-per-pair assert never sees
    // them). Guarded by the per-pair outstanding counter: while this
    // sender still has undispatched messages in the destination's
    // inbox (a HomeMigrate install, a forwarded lock chain, an
    // earlier coalesced frame), the reply must queue behind them —
    // the counter was incremented before those pushes, so any
    // happens-before-ordered reply observes it nonzero until the
    // receiver's handler finished (noteDispatched's release decrement
    // pairs with this acquire load). Under fault injection the slot
    // additionally refuses occupied tokens, funnelling duplicate
    // retransmitted replies to the service thread's dedup window.
    if (msg.isReply) {
        ReceiverSlot &slot = *replySlots[msg.dst];
        std::lock_guard<std::mutex> g(slot.mu);
        if (slot.receiver) {
            if (pairOutstanding[pairIndex(msg.src, msg.dst)].load(
                    std::memory_order_acquire) == 0 &&
                slot.receiver->tryDeliverReply(msg)) {
                sender_stats.repliesBypassed++;
                return;
            }
            sender_stats.replyBypassRefusals++;
        }
    }

    // From here the message is committed to the inbox: engage the
    // ordering guard before the push so the increment is visible to
    // any later reply send ordered after this one. Shutdown skips it
    // (teardown never dispatches through the endpoint).
    if (msg.type != MsgType::Shutdown) {
        pairOutstanding[pairIndex(msg.src, msg.dst)].fetch_add(
            1, std::memory_order_relaxed);
    }

    Inbox &box = *inboxes[msg.dst];
    if (policy == InboxPolicy::LockFreeRing) {
        // The ring ticket doubles as the pair sequence stamp (push
        // assigns it): tickets are claimed in delivery order, so the
        // per-pair subsequence is strictly increasing — exactly the
        // documented guarantee. A zero ticket (shutdown) drops the
        // message, matching the teardown semantics of recv().
        box.ring->push(std::move(msg));
        return;
    }

    {
        std::lock_guard<std::mutex> g(box.locked->mu);
        // Dense per-pair stamp, assigned under the inbox mutex so the
        // stamp order is the enqueue order.
        msg.pairSeq = ++pairSeqs[static_cast<std::size_t>(msg.src) *
                                     nnodes() +
                                 msg.dst];
        box.locked->queue.push_back(std::move(msg));
    }
    box.locked->cv.notify_one();
}

bool
Network::recv(NodeId node, Message &out)
{
    DSM_ASSERT(node >= 0 && node < nnodes(), "bad node %d", node);
    Inbox &box = *inboxes[node];

    if (policy == InboxPolicy::LockFreeRing) {
        if (!box.ring->pop(out))
            return false;
    } else {
        std::unique_lock<std::mutex> g(box.locked->mu);
        box.locked->cv.wait(g, [&] {
            return !box.locked->queue.empty() ||
                   down.load(std::memory_order_acquire);
        });
        if (box.locked->queue.empty())
            return false;
        out = std::move(box.locked->queue.front());
        box.locked->queue.pop_front();
    }

    // In-order-per-pair invariant, checked on every delivery. Ring
    // tickets are inbox-global (strictly increasing per pair); mutex
    // stamps are dense per pair. Both must be monotone.
    if (out.pairSeq != 0) {
        std::uint64_t &last = box.lastDelivered[out.src];
        DSM_ASSERT(out.pairSeq > last,
                   "out-of-order delivery %d->%d: pairSeq %llu after "
                   "%llu",
                   out.src, node,
                   static_cast<unsigned long long>(out.pairSeq),
                   static_cast<unsigned long long>(last));
        last = out.pairSeq;
    }
    return true;
}

RingPop
Network::recvStatus(NodeId node, Message &out)
{
    DSM_ASSERT(node >= 0 && node < nnodes(), "bad node %d", node);
    Inbox &box = *inboxes[node];
    if (policy != InboxPolicy::LockFreeRing)
        return recv(node, out) ? RingPop::Ok : RingPop::Closed;
    const RingPop status = box.ring->popWithStatus(out);
    if (status != RingPop::Ok)
        return status;
    if (out.pairSeq != 0) {
        std::uint64_t &last = box.lastDelivered[out.src];
        DSM_ASSERT(out.pairSeq > last,
                   "out-of-order delivery %d->%d: pairSeq %llu after "
                   "%llu",
                   out.src, node,
                   static_cast<unsigned long long>(out.pairSeq),
                   static_cast<unsigned long long>(last));
        last = out.pairSeq;
    }
    return RingPop::Ok;
}

RingPop
Network::recvTimed(NodeId node, Message &out, std::uint64_t timeout_ns)
{
    DSM_ASSERT(node >= 0 && node < nnodes(), "bad node %d", node);
    Inbox &box = *inboxes[node];
    if (policy != InboxPolicy::LockFreeRing) {
        std::unique_lock<std::mutex> g(box.locked->mu);
        const bool ready = box.locked->cv.wait_for(
            g, std::chrono::nanoseconds(timeout_ns), [&] {
                return !box.locked->queue.empty() ||
                       down.load(std::memory_order_acquire);
            });
        if (!ready)
            return RingPop::Timeout;
        if (box.locked->queue.empty())
            return RingPop::Closed;
        out = std::move(box.locked->queue.front());
        box.locked->queue.pop_front();
    } else {
        const RingPop status = box.ring->popTimed(out, timeout_ns);
        if (status != RingPop::Ok)
            return status;
    }
    if (out.pairSeq != 0) {
        std::uint64_t &last = box.lastDelivered[out.src];
        DSM_ASSERT(out.pairSeq > last,
                   "out-of-order delivery %d->%d: pairSeq %llu after "
                   "%llu",
                   out.src, node,
                   static_cast<unsigned long long>(out.pairSeq),
                   static_cast<unsigned long long>(last));
        last = out.pairSeq;
    }
    return RingPop::Ok;
}

void
Network::setReplyReceiver(NodeId node, ReplyReceiver *receiver)
{
    DSM_ASSERT(node >= 0 && node < nnodes(), "bad node %d", node);
    ReceiverSlot &slot = *replySlots[node];
    std::lock_guard<std::mutex> g(slot.mu);
    slot.receiver = receiver;
}

void
Network::noteDispatched(NodeId dst, NodeId src)
{
    pairOutstanding[pairIndex(src, dst)].fetch_sub(
        1, std::memory_order_release);
}

void
Network::setAdaptiveInboxSpin(bool on)
{
    for (auto &box : inboxes) {
        if (box->ring)
            box->ring->setAdaptiveSpin(on);
    }
}

void
Network::markNodeDown(NodeId node)
{
    DSM_ASSERT(node >= 0 && node < nnodes(), "bad node %d", node);
    if (inboxes[node]->ring)
        inboxes[node]->ring->setPeerDown(true);
}

void
Network::clearNodeDown(NodeId node)
{
    DSM_ASSERT(node >= 0 && node < nnodes(), "bad node %d", node);
    if (inboxes[node]->ring)
        inboxes[node]->ring->setPeerDown(false);
}

void
Network::shutdown()
{
    down.store(true, std::memory_order_release);
    for (auto &box : inboxes) {
        if (box->ring) {
            box->ring->shutdown();
        } else {
            std::lock_guard<std::mutex> g(box->locked->mu);
            box->locked->cv.notify_all();
        }
    }
}

std::uint64_t
Network::totalMessages() const
{
    return accepted.load();
}

LossPlan
dropEveryNth(std::uint64_t n)
{
    DSM_ASSERT(n > 0, "dropEveryNth(0)");
    return [n](NodeId, NodeId, std::uint64_t seq, int attempt) {
        return attempt == 0 && seq % n == 0;
    };
}

} // namespace dsm
