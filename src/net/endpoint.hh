/**
 * @file
 * Per-node communication endpoint. Plays the role of the Ultrix SIGIO
 * machinery in the original systems: a dedicated service thread drains
 * the node's inbox and dispatches requests to a handler, while the
 * application thread performs blocking RPCs (call) whose replies are
 * routed back by token.
 *
 * Handler discipline (deadlock freedom): handlers run on the service
 * thread, may send messages, but must never perform a blocking call().
 * The application thread must not hold runtime state locks across
 * call().
 */

#ifndef DSM_NET_ENDPOINT_HH
#define DSM_NET_ENDPOINT_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hh"
#include "time/thread_context.hh"
#include "time/virtual_clock.hh"

namespace dsm {

class FailureDetector;

class Endpoint : public ReplyReceiver
{
  public:
    using Handler = std::function<void(Message &)>;

    /** Per-source request-dedup window depth (faults-on only): a
     *  duplicate older than this many newer requests from the same
     *  peer re-executes its handler, so handlers of droppable
     *  requests must stay idempotent. Public for tests that pin the
     *  eviction contract. */
    static constexpr std::size_t kDedupWindow = 128;

    Endpoint(Transport &network, NodeId self, VirtualClock &clock,
             NodeStats &stats);
    ~Endpoint();

    Endpoint(const Endpoint &) = delete;
    Endpoint &operator=(const Endpoint &) = delete;

    /**
     * Point this endpoint at a different transport (same cluster
     * size). The process launcher uses it after fork: the child
     * inherits a node wired to the parent's in-process Network and
     * swaps in its own SocketTransport before starting the service
     * thread. Must not be running.
     */
    void rebindTransport(Transport &transport);

    /** Install the request handler. Must be set before start(). */
    void setHandler(Handler handler);

    /** Launch the service thread. */
    void start();

    /** Stop the service thread (idempotent). */
    void stop();

    /**
     * Fire-and-forget send. @p replyToken propagates a token from a
     * request being serviced so the final responder can route the
     * reply (e.g. manager forwarding a lock request to the owner).
     */
    void send(NodeId dst, MsgType type, std::vector<std::byte> payload,
              std::uint64_t reply_token = 0);

    /** Send a reply to a previously received request token. */
    void reply(NodeId dst, MsgType type, std::vector<std::byte> payload,
               std::uint64_t reply_token);

    /**
     * Blocking remote procedure call: sends a tokened request and
     * waits for the matching reply. The caller's virtual clock is
     * advanced to the reply's arrival time. Must only be invoked from
     * the application thread, never from a handler.
     */
    Message call(NodeId dst, MsgType type, std::vector<std::byte> payload);

    /**
     * Peer-aware variant: when a failure detector is armed and it
     * holds @p dst down at a wait timeout, the call abandons the wait
     * (sets *@p peer_down, returns an empty Invalid message) instead
     * of retrying forever — the typed PeerUnavailable outcome. The
     * caller owns the degradation policy (rehost, backoff + retry). A
     * late reply for the abandoned token is discarded by the faults-on
     * service loop like any duplicate. With no detector (or @p
     * peer_down == nullptr) this is exactly call().
     */
    Message call(NodeId dst, MsgType type, std::vector<std::byte> payload,
                 bool *peer_down);

    /**
     * Arm the fault-tolerant request path: call() keeps a copy of the
     * request payload and retransmits on a deadline (exponential
     * backoff, attempt-stamped so the injector eventually lets every
     * retry through), the service thread deduplicates retransmitted
     * requests per source (resending the recorded reply when the
     * original reply was dropped), and late duplicate replies are
     * discarded instead of panicking. Off (the default), none of the
     * copies, deadlines or maps exist — the hot path is unchanged.
     * Must be set before start().
     */
    void setFaultsEnabled(bool enabled);

    /**
     * Arm the failure detector: the service loop switches to timed
     * receives, stamping its own liveness (heartbeat) and every
     * delivering peer's (heard) and running the deadline scan (tick)
     * on each timeout, so a silent peer is declared down within
     * roughly 1.5x the detector deadline without any dedicated
     * prober thread. Requires faults enabled (the detector-aware
     * waits tolerate late/duplicate replies). Must be set before
     * start(). May be null to disarm.
     */
    void setFailureDetector(FailureDetector *fd);

    /**
     * Hook run on the service thread when a peer's recovery epoch
     * advances (orphaned-lock re-forwarding lives here). Runs outside
     * any endpoint lock; must not block. Must be set before start().
     */
    void setRecoveryCallback(std::function<void(NodeId)> cb);

    /**
     * Override the retransmit deadline schedule (first timeout and
     * exponential-backoff cap, wall-clock ns). Must be set before
     * start(); defaults reproduce the historical 2ms/500ms schedule.
     */
    void setRetransmitTimeouts(std::uint64_t first_ns,
                               std::uint64_t cap_ns);

    /**
     * Reply bypass (ReplyReceiver): a sender's thread offers a reply
     * for one of our parked callers directly, skipping our inbox and
     * service thread. Fills the caller's futex slot under pendingMu —
     * the same protocol the service thread uses — so the two delivery
     * paths cannot double-fill. False when no caller is parked on the
     * token (the reply then takes the inbox path) or the slot is
     * already filled (a retransmitted duplicate under faults: exactly
     * one delivery wins, the loser drains through the service
     * thread's duplicate handling).
     */
    bool tryDeliverReply(Message &msg) override;

    /**
     * Arm/disarm reply-bypass delivery for this node (default on:
     * DSM_REPLY_BYPASS resolves to 1). Must be set before start().
     */
    void setReplyBypass(bool on);

    /**
     * Arm send-side same-destination coalescing (DSM_COALESCE):
     * coalescable one-way messages (home diff flushes, home-migrate
     * installs) buffer per destination and ship as one CoalescedFrame,
     * flushed at every request boundary. Must be set before start().
     */
    void setCoalescing(bool on);

    /**
     * Arm the adaptive blocking-dequeue support (DSM_BLOCKING_DEQ):
     * every dispatched message bumps the endpoint's activity word so
     * app-level receive polls (Runtime::pollIdle) can park on it
     * instead of spinning. Must be set before start().
     */
    void setBlockingDequeue(bool on);

    bool blockingDequeueOn() const { return blockingDeqOn; }

    /** Current activity stamp (monotone once blocking dequeue is on). */
    std::uint32_t
    activityStamp() const
    {
        return activityWord.load(std::memory_order_acquire);
    }

    /**
     * Signal local progress (a message dispatched, a lock released):
     * wakes any pollIdle parker. No-op unless blocking dequeue is on.
     * Any thread.
     */
    void
    bumpActivity()
    {
        if (!blockingDeqOn)
            return;
        activityWord.fetch_add(1, std::memory_order_release);
        if (activityWaiters.load(std::memory_order_acquire) > 0)
            futexWakeAll(activityWord);
    }

    /**
     * Park until the activity word moves past @p seen or @p timeout_ns
     * elapses. The timeout is load-bearing: progress an idle poller
     * waits for can be produced entirely off-node (a remote enqueue
     * into shared memory), which bumps nothing here — the park must
     * always resume to re-poll.
     */
    void waitActivity(std::uint32_t seen, std::uint64_t timeout_ns);

    /**
     * Ship every buffered coalesced message now (all destinations).
     * Called at request boundaries: before any blocking call(), before
     * an idle park, at the end of each service-thread dispatch and at
     * stop(). A buffered message must never outlive its sender's next
     * blocking point. No-op when coalescing is off.
     */
    void flushCoalesced();

    NodeId self() const { return id; }

    int nnodes() const { return net->nnodes(); }

    const CostModel &costModel() const { return net->costModel(); }

    /**
     * The clock of the calling execution context: a worker thread's
     * ThreadContext clock when one is published (which aliases the
     * node clock at threadsPerNode == 1), the node clock otherwise
     * (service thread, tests driving a runtime directly).
     */
    VirtualClock &
    clock()
    {
        ThreadContext *ctx = ThreadContext::current();
        return ctx && ctx->clock ? *ctx->clock : vclock;
    }

    /** The node clock, regardless of calling context. */
    VirtualClock &nodeClock() { return vclock; }

    /** Counters of the calling execution context: a worker thread's
     *  private delta when one is published, the node stats otherwise.
     *  Cluster::run merges the deltas after the workers join. */
    NodeStats &
    stats()
    {
        ThreadContext *ctx = ThreadContext::current();
        return ctx ? ctx->stats : nodeStats;
    }

  private:
    /** One blocked call(): the service thread moves the reply in and
     *  flips ready; the caller futex-waits on it (no mutex/cv — the
     *  reply hand-off is the hottest wait in the system). */
    struct PendingReply
    {
        std::atomic<std::uint32_t> ready{0};
        /** Reply arrived via the sender-side bypass: the woken caller
         *  owes the receiver-side accounting the service thread would
         *  otherwise have done. */
        bool viaBypass = false;
        Message msg;
    };

    /**
     * Responder-side request dedup record (faults-on only): one per
     * recently seen droppable request, so a retransmitted request is
     * never dispatched twice (barrier arrivals are not idempotent) and
     * a dropped reply can be resent from the recorded copy.
     */
    struct DedupEntry
    {
        std::uint64_t token = 0;
        bool replied = false;
        MsgType replyType = MsgType::Invalid;
        std::vector<std::byte> replyPayload;
    };

    /** One buffered coalescable message awaiting its frame. */
    struct CoalescedEntry
    {
        MsgType type = MsgType::Invalid;
        std::uint64_t token = 0;
        std::vector<std::byte> payload;
    };

    void serviceLoop();

    /** Route one drained message (reply fill, dedup, handler). False
     *  = Shutdown: the service loop must exit. */
    bool dispatch(Message &msg);

    /** dispatch() body proper; the wrapper re-arms the bypass guard
     *  (Network::noteDispatched) and bumps activity afterwards on
     *  every path out of here. */
    void dispatchInner(Message &msg);

    /** Unpack a CoalescedFrame into its original handler calls. */
    void dispatchFrame(Message &msg);

    /** True for message types eligible for send-side coalescing. */
    static bool coalescable(MsgType type);

    /** Ship destination @p dst's buffered frame (if any). */
    void flushCoalescedTo(NodeId dst);

    /** Fire recoveryCb for peers whose recovery epoch advanced since
     *  we last looked (service thread only). */
    void runRecoveryHooks();

    /** Dedup check for an incoming droppable request; true = already
     *  seen (duplicate handled here, caller must skip dispatch). */
    bool dedupRequest(const Message &msg);

    /** Record the payload of a droppable reply for duplicate resend. */
    void recordReply(NodeId dst, MsgType type,
                     const std::vector<std::byte> &payload,
                     std::uint64_t token);

    Transport *net; ///< never null; rebindable pre-start (post-fork)
    NodeId id;
    VirtualClock &vclock;
    NodeStats &nodeStats;
    Handler handler;
    std::thread serviceThread;
    std::atomic<bool> running{false};

    std::mutex pendingMu;
    std::unordered_map<std::uint64_t, PendingReply *> pending;
    std::atomic<std::uint64_t> nextToken{1};

    /** Fault-tolerant request path armed (see setFaultsEnabled). */
    bool faultsOn = false;
    /** Reply-bypass delivery armed (see setReplyBypass). */
    bool bypassOn = true;
    /** Send-side coalescing armed (see setCoalescing). */
    bool coalesceOn = false;
    /** Blocking-dequeue activity signalling armed. */
    bool blockingDeqOn = false;

    /** Per-destination coalescing buffers; coalMu serializes the
     *  app threads and the service thread appending/flushing. */
    std::mutex coalMu;
    std::vector<std::vector<CoalescedEntry>> coalesceBufs;

    /** Progress epoch for app-level blocking dequeues: bumped on
     *  every dispatched message (and lock release), parked on by
     *  Runtime::pollIdle. */
    alignas(64) std::atomic<std::uint32_t> activityWord{0};
    std::atomic<std::uint32_t> activityWaiters{0};
    /** Per-source dedup windows, service-thread-only (replies for
     *  droppable requests are produced on the service thread). */
    std::vector<std::deque<DedupEntry>> dedup;
    /** First retransmit deadline; doubles per retry up to the cap.
     *  Wall-clock (the virtual clock never waits). Instance fields so
     *  DSM_FAULT_RTO_* / ClusterConfig can tune the schedule per run. */
    std::uint64_t retransmitFirstNs = 2'000'000;
    std::uint64_t retransmitCapNs = 500'000'000;

    /** Liveness tracking (see setFailureDetector); null = disarmed. */
    FailureDetector *detector = nullptr;
    /** Per-peer recovery epochs already acted upon (service thread
     *  only): recovery hooks fire when the detector's seq advances. */
    std::vector<std::uint64_t> seenRecoverySeq;
    std::function<void(NodeId)> recoveryCb;
};

} // namespace dsm

#endif // DSM_NET_ENDPOINT_HH
