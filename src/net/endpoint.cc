#include "net/endpoint.hh"

#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

Endpoint::Endpoint(Network &network, NodeId self, VirtualClock &clock,
                   NodeStats &stats)
    : net(network), id(self), vclock(clock), nodeStats(stats)
{}

Endpoint::~Endpoint()
{
    stop();
}

void
Endpoint::setHandler(Handler h)
{
    DSM_ASSERT(!running.load(), "handler installed while running");
    handler = std::move(h);
}

void
Endpoint::start()
{
    DSM_ASSERT(!running.load(), "endpoint already started");
    running.store(true);
    serviceThread = std::thread([this] { serviceLoop(); });
}

void
Endpoint::stop()
{
    if (!running.exchange(false))
        return;
    // Wake our own service thread with a shutdown message.
    Message msg;
    msg.src = id;
    msg.dst = id;
    msg.type = MsgType::Shutdown;
    msg.vtSendNs = vclock.now();
    NodeStats scratch; // teardown traffic is not part of the run
    net.send(std::move(msg), scratch);
    if (serviceThread.joinable())
        serviceThread.join();
}

void
Endpoint::send(NodeId dst, MsgType type, std::vector<std::byte> payload,
               std::uint64_t reply_token)
{
    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.replyToken = reply_token;
    msg.vtSendNs = vclock.now();
    msg.payload = std::move(payload);
    net.send(std::move(msg), nodeStats);
}

void
Endpoint::reply(NodeId dst, MsgType type, std::vector<std::byte> payload,
                std::uint64_t reply_token)
{
    DSM_ASSERT(reply_token != 0, "reply without token");
    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.isReply = true;
    msg.replyToken = reply_token;
    msg.vtSendNs = vclock.now();
    msg.payload = std::move(payload);
    net.send(std::move(msg), nodeStats);
}

Message
Endpoint::call(NodeId dst, MsgType type, std::vector<std::byte> payload)
{
    const std::uint64_t token = nextToken.fetch_add(1);
    PendingReply slot;
    {
        std::lock_guard<std::mutex> g(pendingMu);
        pending.emplace(token, &slot);
    }

    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.replyToken = token;
    msg.vtSendNs = vclock.now();
    msg.payload = std::move(payload);
    net.send(std::move(msg), nodeStats);

    Message out;
    {
        std::unique_lock<std::mutex> g(slot.mu);
        slot.cv.wait(g, [&] { return slot.ready; });
        out = std::move(slot.msg);
    }
    {
        std::lock_guard<std::mutex> g(pendingMu);
        pending.erase(token);
    }
    // Causality: we cannot proceed before the reply arrived.
    vclock.advanceTo(out.vtArriveNs);
    return out;
}

void
Endpoint::serviceLoop()
{
    Message msg;
    while (net.recv(id, msg)) {
        if (msg.type == MsgType::Shutdown)
            break;

        // The handler runs "on this node's CPU": account arrival.
        vclock.advanceTo(msg.vtArriveNs);
        nodeStats.messagesReceived++;
        nodeStats.bytesReceived += msg.wireSize();

        if (msg.isReply) {
            PendingReply *slot = nullptr;
            {
                std::lock_guard<std::mutex> g(pendingMu);
                auto it = pending.find(msg.replyToken);
                if (it != pending.end())
                    slot = it->second;
            }
            if (!slot) {
                panic("reply token %llu has no waiter on node %d",
                      static_cast<unsigned long long>(msg.replyToken), id);
            }
            {
                std::lock_guard<std::mutex> g(slot->mu);
                slot->msg = std::move(msg);
                slot->ready = true;
            }
            slot->cv.notify_one();
            continue;
        }

        DSM_ASSERT(handler != nullptr, "message with no handler");
        handler(msg);
        // The request payload is dead once handled; recycle it.
        BufferPool::instance().release(std::move(msg.payload));
    }
}

} // namespace dsm
