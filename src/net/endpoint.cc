#include "net/endpoint.hh"

#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

Endpoint::Endpoint(Network &network, NodeId self, VirtualClock &clock,
                   NodeStats &stats)
    : net(network), id(self), vclock(clock), nodeStats(stats)
{}

Endpoint::~Endpoint()
{
    stop();
}

void
Endpoint::setHandler(Handler h)
{
    DSM_ASSERT(!running.load(), "handler installed while running");
    handler = std::move(h);
}

void
Endpoint::start()
{
    DSM_ASSERT(!running.load(), "endpoint already started");
    running.store(true);
    serviceThread = std::thread([this] { serviceLoop(); });
}

void
Endpoint::stop()
{
    if (!running.exchange(false))
        return;
    // Wake our own service thread with a shutdown message.
    Message msg;
    msg.src = id;
    msg.dst = id;
    msg.type = MsgType::Shutdown;
    msg.vtSendNs = vclock.now();
    NodeStats scratch; // teardown traffic is not part of the run
    net.send(std::move(msg), scratch);
    if (serviceThread.joinable())
        serviceThread.join();
}

void
Endpoint::send(NodeId dst, MsgType type, std::vector<std::byte> payload,
               std::uint64_t reply_token)
{
    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.replyToken = reply_token;
    msg.vtSendNs = clock().now();
    msg.payload = std::move(payload);
    net.send(std::move(msg), stats());
}

void
Endpoint::reply(NodeId dst, MsgType type, std::vector<std::byte> payload,
                std::uint64_t reply_token)
{
    DSM_ASSERT(reply_token != 0, "reply without token");
    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.isReply = true;
    msg.replyToken = reply_token;
    msg.vtSendNs = clock().now();
    msg.payload = std::move(payload);
    net.send(std::move(msg), stats());
}

Message
Endpoint::call(NodeId dst, MsgType type, std::vector<std::byte> payload)
{
    const std::uint64_t token = nextToken.fetch_add(1);
    PendingReply slot;
    {
        std::lock_guard<std::mutex> g(pendingMu);
        pending.emplace(token, &slot);
    }

    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.replyToken = token;
    msg.vtSendNs = clock().now();
    msg.payload = std::move(payload);
    net.send(std::move(msg), stats());

    while (slot.ready.load(std::memory_order_acquire) == 0)
        slot.ready.wait(0, std::memory_order_acquire);
    Message out = std::move(slot.msg);
    {
        std::lock_guard<std::mutex> g(pendingMu);
        pending.erase(token);
    }
    // Causality: we cannot proceed before the reply arrived.
    clock().advanceTo(out.vtArriveNs);
    return out;
}

void
Endpoint::serviceLoop()
{
    Message msg;
    while (net.recv(id, msg)) {
        if (msg.type == MsgType::Shutdown)
            break;

        // The handler runs "on this node's CPU": account arrival.
        vclock.advanceTo(msg.vtArriveNs);
        nodeStats.messagesReceived++;
        nodeStats.bytesReceived += msg.wireSize();

        if (msg.isReply) {
            // Fill + notify under pendingMu: the caller must reacquire
            // it to erase the token before its stack slot dies, so the
            // notify always lands on a live PendingReply even when the
            // waiter observes the ready store without ever sleeping.
            std::lock_guard<std::mutex> g(pendingMu);
            auto it = pending.find(msg.replyToken);
            if (it == pending.end()) {
                panic("reply token %llu has no waiter on node %d",
                      static_cast<unsigned long long>(msg.replyToken), id);
            }
            PendingReply *slot = it->second;
            slot->msg = std::move(msg);
            slot->ready.store(1, std::memory_order_release);
            slot->ready.notify_one();
            continue;
        }

        DSM_ASSERT(handler != nullptr, "message with no handler");
        handler(msg);
        // The request payload is dead once handled; recycle it.
        BufferPool::instance().release(std::move(msg.payload));
    }
}

} // namespace dsm
