#include "net/endpoint.hh"

#include <algorithm>

#include "net/failure_detector.hh"
#include "net/serde.hh"
#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

Endpoint::Endpoint(Transport &network, NodeId self, VirtualClock &clock,
                   NodeStats &stats)
    : net(&network), id(self), vclock(clock), nodeStats(stats)
{}

void
Endpoint::rebindTransport(Transport &transport)
{
    DSM_ASSERT(!running.load(), "transport rebound while running");
    DSM_ASSERT(transport.nnodes() == net->nnodes(),
               "transport rebind changed cluster size %d -> %d",
               net->nnodes(), transport.nnodes());
    net = &transport;
}

Endpoint::~Endpoint()
{
    stop();
}

void
Endpoint::setHandler(Handler h)
{
    DSM_ASSERT(!running.load(), "handler installed while running");
    handler = std::move(h);
}

void
Endpoint::setFaultsEnabled(bool enabled)
{
    DSM_ASSERT(!running.load(), "fault mode flipped while running");
    faultsOn = enabled;
    if (enabled && dedup.empty())
        dedup.resize(static_cast<std::size_t>(net->nnodes()));
}

void
Endpoint::setReplyBypass(bool on)
{
    DSM_ASSERT(!running.load(), "bypass flipped while running");
    bypassOn = on;
}

void
Endpoint::setCoalescing(bool on)
{
    DSM_ASSERT(!running.load(), "coalescing flipped while running");
    coalesceOn = on;
    if (on && coalesceBufs.empty())
        coalesceBufs.resize(static_cast<std::size_t>(net->nnodes()));
}

void
Endpoint::setBlockingDequeue(bool on)
{
    DSM_ASSERT(!running.load(), "blocking dequeue flipped while running");
    blockingDeqOn = on;
}

void
Endpoint::setFailureDetector(FailureDetector *fd)
{
    DSM_ASSERT(!running.load(), "detector armed while running");
    DSM_ASSERT(fd == nullptr || faultsOn,
               "failure detector requires the fault-tolerant path");
    detector = fd;
}

void
Endpoint::setRecoveryCallback(std::function<void(NodeId)> cb)
{
    DSM_ASSERT(!running.load(), "recovery hook installed while running");
    recoveryCb = std::move(cb);
}

void
Endpoint::setRetransmitTimeouts(std::uint64_t first_ns,
                                std::uint64_t cap_ns)
{
    DSM_ASSERT(!running.load(), "RTO changed while running");
    DSM_ASSERT(first_ns > 0 && cap_ns >= first_ns,
               "bad retransmit schedule %llu/%llu",
               static_cast<unsigned long long>(first_ns),
               static_cast<unsigned long long>(cap_ns));
    retransmitFirstNs = first_ns;
    retransmitCapNs = cap_ns;
}

void
Endpoint::start()
{
    DSM_ASSERT(!running.load(), "endpoint already started");
    running.store(true);
    if (detector != nullptr && seenRecoverySeq.empty()) {
        seenRecoverySeq.resize(static_cast<std::size_t>(net->nnodes()));
        for (NodeId n = 0; n < net->nnodes(); ++n)
            seenRecoverySeq[n] = detector->recoverySeqOf(n);
    }
    // Reply bypass engages with or without faults: the slot-occupancy
    // check in tryDeliverReply plus the per-pair ordering guard in
    // Network::send make a retransmitted duplicate reply lose the
    // race exactly once — the winner fills the slot, the loser drains
    // through the service thread's duplicate handling (see the
    // BypassedDuplicateReply regression test).
    if (bypassOn)
        net->setReplyReceiver(id, this);
    serviceThread = std::thread([this] { serviceLoop(); });
}

void
Endpoint::stop()
{
    if (!running.exchange(false))
        return;
    // A buffered coalesced message must not die with the endpoint.
    flushCoalesced();
    // Deregister first: setReplyReceiver synchronizes with in-flight
    // senders, so after this no peer thread can reach into our
    // pending map — replies sent while we are stopped (a checkpoint
    // quiesce) park in the inbox like any other message.
    net->setReplyReceiver(id, nullptr);
    // Wake our own service thread with a shutdown message.
    Message msg;
    msg.src = id;
    msg.dst = id;
    msg.type = MsgType::Shutdown;
    msg.vtSendNs = vclock.now();
    NodeStats scratch; // teardown traffic is not part of the run
    net->send(std::move(msg), scratch);
    if (serviceThread.joinable())
        serviceThread.join();
}

void
Endpoint::send(NodeId dst, MsgType type, std::vector<std::byte> payload,
               std::uint64_t reply_token)
{
    if (coalesceOn && reply_token == 0 && coalescable(type) &&
        dst != id) {
        std::lock_guard<std::mutex> g(coalMu);
        coalesceBufs[dst].push_back({type, 0, std::move(payload)});
        return;
    }
    // A direct send must queue behind anything already buffered for
    // this destination, or the receiver would observe it reordered.
    flushCoalescedTo(dst);
    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.replyToken = reply_token;
    msg.vtSendNs = clock().now();
    msg.payload = std::move(payload);
    net->send(std::move(msg), stats());
}

void
Endpoint::reply(NodeId dst, MsgType type, std::vector<std::byte> payload,
                std::uint64_t reply_token)
{
    DSM_ASSERT(reply_token != 0, "reply without token");
    // A reply can be bypassed straight into the caller's slot; a
    // buffered frame for the same destination must go on the wire
    // first or the reply would overtake it.
    flushCoalescedTo(dst);
    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.isReply = true;
    msg.replyToken = reply_token;
    msg.vtSendNs = clock().now();
    msg.payload = std::move(payload);
    if (faultsOn)
        recordReply(dst, type, msg.payload, reply_token);
    net->send(std::move(msg), stats());
}

bool
Endpoint::coalescable(MsgType type)
{
    // One-way, token-free traffic whose receivers tolerate any
    // arrival order relative to each other (the home's word-sum
    // guard): eager/deferred diff flushes and migrate installs.
    // Request/reply RPCs and chain-routed lock traffic never
    // coalesce — their latency is the round trip itself.
    return type == MsgType::HomeDiffFlush ||
           type == MsgType::HomeMigrate;
}

void
Endpoint::flushCoalescedTo(NodeId dst)
{
    if (!coalesceOn)
        return;
    std::lock_guard<std::mutex> g(coalMu);
    auto &buf = coalesceBufs[dst];
    if (buf.empty())
        return;
    // The frame is sent under coalMu so concurrent flushers cannot
    // interleave two frames for one destination out of buffer order;
    // the push may block on a full ring, but the consumer that drains
    // it never takes this endpoint's coalMu — no cycle.
    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.vtSendNs = clock().now();
    if (buf.size() == 1) {
        // A lone message gains nothing from framing; ship it as-is.
        msg.type = buf.front().type;
        msg.payload = std::move(buf.front().payload);
    } else {
        WireWriter w;
        w.putU32(static_cast<std::uint32_t>(buf.size()));
        for (CoalescedEntry &e : buf) {
            w.putU8(static_cast<std::uint8_t>(e.type));
            w.putU64(e.token);
            w.putBlob(e.payload);
            BufferPool::instance().release(std::move(e.payload));
        }
        msg.type = MsgType::CoalescedFrame;
        msg.payload = w.take();
        stats().coalesceFramesSent++;
        stats().messagesCoalesced += buf.size();
    }
    buf.clear();
    net->send(std::move(msg), stats());
}

void
Endpoint::flushCoalesced()
{
    if (!coalesceOn)
        return;
    for (NodeId dst = 0; dst < net->nnodes(); ++dst)
        flushCoalescedTo(dst);
}

void
Endpoint::waitActivity(std::uint32_t seen, std::uint64_t timeout_ns)
{
    activityWaiters.fetch_add(1, std::memory_order_seq_cst);
    // Re-check after advertising (Dekker): a bump between our stamp
    // read and the waiter registration must not be slept through.
    if (activityWord.load(std::memory_order_seq_cst) == seen)
        futexWaitTimed(activityWord, seen, timeout_ns);
    activityWaiters.fetch_sub(1, std::memory_order_relaxed);
}

bool
Endpoint::tryDeliverReply(Message &msg)
{
    std::lock_guard<std::mutex> g(pendingMu);
    auto it = pending.find(msg.replyToken);
    if (it == pending.end())
        return false; // no parked caller (e.g. quiesced): inbox path
    PendingReply *slot = it->second;
    if (slot->ready.load(std::memory_order_relaxed) != 0)
        return false; // already filled; cannot happen without faults
    slot->msg = std::move(msg);
    slot->viaBypass = true;
    slot->ready.store(1, std::memory_order_release);
    slot->ready.notify_one();
    return true;
}

Message
Endpoint::call(NodeId dst, MsgType type, std::vector<std::byte> payload)
{
    return call(dst, type, std::move(payload), nullptr);
}

Message
Endpoint::call(NodeId dst, MsgType type, std::vector<std::byte> payload,
               bool *peer_down)
{
    if (peer_down != nullptr)
        *peer_down = false;
    // Request boundary: everything buffered must be on the wire
    // before we block — a parked frame would stall its receivers for
    // the whole round trip (and deadlock if the responder needs it).
    flushCoalesced();
    const std::uint64_t token = nextToken.fetch_add(1);
    PendingReply slot;
    {
        std::lock_guard<std::mutex> g(pendingMu);
        pending.emplace(token, &slot);
    }

    // Fault-tolerant round trips keep a payload copy for retransmits.
    const bool retransmittable =
        faultsOn && FaultInjector::droppable(type);
    std::vector<std::byte> retransmit_copy;
    if (retransmittable)
        retransmit_copy = payload;

    Message msg;
    msg.src = id;
    msg.dst = dst;
    msg.type = type;
    msg.replyToken = token;
    msg.vtSendNs = clock().now();
    msg.payload = std::move(payload);
    net->send(std::move(msg), stats());

    // Abandon the wait (typed PeerUnavailable outcome): unpark the
    // token under pendingMu so neither delivery path can fill a dead
    // stack slot. Both fills flip ready while holding pendingMu, so a
    // still-zero ready under the lock means no fill can race the
    // erase; a nonzero one means the reply landed after all — the
    // caller takes it instead of abandoning.
    auto tryAbandon = [&]() -> bool {
        std::lock_guard<std::mutex> g(pendingMu);
        if (slot.ready.load(std::memory_order_acquire) != 0)
            return false;
        pending.erase(token);
        return true;
    };

    if (!retransmittable) {
        if (detector == nullptr) {
            while (slot.ready.load(std::memory_order_acquire) == 0)
                slot.ready.wait(0, std::memory_order_acquire);
        } else {
            // Non-droppable traffic is never lost — during an outage
            // it parks in the down peer's inbox and is replayed after
            // the restore — so the wait only needs to surface the
            // degradation (counted retries, optional abandonment)
            // rather than silently hanging for the outage's duration.
            const std::uint64_t tick_ns =
                std::max(detector->deadlineNs(), retransmitFirstNs);
            while (slot.ready.load(std::memory_order_acquire) == 0) {
                if (futexWaitTimed(slot.ready, 0, tick_ns))
                    continue; // woken (or spurious): re-check ready
                if (detector->anyDown())
                    stats().peerUnavailableRetries++;
                if (peer_down != nullptr && detector->isDown(dst) &&
                    tryAbandon()) {
                    *peer_down = true;
                    return Message{};
                }
            }
        }
    } else {
        // Deadline + bounded exponential backoff: if the reply does
        // not land in time, resend the request with a bumped attempt
        // stamp. The injector never drops attempts past the immunity
        // threshold and the responder dedups (resending its recorded
        // reply at an immune attempt), so the loop terminates — a slow
        // responder (a barrier manager waiting for stragglers) just
        // sees periodic duplicates it ignores.
        std::uint64_t deadline_ns = retransmitFirstNs;
        std::uint32_t attempts = 0;
        while (slot.ready.load(std::memory_order_acquire) == 0) {
            if (futexWaitTimed(slot.ready, 0, deadline_ns))
                continue; // woken (or spurious): re-check ready
            if (detector != nullptr && detector->anyDown()) {
                stats().peerUnavailableRetries++;
                if (peer_down != nullptr && detector->isDown(dst) &&
                    tryAbandon()) {
                    *peer_down = true;
                    return Message{};
                }
                if (detector->isDown(dst)) {
                    // Resending into a down inbox is a retransmit
                    // storm with no listener; hold fire at the backoff
                    // cap until the detector revives the peer.
                    deadline_ns = retransmitCapNs;
                    continue;
                }
            }
            ++attempts;
            DSM_ASSERT(attempts < 10000,
                       "retransmit storm on node %d: %s -> %d never "
                       "answered",
                       id, toString(type), dst);
            Message retry;
            retry.src = id;
            retry.dst = dst;
            retry.type = type;
            retry.replyToken = token;
            retry.vtSendNs = clock().now();
            retry.attempt = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(attempts, 255));
            retry.payload = retransmit_copy;
            stats().msgRetransmits++;
            net->send(std::move(retry), stats());
            deadline_ns = std::min(deadline_ns * 2, retransmitCapNs);
        }
    }
    Message out = std::move(slot.msg);
    {
        std::lock_guard<std::mutex> g(pendingMu);
        pending.erase(token);
    }
    if (slot.viaBypass) {
        // The reply never crossed the service thread: the receiver-
        // side wire accounting it would have done lands here instead,
        // in this caller's context (its private delta on SMP nodes —
        // the single-writer stats discipline holds). The node clock
        // is deliberately not advanced: only this caller's execution
        // depends on the reply's arrival time.
        stats().messagesReceived++;
        stats().bytesReceived += out.wireSize();
        // So does the liveness stamp the service thread would have
        // taken from the delivery (heard() is CAS-guarded and
        // thread-safe; the stats argument is this caller's private
        // delta, so the single-writer discipline still holds).
        if (detector != nullptr && out.src != id)
            detector->heard(out.src, stats());
    }
    // Causality: we cannot proceed before the reply arrived.
    clock().advanceTo(out.vtArriveNs);
    return out;
}

void
Endpoint::serviceLoop()
{
    Message msg;
    if (detector == nullptr) {
        while (net->recv(id, msg)) {
            if (!dispatch(msg))
                break;
        }
        return;
    }

    // Detector armed: timed receives double as the liveness prober.
    // Every drained message stamps the sender's liveness; every idle
    // tick stamps our own and runs the deadline scan, so a peer that
    // goes silent is declared down within ~1.5x the deadline without
    // a dedicated prober thread. Recovery hooks (orphaned-lock
    // re-forwarding) drain here too — always on the service thread.
    const std::uint64_t tick_ns =
        std::max<std::uint64_t>(detector->deadlineNs() / 2, 100'000);
    for (;;) {
        const RingPop st = net->recvTimed(id, msg, tick_ns);
        if (st == RingPop::Closed)
            break;
        detector->heartbeat(id);
        if (st == RingPop::Timeout) {
            detector->tick(id, nodeStats);
            runRecoveryHooks();
            continue;
        }
        if (msg.src != id) // self-sends are not peer liveness evidence
            detector->heard(msg.src, nodeStats);
        runRecoveryHooks();
        if (!dispatch(msg))
            break;
    }
}

bool
Endpoint::dispatch(Message &msg)
{
    if (msg.type == MsgType::Shutdown)
        return false;

    const NodeId src = msg.src;
    dispatchInner(msg);
    // Handlers may have buffered coalescable sends; the service
    // thread is about to go back to recv (possibly to park), so they
    // go on the wire now — the frame is the request-boundary batch.
    flushCoalesced();
    // Every earlier send from src is now fully applied: re-arm the
    // reply-bypass ordering guard for the pair (release-decrement
    // pairs with the guard's acquire load in Network::send).
    net->noteDispatched(id, src);
    // App-level blocking dequeues poll shared state this dispatch may
    // have advanced.
    bumpActivity();
    return true;
}

void
Endpoint::dispatchInner(Message &msg)
{
    // The handler runs "on this node's CPU": account arrival.
    vclock.advanceTo(msg.vtArriveNs);
    nodeStats.messagesReceived++;
    nodeStats.bytesReceived += msg.wireSize();

    if (msg.type == MsgType::CoalescedFrame) {
        dispatchFrame(msg);
        return;
    }

    if (msg.isReply) {
        // Fill + notify under pendingMu: the caller must reacquire
        // it to erase the token before its stack slot dies, so the
        // notify always lands on a live PendingReply even when the
        // waiter observes the ready store without ever sleeping.
        std::lock_guard<std::mutex> g(pendingMu);
        auto it = pending.find(msg.replyToken);
        if (it == pending.end()) {
            if (faultsOn)
                return; // duplicate of an already-taken (or
                        // abandoned) reply
            panic("reply token %llu has no waiter on node %d",
                  static_cast<unsigned long long>(msg.replyToken), id);
        }
        PendingReply *slot = it->second;
        if (slot->ready.load(std::memory_order_relaxed) != 0)
            return; // duplicate raced the caller's erase (one copy
                    // may have arrived via the bypass slot)
        slot->msg = std::move(msg);
        slot->ready.store(1, std::memory_order_release);
        slot->ready.notify_one();
        return;
    }

    if (faultsOn && dedupRequest(msg))
        return; // retransmitted duplicate, never re-dispatched

    DSM_ASSERT(handler != nullptr, "message with no handler");
    handler(msg);
    // The request payload is dead once handled; recycle it.
    BufferPool::instance().release(std::move(msg.payload));
}

void
Endpoint::dispatchFrame(Message &msg)
{
    WireReader r(msg.payload);
    const std::uint32_t count = r.getU32();
    DSM_ASSERT(count >= 2, "degenerate coalesced frame of %u", count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Message sub;
        sub.src = msg.src;
        sub.dst = id;
        sub.type = static_cast<MsgType>(r.getU8());
        sub.replyToken = r.getU64();
        // Arrival/send stamps inherit the frame's: the batch crossed
        // the wire as one message and its parts become visible
        // together. pairSeq stays 0 — sub-messages never pass recv(),
        // so the per-pair assert never sees them.
        sub.vtSendNs = msg.vtSendNs;
        sub.vtArriveNs = msg.vtArriveNs;
        sub.payload = r.getBlob();
        DSM_ASSERT(coalescable(sub.type) && !sub.isReply,
                   "non-coalescable %s inside a frame",
                   toString(sub.type));
        DSM_ASSERT(handler != nullptr, "message with no handler");
        handler(sub);
        BufferPool::instance().release(std::move(sub.payload));
    }
    BufferPool::instance().release(std::move(msg.payload));
}

void
Endpoint::runRecoveryHooks()
{
    for (NodeId n = 0; n < static_cast<NodeId>(seenRecoverySeq.size());
         ++n) {
        const std::uint64_t seq = detector->recoverySeqOf(n);
        if (seq == seenRecoverySeq[n])
            continue;
        seenRecoverySeq[n] = seq;
        if (recoveryCb)
            recoveryCb(n);
    }
}

bool
Endpoint::dedupRequest(const Message &msg)
{
    if (msg.replyToken == 0 || !FaultInjector::droppable(msg.type))
        return false;
    auto &window = dedup[msg.src];
    for (const DedupEntry &e : window) {
        if (e.token != msg.replyToken)
            continue;
        if (e.replied) {
            // The original reply was dropped (or is in flight and the
            // duplicate raced it): resend the recorded copy at an
            // immune attempt so this retry cycle terminates.
            Message re;
            re.src = id;
            re.dst = msg.src;
            re.type = e.replyType;
            re.isReply = true;
            re.replyToken = e.token;
            re.vtSendNs = vclock.now();
            re.attempt = FaultInjector::kAttemptImmunity;
            re.payload = e.replyPayload;
            net->send(std::move(re), nodeStats);
        }
        // Not replied yet (parked at a barrier manager or lock queue,
        // or mid-handler): the pending original will answer; drop the
        // duplicate.
        return true;
    }
    window.push_back({msg.replyToken, false, MsgType::Invalid, {}});
    if (window.size() > kDedupWindow)
        window.pop_front();
    return false;
}

void
Endpoint::recordReply(NodeId dst, MsgType type,
                      const std::vector<std::byte> &payload,
                      std::uint64_t token)
{
    if (token == 0 || !FaultInjector::droppable(type))
        return;
    for (DedupEntry &e : dedup[dst]) {
        if (e.token != token)
            continue;
        e.replied = true;
        e.replyType = type;
        e.replyPayload = payload;
        return;
    }
    // No window entry: the request predates fault arming or was
    // evicted; nothing to record (a retransmit would re-enter it).
}

} // namespace dsm
