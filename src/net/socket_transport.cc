#include "net/socket_transport.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "net/frame.hh"
#include "util/logging.hh"

namespace dsm {

namespace {

/** A full read() wrapper tolerating EINTR; 0 = EOF, -1 = error. */
ssize_t
readSome(int fd, std::byte *buf, std::size_t cap)
{
    for (;;) {
        const ssize_t n = ::read(fd, buf, cap);
        if (n >= 0)
            return n;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

} // namespace

SocketTransport::SocketTransport(NodeId self, int nnodes,
                                 const CostModel &cost_model,
                                 SocketKind kind, std::string dir_,
                                 LossPlan loss_plan,
                                 std::size_t ring_capacity)
    : cm(cost_model), loss(std::move(loss_plan)), id(self),
      numNodes(nnodes), sockKind(kind), dir(std::move(dir_))
{
    DSM_ASSERT(nnodes > 0, "transport needs at least one node");
    DSM_ASSERT(self >= 0 && self < nnodes, "bad self id %d", self);
    inbox = std::make_unique<MpscRing>(ring_capacity);
    lastDelivered.assign(nnodes, 0);
    srcOutstanding = std::vector<std::atomic<std::uint32_t>>(nnodes);
    out.reserve(nnodes);
    for (int i = 0; i < nnodes; ++i)
        out.push_back(std::make_unique<OutStream>());
    goodbyeRound.assign(nnodes, 0);
    goodbyeRound[id] = 2; // self never needs a wire goodbye

    // Writes to a peer that exited early must surface as an errno,
    // not a process-killing SIGPIPE (MSG_NOSIGNAL covers send(); this
    // covers any stray write path).
    ::signal(SIGPIPE, SIG_IGN);

    if (sockKind == SocketKind::Unix) {
        listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        DSM_ASSERT(listenFd >= 0, "socket(AF_UNIX): %s",
                   std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        const std::string path = listenPath();
        DSM_ASSERT(path.size() < sizeof(addr.sun_path),
                   "rendezvous path too long: %s", path.c_str());
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(path.c_str());
        DSM_ASSERT(::bind(listenFd,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) == 0,
                   "bind(%s): %s", path.c_str(), std::strerror(errno));
    } else {
        listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        DSM_ASSERT(listenFd >= 0, "socket(AF_INET): %s",
                   std::strerror(errno));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0; // ephemeral
        DSM_ASSERT(::bind(listenFd,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) == 0,
                   "bind(loopback): %s", std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        DSM_ASSERT(::getsockname(listenFd,
                                 reinterpret_cast<sockaddr *>(&bound),
                                 &len) == 0,
                   "getsockname: %s", std::strerror(errno));
        listenPort = ntohs(bound.sin_port);
        // Publish the port atomically: peers polling the directory
        // must never read a half-written file.
        const std::string tmp =
            dir + "/node-" + std::to_string(id) + ".port.tmp";
        const std::string final_path =
            dir + "/node-" + std::to_string(id) + ".port";
        FILE *f = std::fopen(tmp.c_str(), "w");
        DSM_ASSERT(f != nullptr, "fopen(%s): %s", tmp.c_str(),
                   std::strerror(errno));
        std::fprintf(f, "%u\n", static_cast<unsigned>(listenPort));
        std::fclose(f);
        DSM_ASSERT(std::rename(tmp.c_str(), final_path.c_str()) == 0,
                   "rename(%s): %s", final_path.c_str(),
                   std::strerror(errno));
    }
    DSM_ASSERT(::listen(listenFd, numNodes + 8) == 0, "listen: %s",
               std::strerror(errno));
    if (numNodes > 1)
        acceptThread = std::thread([this] { acceptLoop(); });
}

SocketTransport::~SocketTransport()
{
    closing.store(true, std::memory_order_release);
    if (listenFd >= 0) {
        // Unblocks a still-accepting accept thread.
        ::shutdown(listenFd, SHUT_RDWR);
        ::close(listenFd);
        listenFd = -1;
    }
    for (auto &o : out) {
        std::lock_guard<std::mutex> g(o->mu);
        if (o->fd >= 0) {
            ::shutdown(o->fd, SHUT_RDWR);
            ::close(o->fd);
            o->fd = -1;
        }
    }
    {
        std::lock_guard<std::mutex> g(readersMu);
        for (int fd : readerFds)
            ::shutdown(fd, SHUT_RD); // wakes blocked readers with EOF
    }
    if (acceptThread.joinable())
        acceptThread.join();
    for (auto &t : readers) {
        if (t.joinable())
            t.join();
    }
    // Close after the joins: a reader owns its fd while running, and
    // closing early could recycle the descriptor under it.
    for (int fd : readerFds)
        ::close(fd);
    if (sockKind == SocketKind::Unix)
        ::unlink(listenPath().c_str());
    else
        ::unlink((dir + "/node-" + std::to_string(id) + ".port").c_str());
}

std::string
SocketTransport::listenPath() const
{
    return dir + "/node-" + std::to_string(id) + ".sock";
}

void
SocketTransport::connectPeers(int timeout_ms)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);

    for (NodeId peer = 0; peer < numNodes; ++peer) {
        if (peer == id)
            continue;
        int fd = -1;
        for (;;) {
            DSM_ASSERT(Clock::now() < deadline,
                       "node %d: rendezvous with node %d timed out",
                       id, peer);
            if (sockKind == SocketKind::Unix) {
                fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
                DSM_ASSERT(fd >= 0, "socket: %s", std::strerror(errno));
                sockaddr_un addr{};
                addr.sun_family = AF_UNIX;
                const std::string path =
                    dir + "/node-" + std::to_string(peer) + ".sock";
                std::strncpy(addr.sun_path, path.c_str(),
                             sizeof(addr.sun_path) - 1);
                if (::connect(fd,
                              reinterpret_cast<const sockaddr *>(&addr),
                              sizeof(addr)) == 0)
                    break;
            } else {
                // Poll for the peer's published port, then dial it.
                const std::string path =
                    dir + "/node-" + std::to_string(peer) + ".port";
                unsigned port = 0;
                if (FILE *f = std::fopen(path.c_str(), "r")) {
                    if (std::fscanf(f, "%u", &port) != 1)
                        port = 0;
                    std::fclose(f);
                }
                if (port != 0) {
                    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC,
                                  0);
                    DSM_ASSERT(fd >= 0, "socket: %s",
                               std::strerror(errno));
                    sockaddr_in addr{};
                    addr.sin_family = AF_INET;
                    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
                    addr.sin_port =
                        htons(static_cast<std::uint16_t>(port));
                    if (::connect(
                            fd,
                            reinterpret_cast<const sockaddr *>(&addr),
                            sizeof(addr)) == 0) {
                        const int one = 1;
                        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY,
                                     &one, sizeof(one));
                        break;
                    }
                } else {
                    fd = -1;
                }
            }
            if (fd >= 0)
                ::close(fd);
            // Peer not bound yet (or its backlog raced us): back off
            // briefly and retry — start order is unconstrained.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        out[peer]->fd = fd;
        writeTo(peer, encodeHelloFrame(id, numNodes));
    }

    // Rendezvous barrier: every peer must have dialed us too, or the
    // first inbound request would race the reader that delivers it.
    std::unique_lock<std::mutex> g(goodbyeMu);
    const bool ok = goodbyeCv.wait_until(g, deadline, [&] {
        return hellosSeen == numNodes - 1;
    });
    DSM_ASSERT(ok, "node %d: only %d/%d peers dialed in", id,
               hellosSeen, numNodes - 1);
}

void
SocketTransport::acceptLoop()
{
    int spawned = 0;
    while (spawned < numNodes - 1 &&
           !closing.load(std::memory_order_acquire)) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed at teardown
        }
        if (sockKind == SocketKind::Tcp) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
        }
        std::lock_guard<std::mutex> g(readersMu);
        readerFds.push_back(fd);
        readers.emplace_back([this, fd] { readerLoop(fd); });
        ++spawned;
    }
}

void
SocketTransport::readerLoop(int fd)
{
    FrameDecoder decoder;
    std::vector<std::byte> chunk(64 * 1024);
    NodeId peer = -1; // learned from the hello frame

    for (;;) {
        const ssize_t n = readSome(fd, chunk.data(), chunk.size());
        if (n <= 0)
            break; // EOF or teardown
        decoder.feed(std::span<const std::byte>(
            chunk.data(), static_cast<std::size_t>(n)));
        Frame frame;
        while (decoder.next(frame)) {
            if (peer == -1) {
                DSM_ASSERT(frame.kind == FrameKind::Hello,
                           "node %d: stream opened without hello", id);
                DSM_ASSERT(frame.nnodes == numNodes,
                           "node %d: peer %d joined with cluster size "
                           "%d != %d",
                           id, frame.node, frame.nnodes, numNodes);
                DSM_ASSERT(frame.node >= 0 && frame.node < numNodes &&
                               frame.node != id,
                           "node %d: bad hello id %d", id, frame.node);
                peer = frame.node;
                std::lock_guard<std::mutex> g(goodbyeMu);
                ++hellosSeen;
                goodbyeCv.notify_all();
                continue;
            }
            switch (frame.kind) {
            case FrameKind::Data:
                DSM_ASSERT(frame.msg.src == peer &&
                               frame.msg.dst == id,
                           "node %d: misrouted frame %d->%d on "
                           "stream from %d",
                           id, frame.msg.src, frame.msg.dst, peer);
                deliverLocal(std::move(frame.msg));
                break;
            case FrameKind::Goodbye:
                noteGoodbye(peer, frame.round);
                break;
            default:
                panic("node %d: unexpected %u frame from %d mid-run",
                      id, static_cast<unsigned>(frame.kind), peer);
            }
        }
        DSM_ASSERT(!decoder.poisoned(),
                   "node %d: corrupt stream from node %d", id, peer);
    }
}

void
SocketTransport::writeTo(NodeId peer, const std::vector<std::byte> &bytes)
{
    OutStream &o = *out[peer];
    std::lock_guard<std::mutex> g(o.mu);
    DSM_ASSERT(o.fd >= 0, "node %d: send to %d before connectPeers",
               id, peer);
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n =
            ::send(o.fd, bytes.data() + done, bytes.size() - done,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // The two-round goodbye protocol guarantees no legal
            // write races a peer's exit; a broken stream mid-run is a
            // real failure, not a shutdown artifact.
            panic("node %d: write to node %d failed: %s", id, peer,
                  std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
}

void
SocketTransport::send(Message &&msg, NodeStats &sender_stats)
{
    DSM_ASSERT(msg.dst >= 0 && msg.dst < numNodes, "bad destination %d",
               msg.dst);
    DSM_ASSERT(msg.src == id, "node %d sending as %d", id, msg.src);
    DSM_ASSERT(msg.type != MsgType::Invalid, "untyped message");

    const std::uint64_t seq = nextSeq.fetch_add(1);
    const std::size_t bytes = msg.wireSize();

    // Identical modeled wire to the in-process tier: simulated loss
    // with stop-and-wait recovery, then the cost-model transit charge.
    std::uint64_t depart = msg.vtSendNs;
    if (loss) {
        int attempt = 0;
        while (loss(msg.src, msg.dst, seq, attempt)) {
            depart += cm.retransTimeoutNs;
            sender_stats.retransmissions++;
            sender_stats.messagesSent++;
            sender_stats.bytesSent += bytes;
            ++attempt;
            DSM_ASSERT(attempt < 64, "loss plan drops forever");
        }
    }
    msg.vtArriveNs = depart + cm.transitNs(bytes);

    sender_stats.messagesSent++;
    sender_stats.bytesSent += bytes;
    accepted.fetch_add(1);

    // Send-side fault injection, exactly as on tier 0: the message
    // was charged but never reaches the wire; the endpoint
    // deadline/retransmit path recovers it.
    if (faults && faults->dropMessage(msg))
        return;

    if (msg.dst == id) {
        deliverLocal(std::move(msg));
        return;
    }
    writeTo(msg.dst, encodeDataFrame(msg));
}

void
SocketTransport::deliverLocal(Message &&msg)
{
    // Receiver-side reply bypass. Tier 0 runs this check in the
    // sender's thread against the shared per-pair counters; here the
    // counters live with the receiver, so the reader thread (or a
    // self-send) applies the same guard at the same point in the
    // delivery order — after this sender's earlier frames, before its
    // later ones.
    if (msg.isReply) {
        std::lock_guard<std::mutex> g(replyMu);
        if (replyReceiver != nullptr &&
            srcOutstanding[msg.src].load(std::memory_order_acquire) ==
                0 &&
            replyReceiver->tryDeliverReply(msg)) {
            return;
        }
    }
    if (msg.type != MsgType::Shutdown) {
        srcOutstanding[msg.src].fetch_add(1,
                                          std::memory_order_relaxed);
    }
    inbox->push(std::move(msg));
}

bool
SocketTransport::recv(NodeId node, Message &out_msg)
{
    DSM_ASSERT(node == id, "node %d serving inbox of %d", id, node);
    if (!inbox->pop(out_msg))
        return false;
    if (out_msg.pairSeq != 0) {
        std::uint64_t &last = lastDelivered[out_msg.src];
        DSM_ASSERT(out_msg.pairSeq > last,
                   "out-of-order delivery %d->%d: pairSeq %llu after "
                   "%llu",
                   out_msg.src, node,
                   static_cast<unsigned long long>(out_msg.pairSeq),
                   static_cast<unsigned long long>(last));
        last = out_msg.pairSeq;
    }
    return true;
}

RingPop
SocketTransport::recvStatus(NodeId node, Message &out_msg)
{
    DSM_ASSERT(node == id, "node %d serving inbox of %d", id, node);
    const RingPop status = inbox->popWithStatus(out_msg);
    if (status != RingPop::Ok)
        return status;
    if (out_msg.pairSeq != 0) {
        std::uint64_t &last = lastDelivered[out_msg.src];
        DSM_ASSERT(out_msg.pairSeq > last, "out-of-order delivery");
        last = out_msg.pairSeq;
    }
    return RingPop::Ok;
}

RingPop
SocketTransport::recvTimed(NodeId node, Message &out_msg,
                           std::uint64_t timeout_ns)
{
    DSM_ASSERT(node == id, "node %d serving inbox of %d", id, node);
    const RingPop status = inbox->popTimed(out_msg, timeout_ns);
    if (status != RingPop::Ok)
        return status;
    if (out_msg.pairSeq != 0) {
        std::uint64_t &last = lastDelivered[out_msg.src];
        DSM_ASSERT(out_msg.pairSeq > last, "out-of-order delivery");
        last = out_msg.pairSeq;
    }
    return RingPop::Ok;
}

void
SocketTransport::markNodeDown(NodeId node)
{
    DSM_ASSERT(node == id,
               "socket transport cannot mark remote node %d down "
               "(in-process feature; node %d)",
               node, id);
    inbox->setPeerDown(true);
}

void
SocketTransport::clearNodeDown(NodeId node)
{
    DSM_ASSERT(node == id, "bad node %d", node);
    inbox->setPeerDown(false);
}

void
SocketTransport::setReplyReceiver(NodeId node, ReplyReceiver *receiver)
{
    DSM_ASSERT(node == id,
               "socket transport registering receiver for remote "
               "node %d",
               node);
    std::lock_guard<std::mutex> g(replyMu);
    replyReceiver = receiver;
}

void
SocketTransport::noteDispatched(NodeId dst, NodeId src)
{
    DSM_ASSERT(dst == id, "dispatch note for remote node %d", dst);
    srcOutstanding[src].fetch_sub(1, std::memory_order_release);
}

void
SocketTransport::setAdaptiveInboxSpin(bool on)
{
    inbox->setAdaptiveSpin(on);
}

void
SocketTransport::shutdown()
{
    inbox->shutdown();
}

void
SocketTransport::noteGoodbye(NodeId peer, int round)
{
    std::lock_guard<std::mutex> g(goodbyeMu);
    if (goodbyeRound[peer] < round)
        goodbyeRound[peer] = static_cast<std::uint8_t>(round);
    goodbyeCv.notify_all();
}

void
SocketTransport::finishRun()
{
    const auto waitRound = [&](int round) {
        std::unique_lock<std::mutex> g(goodbyeMu);
        const bool ok = goodbyeCv.wait_for(
            g, std::chrono::seconds(120), [&] {
                for (NodeId p = 0; p < numNodes; ++p) {
                    if (goodbyeRound[p] < round)
                        return false;
                }
                return true;
            });
        DSM_ASSERT(ok, "node %d: round-%d goodbye rendezvous timed out",
                   id, round);
    };
    for (NodeId peer = 0; peer < numNodes; ++peer) {
        if (peer != id)
            writeTo(peer, encodeGoodbyeFrame(id, 1));
    }
    waitRound(1);
    for (NodeId peer = 0; peer < numNodes; ++peer) {
        if (peer != id)
            writeTo(peer, encodeGoodbyeFrame(id, 2));
    }
    waitRound(2);
}

} // namespace dsm
