/**
 * @file
 * Bounded lock-free multi-producer/single-consumer ring used as a
 * node inbox. Producers claim slots with a CAS on the tail ticket
 * (Vyukov-style sequence-stamped slots); the single consumer pops in
 * strict ticket order, so messages enqueued by one thread are
 * delivered in their enqueue order — the in-order-per-pair guarantee
 * the Network documents.
 *
 * The consumer parks on a futex (std::atomic::wait) after a short
 * adaptive spin; producers wake it only when it advertised itself as
 * parked, so the steady-state send path is two atomic RMWs and a
 * release store — no mutex, no condition variable, no syscall.
 *
 * The park/publish handshake is the classic store-buffer (Dekker)
 * pattern: the consumer advertises park=1, fences, then re-checks the
 * slot; the producer publishes the slot, fences, then checks park.
 * With seq_cst fences on both sides one of the two observations must
 * succeed, so no wakeup is lost.
 */

#ifndef DSM_NET_MPSC_RING_HH
#define DSM_NET_MPSC_RING_HH

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdint>
#include <ctime>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "net/message.hh"
#include "util/logging.hh"

namespace dsm {

/**
 * Park/wake on a 32-bit word. On Linux this is a raw private futex —
 * noticeably cheaper than std::atomic::wait, whose libstdc++
 * implementation routes through a global proxy-waiter table with its
 * own bookkeeping atomics on both sides. The kernel re-checks the
 * word atomically on wait, so the caller only needs the usual
 * advertise-then-recheck protocol.
 */
inline void
futexWait(std::atomic<std::uint32_t> &word, std::uint32_t expected)
{
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t *>(&word),
            FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
#else
    word.wait(expected, std::memory_order_acquire);
#endif
}

/**
 * futexWait with a deadline. Returns false on timeout, true otherwise
 * (woken, spurious or value mismatch). The non-Linux fallback polls in
 * short sleeps — correctness only, the Linux path is the product one.
 */
inline bool
futexWaitTimed(std::atomic<std::uint32_t> &word, std::uint32_t expected,
               std::uint64_t timeout_ns)
{
#if defined(__linux__)
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000ull);
    ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000ull);
    const long rc =
        syscall(SYS_futex, reinterpret_cast<std::uint32_t *>(&word),
                FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
    return !(rc == -1 && errno == ETIMEDOUT);
#else
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(timeout_ns);
    while (word.load(std::memory_order_acquire) == expected) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    return true;
#endif
}

inline void
futexWakeOne(std::atomic<std::uint32_t> &word)
{
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t *>(&word),
            FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
#else
    word.notify_one();
#endif
}

inline void
futexWakeAll(std::atomic<std::uint32_t> &word)
{
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t *>(&word),
            FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
#else
    word.notify_all();
#endif
}

/** Busy-wait hint; keeps a spinning consumer off the bus. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

/**
 * How long a consumer busy-polls before parking on the futex. A
 * hand-off between running threads is ~100x cheaper than a futex
 * round trip, but only if the producer can actually run concurrently:
 * on a single hardware thread pause-spinning steals cycles from the
 * producer, so the budget there is just a few sched_yields (the tail
 * of any budget is yields, see pop()) — enough to hand a runnable
 * producer a quantum to batch messages before we pay for a sleep.
 */
inline int
consumerSpinBudget()
{
    static const int kBudget =
        std::thread::hardware_concurrency() > 1 ? 1024 : 4;
    return kBudget;
}

/** Outcome of a status-aware inbox dequeue (MpscRing::popWithStatus /
 *  Network::recvStatus). */
enum class RingPop : std::uint8_t
{
    Ok,       ///< a message was dequeued
    Closed,   ///< ring shut down and fully drained
    PeerDown, ///< empty and the owning peer is marked dead — do not
              ///< block; the caller should back off or fail over
    Timeout,  ///< still empty when the caller's deadline expired
              ///< (MpscRing::popTimed / Network::recvTimed only)
};

class MpscRing
{
  public:
    /** @param capacity Slot count; rounded up to a power of two. */
    explicit MpscRing(std::size_t capacity = kDefaultCapacity)
    {
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        slots = std::vector<Slot>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            slots[i].seq.store(i, std::memory_order_relaxed);
        mask = cap - 1;
    }

    static constexpr std::size_t kDefaultCapacity = 1024;

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /**
     * Enqueue @p msg, blocking (spin + yield) while the ring is full.
     * Returns the claimed ticket (a per-ring sequence number that is
     * also the delivery order), or 0 after shutdown (message dropped;
     * tickets returned to callers start at 1).
     */
    std::uint64_t
    push(Message &&msg)
    {
        std::uint64_t pos = tail.load(std::memory_order_relaxed);
        Slot *slot;
        for (;;) {
            slot = &slots[pos & mask];
            const std::uint64_t seq =
                slot->seq.load(std::memory_order_acquire);
            const std::int64_t dif = static_cast<std::int64_t>(seq) -
                                     static_cast<std::int64_t>(pos);
            if (dif == 0) {
                if (tail.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (dif < 0) {
                // Full: the consumer has not recycled this slot yet.
                if (down.load(std::memory_order_acquire))
                    return 0;
                std::this_thread::yield();
                pos = tail.load(std::memory_order_relaxed);
            } else {
                pos = tail.load(std::memory_order_relaxed);
            }
        }
        // The ticket is claimed in delivery order; stamp it so the
        // receiver can assert per-pair monotonicity.
        msg.pairSeq = pos + 1;
        slot->msg = std::move(msg);
        slot->seq.store(pos + 1, std::memory_order_release);
        // Dekker handshake, producer half: publish, fence, check park.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (park.load(std::memory_order_relaxed) == 1) {
            park.store(0, std::memory_order_release);
            futexWakeOne(park);
        }
        return pos + 1;
    }

    /**
     * Dequeue into @p out, in ticket order. Blocks (short spin, then
     * futex park) while empty. Returns false only when the ring is
     * shut down and every published message was drained.
     */
    bool
    pop(Message &out)
    {
        Slot &slot = slots[head & mask];
        const std::uint64_t want = head + 1;
        // Adaptive: when the previous pop ended in a futex sleep the
        // link is idle (request/reply ping-pong) and the next empty
        // wait will almost surely sleep too — park at once and save
        // the spin. When the previous pop was served hot the link is
        // busy (fan-in bursts) and spinning/yielding lets producers
        // batch instead of paying a sleep/wake pair per message.
        const int budget = popSpinBudget();
        bool parked = false;
        for (int spin = 0;; ++spin) {
            if (slot.seq.load(std::memory_order_acquire) == want)
                break;
            if (spin < budget) {
                // Busy poll first (the common hand-off is far shorter
                // than a futex round trip), yield a little, then park.
                if (spin < budget - 16)
                    cpuRelax();
                else
                    std::this_thread::yield();
                continue;
            }
            // Dekker handshake, consumer half: advertise, fence,
            // re-check, then sleep. The park store and the down load
            // are seq_cst so they order against shutdown()'s
            // down-then-park store chain: either our park=1 overwrote
            // shutdown's park=0 — then the single total order forces
            // this down load to see true — or shutdown's 0 is the
            // final value and futexWait returns immediately.
            park.store(1, std::memory_order_seq_cst);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            if (slot.seq.load(std::memory_order_acquire) == want) {
                park.store(0, std::memory_order_relaxed);
                break;
            }
            if (down.load(std::memory_order_seq_cst)) {
                park.store(0, std::memory_order_relaxed);
                // Drain-check once more: a producer may have published
                // between the check above and shutdown.
                if (slot.seq.load(std::memory_order_acquire) == want)
                    break;
                return false;
            }
            futexWait(park, 1);
            parked = true;
        }
        notePopOutcome(parked);
        out = std::move(slot.msg);
        slot.msg = Message{};
        slot.seq.store(head + mask + 1, std::memory_order_release);
        ++head;
        return true;
    }

    /**
     * pop() that refuses to block on a dead peer: when the ring is
     * empty and the peer-down flag is set, returns RingPop::PeerDown
     * instead of parking (published messages still drain first, in
     * order). pop() itself is unchanged — only status-aware callers
     * observe the flag.
     */
    RingPop
    popWithStatus(Message &out)
    {
        Slot &slot = slots[head & mask];
        const std::uint64_t want = head + 1;
        const int budget = popSpinBudget();
        bool parked = false;
        for (int spin = 0;; ++spin) {
            if (slot.seq.load(std::memory_order_acquire) == want)
                break;
            if (peerDown.load(std::memory_order_seq_cst)) {
                // Re-check after the flag load: a message published
                // before the peer died still gets delivered.
                if (slot.seq.load(std::memory_order_acquire) == want)
                    break;
                notePopOutcome(parked);
                return RingPop::PeerDown;
            }
            if (spin < budget) {
                if (spin < budget - 16)
                    cpuRelax();
                else
                    std::this_thread::yield();
                continue;
            }
            park.store(1, std::memory_order_seq_cst);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            if (slot.seq.load(std::memory_order_acquire) == want) {
                park.store(0, std::memory_order_relaxed);
                break;
            }
            if (down.load(std::memory_order_seq_cst)) {
                park.store(0, std::memory_order_relaxed);
                if (slot.seq.load(std::memory_order_acquire) == want)
                    break;
                return RingPop::Closed;
            }
            futexWait(park, 1);
            parked = true;
        }
        notePopOutcome(parked);
        out = std::move(slot.msg);
        slot.msg = Message{};
        slot.seq.store(head + mask + 1, std::memory_order_release);
        ++head;
        return RingPop::Ok;
    }

    /**
     * pop() with a deadline: dequeue in ticket order, but give up and
     * return RingPop::Timeout once @p timeout_ns elapses with the ring
     * still empty. Used by a service loop that must wake periodically
     * to feed the failure detector even when its inbox is idle.
     * Deliberately ignores the peer-down flag: this is the owning
     * node's *own* consumer, and a falsely accused node must keep
     * draining (and heartbeating) normally rather than spin on
     * PeerDown until somebody clears its flag.
     */
    RingPop
    popTimed(Message &out, std::uint64_t timeout_ns)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::nanoseconds(timeout_ns);
        Slot &slot = slots[head & mask];
        const std::uint64_t want = head + 1;
        const int budget = popSpinBudget();
        bool parked = false;
        for (int spin = 0;; ++spin) {
            if (slot.seq.load(std::memory_order_acquire) == want)
                break;
            if (spin < budget) {
                if (spin < budget - 16)
                    cpuRelax();
                else
                    std::this_thread::yield();
                continue;
            }
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline) {
                // A prior timed wait may have expired with park still
                // advertised; clear it so producers stop paying wakes.
                park.store(0, std::memory_order_relaxed);
                notePopOutcome(parked);
                return RingPop::Timeout;
            }
            park.store(1, std::memory_order_seq_cst);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            if (slot.seq.load(std::memory_order_acquire) == want) {
                park.store(0, std::memory_order_relaxed);
                break;
            }
            if (down.load(std::memory_order_seq_cst)) {
                park.store(0, std::memory_order_relaxed);
                if (slot.seq.load(std::memory_order_acquire) == want)
                    break;
                return RingPop::Closed;
            }
            futexWaitTimed(park, 1,
                           static_cast<std::uint64_t>(
                               std::chrono::nanoseconds(deadline - now)
                                   .count()));
            parked = true;
        }
        notePopOutcome(parked);
        out = std::move(slot.msg);
        slot.msg = Message{};
        slot.seq.store(head + mask + 1, std::memory_order_release);
        ++head;
        return RingPop::Ok;
    }

    /**
     * Mark the ring's owning peer dead (or alive again). Setting the
     * flag wakes a parked status-aware consumer so it can observe
     * PeerDown; plain pop() ignores the flag entirely (it re-parks on
     * the spurious wake). Producers are unaffected — sends to a dead
     * peer simply buffer in the ring until recovery clears the flag
     * and the peer drains them ("parked outbound traffic").
     */
    void
    setPeerDown(bool is_down)
    {
        peerDown.store(is_down, std::memory_order_seq_cst);
        if (is_down) {
            park.store(0, std::memory_order_seq_cst);
            futexWakeAll(park);
        }
    }

    /** Wake the consumer and any full-ring producers; subsequent
     *  pop() calls return false once the ring is drained. */
    void
    shutdown()
    {
        // seq_cst store chain paired with the consumer's park-path
        // loads/stores (see pop()): a consumer whose park=1 lands
        // after our park=0 must then observe down==true instead of
        // sleeping on a wake that already fired.
        down.store(true, std::memory_order_seq_cst);
        park.store(0, std::memory_order_seq_cst);
        futexWakeAll(park);
    }

    /**
     * Switch the consumer's empty-wait spin budget from the binary
     * parked/hot heuristic to a dynamically sized one (halve on every
     * pop that ended in a futex sleep, grow on every hot pop): under
     * mixed traffic — bursts interleaved with idle gaps, the QS task
     * queue pattern — the binary heuristic whiplashes between full
     * spin and immediate park, while the dynamic budget converges on
     * the duty cycle (DSM_BLOCKING_DEQ). Consumer-thread only; call
     * before the consumer starts.
     */
    void
    setAdaptiveSpin(bool on)
    {
        adaptiveSpin = on;
        spinBudget = consumerSpinBudget();
    }

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> seq{0};
        Message msg;
    };

    /** Empty-wait spin budget for the next pop (consumer only). */
    int
    popSpinBudget() const
    {
        if (adaptiveSpin)
            return spinBudget;
        return lastPopParked ? 0 : consumerSpinBudget();
    }

    /** Record how a pop's empty wait ended (consumer only). */
    void
    notePopOutcome(bool parked)
    {
        lastPopParked = parked;
        if (!adaptiveSpin)
            return;
        if (parked)
            spinBudget /= 2; // sleeping anyway: stop burning the bus
        else
            spinBudget = std::min(consumerSpinBudget(),
                                  spinBudget == 0 ? 16 : spinBudget * 2);
    }

    std::vector<Slot> slots;
    std::size_t mask = 0;
    alignas(64) std::atomic<std::uint64_t> tail{0}; ///< producers
    alignas(64) std::uint64_t head = 0;             ///< consumer only
    bool lastPopParked = false;                     ///< consumer only
    bool adaptiveSpin = false;                      ///< consumer only
    int spinBudget = 0;                             ///< consumer only
    alignas(64) std::atomic<std::uint32_t> park{0}; ///< 1 = consumer parked
    std::atomic<bool> down{false};
    std::atomic<bool> peerDown{false}; ///< popWithStatus only
};

} // namespace dsm

#endif // DSM_NET_MPSC_RING_HH
