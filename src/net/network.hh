/**
 * @file
 * The simulated cluster interconnect. Reliable in-order delivery per
 * sender/receiver pair over per-node inboxes; a configurable cost model
 * computes virtual arrival times. An optional loss plan simulates the
 * paper's unreliable AAL3/4 substrate: dropped transmissions are
 * recovered by a modeled stop-and-wait retransmission (counted and
 * charged with the retransmission timeout), after which the message is
 * delivered — so correctness is never affected, only cost, exactly like
 * the "operation-specific user-level protocols to insure delivery"
 * described in Section 6 of the paper.
 */

#ifndef DSM_NET_NETWORK_HH
#define DSM_NET_NETWORK_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/message.hh"
#include "time/cost_model.hh"
#include "util/stats.hh"

namespace dsm {

/**
 * Decides whether transmission attempt @p attempt (0-based) of message
 * @p seq from @p src to @p dst is lost. Deterministic functions keep
 * runs reproducible.
 */
using LossPlan = std::function<bool(NodeId src, NodeId dst,
                                    std::uint64_t seq, int attempt)>;

class Network
{
  public:
    /**
     * @param nnodes Number of nodes.
     * @param costModel Timing constants for transit computation.
     * @param lossPlan Optional deterministic loss injector.
     */
    Network(int nnodes, const CostModel &costModel,
            LossPlan lossPlan = nullptr);

    /**
     * Send @p msg (src/dst/vtSendNs must be filled in). Computes the
     * arrival virtual time, simulates losses/retransmissions, and
     * enqueues into the destination inbox. Thread safe.
     *
     * @param senderStats Counters of the sending node (bytes/messages/
     *        retransmissions are recorded there).
     */
    void send(Message &&msg, NodeStats &senderStats);

    /**
     * Blocking receive of the next message for @p node, in enqueue
     * order. Returns false if the network was shut down.
     */
    bool recv(NodeId node, Message &out);

    /** Wake all receivers and make subsequent recv() return false. */
    void shutdown();

    int nnodes() const { return static_cast<int>(inboxes.size()); }

    const CostModel &costModel() const { return cm; }

    /** Total messages accepted (including retransmitted ones once). */
    std::uint64_t totalMessages() const;

  private:
    struct Inbox
    {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<Message> queue;
    };

    CostModel cm;
    LossPlan loss;
    std::vector<std::unique_ptr<Inbox>> inboxes;
    std::atomic<std::uint64_t> nextSeq{1};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<bool> down{false};
};

/** A loss plan dropping the first attempt of every @p n-th message. */
LossPlan dropEveryNth(std::uint64_t n);

} // namespace dsm

#endif // DSM_NET_NETWORK_HH
