/**
 * @file
 * The simulated cluster interconnect. Reliable in-order delivery per
 * sender/receiver pair over per-node inboxes; a configurable cost model
 * computes virtual arrival times. An optional loss plan simulates the
 * paper's unreliable AAL3/4 substrate: dropped transmissions are
 * recovered by a modeled stop-and-wait retransmission (counted and
 * charged with the retransmission timeout), after which the message is
 * delivered — so correctness is never affected, only cost, exactly like
 * the "operation-specific user-level protocols to insure delivery"
 * described in Section 6 of the paper.
 *
 * Inboxes come in two flavors (InboxPolicy): the default bounded
 * lock-free MPSC ring (net/mpsc_ring.hh — futex-parked consumer, no
 * mutex on the send path) and the seed mutex+condvar deque, kept for
 * old-vs-new latency comparisons (bench/micro_net.cc). Both stamp
 * every message with a per-(src, dst) sequence number and recv()
 * asserts it increases monotonically per pair, so the documented
 * in-order-per-pair guarantee is checked on every delivery.
 */

#ifndef DSM_NET_NETWORK_HH
#define DSM_NET_NETWORK_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/fault_injector.hh"
#include "net/message.hh"
#include "net/mpsc_ring.hh"
#include "net/transport.hh"
#include "time/cost_model.hh"
#include "util/stats.hh"

namespace dsm {

/** How a node's inbox is implemented. */
enum class InboxPolicy : std::uint8_t
{
    LockFreeRing, ///< bounded MPSC ring, futex-parked consumer
    MutexQueue,   ///< seed mutex+condvar deque (ablation baseline)
};

class Network final : public Transport
{
  public:
    /**
     * @param nnodes Number of nodes.
     * @param costModel Timing constants for transit computation.
     * @param lossPlan Optional deterministic loss injector.
     * @param policy Inbox implementation (default: lock-free ring).
     */
    Network(int nnodes, const CostModel &costModel,
            LossPlan lossPlan = nullptr,
            InboxPolicy policy = InboxPolicy::LockFreeRing,
            std::size_t ringCapacity = MpscRing::kDefaultCapacity);

    /**
     * Send @p msg (src/dst/vtSendNs must be filled in). Computes the
     * arrival virtual time, simulates losses/retransmissions, and
     * enqueues into the destination inbox. Thread safe.
     *
     * @param senderStats Counters of the sending node (bytes/messages/
     *        retransmissions are recorded there).
     */
    void send(Message &&msg, NodeStats &senderStats) override;

    /**
     * Blocking receive of the next message for @p node, in enqueue
     * order (asserted per sender/receiver pair via Message::pairSeq).
     * Must be called by one thread per node at a time. Returns false
     * if the network was shut down and the inbox is drained.
     */
    bool recv(NodeId node, Message &out) override;

    /**
     * recv() with a typed status: returns RingPop::PeerDown (without
     * blocking) when @p node's inbox is empty and the node is marked
     * dead via markNodeDown — the path recovery-aware consumers use so
     * a dead peer cannot park them forever. Ring policy only; the
     * MutexQueue ablation maps peer-down to its ordinary blocking wait.
     */
    RingPop recvStatus(NodeId node, Message &out) override;

    /**
     * recv() with a deadline: returns RingPop::Timeout once
     * @p timeout_ns elapses with @p node's inbox still empty. The
     * periodic-wake primitive of a failure-detecting service loop;
     * ignores the node's own peer-down flag (see MpscRing::popTimed).
     */
    RingPop recvTimed(NodeId node, Message &out,
                      std::uint64_t timeout_ns) override;

    /**
     * Mark @p node dead (chaos kill in progress): status-aware
     * receives on its inbox stop blocking, while sends to it keep
     * buffering in the inbox — the "parked outbound traffic" the
     * restored node drains when it replays forward.
     */
    void markNodeDown(NodeId node) override;

    /** Recovery complete: @p node's inbox blocks normally again. */
    void clearNodeDown(NodeId node) override;

    /**
     * Install the fault-injection layer between send() and the
     * inboxes. Null (the default) keeps the send path bit-identical
     * to a build without the layer — one pointer test.
     */
    void setFaultInjector(FaultInjector *injector) override
    {
        faults = injector;
    }

    /**
     * Register (or, with null, deregister) @p node's direct reply
     * sink. While registered, send() offers every reply for @p node
     * to it first — subject to the per-pair ordering guard below —
     * and only refused replies enter the inbox. Serialized against
     * in-flight sends: after a null store returns, no sender can
     * still be inside the receiver.
     *
     * Ordering guard: a reply is only bypassed while the sender has
     * zero other messages outstanding in the destination's inbox
     * (per-(src, dst) counter, incremented before the inbox push and
     * decremented by noteDispatched after the receiver finished the
     * handler). This pins the network's in-order-per-pair guarantee
     * across the two delivery paths: a bypassed reply can never
     * overtake an earlier HomeMigrate install or LockForward-chain
     * message from the same sender still sitting in the ring.
     */
    void setReplyReceiver(NodeId node, ReplyReceiver *receiver) override;

    /**
     * Record that @p dst fully dispatched one inbox message from
     * @p src (handler completed): re-arms the reply-bypass ordering
     * guard for the pair. Called by the owning Endpoint only; a
     * consumer that drains the inbox without it (raw recv loops,
     * checkpoint quiesce) merely leaves the guard engaged, refusing
     * future bypasses for the pair — the safe direction.
     */
    void noteDispatched(NodeId dst, NodeId src) override;

    /**
     * Switch every inbox ring's empty-wait spin to the dynamically
     * sized budget (DSM_BLOCKING_DEQ; see MpscRing::setAdaptiveSpin).
     * Call before any consumer starts.
     */
    void setAdaptiveInboxSpin(bool on) override;

    /** Wake all receivers and make subsequent recv() return false. */
    void shutdown() override;

    int nnodes() const override { return static_cast<int>(inboxes.size()); }

    InboxPolicy inboxPolicy() const { return policy; }

    const CostModel &costModel() const override { return cm; }

    /** Total messages accepted (including retransmitted ones once). */
    std::uint64_t totalMessages() const override;

  private:
    /** Seed inbox, kept as the MutexQueue ablation baseline. */
    struct LockedInbox
    {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<Message> queue;
    };

    struct Inbox
    {
        /** Exactly one of these is constructed, per InboxPolicy (a
         *  1024-slot ring embeds ~100 KB of Message slots — dead
         *  weight in the mutex ablation, and vice versa). */
        std::unique_ptr<MpscRing> ring;
        std::unique_ptr<LockedInbox> locked;
        /** Last pairSeq delivered per source (consumer-side; guards
         *  the in-order-per-pair invariant). */
        std::vector<std::uint64_t> lastDelivered;
    };

    /** One node's reply sink, guarded by its own mutex so
     *  deregistration (endpoint stop/teardown) synchronizes with
     *  senders mid-delivery. */
    struct ReceiverSlot
    {
        std::mutex mu;
        ReplyReceiver *receiver = nullptr;
    };

    CostModel cm;
    LossPlan loss;
    InboxPolicy policy;
    FaultInjector *faults = nullptr; ///< not owned; null = layer off
    std::vector<std::unique_ptr<Inbox>> inboxes;
    std::vector<std::unique_ptr<ReceiverSlot>> replySlots;
    std::atomic<std::uint64_t> nextSeq{1};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<bool> down{false};
    /** Per-(src, dst) sequence stamps, MutexQueue policy only (the
     *  ring stamps with its delivery-ordered ticket instead). */
    std::vector<std::uint64_t> pairSeqs;
    /** Per-(src, dst) count of inbox messages accepted but not yet
     *  fully dispatched — the reply-bypass ordering guard. */
    std::vector<std::atomic<std::uint32_t>> pairOutstanding;

    std::size_t
    pairIndex(NodeId src, NodeId dst) const
    {
        return static_cast<std::size_t>(src) * inboxes.size() + dst;
    }
};

/** A loss plan dropping the first attempt of every @p n-th message. */
LossPlan dropEveryNth(std::uint64_t n);

} // namespace dsm

#endif // DSM_NET_NETWORK_HH
