// WireWriter/WireReader are header-only; anchor translation unit.
#include "net/serde.hh"
