/**
 * @file
 * The cluster interconnect abstraction. Two tiers implement it:
 *
 *  - tier 0, `Network` (net/network.hh): the in-process interconnect —
 *    every node is a thread group in one address space and messages
 *    move through per-node lock-free MPSC rings. This is the
 *    historical substrate every result so far was measured on.
 *  - tier 1, `SocketTransport` (net/socket_transport.hh): every node
 *    is its own OS process; messages cross real Unix-domain or TCP
 *    sockets as length-prefixed frames carrying the same serde wire
 *    payloads. The process launcher (driver/proc_launcher.hh) forks
 *    the node processes and rendezvouses them through a socket
 *    directory.
 *
 * Endpoint — and through it every runtime, lock service and barrier
 * service — talks only to this interface, so the whole protocol stack
 * is transport-neutral: the cross-protocol conformance suite runs
 * bit-identically on both tiers (the correctness anchor of the
 * socket backend).
 *
 * Semantics every implementation must provide:
 *  - reliable in-order delivery per (src, dst) pair;
 *  - virtual-time arrival stamps computed from the shared CostModel
 *    at send time (the modeled wire is identical on both tiers);
 *  - the reply-bypass ordering guard: a reply may skip the inbox only
 *    while its sender has no earlier message to the same destination
 *    still undispatched (noteDispatched re-arms the pair);
 *  - the fault-injection hook between send() and delivery.
 */

#ifndef DSM_NET_TRANSPORT_HH
#define DSM_NET_TRANSPORT_HH

#include <cstdint>
#include <functional>

#include "net/fault_injector.hh"
#include "net/message.hh"
#include "net/mpsc_ring.hh"
#include "time/cost_model.hh"
#include "util/stats.hh"

namespace dsm {

/**
 * Decides whether transmission attempt @p attempt (0-based) of message
 * @p seq from @p src to @p dst is lost. Deterministic functions keep
 * runs reproducible.
 */
using LossPlan = std::function<bool(NodeId src, NodeId dst,
                                    std::uint64_t seq, int attempt)>;

/**
 * Sink for replies delivered straight to the destination's parked
 * caller, skipping the inbox and the service-thread hop (the reply
 * wake is the hottest hand-off in the system: every call() pays inbox
 * push + service-thread wake + pending-map route + caller wake for a
 * message whose sole consumer is already known). Implemented by
 * Endpoint.
 */
class ReplyReceiver
{
  public:
    virtual ~ReplyReceiver() = default;

    /**
     * Try to hand @p msg to the caller parked on its reply token.
     * Returns false — leaving @p msg intact — when no caller is
     * parked (e.g. the destination is quiesced at a checkpoint cut);
     * the message then takes the ordinary inbox path.
     */
    virtual bool tryDeliverReply(Message &msg) = 0;
};

class Transport
{
  public:
    virtual ~Transport() = default;

    /**
     * Send @p msg (src/dst/vtSendNs must be filled in). Computes the
     * arrival virtual time, simulates losses/retransmissions, and
     * delivers toward the destination inbox. Thread safe.
     *
     * @param senderStats Counters of the sending node (bytes/messages/
     *        retransmissions are recorded there).
     */
    virtual void send(Message &&msg, NodeStats &senderStats) = 0;

    /**
     * Blocking receive of the next message for @p node, in enqueue
     * order (asserted per sender/receiver pair via Message::pairSeq).
     * Must be called by one thread per node at a time. Returns false
     * if the transport was shut down and the inbox is drained. A
     * process-per-node transport only serves its own node's inbox.
     */
    virtual bool recv(NodeId node, Message &out) = 0;

    /**
     * recv() with a typed status: returns RingPop::PeerDown (without
     * blocking) when @p node's inbox is empty and the node is marked
     * dead via markNodeDown — the path recovery-aware consumers use so
     * a dead peer cannot park them forever.
     */
    virtual RingPop recvStatus(NodeId node, Message &out) = 0;

    /**
     * recv() with a deadline: returns RingPop::Timeout once
     * @p timeout_ns elapses with @p node's inbox still empty. The
     * periodic-wake primitive of a failure-detecting service loop.
     */
    virtual RingPop recvTimed(NodeId node, Message &out,
                              std::uint64_t timeout_ns) = 0;

    /**
     * Mark @p node dead (chaos kill / outage in progress):
     * status-aware receives on its inbox stop blocking, while sends
     * to it keep buffering — the "parked outbound traffic" a restored
     * node drains when it replays forward.
     */
    virtual void markNodeDown(NodeId node) = 0;

    /** Recovery complete: @p node's inbox blocks normally again. */
    virtual void clearNodeDown(NodeId node) = 0;

    /**
     * Install the fault-injection layer between send() and the
     * inboxes. Null (the default) keeps the send path bit-identical
     * to a build without the layer — one pointer test.
     */
    virtual void setFaultInjector(FaultInjector *injector) = 0;

    /**
     * Register (or, with null, deregister) @p node's direct reply
     * sink. While registered, replies for @p node are offered to it
     * first — subject to the per-pair ordering guard — and only
     * refused replies enter the inbox. Serialized against in-flight
     * deliveries: after a null store returns, no delivering thread
     * can still be inside the receiver.
     */
    virtual void setReplyReceiver(NodeId node,
                                  ReplyReceiver *receiver) = 0;

    /**
     * Record that @p dst fully dispatched one inbox message from
     * @p src (handler completed): re-arms the reply-bypass ordering
     * guard for the pair. Called by the owning Endpoint only.
     */
    virtual void noteDispatched(NodeId dst, NodeId src) = 0;

    /**
     * Switch every owned inbox ring's empty-wait spin to the
     * dynamically sized budget (DSM_BLOCKING_DEQ). Call before any
     * consumer starts.
     */
    virtual void setAdaptiveInboxSpin(bool on) = 0;

    /** Wake all receivers and make subsequent recv() return false. */
    virtual void shutdown() = 0;

    /** Cluster size (nodes, not processes-owned-here). */
    virtual int nnodes() const = 0;

    virtual const CostModel &costModel() const = 0;

    /** Total messages accepted by this transport instance (a
     *  process-per-node transport counts its own sends only). */
    virtual std::uint64_t totalMessages() const = 0;
};

} // namespace dsm

#endif // DSM_NET_TRANSPORT_HH
