/**
 * @file
 * Deterministic, seeded fault injection between Network::send and the
 * destination inbox. Two fault classes:
 *
 *  - message drops: a configurable fraction of *droppable* messages is
 *    discarded before it reaches the inbox. Only direct request/reply
 *    RPCs are droppable — chain-routed traffic (lock forwarding,
 *    home flush/migrate chains) has no end-to-end retransmit owner, so
 *    dropping it would hang the run rather than exercise recovery.
 *    The Endpoint's deadline + bounded-retransmit path (enabled by the
 *    same knob) recovers dropped requests and replies.
 *  - node kill: the CheckpointCoordinator (core/checkpoint.hh) reads
 *    the armed (node, epoch) pair and wipes + restores the victim at
 *    that barrier cut.
 *
 * Decisions hash (seed, src, dst, type, sequence) through a
 * splitmix64 mix, so a run with one seed drops the same messages every
 * time modulo thread interleaving, and the nightly chaos workflow can
 * rotate seeds to cover different drop patterns.
 */

#ifndef DSM_NET_FAULT_INJECTOR_HH
#define DSM_NET_FAULT_INJECTOR_HH

#include <atomic>
#include <cstdint>

#include "net/message.hh"

namespace dsm {

class FaultInjector
{
  public:
    /**
     * @param seed Seed for the drop hash (DSM_FAULT_SEED).
     * @param drop_rate Fraction of droppable messages discarded,
     *        in [0, 1) (DSM_FAULT_MSG_DROP).
     */
    FaultInjector(std::uint64_t seed, double drop_rate);

    /**
     * Retransmit attempts at or past this index are never dropped:
     * every request is delivered after a bounded number of tries, so
     * fault injection can never hang a run, only slow it.
     */
    static constexpr std::uint8_t kAttemptImmunity = 3;

    /** True iff dropping @p type cannot wedge the protocol (direct
     *  request/reply RPCs with an end-to-end retransmit owner). */
    static bool droppable(MsgType type);

    /** Decide the fate of @p msg at send time: true = discard it. */
    bool dropMessage(const Message &msg);

    /**
     * Silence @p node (or lift the silence): while set, every
     * droppable message with @p node as source or destination is
     * discarded unconditionally — no rate hash, *no attempt immunity*
     * (a 100%-drop outage must defeat the bounded-retry guarantee, or
     * it would not be an outage). Non-droppable chain traffic still
     * flows, so the protocol cannot wedge; the failure detector is
     * what turns the silence into a typed PeerDown. Thread safe.
     */
    void setSilenced(NodeId node, bool silenced);

    /** Is @p node currently silenced? */
    bool
    silenced(NodeId node) const
    {
        return (silencedMask.load(std::memory_order_acquire) >>
                node) & 1;
    }

    /** Any node silenced? (fast path gate) */
    bool
    anySilenced() const
    {
        return silencedMask.load(std::memory_order_acquire) != 0;
    }

    /** Drop rate in effect (0 = drops disabled). */
    double dropRate() const { return rate; }

    /** Messages discarded so far (diagnostic). */
    std::uint64_t dropped() const
    {
        return droppedCount.load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t seed;
    double rate;
    /** Per-decision sequence so identical (src, dst, type) triples
     *  do not share one fate. */
    std::atomic<std::uint64_t> decisionSeq{0};
    std::atomic<std::uint64_t> droppedCount{0};
    /** Bit per node: all its droppable traffic is discarded. */
    std::atomic<std::uint64_t> silencedMask{0};
};

} // namespace dsm

#endif // DSM_NET_FAULT_INJECTOR_HH
