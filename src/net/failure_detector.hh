/**
 * @file
 * Per-peer liveness tracking for the self-healing cluster. Every
 * endpoint's service thread stamps its own liveness (heartbeat) and
 * the liveness of any peer whose message it delivers (heard); a
 * periodic tick scans the stamps against a deadline and flips the
 * expired peer's inbox to PeerDown on the Network — automatically,
 * where PR 6 could only do it under test-harness control.
 *
 * State machine per peer (DESIGN.md §7):
 *
 *   healthy --deadline missed--> down --fresh stamp--> recovering
 *      ^                                                   |
 *      +------------- recoverySeq bump consumed -----------+
 *
 * ("suspect" is the half-open interval between the last stamp and the
 * deadline — no explicit state, just elapsed time.) Transitions are
 * CAS-guarded on a shared down mask so exactly one observer counts
 * each detection/recovery, no matter how many service threads race.
 *
 * The detector is deliberately shared-memory: nodes in this tier are
 * threads in one process, so a heartbeat is a stamp, not a message.
 * What makes it honest is the fault injector: a silenced node's
 * heartbeat() is a no-op (its "messages" would never arrive), so a
 * 100%-drop outage looks exactly like a dead peer to everyone else.
 */

#ifndef DSM_NET_FAILURE_DETECTOR_HH
#define DSM_NET_FAILURE_DETECTOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/fault_injector.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dsm {

class Network;

class FailureDetector
{
  public:
    /**
     * @param net Cluster network (markNodeDown / clearNodeDown sink).
     * @param nnodes Number of nodes.
     * @param deadline_ns Liveness deadline: a peer whose last stamp is
     *        older than this is declared down.
     * @param injector Optional fault injector; a silenced node's own
     *        heartbeats are suppressed so injected outages are
     *        detected like real ones.
     */
    FailureDetector(Network &net, int nnodes, std::uint64_t deadline_ns,
                    FaultInjector *injector);

    /** Stamp my own liveness (no-op while I am silenced). */
    void heartbeat(NodeId self);

    /**
     * Stamp @p src's liveness on an actually-delivered message. When
     * the stamp revives a peer previously declared down, performs the
     * recovery transition (clears the inbox flag, bumps the peer's
     * recoverySeq) and counts it into @p stats.
     */
    void heard(NodeId src, NodeStats &stats);

    /**
     * Deadline scan: declare expired peers down (flip their inbox via
     * Network::markNodeDown) and revive freshly stamped ones. Counts
     * transitions this call performed into @p stats — the CAS on the
     * down mask makes each transition count exactly once cluster-wide.
     */
    void tick(NodeId self, NodeStats &stats);

    bool
    isDown(NodeId node) const
    {
        return (downMask.load(std::memory_order_acquire) >> node) & 1;
    }

    bool
    anyDown() const
    {
        return downMask.load(std::memory_order_acquire) != 0;
    }

    std::uint64_t deadlineNs() const { return deadline; }

    /**
     * Monotonic recovery epoch of @p node: bumped on every down ->
     * healthy transition. Endpoints keep a local cursor per peer and
     * run their recovery hooks (orphaned-lock re-forwarding) when it
     * advances — every endpoint observes every recovery exactly once,
     * regardless of which service thread performed the transition.
     */
    std::uint64_t
    recoverySeqOf(NodeId node) const
    {
        return peers[node].recoverySeq.load(std::memory_order_acquire);
    }

    /** Total down transitions (diagnostic). */
    std::uint64_t
    detections() const
    {
        return detectionCount.load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t nowNs() const;

    struct alignas(64) PeerSlot
    {
        std::atomic<std::uint64_t> lastHeardNs{0};
        std::atomic<std::uint64_t> recoverySeq{0};
    };

    /** down-mask transition helpers; true = this call won the CAS. */
    bool declareDown(NodeId node);
    bool declareRecovered(NodeId node);

    Network &net;
    FaultInjector *injector; ///< not owned; may be null
    std::uint64_t deadline;
    std::chrono::steady_clock::time_point epoch;
    std::vector<PeerSlot> peers;
    std::atomic<std::uint64_t> downMask{0};
    std::atomic<std::uint64_t> detectionCount{0};
};

} // namespace dsm

#endif // DSM_NET_FAILURE_DETECTOR_HH
