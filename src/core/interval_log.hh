/**
 * @file
 * The LRC interval record log: per processor, the dense sequence of
 * closed intervals (Section 5.1 of the paper) known to this node.
 *
 * Storage is a deque per processor, so references returned by add()
 * and recordsAfter() stay valid while later records are appended (the
 * seed kept vectors, whose reallocation dangled earlier pointers), and
 * so barrier-time garbage collection can pop globally-applied records
 * off the front in O(1) without disturbing the rest.
 */

#ifndef DSM_CORE_INTERVAL_LOG_HH
#define DSM_CORE_INTERVAL_LOG_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "net/serde.hh"
#include "sync/vector_time.hh"
#include "util/types.hh"

namespace dsm {

/** One closed interval that modified pages. */
struct IntervalRec
{
    NodeId proc = -1;
    std::uint32_t idx = 0;
    VectorTime vt;
    std::vector<PageId> pages;
};

class IntervalLog
{
  public:
    IntervalLog() = default;

    explicit IntervalLog(int nprocs) : procs(nprocs) {}

    int nprocs() const { return static_cast<int>(procs.size()); }

    /**
     * Append @p rec if missing; returns the stored record. Interval
     * indices are dense per processor: appending idx n+2 when only n
     * records are known is a protocol error, as is re-adding a record
     * that garbage collection already pruned.
     *
     * @param was_new If non-null, set to whether the record was
     *        actually appended (false: it was already known). Lets
     *        callers distinguish the first processing of a record
     *        from idempotent re-deliveries.
     */
    const IntervalRec &add(IntervalRec rec, bool *was_new = nullptr);

    /** Largest interval index of @p proc present (0 = none yet). */
    std::uint32_t
    lastIdxOf(NodeId proc) const
    {
        const ProcLog &pl = procs[proc];
        return pl.base + static_cast<std::uint32_t>(pl.recs.size());
    }

    /** Number of pruned (leading) records of @p proc: records with
     *  idx <= baseOf(proc) are gone. */
    std::uint32_t baseOf(NodeId proc) const { return procs[proc].base; }

    /** Record (proc, idx), or nullptr when unknown or pruned. */
    const IntervalRec *find(NodeId proc, std::uint32_t idx) const;

    /** Records with idx > since[proc] (and, if given, <= up_to),
     *  in per-processor idx order. */
    std::vector<const IntervalRec *>
    recordsAfter(const VectorTime &since,
                 const VectorTime *up_to = nullptr) const;

    /** Records of @p proc with idx > since_idx, in idx order. */
    std::vector<const IntervalRec *>
    recordsOfAfter(NodeId proc, std::uint32_t since_idx) const;

    /**
     * Drop every record (p, idx <= through[p]) — barrier-time GC once
     * all nodes have applied them. Returns the number pruned.
     */
    std::uint64_t pruneThrough(const VectorTime &through);

    /** Records currently held across all processors. */
    std::size_t totalRecords() const;

    /** Page entries referenced by the held records (sum of
     *  rec.pages.size() — the live arena pressure the adaptive GC
     *  trigger sizes itself from). Maintained incrementally. */
    std::uint64_t totalPageRefs() const { return pageRefs; }

    /** Checkpoint support: capture / rebuild the full log, including
     *  the per-processor GC bases (a restored node must refuse the
     *  same pruned records the original would have). */
    void serialize(WireWriter &w) const;
    void restoreFrom(WireReader &r);

  private:
    struct ProcLog
    {
        /** idx of recs.front() is base + 1. */
        std::uint32_t base = 0;
        std::deque<IntervalRec> recs;
    };

    std::vector<ProcLog> procs;
    std::uint64_t pageRefs = 0;
};

} // namespace dsm

#endif // DSM_CORE_INTERVAL_LOG_HH
