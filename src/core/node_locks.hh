/**
 * @file
 * The per-node lock hierarchy that replaced the monolithic node mutex
 * (see DESIGN.md, "Lock order"). One node used to serialize every
 * shared access, protocol action and service-thread message behind a
 * single std::mutex; SMP nodes (ClusterConfig::threadsPerNode > 1)
 * shard it into per-subsystem locks so that application threads of one
 * node only contend where they actually share state:
 *
 *   lockMu / barMu (inside LockService / BarrierService)
 *     -> core   protocol core: vector time, per-page copy metadata
 *               (PageMeta / invalidPages), barrier scratch, EC lock
 *               info + range twins, GC flags
 *     -> home   home-based LRC: page->home table, home-side state,
 *               parked flushes/requests
 *     -> ilog   the interval record log (leaf-ish: mutations happen
 *               under core+ilog, service-thread reads under ilog
 *               alone, so record references handed out while core is
 *               held cannot be pruned away)
 *     -> diff   the diff store (same discipline as ilog)
 *     -> shard[i] (ascending i)
 *               page-granular memory state: page bytes during
 *               protocol reads/writes, twin creation/drop, dirty-bit
 *               scan+clear, page access-bit transitions
 *
 * A thread may only acquire a lock that is to the right of everything
 * it already holds: ilog may be held while taking a shard (the
 * timestamp word-merge probes the log per word), diff is never held
 * together with a shard, and nothing to the left is ever acquired
 * while holding something to its right. Page access bits themselves
 * are atomics (PageTable), so hot fast-path *reads* of them take no
 * lock at all; transitions follow the per-site discipline documented
 * in DESIGN.md.
 */

#ifndef DSM_CORE_NODE_LOCKS_HH
#define DSM_CORE_NODE_LOCKS_HH

#include <cstdint>
#include <mutex>

#include "util/types.hh"

namespace dsm {

class NodeLocks
{
  public:
    static constexpr std::uint32_t kMemShards = 16;

    std::mutex core;
    std::mutex home;
    std::mutex ilog;
    std::mutex diff;
    std::mutex memShard[kMemShards];

    static std::uint32_t
    shardIndex(PageId page)
    {
        return static_cast<std::uint32_t>(page) & (kMemShards - 1);
    }

    std::mutex &
    shardFor(PageId page)
    {
        return memShard[shardIndex(page)];
    }

    /**
     * RAII lock over every shard covering the page range
     * [first, last], acquired in ascending shard index (the canonical
     * order), so multi-page operations (bulk writes, EC range scans)
     * cannot deadlock against per-page ones.
     */
    class ShardSpan
    {
      public:
        ShardSpan(NodeLocks &locks, PageId first, PageId last)
            : nl(locks)
        {
            if (last - first + 1 >= kMemShards) {
                mask = (1u << kMemShards) - 1;
            } else {
                for (PageId p = first; p <= last; ++p)
                    mask |= 1u << shardIndex(p);
            }
            for (std::uint32_t i = 0; i < kMemShards; ++i) {
                if (mask & (1u << i))
                    nl.memShard[i].lock();
            }
        }

        ~ShardSpan()
        {
            for (std::uint32_t i = kMemShards; i-- > 0;) {
                if (mask & (1u << i))
                    nl.memShard[i].unlock();
            }
        }

        ShardSpan(const ShardSpan &) = delete;
        ShardSpan &operator=(const ShardSpan &) = delete;

      private:
        NodeLocks &nl;
        std::uint32_t mask = 0;
    };
};

} // namespace dsm

#endif // DSM_CORE_NODE_LOCKS_HH
