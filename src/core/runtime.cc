#include "core/runtime.hh"

#include "util/logging.hh"

namespace dsm {

Runtime::Runtime(const Deps &deps)
    : id(deps.self), numProcs(deps.nprocs), arena(deps.arena),
      ep(deps.endpoint), locks(deps.locks), barriers(deps.barriers),
      regions(deps.regions), mu(deps.nodeMutex), cluster(deps.cluster)
{
    DSM_ASSERT(arena && ep && locks && barriers && regions && mu && cluster,
               "incomplete runtime wiring");
}

GlobalAddr
Runtime::sharedAlloc(std::size_t bytes, std::size_t align,
                     std::uint32_t block_size, const std::string &name)
{
    std::lock_guard<std::mutex> g(*mu);
    GlobalAddr addr = arena->alloc(bytes, align);
    regions->add({addr, bytes, block_size, name});
    return addr;
}

void
Runtime::acquire(LockId lock, AccessMode mode)
{
    locks->acquire(lock, mode);
}

void
Runtime::release(LockId lock)
{
    locks->release(lock);
}

void
Runtime::barrier(BarrierId barrier)
{
    preBarrier();
    barriers->wait(barrier);
}

void
Runtime::chargeWork(std::uint64_t units)
{
    ep->clock().add(units * costModel().workUnitNs);
    ep->stats().workUnits += units;
}

void
Runtime::handleMessage(Message &msg)
{
    panic("runtime %s cannot handle message %s", name().c_str(),
          toString(msg.type));
}

} // namespace dsm
