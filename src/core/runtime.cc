#include "core/runtime.hh"

#include "core/checkpoint.hh"
#include "util/logging.hh"

namespace dsm {

Runtime::Runtime(const Deps &deps)
    : id(deps.self), numProcs(deps.nprocs),
      threadsT(deps.threadsPerNode), arena(deps.arena),
      ep(deps.endpoint), locks(deps.locks), barriers(deps.barriers),
      regions(deps.regions), nl(deps.nodeLocks), cluster(deps.cluster)
{
    DSM_ASSERT(arena && ep && locks && barriers && regions && nl &&
                   cluster,
               "incomplete runtime wiring");
    DSM_ASSERT(threadsT >= 1, "bad threadsPerNode %d", threadsT);
}

GlobalAddr
Runtime::sharedAlloc(std::size_t bytes, std::size_t align,
                     std::uint32_t block_size, const std::string &name)
{
    std::lock_guard<std::mutex> g(allocMu);
    ThreadContext *ctx = ThreadContext::current();
    if (ctx && ctx->allocCursor < allocLog.size()) {
        // A sibling thread already performed this allocation of the
        // node's SPMD sequence; replay its address.
        return allocLog[ctx->allocCursor++];
    }
    GlobalAddr addr = arena->alloc(bytes, align);
    // Zero-size allocations (empty worker partitions on wide SMP
    // grids) get a valid address but no region: they share it with
    // the next allocation and would otherwise collide in the table.
    if (bytes > 0)
        regions->add({addr, bytes, block_size, name});
    allocLog.push_back(addr);
    if (ctx)
        ctx->allocCursor = static_cast<std::uint32_t>(allocLog.size());
    return addr;
}

void
Runtime::initRaw(GlobalAddr addr, const void *src, std::size_t size)
{
    if (size == 0)
        return;
    // Serialize against sibling initializers and protocol page access;
    // every thread writes the same SPMD-identical image, so repeats
    // are overwrites with identical bytes.
    NodeLocks::ShardSpan span(*nl, arena->pageOf(addr),
                              arena->pageOf(addr + size - 1));
    std::memcpy(arena->at(addr), src, size);
}

void
Runtime::acquire(LockId lock, AccessMode mode)
{
    locks->acquire(lock, mode);
}

void
Runtime::release(LockId lock)
{
    locks->release(lock);
}

void
Runtime::barrier(BarrierId barrier)
{
    // The checkpoint rendezvous runs before the protocol's own
    // pre-barrier work: at that point no thread is mid-acquire or
    // mid-wait, which is what makes the cut consistent.
    if (ckptCoord)
        ckptCoord->atBarrier(*this, barrier);
    preBarrier();
    barriers->wait(barrier);
}

void
Runtime::chargeWork(std::uint64_t units)
{
    ep->clock().add(units * costModel().workUnitNs);
    ep->stats().workUnits += units;
}

void
Runtime::pollIdle()
{
    // Virtual-clock accounting is identical with the knob on or off —
    // the blocking dequeue changes where wall-clock goes, never the
    // modeled time — so final states stay bit-identical.
    chargeWork(400);
    if (!ep->blockingDequeueOn())
        return;
    ep->stats().idlePolls++;
    // Nothing buffered may sit unsent while this worker sleeps.
    ep->flushCoalesced();
    // Adaptive spin before parking, same shape as the ring consumer:
    // a poller whose last wait parked skips straight to the futex.
    static thread_local bool lastParked = false;
    const std::uint32_t seen = ep->activityStamp();
    const int budget = lastParked ? 0 : 128;
    for (int spin = 0; spin < budget; ++spin) {
        if (ep->activityStamp() != seen) {
            lastParked = false;
            return;
        }
        cpuRelax();
    }
    // Bounded park: the progress this poller waits for can be a
    // remote store into shared memory that bumps nothing locally, so
    // the park must time out and re-poll.
    ep->stats().idleParks++;
    ep->waitActivity(seen, 100'000);
    lastParked = true;
}

void
Runtime::handleMessage(Message &msg)
{
    panic("runtime %s cannot handle message %s", name().c_str(),
          toString(msg.type));
}

void
Runtime::serialize(WireWriter &w) const
{
    std::lock_guard<std::mutex> g(allocMu);
    const std::uint64_t used = arena->used();
    w.putU64(used);
    w.putBytes(arena->at(0), static_cast<std::size_t>(used));
    w.putU32(static_cast<std::uint32_t>(allocLog.size()));
    for (GlobalAddr a : allocLog)
        w.putU64(a);
}

void
Runtime::restoreFrom(WireReader &r)
{
    std::lock_guard<std::mutex> g(allocMu);
    const std::uint64_t used = r.getU64();
    // Allocation is SPMD-deterministic and the snapshot was taken at
    // the same logical point the node restarts from, so the arena
    // watermark must already match — recovery rewrites contents, it
    // never re-allocates.
    DSM_ASSERT(used == arena->used(),
               "checkpoint arena watermark %llu != live %llu",
               static_cast<unsigned long long>(used),
               static_cast<unsigned long long>(arena->used()));
    r.getBytes(arena->at(0), static_cast<std::size_t>(used));
    allocLog.clear();
    const std::uint32_t nalloc = r.getU32();
    allocLog.reserve(nalloc);
    for (std::uint32_t i = 0; i < nalloc; ++i)
        allocLog.push_back(r.getU64());
}

void
Runtime::wipeForRecovery()
{
    std::lock_guard<std::mutex> g(allocMu);
    // Scribble, don't zero: zeroed pages look like valid initial data
    // and would let a broken restore pass by accident.
    std::memset(arena->at(0), 0xDB, static_cast<std::size_t>(arena->used()));
    allocLog.clear();
}

} // namespace dsm
