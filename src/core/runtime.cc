#include "core/runtime.hh"

#include "util/logging.hh"

namespace dsm {

Runtime::Runtime(const Deps &deps)
    : id(deps.self), numProcs(deps.nprocs),
      threadsT(deps.threadsPerNode), arena(deps.arena),
      ep(deps.endpoint), locks(deps.locks), barriers(deps.barriers),
      regions(deps.regions), nl(deps.nodeLocks), cluster(deps.cluster)
{
    DSM_ASSERT(arena && ep && locks && barriers && regions && nl &&
                   cluster,
               "incomplete runtime wiring");
    DSM_ASSERT(threadsT >= 1, "bad threadsPerNode %d", threadsT);
}

GlobalAddr
Runtime::sharedAlloc(std::size_t bytes, std::size_t align,
                     std::uint32_t block_size, const std::string &name)
{
    std::lock_guard<std::mutex> g(allocMu);
    ThreadContext *ctx = ThreadContext::current();
    if (ctx && ctx->allocCursor < allocLog.size()) {
        // A sibling thread already performed this allocation of the
        // node's SPMD sequence; replay its address.
        return allocLog[ctx->allocCursor++];
    }
    GlobalAddr addr = arena->alloc(bytes, align);
    // Zero-size allocations (empty worker partitions on wide SMP
    // grids) get a valid address but no region: they share it with
    // the next allocation and would otherwise collide in the table.
    if (bytes > 0)
        regions->add({addr, bytes, block_size, name});
    allocLog.push_back(addr);
    if (ctx)
        ctx->allocCursor = static_cast<std::uint32_t>(allocLog.size());
    return addr;
}

void
Runtime::initRaw(GlobalAddr addr, const void *src, std::size_t size)
{
    if (size == 0)
        return;
    // Serialize against sibling initializers and protocol page access;
    // every thread writes the same SPMD-identical image, so repeats
    // are overwrites with identical bytes.
    NodeLocks::ShardSpan span(*nl, arena->pageOf(addr),
                              arena->pageOf(addr + size - 1));
    std::memcpy(arena->at(addr), src, size);
}

void
Runtime::acquire(LockId lock, AccessMode mode)
{
    locks->acquire(lock, mode);
}

void
Runtime::release(LockId lock)
{
    locks->release(lock);
}

void
Runtime::barrier(BarrierId barrier)
{
    preBarrier();
    barriers->wait(barrier);
}

void
Runtime::chargeWork(std::uint64_t units)
{
    ep->clock().add(units * costModel().workUnitNs);
    ep->stats().workUnits += units;
}

void
Runtime::handleMessage(Message &msg)
{
    panic("runtime %s cannot handle message %s", name().c_str(),
          toString(msg.type));
}

} // namespace dsm
