#include "core/interval_log.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dsm {

const IntervalRec &
IntervalLog::add(IntervalRec rec, bool *was_new)
{
    ProcLog &pl = procs[rec.proc];
    const std::uint32_t last = lastIdxOf(rec.proc);
    if (was_new)
        *was_new = rec.idx > last;
    if (rec.idx <= last) {
        // Already known (interval indices are dense per processor) —
        // unless GC pruned it, in which case no peer should still be
        // sending it: pruning requires every node to have applied it.
        DSM_ASSERT(rec.idx > pl.base,
                   "record %d:%u resent after garbage collection "
                   "(base %u)",
                   rec.proc, rec.idx, pl.base);
        return pl.recs[rec.idx - pl.base - 1];
    }
    DSM_ASSERT(rec.idx == last + 1,
               "gap in interval log of proc %d: have %u, got %u",
               rec.proc, last, rec.idx);
    pageRefs += rec.pages.size();
    pl.recs.push_back(std::move(rec));
    return pl.recs.back();
}

const IntervalRec *
IntervalLog::find(NodeId proc, std::uint32_t idx) const
{
    const ProcLog &pl = procs[proc];
    if (idx <= pl.base || idx > lastIdxOf(proc))
        return nullptr;
    return &pl.recs[idx - pl.base - 1];
}

std::vector<const IntervalRec *>
IntervalLog::recordsAfter(const VectorTime &since,
                          const VectorTime *up_to) const
{
    std::vector<const IntervalRec *> out;
    for (int p = 0; p < nprocs(); ++p) {
        const ProcLog &pl = procs[p];
        // A requester behind the GC floor would need pruned records;
        // the barrier protocol guarantees this cannot happen (pruning
        // waits until every node has applied and covered them).
        DSM_ASSERT(since[p] >= pl.base,
                   "proc %d asks for records after %u below GC base %u",
                   p, since[p], pl.base);
        std::uint32_t end = lastIdxOf(p);
        if (up_to)
            end = std::min(end, (*up_to)[p]);
        for (std::uint32_t idx = since[p] + 1; idx <= end; ++idx)
            out.push_back(&pl.recs[idx - pl.base - 1]);
    }
    return out;
}

std::vector<const IntervalRec *>
IntervalLog::recordsOfAfter(NodeId proc, std::uint32_t since_idx) const
{
    const ProcLog &pl = procs[proc];
    DSM_ASSERT(since_idx >= pl.base,
               "records of proc %d after %u below GC base %u", proc,
               since_idx, pl.base);
    std::vector<const IntervalRec *> out;
    const std::uint32_t end = lastIdxOf(proc);
    for (std::uint32_t idx = since_idx + 1; idx <= end; ++idx)
        out.push_back(&pl.recs[idx - pl.base - 1]);
    return out;
}

std::uint64_t
IntervalLog::pruneThrough(const VectorTime &through)
{
    std::uint64_t pruned = 0;
    for (int p = 0; p < nprocs(); ++p) {
        ProcLog &pl = procs[p];
        while (!pl.recs.empty() && pl.recs.front().idx <= through[p]) {
            pageRefs -= pl.recs.front().pages.size();
            pl.recs.pop_front();
            ++pl.base;
            ++pruned;
        }
    }
    return pruned;
}

std::size_t
IntervalLog::totalRecords() const
{
    std::size_t total = 0;
    for (const ProcLog &pl : procs)
        total += pl.recs.size();
    return total;
}

void
IntervalLog::serialize(WireWriter &w) const
{
    w.putU32(static_cast<std::uint32_t>(procs.size()));
    for (const ProcLog &pl : procs) {
        w.putU32(pl.base);
        w.putU32(static_cast<std::uint32_t>(pl.recs.size()));
        for (const IntervalRec &rec : pl.recs) {
            w.putI64(rec.proc);
            w.putU32(rec.idx);
            rec.vt.encode(w);
            w.putU32(static_cast<std::uint32_t>(rec.pages.size()));
            for (PageId page : rec.pages)
                w.putU32(page);
        }
    }
}

void
IntervalLog::restoreFrom(WireReader &r)
{
    const std::uint32_t nprocs = r.getU32();
    procs.assign(nprocs, ProcLog{});
    pageRefs = 0;
    for (std::uint32_t p = 0; p < nprocs; ++p) {
        ProcLog &pl = procs[p];
        pl.base = r.getU32();
        const std::uint32_t nrecs = r.getU32();
        for (std::uint32_t i = 0; i < nrecs; ++i) {
            IntervalRec rec;
            rec.proc = static_cast<NodeId>(r.getI64());
            rec.idx = r.getU32();
            rec.vt = VectorTime::decode(r);
            const std::uint32_t npages = r.getU32();
            rec.pages.reserve(npages);
            for (std::uint32_t pg = 0; pg < npages; ++pg)
                rec.pages.push_back(r.getU32());
            pageRefs += rec.pages.size();
            pl.recs.push_back(std::move(rec));
        }
    }
}

} // namespace dsm
