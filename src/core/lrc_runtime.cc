#include "core/lrc_runtime.hh"

#include <algorithm>
#include <cstdio>
#include <span>

#include "core/checkpoint.hh"
#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

LrcRuntime::LrcRuntime(const Deps &deps)
    : Runtime(deps),
      vt(deps.nprocs),
      ilog(deps.nprocs),
      pages(deps.arena->numPages(),
            deps.cluster->runtime.trap == TrapMethod::Twinning
                ? PageAccess::Read
                : PageAccess::ReadWrite),
      dirty(deps.arena->size(), deps.arena->pageSize()),
      homes(deps.nprocs, deps.self,
            deps.cluster->homeMigrateThreshold,
            deps.cluster->homeDecayWindow,
            deps.cluster->homeMigrateLastWriter > 0,
            deps.cluster->homeWriterSwitchThreshold,
            static_cast<std::uint32_t>(
                std::max(0, deps.cluster->homePingPongLimit)),
            deps.arena->numPages())
{
    DSM_ASSERT(cluster->runtime.model == Model::LRC, "config mismatch");
    optRead = homeMode() && cluster->optimisticHomeReads > 0;
    optReadRetryBudget = std::max(0, cluster->optReadMaxRetries);
    announceWrites = !homeMode() && usesDiffing() &&
                     cluster->diffGapWords > 0;
    // PageMeta::writerMask is one bit per node; Cluster enforces the
    // same bound, but the shift width is this class's invariant.
    DSM_ASSERT(deps.nprocs >= 1 && deps.nprocs <= 64,
               "writerMask holds at most 64 nodes, got %d", deps.nprocs);
    cluster->runtime.validate();

    LockHooks lh;
    lh.makeRequest = [this](LockId lock, AccessMode mode) {
        return makeLockRequest(lock, mode);
    };
    lh.makeGrant = [this](LockId lock, AccessMode mode, NodeId origin,
                          WireReader &req) {
        return makeLockGrant(lock, mode, origin, req);
    };
    lh.applyGrant = [this](LockId lock, AccessMode mode, WireReader &r) {
        applyLockGrant(lock, mode, r);
    };
    locks->setHooks(std::move(lh));

    BarrierHooks bh;
    bh.makeArrival = [this](BarrierId b) { return makeArrival(b); };
    bh.mergeArrival = [this](BarrierId b, NodeId n, WireReader &r) {
        mergeArrival(b, n, r);
    };
    bh.makeDepart = [this](BarrierId b, NodeId n) {
        return makeDepart(b, n);
    };
    bh.applyDepart = [this](BarrierId b, WireReader &r) {
        applyDepart(b, r);
    };
    barriers->setHooks(std::move(bh));
}

std::string
LrcRuntime::name() const
{
    std::string n = cluster->runtime.name();
    if (homeMode())
        n += "+home";
    return n;
}

void
LrcRuntime::bindLock(LockId, std::vector<Range>)
{
    panic("LRC has no association between locks and data (Section 3.2); "
          "bindLock is an EC-only operation");
}

void
LrcRuntime::rebindLock(LockId, std::vector<Range>)
{
    panic("rebindLock is an EC-only operation");
}

void
LrcRuntime::declareWriteIntent(GlobalAddr addr, std::size_t bytes)
{
    if (!announceWrites || bytes == 0)
        return;
    std::lock_guard<std::mutex> g(nl->core);
    const PageId first = arena->pageOf(addr);
    const PageId last = arena->pageOf(addr + bytes - 1);
    for (PageId p = first; p <= last; ++p) {
        writtenPages.insert(p);
        meta(p).writerMask |= std::uint64_t{1} << id;
    }
}

LrcRuntime::PageMeta &
LrcRuntime::meta(PageId page)
{
    auto [it, inserted] = pageMeta.try_emplace(page);
    if (inserted)
        it->second.copyVt = VectorTime(numProcs);
    return it->second;
}

void
LrcRuntime::resolveCoveredNotices(PageId page, PageMeta &m)
{
    std::erase_if(m.notices, [&](const auto &notice) {
        return notice.second <= m.copyVt[notice.first];
    });
    if (m.notices.empty())
        invalidPages.erase(page);
}

BlockTimestamps &
LrcRuntime::tsOf(PageId page)
{
    auto [it, inserted] = pageTs.try_emplace(page);
    if (inserted) {
        it->second = BlockTimestamps(
            static_cast<std::uint32_t>(arena->pageSize() / 4));
    }
    return it->second;
}

void
LrcRuntime::closeInterval()
{
    // Caller holds nl->core (all protocol hooks do). Page bytes,
    // twins and dirty bits are touched under each page's memory
    // shard, so sibling writers of *other* pages proceed in parallel
    // and writers of the same page land either in this interval
    // (before the shard is taken) or re-fault into the next one.
    std::vector<PageId> modified;
    if (usesTwinning()) {
        modified = twins.twinnedPages();
    } else {
        if (cluster->hierarchicalDirty) {
            modified = dirty.dirtyPages();
        } else {
            // Flat ablation: no page-level bits, so write collection
            // must scan the word bits of the entire shared region.
            const std::uint64_t blocks = arena->used() / 4;
            clock().add(costModel().perWordScanNs * blocks);
            stats().tsWordsScanned += blocks;
            modified = dirty.dirtyPages();
        }
    }
    if (modified.empty())
        return;
    std::sort(modified.begin(), modified.end());

    const std::uint32_t idx = ++vt[id];
    IntervalRec rec;
    rec.proc = id;
    rec.idx = idx;
    rec.vt = vt;
    rec.pages = modified;

    const std::uint64_t page_words = arena->pageSize() / 4;
    const std::uint64_t vt_sum = rec.vt.sum();
    // Home mode: diffs of one close, grouped by home, flushed (or
    // deferred) below. Each carries the writer's previous interval
    // for its page so the home can apply one writer's flushes in
    // order even when forwarding chains reorder their arrival.
    std::map<NodeId, std::vector<PendingFlush>> flushes;
    std::vector<std::pair<std::pair<PageId, std::uint64_t>, DiffEntry>>
        store;
    std::unique_lock<std::mutex> hg(nl->home, std::defer_lock);
    if (homeMode())
        hg.lock();
    for (PageId p : modified) {
        const std::uint32_t prev_idx = meta(p).copyVt[id];
        meta(p).copyVt[id] = idx;
        meta(p).writerMask |= std::uint64_t{1} << id;
        if (announceWrites)
            writtenPages.insert(p);
        const GlobalAddr base = arena->pageBase(p);
        std::lock_guard<std::mutex> sg(nl->shardFor(p));
        if (usesTwinning()) {
            // Twins are only dropped by closeInterval itself, which
            // always runs under nl->core, so the snapshot cannot have
            // gone stale even with sibling threads active.
            DSM_ASSERT(twins.hasPage(p),
                       "twin of page %u vanished during interval close",
                       p);
            const std::byte *cur = arena->at(base);
            const std::byte *twin = twins.pageTwin(p).data();
            clock().add(costModel().perWordDiffNs * page_words);
            // Gap coalescing bridges unchanged words with their local
            // contents; at a home those words may carry concurrent
            // writers' flushes, so home mode keeps runs word-exact.
            // Elsewhere it is only safe when no concurrent writer can
            // interleave in the gap: gate it on the page's observed
            // writer history (adaptive single-writer coalescing).
            const bool single_writer =
                (meta(p).writerMask & ~(std::uint64_t{1} << id)) == 0;
            const DiffScan scan{scanKernelFor(cluster->wideDiffScan),
                                (homeMode() || !single_writer)
                                    ? 0
                                    : cluster->diffGapWords};
            if (usesDiffing()) {
                if (homeMode() && homes.isHome(p)) {
                    auto &hs = homes.state(
                        p, static_cast<std::uint32_t>(page_words));
                    if (hs.appliedVt[id] < prev_idx) {
                        // The page migrated to us while our older
                        // flushes for it are still chasing the home
                        // chain: advancing appliedVt[id] past them
                        // here would claim intervals whose words the
                        // (regressed) home copy does not hold — and
                        // hand that claim to remote fetchers. Enter
                        // this close into the chain as a parked flush
                        // instead; drainParkedFlushes applies it in
                        // interval order once the chain catches up
                        // (the bytes are already in place, so the
                        // apply is an idempotent stamp).
                        parkedFlushes.push_back(
                            {id, idx, prev_idx, vt_sum, p,
                             Diff::create(cur, twin,
                                          static_cast<std::uint32_t>(
                                              arena->pageSize()),
                                          &stats(), scan)});
                    } else {
                    // Our copy is the home copy and already holds the
                    // writes; stamp the word ordering sums straight
                    // off the cur-vs-twin scan, no diff needed.
                    stats().diffWordsCompared += page_words;
                    stampChangedWordSums(
                        hs.wordSums, cur, twin,
                        static_cast<std::uint32_t>(arena->pageSize()),
                        vt_sum, scan.kernel);
                    // Published atomically: the lock-free snapshot
                    // path reads appliedVt elements without the home
                    // lock (a racing reader may still see the old
                    // value — it merely understates coverage, which
                    // the client treats as a fallback, never as a
                    // wrong page).
                    std::atomic_ref<std::uint32_t>(hs.appliedVt[id])
                        .store(idx, std::memory_order_release);
                    // Keep the migratory classifier aware of local
                    // writes (a self interval is a writer switch when
                    // a remote one preceded it; never migrates).
                    homes.countFlushWriter(hs, id);
                    }
                } else {
                    Diff d = Diff::create(cur, twin,
                                          static_cast<std::uint32_t>(
                                              arena->pageSize()),
                                          &stats(), scan);
                    if (!homeMode()) {
                        store.emplace_back(
                            std::make_pair(p, packTs(id, idx)),
                            DiffEntry{std::move(d), vt_sum});
                    } else {
                        flushes[homes.homeOf(p)].push_back(
                            {p, idx, prev_idx, vt_sum, std::move(d)});
                    }
                }
            } else {
                // Twin + timestamps: changed words get (self, idx).
                BlockTimestamps &ts = tsOf(p);
                stats().diffWordsCompared += page_words;
                stampChangedWords(ts, cur, twin,
                                  static_cast<std::uint32_t>(
                                      arena->pageSize()),
                                  packTs(id, idx), scan.kernel);
            }
            twins.dropPage(p);
            // Writable only within an interval: later writes re-fault
            // and re-twin (as in TreadMarks). Never resurrect a page a
            // sibling's grant application invalidated mid-interval.
            if (pages.access(p) == PageAccess::ReadWrite)
                pages.setAccess(p, PageAccess::Read);
        } else {
            // Compiler instrumentation (+ timestamps): fold the word
            // dirty bits of this page into word timestamps.
            BlockTimestamps &ts = tsOf(p);
            clock().add(costModel().perWordScanNs * page_words);
            stats().tsWordsScanned += page_words;
            for (const Run &r :
                 dirty.dirtyRunsIn(base, arena->pageSize())) {
                const std::uint32_t rel =
                    r.start - static_cast<std::uint32_t>(base / 4);
                ts.setRange(rel, r.length, packTs(id, idx));
            }
            dirty.clearRange(base, arena->pageSize());
        }
    }

    if (!flushes.empty() && cluster->homeFlushDefer > 0) {
        // Deferred-merge policy: park this close's payloads per home
        // (still under nl->home); they ride one message per home at
        // the next communication point. A request for one of these
        // intervals parks at the home exactly like a request for an
        // in-flight flush, so the laziness costs no correctness.
        for (auto &[home, entries] : flushes) {
            auto &bucket = pendingHomeFlushes[home];
            if (!bucket.empty()) {
                // One HomeDiffFlush message that never goes on the
                // wire: this close merges into the pending one.
                stats().homeFlushesDeferred++;
            }
            for (PendingFlush &e : entries)
                bucket.push_back(std::move(e));
        }
        flushes.clear();
    }
    if (hg.owns_lock())
        hg.unlock();
    if (!store.empty()) {
        std::lock_guard<std::mutex> dg(nl->diff);
        for (auto &[key, entry] : store)
            diffStore[key] = std::move(entry);
    }

    // Eager flush to the homes (legacy default), one message per
    // home, before the interval record can leave this node: any write
    // notice another node receives refers to a flush already in
    // flight.
    for (auto &[home, entries] : flushes) {
        for (const PendingFlush &e : entries)
            stats().diffBytesSent += e.diff.wireBytes();
        stats().homeFlushesSent++;
        sendFlushMessage(home, id, entries);
    }

    {
        std::lock_guard<std::mutex> ig(nl->ilog);
        ilog.add(std::move(rec));
    }
    stats().intervalsCreated++;
}

void
LrcRuntime::invalidateFor(const IntervalRec &rec, bool fresh)
{
    for (PageId p : rec.pages) {
        PageMeta &m = meta(p);
        m.writerMask |= std::uint64_t{1} << rec.proc;
        if (m.copyVt[rec.proc] >= rec.idx) {
            // First delivery of a notice whose data an earlier fetch
            // reply already piggybacked: the seed protocol would have
            // invalidated and refetched the page here. Counted only
            // while the feature is on so the DSM_NOTICE=0 ablation
            // reads a true zero baseline (diff replies ship eager
            // data either way; the counter measures the feature).
            if (fresh && cluster->piggybackWriteNotices &&
                pages.access(p) != PageAccess::None) {
                stats().reinvalidationsAvoided++;
            }
            continue;
        }
        const auto notice = std::make_pair(rec.proc, rec.idx);
        if (std::find(m.notices.begin(), m.notices.end(), notice) !=
            m.notices.end()) {
            continue;
        }
        m.notices.push_back(notice);
        invalidPages.insert(p);
        stats().writeNoticesReceived++;
        std::lock_guard<std::mutex> sg(nl->shardFor(p));
        if (pages.access(p) != PageAccess::None) {
            pages.setAccess(p, PageAccess::None);
            stats().pagesInvalidated++;
        }
    }
}

// ---------------------------------------------------------------------
// Write-notice piggybacking on fetch replies.

VectorTime
LrcRuntime::logCoverage() const
{
    std::lock_guard<std::mutex> ig(nl->ilog);
    VectorTime cov(numProcs);
    for (int p = 0; p < numProcs; ++p)
        cov[p] = ilog.lastIdxOf(p);
    return cov;
}

void
LrcRuntime::encodePiggybackedRecords(WireWriter &w,
                                     const VectorTime &req_log)
{
    if (!cluster->piggybackWriteNotices) {
        w.putU32(0);
        return;
    }
    // Everything the requester's log lacks, dense per processor (so
    // the requester's IntervalLog::add sees no gaps). The GC floor
    // cannot exceed the requester's coverage: pruning waits for a
    // barrier every node passed with its pages validated, and a
    // fetching node cannot be inside that barrier.
    //
    // Deferred-flush mode: cap our *own* records at the last flushed
    // interval. A record whose flush still sits in pendingHomeFlushes
    // must not leave through this service-thread path — the requester
    // could park at a home that waits for our flush while our app
    // thread blocks on the requester (every other exit for records —
    // lock grants, barrier arrivals — flushes first).
    const VectorTime *cap = nullptr;
    VectorTime flushed_cap;
    if (homeMode() && cluster->homeFlushDefer > 0) {
        flushed_cap = VectorTime(numProcs);
        for (int p = 0; p < numProcs; ++p) {
            flushed_cap[p] = p == id
                                 ? ownIdxFlushed.load(
                                       std::memory_order_relaxed)
                                 : ~std::uint32_t{0};
        }
        cap = &flushed_cap;
    }
    std::lock_guard<std::mutex> ig(nl->ilog);
    auto recs = ilog.recordsAfter(req_log, cap);
    w.putU32(static_cast<std::uint32_t>(recs.size()));
    for (const IntervalRec *rec : recs) {
        encodeRecord(w, *rec);
        stats().noticesPiggybacked += rec->pages.size();
    }
}

void
LrcRuntime::decodePiggybackedRecords(WireReader &r,
                                     std::vector<IntervalRec> &out)
{
    const std::uint32_t nrecs = r.getU32();
    for (std::uint32_t i = 0; i < nrecs; ++i)
        out.push_back(decodeRecord(r));
}

std::vector<const IntervalRec *>
LrcRuntime::ingestPiggybackedRecords(std::vector<IntervalRec> &recs)
{
    // Caller holds nl->core; the returned references stay valid
    // because pruning (applyDepart) also runs under core.
    std::lock_guard<std::mutex> ig(nl->ilog);
    std::vector<const IntervalRec *> fresh;
    for (IntervalRec &rec : recs) {
        bool was_new = false;
        const IntervalRec &stored = ilog.add(std::move(rec), &was_new);
        // No notices are added here: piggybacked records carry
        // ordering knowledge (and writer history) early, while
        // invalidation stays as lazy as the seed protocol.
        for (PageId p : stored.pages)
            meta(p).writerMask |= std::uint64_t{1} << stored.proc;
        if (was_new)
            fresh.push_back(&stored);
    }
    return fresh;
}

void
LrcRuntime::countAvoidedReinvalidations(
    const std::vector<const IntervalRec *> &fresh,
    const std::vector<BatchPageReq> &fetched)
{
    for (const IntervalRec *rec : fresh) {
        for (const BatchPageReq &pr : fetched) {
            if (!std::binary_search(rec->pages.begin(),
                                    rec->pages.end(), pr.page)) {
                continue;
            }
            PageMeta &m = meta(pr.page);
            if (m.copyVt[rec->proc] >= rec->idx &&
                pages.access(pr.page) != PageAccess::None) {
                stats().reinvalidationsAvoided++;
            }
        }
    }
}

void
LrcRuntime::applyPiggybackedRecords(
    std::vector<IntervalRec> &recs,
    const std::vector<BatchPageReq> &fetched)
{
    countAvoidedReinvalidations(ingestPiggybackedRecords(recs), fetched);
}

void
LrcRuntime::encodeRecord(WireWriter &w, const IntervalRec &rec)
{
    w.putU16(static_cast<std::uint16_t>(rec.proc));
    w.putU32(rec.idx);
    rec.vt.encode(w);
    w.putU32(static_cast<std::uint32_t>(rec.pages.size()));
    for (PageId p : rec.pages)
        w.putU32(p);
}

IntervalRec
LrcRuntime::decodeRecord(WireReader &r)
{
    IntervalRec rec;
    rec.proc = static_cast<NodeId>(r.getU16());
    rec.idx = r.getU32();
    rec.vt = VectorTime::decode(r);
    rec.pages.resize(r.getU32());
    for (PageId &p : rec.pages)
        p = r.getU32();
    return rec;
}

// ---------------------------------------------------------------------
// Lock hooks.

std::vector<std::byte>
LrcRuntime::makeLockRequest(LockId, AccessMode)
{
    std::lock_guard<std::mutex> g(nl->core);
    // An acquire begins a new interval (Section 5.1). The close's
    // flush payload may stay deferred across the request: only our
    // vector travels with it, no interval records leave, and a later
    // fetch of our own invalidated page flushes first
    // (fetchFromHome) — this is exactly the window where a releaser
    // accumulates several closes into one merged flush per home.
    closeInterval();
    WireWriter w;
    vt.encode(w);
    // Written-page announcement (homeless gap coalescing only): tell
    // the granter which pages we have ever written *before* it cuts
    // its grant-side diff. Without this, the granter only learns of
    // our writes from interval records — which arrive one grant too
    // late for the very first lock-mediated contact, letting its
    // still-"single-writer" gap-coalesced diff bridge a gap with
    // stale local words and clobber our concurrent write at a third
    // party (the writerMask first-contact bug).
    if (announceWrites) {
        w.putU32(static_cast<std::uint32_t>(writtenPages.size()));
        for (PageId p : writtenPages)
            w.putU32(p);
    } else {
        w.putU32(0);
    }
    return w.take();
}

std::vector<std::byte>
LrcRuntime::makeLockGrant(LockId, AccessMode, NodeId origin,
                          WireReader &req)
{
    std::lock_guard<std::mutex> g(nl->core);
    VectorTime req_vt = VectorTime::decode(req);
    // Widen writerMask with the requester's announced write history
    // before closeInterval chooses its diff gaps: any announced page
    // is no longer single-writer here, so its diff stays word-exact.
    const std::uint32_t nannounced = req.getU32();
    for (std::uint32_t i = 0; i < nannounced; ++i)
        meta(req.getU32()).writerMask |= std::uint64_t{1} << origin;
    closeInterval();
    // The grant below carries our interval records: every deferred
    // flush they refer to must be in flight before the grant leaves
    // (the eager protocol's invariant, re-established lazily).
    if (homeMode())
        flushPendingHomeFlushes();

    WireWriter w;
    vt.encode(w);
    // Send only records within my own vector. As the centralized
    // barrier manager, my log can briefly hold records merged from
    // other nodes' *next-barrier* arrivals that my vector does not yet
    // cover; leaking those would hand the requester notices it cannot
    // order or fetch against.
    std::lock_guard<std::mutex> ig(nl->ilog);
    auto recs = ilog.recordsAfter(req_vt, &vt);
    w.putU32(static_cast<std::uint32_t>(recs.size()));
    for (const IntervalRec *rec : recs) {
        encodeRecord(w, *rec);
        stats().writeNoticesSent += rec->pages.size();
    }
    return w.take();
}

void
LrcRuntime::applyLockGrant(LockId, AccessMode, WireReader &r)
{
    std::lock_guard<std::mutex> g(nl->core);
    VectorTime granter_vt = VectorTime::decode(r);
    const std::uint32_t nrecs = r.getU32();
    for (std::uint32_t i = 0; i < nrecs; ++i) {
        bool fresh = false;
        const IntervalRec *rec;
        {
            std::lock_guard<std::mutex> ig(nl->ilog);
            rec = &ilog.add(decodeRecord(r), &fresh);
        }
        invalidateFor(*rec, fresh);
    }
    vt.mergeMax(granter_vt);
}

// ---------------------------------------------------------------------
// Barrier hooks.

std::vector<std::byte>
LrcRuntime::makeArrival(BarrierId)
{
    std::lock_guard<std::mutex> g(nl->core);
    closeInterval();
    // Same invariant as lock grants: the records in this arrival (and
    // in the departures built from it) refer to flushes already in
    // flight.
    if (homeMode())
        flushPendingHomeFlushes();
    WireWriter w;
    vt.encode(w);
    // GC handshake, local half: did this node validate every invalid
    // page before arriving? (The interval just closed above is our own
    // data and trivially applied locally, so the flag still holds.)
    w.putU8(gcValidated ? 1 : 0);
    gcValidated = false;
    // Written-page announcement, barrier channel (homeless gap
    // coalescing only): the manager folds every arrival's set into the
    // departures, so two writers that only ever meet at barriers learn
    // of each other before either cuts its next diff — the
    // barrier-synchronized twin of the lock-request announcement.
    if (announceWrites) {
        w.putU32(static_cast<std::uint32_t>(writtenPages.size()));
        for (PageId p : writtenPages)
            w.putU32(p);
    }
    // Send my own records created since my previous barrier; every
    // record reaches the manager from its author.
    std::lock_guard<std::mutex> ig(nl->ilog);
    auto recs = ilog.recordsOfAfter(id, lastBarrierSentIdx);
    w.putU32(static_cast<std::uint32_t>(recs.size()));
    for (const IntervalRec *rec : recs) {
        encodeRecord(w, *rec);
        stats().writeNoticesSent += rec->pages.size();
    }
    lastBarrierSentIdx = ilog.lastIdxOf(id);
    return w.take();
}

void
LrcRuntime::mergeArrival(BarrierId barrier, NodeId node, WireReader &r)
{
    // barrierScratch is touched only by the service thread (this node
    // is the barrier manager); the interval log is shared.
    BarrierScratch &scratch = barrierScratch[barrier];
    if (scratch.arrivalVt.empty())
        scratch.arrivalVt.assign(numProcs, VectorTime(numProcs));
    scratch.arrivalVt[node] = VectorTime::decode(r);
    if (r.getU8())
        scratch.validatedArrivals++;
    if (announceWrites) {
        const std::uint32_t nannounced = r.getU32();
        std::lock_guard<std::mutex> cg(nl->core);
        for (std::uint32_t i = 0; i < nannounced; ++i) {
            const PageId p = r.getU32();
            scratch.announcedMasks[p] |= std::uint64_t{1} << node;
            meta(p).writerMask |= std::uint64_t{1} << node;
        }
    }
    const std::uint32_t nrecs = r.getU32();
    std::lock_guard<std::mutex> ig(nl->ilog);
    for (std::uint32_t i = 0; i < nrecs; ++i)
        ilog.add(decodeRecord(r));
}

std::vector<std::byte>
LrcRuntime::makeDepart(BarrierId barrier, NodeId node)
{
    BarrierScratch &scratch = barrierScratch[barrier];
    VectorTime global(numProcs);
    for (const VectorTime &avt : scratch.arrivalVt)
        global.mergeMax(avt);

    // GC handshake, global half: when every node arrived validated,
    // the elementwise minimum of the arrival vectors bounds what all
    // nodes have applied to all their copies; everything at or below
    // it can be discarded everywhere. Otherwise send the zero vector
    // (pruneThrough of zeros is a no-op).
    VectorTime gc_vt(numProcs);
    if (scratch.validatedArrivals == numProcs) {
        gc_vt = scratch.arrivalVt[0];
        for (const VectorTime &avt : scratch.arrivalVt) {
            for (int p = 0; p < numProcs; ++p)
                gc_vt[p] = std::min(gc_vt[p], avt[p]);
        }
    }

    WireWriter w;
    global.encode(w);
    gc_vt.encode(w);
    if (announceWrites) {
        w.putU32(
            static_cast<std::uint32_t>(scratch.announcedMasks.size()));
        for (const auto &[p, mask] : scratch.announcedMasks) {
            w.putU32(p);
            w.putU64(mask);
        }
    }
    std::lock_guard<std::mutex> ig(nl->ilog);
    auto recs = ilog.recordsAfter(scratch.arrivalVt[node]);
    w.putU32(static_cast<std::uint32_t>(recs.size()));
    for (const IntervalRec *rec : recs) {
        encodeRecord(w, *rec);
        stats().writeNoticesSent += rec->pages.size();
    }

    if (++scratch.departsBuilt == numProcs)
        barrierScratch.erase(barrier);
    return w.take();
}

void
LrcRuntime::applyDepart(BarrierId, WireReader &r)
{
    std::lock_guard<std::mutex> g(nl->core);
    VectorTime global = VectorTime::decode(r);
    VectorTime gc_vt = VectorTime::decode(r);
    if (announceWrites) {
        const std::uint32_t nannounced = r.getU32();
        for (std::uint32_t i = 0; i < nannounced; ++i) {
            const PageId p = r.getU32();
            meta(p).writerMask |= r.getU64();
        }
    }
    const std::uint32_t nrecs = r.getU32();
    for (std::uint32_t i = 0; i < nrecs; ++i) {
        bool fresh = false;
        const IntervalRec *rec;
        {
            std::lock_guard<std::mutex> ig(nl->ilog);
            rec = &ilog.add(decodeRecord(r), &fresh);
        }
        invalidateFor(*rec, fresh);
    }
    // Records the manager merged from *us* need no invalidation, but
    // records of other processors we already knew might still have
    // pending notices; invalidateFor is idempotent either way.
    vt.mergeMax(global);

    // The departure records above all carry idx > our arrival vector
    // >= gc_vt, so pruning cannot touch anything still pending.
    std::uint64_t pruned;
    {
        std::lock_guard<std::mutex> ig(nl->ilog);
        pruned = ilog.pruneThrough(gc_vt);
    }
    if (pruned > 0) {
        stats().gcRecordsReclaimed += pruned;
        stats().gcRounds++;
        std::uint64_t diffs_pruned = 0;
        std::lock_guard<std::mutex> dg(nl->diff);
        for (auto it = diffStore.begin(); it != diffStore.end();) {
            const std::uint64_t key = it->first.second;
            if (tsInterval(key) <= gc_vt[tsProc(key)]) {
                it = diffStore.erase(it);
                ++diffs_pruned;
            } else {
                ++it;
            }
        }
        stats().gcDiffsReclaimed += diffs_pruned;
    }
}

// ---------------------------------------------------------------------
// Access layer.

void
LrcRuntime::preBarrier()
{
    // Barrier-time GC, validation half (TreadMarks-style): once the
    // interval log is big enough, bring every invalid page current so
    // that all records within our vector are fully applied locally.
    // Log sizes converge at barriers, so all nodes cross the threshold
    // within one barrier of each other and the handshake completes.
    if (!cluster->gcAtBarriers)
        return;
    std::vector<PageId> invalid;
    {
        std::lock_guard<std::mutex> g(nl->core);
        std::size_t records;
        std::uint64_t page_refs;
        {
            std::lock_guard<std::mutex> ig(nl->ilog);
            records = ilog.totalRecords();
            page_refs = ilog.totalPageRefs();
        }
        // Static trigger: enough records. Adaptive trigger (ROADMAP):
        // enough arena pressure — records x pages per record — so a
        // log full of fat records collects long before the count
        // threshold; the static value stays as the fallback.
        bool trigger = records >= cluster->gcIntervalThreshold;
        if (cluster->adaptiveGcThreshold &&
            page_refs >= cluster->gcPressurePages) {
            trigger = true;
        }
        if (!trigger)
            return;
        // The maintained invalid-page set is already sorted and holds
        // exactly the pages with pending notices.
        invalid.assign(invalidPages.begin(), invalidPages.end());
    }
    for (PageId p : invalid) {
        bool still_invalid;
        {
            // A batched fetch may have validated p as a piggyback of
            // an earlier page in this loop (or, on SMP nodes, a
            // sibling thread's pre-barrier pass got there first).
            std::lock_guard<std::mutex> g(nl->core);
            still_invalid = !meta(p).notices.empty();
        }
        if (!still_invalid)
            continue;
        // Proactive fetch, not an access fault: skip fetchPage's trap
        // accounting (accessMisses / pageFaultNs) so GC-on vs GC-off
        // ablations attribute this traffic to GC, not to misses.
        fetchPageData(p);
    }
    {
        std::lock_guard<std::mutex> g(nl->core);
        gcValidated = true;
    }
}

void
LrcRuntime::ensurePresent(PageId page, bool read_only)
{
    // The access bits are atomics: the valid-page fast path takes no
    // lock at all. fetchPage revalidates under the protocol locks.
    if (pages.access(page) == PageAccess::None)
        fetchPage(page, read_only);
}

void
LrcRuntime::doRead(GlobalAddr addr, void *dst, std::size_t size)
{
    if (size == 0)
        return;
    const PageId first = arena->pageOf(addr);
    const PageId last = arena->pageOf(addr + size - 1);
    for (PageId p = first; p <= last; ++p)
        ensurePresent(p, /*read_only=*/true);
    // The copy itself holds the shards: the home-based protocol (and,
    // on SMP nodes, sibling fetches) applies remote writes to valid
    // pages from other threads, and a torn word must never reach the
    // application.
    NodeLocks::ShardSpan span(*nl, first, last);
    std::memcpy(dst, arena->at(addr), size);
}

void
LrcRuntime::doWrite(GlobalAddr addr, const void *src, std::size_t size,
                    bool bulk)
{
    if (size == 0)
        return;
    // Instrumentation charges are per call (identical to the
    // monolithic-mutex accounting); trapping and the store run per
    // page under that page's memory shard, so sibling writers of
    // other pages never serialize here and an interval close sees
    // either twin+store or neither.
    if (!usesTwinning()) {
        if (bulk) {
            const std::uint64_t blocks = (size + 3) / 4;
            clock().add(costModel().dirtyStoreNs * blocks / 2);
            stats().dirtyStores += blocks;
        } else {
            clock().add(costModel().dirtyStoreNs);
            stats().dirtyStores++;
        }
    }
    const PageId first = arena->pageOf(addr);
    const PageId last = arena->pageOf(addr + size - 1);
    const auto *bytes = static_cast<const std::byte *>(src);
    for (PageId p = first; p <= last; ++p) {
        const GlobalAddr page_lo =
            std::max<GlobalAddr>(addr, arena->pageBase(p));
        const GlobalAddr page_hi =
            std::min<GlobalAddr>(addr + size,
                                 arena->pageBase(p) + arena->pageSize());
        for (;;) {
            ensurePresent(p);
            std::lock_guard<std::mutex> sg(nl->shardFor(p));
            if (pages.access(p) == PageAccess::None) {
                // A sibling's grant application invalidated the page
                // between the fetch and the trap (SMP nodes only);
                // writing into the stale copy could lose the store to
                // the next full-page fetch. Refetch and retry.
                continue;
            }
            if (!usesTwinning()) {
                // Hierarchical software dirty bits: word + page level.
                dirty.markRange(page_lo, page_hi - page_lo);
            } else if (pages.access(p) == PageAccess::Read) {
                // Twinning: write fault on a non-writable page.
                const std::uint64_t words = arena->pageSize() / 4;
                clock().add(costModel().pageFaultNs +
                            costModel().perWordTwinNs * words);
                stats().pageFaults++;
                stats().twinsCreated++;
                stats().twinWordsCopied += words;
                twins.makePage(p, arena->at(arena->pageBase(p)),
                               arena->pageSize());
                pages.setAccess(p, PageAccess::ReadWrite);
            }
            if (optRead) {
                // Our stores race with the service thread's lock-free
                // snapshot copies (which serve other nodes' read-only
                // misses off any page homed here, including pages our
                // open interval is mutating). Byte-wise atomic stores
                // keep that race defined: a snapshot can only tear
                // across our *uncommitted* writes, which no remote
                // need vector can cover yet.
                optAtomicWriteBytes(arena->at(page_lo),
                                    bytes + (page_lo - addr),
                                    page_hi - page_lo);
            } else {
                std::memcpy(arena->at(page_lo), bytes + (page_lo - addr),
                            page_hi - page_lo);
            }
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Access-miss servicing.

void
LrcRuntime::fetchPage(PageId page, bool read_only)
{
    stats().accessMisses++;
    clock().add(costModel().pageFaultNs);
    fetchPageData(page, read_only);
}

void
LrcRuntime::fetchPageData(PageId page, bool read_only)
{
    if (threadsT == 1) {
        // Single app thread: exactly the historical dispatch.
        if (homeMode())
            fetchFromHome(page, read_only);
        else if (usesDiffing())
            fetchDiffs(page);
        else
            fetchTimestamps(page);
        return;
    }
    // SMP nodes: one fetch per page at a time. Siblings that miss the
    // same page wait for the in-flight fetch instead of issuing
    // duplicate request rounds.
    {
        std::unique_lock<std::mutex> g(nl->core);
        while (fetchesInFlight.count(page) != 0) {
            fetchCv.wait(g);
            if (pages.access(page) != PageAccess::None)
                return;
        }
        if (pages.access(page) != PageAccess::None)
            return;
        fetchesInFlight.insert(page);
    }
    // A fetch validates the page unless a sibling's concurrent grant
    // application raced a fresh notice in; retry until current.
    do {
        if (homeMode())
            fetchFromHome(page, read_only);
        else if (usesDiffing())
            fetchDiffs(page);
        else
            fetchTimestamps(page);
    } while (pages.access(page) == PageAccess::None);
    {
        std::lock_guard<std::mutex> g(nl->core);
        fetchesInFlight.erase(page);
    }
    fetchCv.notify_all();
}

namespace {

/** One diff pulled off the wire, tagged with its page and interval. */
struct FetchedDiff
{
    PageId page;
    NodeId proc;
    std::uint32_t idx;
    std::uint64_t vtSum;
    Diff diff;
    bool applied = false; ///< survived the duplicate check; store it
};

/** HomePageRequest payload; shared by the fresh-request and the two
 *  forwarding paths so the wire layout lives in one place. @p flags
 *  bit 0 asks the home for a lock-free version-validated snapshot
 *  (read-only miss under DSM_OPT_READ); forwards clear it, since a
 *  forwarded request has already paid the routing hop and the locked
 *  path answers it with piggybacked records. */
std::vector<std::byte>
encodePageRequest(NodeId origin, PageId page, const VectorTime &need,
                  const VectorTime &req_log, std::uint8_t flags = 0)
{
    WireWriter w;
    w.putU16(static_cast<std::uint16_t>(origin));
    w.putU32(page);
    w.putU8(flags);
    need.encode(w);
    req_log.encode(w);
    return w.take();
}

/** Happens-before linear extension (sum order) within each page. */
void
sortForApply(std::vector<FetchedDiff> &fetched)
{
    std::sort(fetched.begin(), fetched.end(),
              [](const FetchedDiff &a, const FetchedDiff &b) {
                  if (a.vtSum != b.vtSum)
                      return a.vtSum < b.vtSum;
                  if (a.proc != b.proc)
                      return a.proc < b.proc;
                  return a.idx < b.idx;
              });
}

} // namespace

void
LrcRuntime::snapshotBatchTargets(PageId page,
                                 std::vector<NodeId> &responders,
                                 std::vector<BatchPageReq> &reqs,
                                 VectorTime &log_cov,
                                 VectorTime *global_vt)
{
    std::lock_guard<std::mutex> g(nl->core);
    log_cov = logCoverage();
    if (global_vt)
        *global_vt = vt;
    PageMeta &m = meta(page);
    for (const auto &[proc, idx] : m.notices) {
        if (idx > m.copyVt[proc] && proc != id &&
            std::find(responders.begin(), responders.end(), proc) ==
                responders.end()) {
            responders.push_back(proc);
        }
    }
    reqs.push_back({page, m.copyVt});
    // Piggyback candidates come from the maintained invalid-page set
    // (exactly the pages with pending notices), not a walk over every
    // page ever touched: O(pending) under the node mutex.
    for (PageId p2 : invalidPages) {
        if (p2 == page)
            continue;
        const PageMeta &m2 = meta(p2);
        const bool covered = std::all_of(
            m2.notices.begin(), m2.notices.end(),
            [&](const auto &notice) {
                return notice.second <= m2.copyVt[notice.first] ||
                       std::find(responders.begin(), responders.end(),
                                 notice.first) != responders.end();
            });
        if (covered)
            reqs.push_back({p2, m2.copyVt});
    }
}

void
LrcRuntime::fetchDiffs(PageId page)
{
    if (!cluster->batchDiffFetch) {
        fetchDiffsLegacy(page);
        return;
    }

    std::vector<NodeId> responders;
    std::vector<BatchPageReq> reqs;
    VectorTime log_cov;
    snapshotBatchTargets(page, responders, reqs, log_cov);

    std::vector<FetchedDiff> fetched;
    std::vector<IntervalRec> precs;
    for (NodeId q : responders) {
        WireWriter w;
        log_cov.encode(w);
        w.putU32(static_cast<std::uint32_t>(reqs.size()));
        for (const BatchPageReq &pr : reqs) {
            w.putU32(pr.page);
            pr.copyVt.encode(w);
        }
        stats().diffRequestsSent++;
        Message reply = ep->call(q, MsgType::DiffBatchRequest, w.take());
        WireReader r(reply.payload);
        const std::uint32_t npages = r.getU32();
        for (std::uint32_t i = 0; i < npages; ++i) {
            const PageId p = r.getU32();
            const std::uint32_t n = r.getU32();
            for (std::uint32_t j = 0; j < n; ++j) {
                FetchedDiff f;
                f.page = p;
                f.proc = static_cast<NodeId>(r.getU16());
                f.idx = r.getU32();
                f.vtSum = r.getU64();
                f.diff = Diff::decode(r);
                fetched.push_back(std::move(f));
            }
        }
        decodePiggybackedRecords(r, precs);
        BufferPool::instance().release(std::move(reply.payload));
    }

    // Apply in a linear extension of happens-before (sum order), with
    // word-granularity merging for concurrent multi-writer diffs.
    // Sorting globally keeps the per-page subsequences ordered.
    sortForApply(fetched);

    std::lock_guard<std::mutex> g(nl->core);
    for (FetchedDiff &f : fetched) {
        PageMeta &m = meta(f.page);
        if (f.idx <= m.copyVt[f.proc])
            continue; // duplicate from another responder
        {
            std::lock_guard<std::mutex> sg(nl->shardFor(f.page));
            std::byte *base = arena->at(arena->pageBase(f.page));
            f.diff.apply(base, &stats());
            if (twins.hasPage(f.page)) {
                // SMP nodes: a sibling's interval is open on this
                // page; mirror the remote words into the twin so the
                // next cur-vs-twin diff still captures exactly the
                // local writes (same shadowing as the home's
                // applyDiffGuarded).
                f.diff.apply(twins.pageTwinMut(f.page).data());
            }
        }
        clock().add(costModel().perWordApplyNs *
                    ((f.diff.dataBytes() + 3) / 4));
        m.copyVt[f.proc] = std::max(m.copyVt[f.proc], f.idx);
        f.applied = true;
    }
    for (const BatchPageReq &pr : reqs) {
        PageMeta &m = meta(pr.page);
        resolveCoveredNotices(pr.page, m);
        if (threadsT == 1) {
            DSM_ASSERT(m.notices.empty(),
                       "page %u still has pending notices after "
                       "batched fetch",
                       pr.page);
        }
        if (m.notices.empty()) {
            // Only None -> valid: a sibling may have validated (and
            // even re-twinned) the page while our replies were in
            // flight. A page with an open twin (a sibling is
            // mid-interval on it) must come back writable — its twin
            // keeps capturing the local writes; Read would make the
            // next store re-fault and double-twin.
            std::lock_guard<std::mutex> sg(nl->shardFor(pr.page));
            if (pages.access(pr.page) == PageAccess::None) {
                pages.setAccess(pr.page, twins.hasPage(pr.page)
                                             ? PageAccess::ReadWrite
                                             : PageAccess::Read);
            }
        }
        if (pr.page != page)
            stats().diffPagesPiggybacked++;
    }
    {
        // Save for possible future transmission (Section 5.2).
        std::lock_guard<std::mutex> dg(nl->diff);
        for (FetchedDiff &f : fetched) {
            if (f.applied) {
                diffStore[{f.page, packTs(f.proc, f.idx)}] = {
                    std::move(f.diff), f.vtSum};
            }
        }
    }
    applyPiggybackedRecords(precs, reqs);
}

void
LrcRuntime::fetchDiffsLegacy(PageId page)
{
    std::vector<NodeId> responders;
    VectorTime copy_vt;
    VectorTime log_cov;
    {
        std::lock_guard<std::mutex> g(nl->core);
        PageMeta &m = meta(page);
        copy_vt = m.copyVt;
        log_cov = logCoverage();
        for (const auto &[proc, idx] : m.notices) {
            if (idx > copy_vt[proc] &&
                std::find(responders.begin(), responders.end(), proc) ==
                    responders.end() &&
                proc != id) {
                responders.push_back(proc);
            }
        }
    }

    std::vector<FetchedDiff> fetched;
    std::vector<IntervalRec> precs;
    for (NodeId q : responders) {
        WireWriter w;
        w.putU32(page);
        copy_vt.encode(w);
        log_cov.encode(w);
        stats().diffRequestsSent++;
        Message reply = ep->call(q, MsgType::DiffRequest, w.take());
        WireReader r(reply.payload);
        const std::uint32_t n = r.getU32();
        for (std::uint32_t i = 0; i < n; ++i) {
            FetchedDiff f;
            f.page = page;
            f.proc = static_cast<NodeId>(r.getU16());
            f.idx = r.getU32();
            f.vtSum = r.getU64();
            f.diff = Diff::decode(r);
            fetched.push_back(std::move(f));
        }
        decodePiggybackedRecords(r, precs);
        BufferPool::instance().release(std::move(reply.payload));
    }

    // Apply in a linear extension of happens-before (sum order), with
    // word-granularity merging for concurrent multi-writer diffs.
    sortForApply(fetched);

    std::lock_guard<std::mutex> g(nl->core);
    PageMeta &m = meta(page);
    for (FetchedDiff &f : fetched) {
        if (f.idx <= m.copyVt[f.proc])
            continue; // duplicate from another responder
        {
            std::lock_guard<std::mutex> sg(nl->shardFor(page));
            std::byte *base = arena->at(arena->pageBase(page));
            f.diff.apply(base, &stats());
            if (twins.hasPage(page))
                f.diff.apply(twins.pageTwinMut(page).data());
        }
        clock().add(costModel().perWordApplyNs *
                    ((f.diff.dataBytes() + 3) / 4));
        m.copyVt[f.proc] = std::max(m.copyVt[f.proc], f.idx);
        f.applied = true;
    }
    resolveCoveredNotices(page, m);
    if (threadsT == 1) {
        DSM_ASSERT(m.notices.empty(),
                   "page %u still has pending notices after fetch",
                   page);
    }
    if (m.notices.empty()) {
        std::lock_guard<std::mutex> sg(nl->shardFor(page));
        if (pages.access(page) == PageAccess::None) {
            pages.setAccess(page, twins.hasPage(page)
                                      ? PageAccess::ReadWrite
                                      : PageAccess::Read);
        }
    }
    {
        // Save for possible future transmission (Section 5.2).
        std::lock_guard<std::mutex> dg(nl->diff);
        for (FetchedDiff &f : fetched) {
            if (f.applied) {
                diffStore[{page, packTs(f.proc, f.idx)}] = {
                    std::move(f.diff), f.vtSum};
            }
        }
    }
    applyPiggybackedRecords(precs, {{page, VectorTime()}});
}

void
LrcRuntime::installFullPage(PageId page, WireReader &r)
{
    std::lock_guard<std::mutex> sg(nl->shardFor(page));
    std::byte *base = arena->at(arena->pageBase(page));
    if (twins.hasPage(page)) {
        // A local interval is open on this page and its uncommitted
        // writes live only in the local copy. The incoming copy
        // replaces the whole page, so re-base both the copy and the
        // twin on it and replay the local writes on top — the next
        // interval close still captures exactly them.
        Diff local = Diff::create(base, twins.pageTwin(page).data(),
                                  static_cast<std::uint32_t>(
                                      arena->pageSize()));
        r.getBytes(twins.pageTwinMut(page).data(), arena->pageSize());
        std::memcpy(base, twins.pageTwin(page).data(),
                    arena->pageSize());
        local.apply(base);
    } else {
        r.getBytes(base, arena->pageSize());
    }
}

void
LrcRuntime::fetchFromHome(PageId page, bool read_only)
{
    // The wait runs on nl->core (homeCv's mutex); the home table is
    // probed under nl->home inside (core -> home is in lock order).
    auto is_home = [&] {
        std::lock_guard<std::mutex> hg(nl->home);
        return homes.isHome(page);
    };
    auto home_of = [&] {
        std::lock_guard<std::mutex> hg(nl->home);
        return homes.homeOf(page);
    };
    auto epoch_of = [&] {
        std::lock_guard<std::mutex> hg(nl->home);
        return homes.epochOf(page);
    };
    // Read-only misses under DSM_OPT_READ ask the home for a lock-free
    // snapshot; after the retry budget's worth of stale-epoch rejects
    // the flag is dropped and the locked path guarantees progress.
    bool want_snapshot = optRead && read_only;
    int epoch_rejects = 0;
    std::unique_lock<std::mutex> g(nl->core);
    for (;;) {
        // Deferred flushes first: our own unsent flush may be exactly
        // what this fetch would otherwise wait for — at a remote home
        // (it parks our request until the flush arrives) or at
        // ourselves (a migration handed us the home role while our
        // pre-migration flushes sat deferred; they apply in place and
        // restore access).
        flushPendingHomeFlushes();
        if (pages.access(page) != PageAccess::None)
            return; // resolved concurrently (flush apply or migration)

        if (is_home()) {
            // Our copy is the home copy: every pending notice names an
            // interval whose flush was sent before the notice could
            // reach us, so the service thread will apply it in place.
            // (A concurrent migration away hands the role — and the
            // wait — over to the remote-fetch branch below.)
            homeCv.wait(g, [&] {
                return pages.access(page) != PageAccess::None ||
                       !is_home();
            });
            continue;
        }

        const NodeId home = home_of();
        VectorTime need;
        {
            PageMeta &m = meta(page);
            need = m.copyVt;
            for (const auto &[proc, idx] : m.notices)
                need[proc] = std::max(need[proc], idx);
        }
        VectorTime log_cov = logCoverage();
        g.unlock();
        stats().pageFetchRoundTrips++;
        const std::uint8_t flags =
            (want_snapshot && epoch_rejects <= optReadRetryBudget)
                ? std::uint8_t{1}
                : std::uint8_t{0};
        bool home_down = false;
        Message reply =
            ep->call(home, MsgType::HomePageRequest,
                     encodePageRequest(id, page, need, log_cov, flags),
                     &home_down);
        if (home_down) {
            // Typed degradation: the home was declared down mid-wait
            // and the call abandoned. Re-host the page from the dead
            // home's latest persisted checkpoint image when the cut's
            // vector frontier covers every interval we need — at a
            // barrier cut all flushes within the frontier are applied
            // to the home copy, so those bytes are exactly what the
            // live home would have answered with. Otherwise loop and
            // retry: the victim recovers and drains its parked inbox.
            CheckpointCoordinator::PersistedImage img;
            if (!cluster->ckptDir.empty()) {
                img = CheckpointCoordinator::loadLatestImage(
                    cluster->ckptDir, home);
            }
            g.lock();
            if (img.epoch > 0) {
                VectorTime cut(numProcs);
                for (int p = 0; p < numProcs; ++p) {
                    if (static_cast<std::size_t>(p) <
                        img.frontier.size())
                        cut[p] = img.frontier[p];
                }
                // Arena image lives at a fixed offset: 28-byte blob
                // header (magic, version, id, epoch), then the
                // serialized used-bytes count, then the raw bytes.
                constexpr std::size_t kArenaOff = 28 + 8;
                const std::size_t base = arena->pageBase(page);
                if (cut.dominates(need) &&
                    img.image.size() >= kArenaOff + base +
                                            arena->pageSize()) {
                    WireReader pr(std::span<const std::byte>(
                        img.image.data() + kArenaOff + base,
                        arena->pageSize()));
                    installFullPage(page, pr);
                    clock().add(costModel().perWordApplyNs *
                                (arena->pageSize() / 4));
                    PageMeta &m = meta(page);
                    m.copyVt.mergeMax(cut);
                    resolveCoveredNotices(page, m);
                    if (m.notices.empty()) {
                        std::lock_guard<std::mutex> sg(
                            nl->shardFor(page));
                        if (pages.access(page) == PageAccess::None) {
                            pages.setAccess(
                                page, twins.hasPage(page)
                                          ? PageAccess::ReadWrite
                                          : PageAccess::Read);
                        }
                        stats().rehostedFetches++;
                        return;
                    }
                }
            }
            continue;
        }
        g.lock();
        if (is_home()) {
            // The page migrated to us while the request was in flight
            // (the reply is our own copy, possibly older than what the
            // migration installed): discard it and wait as the home.
            BufferPool::instance().release(std::move(reply.payload));
            continue;
        }
        WireReader r(reply.payload);
        VectorTime got = VectorTime::decode(r);
        if (reply.type == MsgType::HomePageSnapshotReply) {
            // Lock-free snapshot: stamped with the serving home's
            // migration epoch. A stamp older than the epoch we now
            // know for the page means the snapshot left a home that
            // has since been deposed — the current home may hold
            // flushes the old copy never saw, so reject it and
            // refetch against the current mapping. (The server-side
            // seqlock already rules out torn lines; this guards the
            // in-flight window.)
            const std::uint32_t snap_epoch = r.getU32();
            if (snap_epoch < epoch_of()) {
                stats().optReadFallbacks++;
                if (++epoch_rejects > optReadRetryBudget)
                    want_snapshot = false;
                BufferPool::instance().release(std::move(reply.payload));
                continue;
            }
            const std::uint32_t nlines = r.getU32();
            for (std::uint32_t l = 0; l < nlines; ++l) {
                const std::uint32_t v = r.getU32();
                DSM_ASSERT((v & 1u) == 0,
                           "validated snapshot of page %u carries an "
                           "odd line version (%u)",
                           page, v);
            }
        }
        if (!got.dominates(meta(page).copyVt)) {
            // The replying home lost the role while our request was in
            // flight and our copy has moved past its answer meanwhile
            // (a sibling's interval close, or a migration that touched
            // us and moved on). The home parks requests until it
            // covers `need`, so a current reply always dominates the
            // copy vector the request was built from — a reply that
            // does not is stale, and installing it would put bytes on
            // the page that are older than what copyVt claims.
            // Refetch against the current mapping.
            BufferPool::instance().release(std::move(reply.payload));
            continue;
        }
        installFullPage(page, r);
        std::vector<IntervalRec> precs;
        if (reply.type != MsgType::HomePageSnapshotReply) {
            // Snapshot replies carry no piggybacked records: the home
            // never consulted its interval log (that would need the
            // core lock the fast path exists to avoid).
            decodePiggybackedRecords(r, precs);
        }
        clock().add(costModel().perWordApplyNs *
                    (arena->pageSize() / 4));
        PageMeta &m = meta(page);
        m.copyVt.mergeMax(got);
        resolveCoveredNotices(page, m);
        if (threadsT == 1) {
            DSM_ASSERT(m.notices.empty(),
                       "page %u still has pending notices after home "
                       "fetch",
                       page);
        }
        if (m.notices.empty()) {
            std::lock_guard<std::mutex> sg(nl->shardFor(page));
            if (pages.access(page) == PageAccess::None) {
                pages.setAccess(page, twins.hasPage(page)
                                          ? PageAccess::ReadWrite
                                          : PageAccess::Read);
            }
        }
        BufferPool::instance().release(std::move(reply.payload));
        applyPiggybackedRecords(precs, {{page, VectorTime()}});
        return;
    }
}

void
LrcRuntime::fetchTimestamps(PageId page)
{
    if (!cluster->batchDiffFetch) {
        fetchTimestampsLegacy(page);
        return;
    }

    // One batched request per writer instead of one per (page,
    // writer): snapshot the target page's pending writers, piggyback
    // every other invalid page whose pending writers are a subset, and
    // reuse the DiffBatchRequest framing for timestamp runs.
    std::vector<NodeId> responders;
    std::vector<BatchPageReq> reqs;
    VectorTime log_cov;
    VectorTime global_vt;
    snapshotBatchTargets(page, responders, reqs, log_cov, &global_vt);

    std::map<PageId, std::vector<TsReplySet>> replies;
    std::vector<IntervalRec> precs;
    for (NodeId q : responders) {
        WireWriter w;
        global_vt.encode(w);
        log_cov.encode(w);
        w.putU32(static_cast<std::uint32_t>(reqs.size()));
        for (const BatchPageReq &pr : reqs) {
            w.putU32(pr.page);
            pr.copyVt.encode(w);
        }
        stats().tsRequestsSent++;
        Message msg = ep->call(q, MsgType::PageTsBatchRequest, w.take());
        WireReader r(msg.payload);
        const std::uint32_t npages = r.getU32();
        for (std::uint32_t i = 0; i < npages; ++i) {
            const PageId p = r.getU32();
            TsReplySet reply;
            reply.pageVt = VectorTime::decode(r);
            const std::uint32_t nruns = r.getU32();
            for (std::uint32_t j = 0; j < nruns; ++j) {
                TsRun run;
                run.firstBlock = r.getU32();
                run.numBlocks = r.getU32();
                run.ts = r.getU64();
                std::vector<std::byte> bytes(std::size_t{run.numBlocks} *
                                             4);
                r.getBytes(bytes.data(), bytes.size());
                reply.runs.push_back(run);
                reply.data.push_back(std::move(bytes));
            }
            replies[p].push_back(std::move(reply));
        }
        decodePiggybackedRecords(r, precs);
        BufferPool::instance().release(std::move(msg.payload));
    }

    std::lock_guard<std::mutex> g(nl->core);
    // Records first: the happens-before checks in applyTsReplies need
    // them to order stamps beyond our own vector (the cap those
    // records replace). Avoided re-invalidations are counted after the
    // copies are current.
    auto fresh_recs = ingestPiggybackedRecords(precs);
    for (const BatchPageReq &pr : reqs) {
        applyTsReplies(pr.page, replies[pr.page]);
        if (pr.page != page)
            stats().tsPagesPiggybacked++;
    }
    countAvoidedReinvalidations(fresh_recs, reqs);
}

void
LrcRuntime::fetchTimestampsLegacy(PageId page)
{
    std::vector<NodeId> responders;
    VectorTime copy_vt;
    VectorTime global_vt;
    VectorTime log_cov;
    {
        std::lock_guard<std::mutex> g(nl->core);
        PageMeta &m = meta(page);
        copy_vt = m.copyVt;
        global_vt = vt;
        log_cov = logCoverage();
        for (const auto &[proc, idx] : m.notices) {
            if (idx > copy_vt[proc] &&
                std::find(responders.begin(), responders.end(), proc) ==
                    responders.end() &&
                proc != id) {
                responders.push_back(proc);
            }
        }
    }

    std::vector<TsReplySet> replies;
    std::vector<IntervalRec> precs;
    for (NodeId q : responders) {
        WireWriter w;
        w.putU32(page);
        copy_vt.encode(w);
        global_vt.encode(w);
        log_cov.encode(w);
        stats().tsRequestsSent++;
        Message msg = ep->call(q, MsgType::PageTsRequest, w.take());
        WireReader r(msg.payload);
        TsReplySet reply;
        reply.pageVt = VectorTime::decode(r);
        const std::uint32_t nruns = r.getU32();
        for (std::uint32_t i = 0; i < nruns; ++i) {
            TsRun run;
            run.firstBlock = r.getU32();
            run.numBlocks = r.getU32();
            run.ts = r.getU64();
            std::vector<std::byte> bytes(std::size_t{run.numBlocks} * 4);
            r.getBytes(bytes.data(), bytes.size());
            reply.runs.push_back(run);
            reply.data.push_back(std::move(bytes));
        }
        decodePiggybackedRecords(r, precs);
        replies.push_back(std::move(reply));
        BufferPool::instance().release(std::move(msg.payload));
    }

    std::lock_guard<std::mutex> g(nl->core);
    auto fresh_recs = ingestPiggybackedRecords(precs);
    applyTsReplies(page, replies);
    countAvoidedReinvalidations(fresh_recs, {{page, VectorTime()}});
}

void
LrcRuntime::applyTsReplies(PageId page,
                           const std::vector<TsReplySet> &replies)
{
    // Caller holds nl->core; the word merge additionally holds the
    // interval-log lock (happens-before probes) and the page's shard
    // (byte writes vs. concurrent readers/writers).
    PageMeta &m = meta(page);
    BlockTimestamps &ts = tsOf(page);

    // Happens-before check via the interval log: is candidate (p, i)
    // already covered by the interval that produced current (q, j)?
    // A record the GC pruned was globally applied before every
    // candidate a responder can still send, so its vector could not
    // have covered the candidate — "not dominated" is exact, and it
    // matches the seed's treatment of unknown records.
    auto dominated = [&](std::uint64_t cand, std::uint64_t cur) {
        if (cur == 0)
            return false;
        const NodeId q = tsProc(cur);
        const std::uint32_t j = tsInterval(cur);
        if (j == 0)
            return false;
        const IntervalRec *rec = ilog.find(q, j);
        if (!rec)
            return false;
        return rec->vt[tsProc(cand)] >= tsInterval(cand);
    };

    std::uint64_t words_applied = 0;
    for (const TsReplySet &reply : replies) {
        for (std::size_t i = 0; i < reply.runs.size(); ++i) {
            const TsRun &run = reply.runs[i];
            const std::vector<std::byte> &bytes = reply.data[i];
            // Take the interval-log lock and the page's shard per
            // run, not for the whole merge: barrier-arrival record
            // merges (mergeArrival takes only nl->ilog) and sibling
            // memory accesses on this shard no longer wait out the
            // whole multi-reply merge. (PageTs responders still
            // serialize on nl->core, which the caller holds
            // throughout — releasing core mid-merge would let the
            // metadata shift under us.) Core being held is also why
            // the timestamp table and page metadata cannot change
            // between runs; the twin pointer is re-probed per run
            // because twin creation and drop happen under the shard.
            std::lock_guard<std::mutex> ig(nl->ilog);
            std::lock_guard<std::mutex> sg(nl->shardFor(page));
            std::byte *base = arena->at(arena->pageBase(page));
            // SMP nodes: a sibling's interval may be open on this
            // page; mirror every applied word into its twin so the
            // cur-vs-twin stamping at the next close claims only the
            // local writes (an unmirrored remote word would be
            // re-stamped as ours).
            std::byte *twin = twins.hasPage(page)
                                  ? twins.pageTwinMut(page).data()
                                  : nullptr;
            for (std::uint32_t b = 0; b < run.numBlocks; ++b) {
                const std::uint32_t block = run.firstBlock + b;
                const std::uint64_t cur = ts.get(block);
                if (cur == run.ts)
                    continue;
                if (dominated(run.ts, cur))
                    continue;
                std::memcpy(base + std::size_t{block} * 4,
                            bytes.data() + std::size_t{b} * 4, 4);
                if (twin) {
                    std::memcpy(twin + std::size_t{block} * 4,
                                bytes.data() + std::size_t{b} * 4, 4);
                }
                ts.set(block, run.ts);
                ++words_applied;
            }
        }
        m.copyVt.mergeMax(reply.pageVt);
    }
    clock().add(costModel().perWordApplyNs * words_applied);

    resolveCoveredNotices(page, m);
    if (threadsT == 1 && !m.notices.empty()) {
        for (auto &[np_, ni] : m.notices) {
            std::fprintf(stderr,
                         "[node %d] page %u leftover notice (%d,%u) "
                         "copyVt=%s vt=%s\n",
                         id, page, np_, ni, m.copyVt.toString().c_str(),
                         vt.toString().c_str());
        }
        DSM_ASSERT(false,
                   "page %u still has pending notices after ts fetch",
                   page);
    }
    if (m.notices.empty()) {
        std::lock_guard<std::mutex> sg(nl->shardFor(page));
        if (pages.access(page) == PageAccess::None) {
            pages.setAccess(page, twins.hasPage(page)
                                      ? PageAccess::ReadWrite
                                      : PageAccess::Read);
        }
    }
}

void
LrcRuntime::handleMessage(Message &msg)
{
    switch (msg.type) {
      case MsgType::DiffRequest:
        handleDiffRequest(msg);
        break;
      case MsgType::DiffBatchRequest:
        handleDiffBatchRequest(msg);
        break;
      case MsgType::PageTsRequest:
        handlePageTsRequest(msg);
        break;
      case MsgType::PageTsBatchRequest:
        handlePageTsBatchRequest(msg);
        break;
      case MsgType::HomeDiffFlush:
        handleHomeDiffFlush(msg);
        break;
      case MsgType::HomePageRequest:
        handleHomePageRequest(msg);
        break;
      case MsgType::HomeMigrate:
        handleHomeMigrate(msg);
        break;
      default:
        Runtime::handleMessage(msg);
    }
}

void
LrcRuntime::encodeDiffsNewerThan(WireWriter &w, PageId page,
                                 const VectorTime &req_vt)
{
    std::vector<std::pair<std::uint64_t, const DiffEntry *>> send;
    auto lo = diffStore.lower_bound({page, 0});
    auto hi = diffStore.upper_bound({page, ~std::uint64_t{0}});
    for (auto it = lo; it != hi; ++it) {
        const std::uint64_t key = it->first.second;
        if (tsInterval(key) > req_vt[tsProc(key)])
            send.emplace_back(key, &it->second);
    }
    w.putU32(static_cast<std::uint32_t>(send.size()));
    for (const auto &[key, entry] : send) {
        w.putU16(static_cast<std::uint16_t>(tsProc(key)));
        w.putU32(tsInterval(key));
        w.putU64(entry->vtSum);
        entry->diff.encode(w);
        stats().diffBytesSent += entry->diff.wireBytes();
    }
}

void
LrcRuntime::handleDiffRequest(Message &msg)
{
    WireReader r(msg.payload);
    const PageId page = r.getU32();
    VectorTime req_vt = VectorTime::decode(r);
    VectorTime req_log = VectorTime::decode(r);

    WireWriter w;
    {
        std::lock_guard<std::mutex> dg(nl->diff);
        encodeDiffsNewerThan(w, page, req_vt);
    }
    encodePiggybackedRecords(w, req_log);
    ep->reply(msg.src, MsgType::DiffReply, w.take(), msg.replyToken);
}

void
LrcRuntime::handleDiffBatchRequest(Message &msg)
{
    WireReader r(msg.payload);
    VectorTime req_log = VectorTime::decode(r);
    const std::uint32_t npages = r.getU32();

    WireWriter w;
    w.putU32(npages);
    {
        std::lock_guard<std::mutex> dg(nl->diff);
        for (std::uint32_t i = 0; i < npages; ++i) {
            const PageId page = r.getU32();
            VectorTime req_vt = VectorTime::decode(r);
            w.putU32(page);
            encodeDiffsNewerThan(w, page, req_vt);
        }
    }
    encodePiggybackedRecords(w, req_log);
    ep->reply(msg.src, MsgType::DiffBatchReply, w.take(),
              msg.replyToken);
}

void
LrcRuntime::encodeTsNewerThan(WireWriter &w, PageId page,
                              const VectorTime &req_vt,
                              const VectorTime &req_global)
{
    // Without write-notice piggybacking, the requester's copy can
    // reflect, at most, intervals within its own vector: cap the
    // advertised knowledge (and the transmitted runs, below)
    // accordingly. With piggybacking the reply carries the interval
    // records alongside the stamps, so the cap — and the
    // re-invalidation the capped-out stamps cause later — disappears.
    const bool piggy = cluster->piggybackWriteNotices;
    VectorTime page_vt = meta(page).copyVt;
    if (!piggy) {
        for (int p = 0; p < numProcs; ++p)
            page_vt[p] = std::min(page_vt[p], req_global[p]);
    }
    page_vt.encode(w);

    const BlockTimestamps &ts = tsOf(page);
    // The responder must scan the page's timestamps on every request —
    // the repeated-scan computation cost of timestamping (Section 5.3).
    clock().add(costModel().perWordScanNs * ts.numBlocks());
    stats().tsWordsScanned += ts.numBlocks();

    // Send blocks newer than the requester's page copy; capped at the
    // requester's global vector when the ordering knowledge (interval
    // records) cannot travel with the reply.
    auto runs = ts.collect([&](std::uint64_t t) {
        return t != 0 && tsInterval(t) > req_vt[tsProc(t)] &&
               (piggy || tsInterval(t) <= req_global[tsProc(t)]);
    });
    std::lock_guard<std::mutex> sg(nl->shardFor(page));
    const std::byte *base = arena->at(arena->pageBase(page));
    w.putU32(static_cast<std::uint32_t>(runs.size()));
    for (const TsRun &run : runs) {
        w.putU32(run.firstBlock);
        w.putU32(run.numBlocks);
        w.putU64(run.ts);
        w.putBytes(base + std::size_t{run.firstBlock} * 4,
                   std::size_t{run.numBlocks} * 4);
        stats().tsBytesSent += TsRunWire::kHeaderBytes +
                               std::size_t{run.numBlocks} * 4;
    }
    stats().tsRunsSent += runs.size();
}

void
LrcRuntime::handlePageTsRequest(Message &msg)
{
    WireReader r(msg.payload);
    const PageId page = r.getU32();
    VectorTime req_vt = VectorTime::decode(r);
    VectorTime req_global = VectorTime::decode(r);
    VectorTime req_log = VectorTime::decode(r);

    std::lock_guard<std::mutex> g(nl->core);
    WireWriter w;
    encodeTsNewerThan(w, page, req_vt, req_global);
    encodePiggybackedRecords(w, req_log);
    ep->reply(msg.src, MsgType::PageTsReply, w.take(), msg.replyToken);
}

void
LrcRuntime::handlePageTsBatchRequest(Message &msg)
{
    WireReader r(msg.payload);
    VectorTime req_global = VectorTime::decode(r);
    VectorTime req_log = VectorTime::decode(r);
    const std::uint32_t npages = r.getU32();

    std::lock_guard<std::mutex> g(nl->core);
    WireWriter w;
    w.putU32(npages);
    for (std::uint32_t i = 0; i < npages; ++i) {
        const PageId page = r.getU32();
        VectorTime req_vt = VectorTime::decode(r);
        w.putU32(page);
        encodeTsNewerThan(w, page, req_vt, req_global);
    }
    encodePiggybackedRecords(w, req_log);
    ep->reply(msg.src, MsgType::PageTsBatchReply, w.take(),
              msg.replyToken);
}

// ---------------------------------------------------------------------
// Home-based protocol servicing.

void
LrcRuntime::replyHomePage(NodeId origin, std::uint64_t token,
                          PageId page, const PageHomeTable::HomeState &hs,
                          const VectorTime &req_log)
{
    WireWriter w;
    hs.appliedVt.encode(w);
    {
        std::lock_guard<std::mutex> sg(nl->shardFor(page));
        w.putBytes(arena->at(arena->pageBase(page)), arena->pageSize());
    }
    // Best effort: flushes can reach the home before the matching
    // records do, so appliedVt may briefly exceed what we can
    // document; those notices arrive through the regular channels and
    // find the copy already covering them.
    encodePiggybackedRecords(w, req_log);
    ep->reply(origin, MsgType::HomePageReply, w.take(), token);
}

void
LrcRuntime::serveParkedPageRequests()
{
    for (auto it = parkedPageReqs.begin();
         it != parkedPageReqs.end();) {
        if (!homes.isHome(it->page)) {
            // Migrated away while parked: the request chases the home.
            ep->send(homes.homeOf(it->page), MsgType::HomePageRequest,
                     encodePageRequest(it->origin, it->page, it->need,
                                       it->reqLog),
                     it->token);
            it = parkedPageReqs.erase(it);
            continue;
        }
        PageHomeTable::HomeState *hs = homes.find(it->page);
        if (hs && hs->appliedVt.dominates(it->need)) {
            replyHomePage(it->origin, it->token, it->page, *hs,
                          it->reqLog);
            it = parkedPageReqs.erase(it);
            continue;
        }
        ++it;
    }
}

void
LrcRuntime::migrateHome(PageId page, NodeId new_home)
{
    PageHomeTable::HomeState *hs = homes.find(page);
    DSM_ASSERT(hs && new_home != id, "bad migration of page %u", page);
    stats().homeMigrations++;
    const std::uint32_t epoch = homes.epochOf(page) + 1;

    for (NodeId n = 0; n < numProcs; ++n) {
        if (n == id)
            continue;
        WireWriter w;
        w.putU32(page);
        w.putU16(static_cast<std::uint16_t>(new_home));
        w.putU32(epoch);
        if (n == new_home) {
            // The new home gets the full role: copy, applied vector,
            // and the word ordering sums (run-length encoded; most
            // words of a typical page are unstamped).
            w.putU8(1);
            hs->appliedVt.encode(w);
            auto runs = collectValueRuns(
                hs->wordSums, [](std::uint64_t v) { return v != 0; });
            w.putU32(static_cast<std::uint32_t>(runs.size()));
            for (const auto &[run, value] : runs) {
                w.putU32(run.start);
                w.putU32(run.length);
                w.putU64(value);
            }
            std::lock_guard<std::mutex> sg(nl->shardFor(page));
            w.putBytes(arena->at(arena->pageBase(page)),
                       arena->pageSize());
        } else {
            w.putU8(0);
        }
        ep->send(n, MsgType::HomeMigrate, w.take());
    }

    homes.setHome(page, new_home, epoch);
    homes.drop(page);
    // Our copy stays behind as an ordinary cached replica; meta.copyVt
    // already tracks what it contains, and future notices invalidate
    // it like any other copy.
    serveParkedPageRequests(); // forwards this page's parked requests
    for (auto it = parkedFlushes.begin(); it != parkedFlushes.end();) {
        if (it->page != page) {
            ++it;
            continue;
        }
        sendSingleFlush(new_home, it->page, it->proc, it->idx,
                        it->prevIdx, it->vtSum, it->diff);
        it = parkedFlushes.erase(it);
    }
    homeCv.notify_all(); // a local app thread may be waiting as home
}

namespace {

/** One flush entry of the HomeDiffFlush wire format — the single
 *  encoder the decoder in handleHomeDiffFlush mirrors. */
void
encodeFlushEntry(WireWriter &w, NodeId proc, PageId page,
                 std::uint32_t idx, std::uint32_t prev_idx,
                 std::uint64_t vt_sum, const Diff &diff)
{
    w.putU16(static_cast<std::uint16_t>(proc));
    w.putU32(page);
    w.putU32(idx);
    w.putU32(prev_idx);
    w.putU64(vt_sum);
    diff.encode(w);
}

} // namespace

void
LrcRuntime::sendFlushMessage(NodeId dst, NodeId proc,
                             const std::vector<PendingFlush> &entries)
{
    WireWriter w;
    w.putU32(static_cast<std::uint32_t>(entries.size()));
    for (const PendingFlush &e : entries) {
        encodeFlushEntry(w, proc, e.page, e.idx, e.prevIdx, e.vtSum,
                         e.diff);
    }
    ep->send(dst, MsgType::HomeDiffFlush, w.take());
}

void
LrcRuntime::sendSingleFlush(NodeId dst, PageId page, NodeId proc,
                            std::uint32_t idx, std::uint32_t prev_idx,
                            std::uint64_t vt_sum, const Diff &diff)
{
    // Forwarding path (stale mappings, migration hand-offs): encodes
    // straight from the borrowed Diff — no PendingFlush copy — and
    // takes no homeFlushesSent / diffBytesSent accounting, since the
    // originator already counted this payload.
    WireWriter w;
    w.putU32(1);
    encodeFlushEntry(w, proc, page, idx, prev_idx, vt_sum, diff);
    ep->send(dst, MsgType::HomeDiffFlush, w.take());
}

void
LrcRuntime::flushPendingHomeFlushes()
{
    // Policy off: nothing is ever deferred and the ownIdxFlushed cap
    // is never consulted — keep the legacy hot paths (every home
    // fetch retry, grant and arrival call through here) free of the
    // nl->home acquire.
    if (cluster->homeFlushDefer <= 0)
        return;
    // Caller holds nl->core; pendingHomeFlushes lives under nl->home.
    bool applied_locally = false;
    {
        std::lock_guard<std::mutex> hg(nl->home);
        // After this point every own interval <= vt[self] has its
        // flush in flight (or needed none): service-thread reply
        // piggybacking may advertise our records up to here.
        ownIdxFlushed.store(vt[id], std::memory_order_relaxed);
        if (pendingHomeFlushes.empty())
            return;
        // Regroup by the *current* home: a page may have migrated
        // since its interval closed — including to us, in which case
        // the entries enter the parked-flush chain and apply (or
        // wait for their predecessors) in place.
        std::map<NodeId, std::vector<PendingFlush>> regrouped;
        for (auto &[home, entries] : pendingHomeFlushes) {
            for (PendingFlush &e : entries)
                regrouped[homes.homeOf(e.page)].push_back(std::move(e));
        }
        pendingHomeFlushes.clear();
        for (auto &[home, entries] : regrouped) {
            if (home == id) {
                for (PendingFlush &e : entries) {
                    parkedFlushes.push_back({id, e.idx, e.prevIdx,
                                             e.vtSum, e.page,
                                             std::move(e.diff)});
                }
                applied_locally = true;
                continue;
            }
            for (const PendingFlush &e : entries)
                stats().diffBytesSent += e.diff.wireBytes();
            stats().homeFlushesSent++;
            sendFlushMessage(home, id, entries);
        }
        if (applied_locally) {
            drainParkedFlushes();
            serveParkedPageRequests();
        }
    }
    if (applied_locally)
        homeCv.notify_all();
}

bool
LrcRuntime::applyFlushAtHome(PageId page, NodeId proc, std::uint32_t idx,
                             std::uint64_t vt_sum, const Diff &diff,
                             bool *via_last_writer)
{
    PageHomeTable::HomeState &hs = homes.state(
        page, static_cast<std::uint32_t>(arena->pageSize() / 4));
    std::uint64_t words;
    {
        std::lock_guard<std::mutex> sg(nl->shardFor(page));
        std::byte *base = arena->at(arena->pageBase(page));
        // Mirror the flush into an open twin so the next cur-vs-twin
        // diff stays exactly our own writes (applyDiffGuarded's doc).
        std::byte *twin = twins.hasPage(page)
                              ? twins.pageTwinMut(page).data()
                              : nullptr;
        words = applyDiffGuarded(base, hs.wordSums, diff, vt_sum,
                                 &stats(), twin,
                                 optRead ? hs.lineVersions.get()
                                         : nullptr);
    }
    clock().add(costModel().perWordApplyNs * words);
    {
        // Atomic element store: the lock-free snapshot path reads
        // appliedVt without the home lock (see closeInterval).
        std::atomic_ref<std::uint32_t> slot(hs.appliedVt[proc]);
        slot.store(std::max(slot.load(std::memory_order_relaxed), idx),
                   std::memory_order_release);
    }
    // Sharing-policy classification: every applied flush is one
    // writer's interval; switching writers marks the page migratory
    // and the last-writer policy follows the chain.
    const bool follow_writer = homes.countFlushWriter(hs, proc);

    // The home's own copy is always current: fold the flush into the
    // regular per-page bookkeeping so pending notices resolve and the
    // page never needs a fetch here. Local access additionally waits
    // for our own writes to finish chasing a migration hand-off (the
    // install may have regressed them; program order for own reads).
    PageMeta &m = meta(page);
    m.writerMask |= std::uint64_t{1} << proc;
    m.copyVt[proc] = std::max(m.copyVt[proc], idx);
    resolveCoveredNotices(page, m);
    if (m.notices.empty() && hs.appliedVt[id] >= m.copyVt[id] &&
        pages.access(page) == PageAccess::None) {
        pages.setAccess(page, twins.hasPage(page)
                                  ? PageAccess::ReadWrite
                                  : PageAccess::Read);
    }
    const bool dominant = homes.countAccess(hs, proc);
    if (!follow_writer && !dominant)
        return false;
    if (!homes.migrationAllowed(page)) {
        // Adaptive fallback: the page has spent its ping-pong budget
        // and stays pinned at this home.
        stats().homeMigrationsSuppressed++;
        return false;
    }
    if (via_last_writer)
        *via_last_writer = follow_writer;
    return true;
}

void
LrcRuntime::drainParkedFlushes()
{
    std::vector<MigrateReq> migrate;
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = parkedFlushes.begin();
             it != parkedFlushes.end();) {
            if (!homes.isHome(it->page)) {
                sendSingleFlush(homes.homeOf(it->page), it->page,
                                it->proc, it->idx, it->prevIdx,
                                it->vtSum, it->diff);
                it = parkedFlushes.erase(it);
                continue;
            }
            PageHomeTable::HomeState &hs = homes.state(
                it->page,
                static_cast<std::uint32_t>(arena->pageSize() / 4));
            if (hs.appliedVt[it->proc] < it->prevIdx) {
                ++it;
                continue;
            }
            bool via_lw = false;
            if (applyFlushAtHome(it->page, it->proc, it->idx, it->vtSum,
                                 it->diff, &via_lw)) {
                migrate.push_back({it->page, it->proc, via_lw});
            }
            it = parkedFlushes.erase(it);
            progress = true;
        }
    }
    runMigrations(migrate);
}

void
LrcRuntime::runMigrations(const std::vector<MigrateReq> &migrate)
{
    for (const MigrateReq &req : migrate) {
        // A merged flush can fire the policy for several intervals of
        // one page; only the first request still finds us the home,
        // so the counters see exactly the migrations performed.
        if (!homes.isHome(req.page))
            continue;
        if (req.viaLastWriter)
            stats().lastWriterMigrations++;
        migrateHome(req.page, req.dst);
    }
}

void
LrcRuntime::handleHomeDiffFlush(Message &msg)
{
    WireReader r(msg.payload);
    const std::uint32_t nentries = r.getU32();

    std::scoped_lock g(nl->core, nl->home);
    const std::uint32_t page_words =
        static_cast<std::uint32_t>(arena->pageSize() / 4);
    std::vector<MigrateReq> migrate;
    for (std::uint32_t i = 0; i < nentries; ++i) {
        // Per-entry header: a deferred-merge message carries several
        // intervals (same writer, different idx/vtSum) in one flush.
        const NodeId proc = static_cast<NodeId>(r.getU16());
        const PageId page = r.getU32();
        const std::uint32_t idx = r.getU32();
        const std::uint32_t prev_idx = r.getU32();
        const std::uint64_t vt_sum = r.getU64();
        Diff d = Diff::decode(r);
        if (!homes.isHome(page)) {
            // Stale mapping somewhere along the chain: pass the diff
            // to whoever we believe is the home now.
            sendSingleFlush(homes.homeOf(page), page, proc, idx,
                            prev_idx, vt_sum, d);
            continue;
        }
        PageHomeTable::HomeState &hs = homes.state(page, page_words);
        if (hs.appliedVt[proc] < prev_idx) {
            // The writer's previous flush for this page is still in
            // flight (it took a longer forwarding chain than this
            // one): hold this diff, or appliedVt would claim an
            // interval whose words the copy does not have.
            parkedFlushes.push_back(
                {proc, idx, prev_idx, vt_sum, page, std::move(d)});
            continue;
        }
        bool via_lw = false;
        if (applyFlushAtHome(page, proc, idx, vt_sum, d, &via_lw))
            migrate.push_back({page, proc, via_lw});
    }
    drainParkedFlushes();
    serveParkedPageRequests();
    runMigrations(migrate);
    homeCv.notify_all();
}

void
LrcRuntime::handleHomePageRequest(Message &msg)
{
    WireReader r(msg.payload);
    const NodeId origin = static_cast<NodeId>(r.getU16());
    const PageId page = r.getU32();
    const std::uint8_t flags = r.getU8();
    VectorTime need = VectorTime::decode(r);
    VectorTime req_log = VectorTime::decode(r);

    if (optRead && (flags & 1u) != 0 &&
        tryServeSnapshot(origin, msg.replyToken, page, need)) {
        // Served lock-free: no core/home acquire, no migration
        // accounting (read-fan-in stays invisible to the access
        // classifier by design — the hot-read homes this path exists
        // for must not ping-pong toward their readers).
        return;
    }

    std::scoped_lock g(nl->core, nl->home);
    if (!homes.isHome(page)) {
        // Stale mapping: forward along the chain, keeping the reply
        // token so the current home answers the origin directly.
        ep->send(homes.homeOf(page), MsgType::HomePageRequest,
                 encodePageRequest(origin, page, need, req_log),
                 msg.replyToken);
        return;
    }

    PageHomeTable::HomeState &hs = homes.state(
        page, static_cast<std::uint32_t>(arena->pageSize() / 4));
    bool migrate = homes.countAccess(hs, origin);
    if (migrate && !homes.migrationAllowed(page)) {
        stats().homeMigrationsSuppressed++;
        migrate = false;
    }
    if (hs.appliedVt.dominates(need)) {
        replyHomePage(origin, msg.replyToken, page, hs, req_log);
    } else {
        // The flushes the requester's notices announce are in flight;
        // park the request and answer when they have been applied.
        parkedPageReqs.push_back(
            {origin, msg.replyToken, page, need, req_log});
    }
    if (migrate)
        migrateHome(page, origin);
}

bool
LrcRuntime::tryServeSnapshot(NodeId origin, std::uint64_t token,
                             PageId page, const VectorTime &need)
{
    // Mapping reads without nl->home: this service thread is the sole
    // writer of the home table's override map (every setHome runs in
    // a handler here, or in a quiesced checkpoint restore), so its own
    // reads cannot race a mutation.
    if (!homes.isHome(page))
        return false; // stale mapping: forward through the locked path
    const std::uint32_t epoch = homes.epochOf(page);
    const std::uint32_t page_bytes =
        static_cast<std::uint32_t>(arena->pageSize());
    const std::byte *src = arena->at(arena->pageBase(page));
    PageHomeTable::HomeState *hs = homes.snapshotState(page);

    WireWriter w;
    if (hs == nullptr) {
        // Homed here but never flushed (initialization data only): the
        // copy is trivially current iff the requester needs no
        // interval at all. Anything else goes through the locked path,
        // which creates the state and parks the request.
        bool all_zero = true;
        for (NodeId n = 0; n < numProcs; ++n)
            all_zero = all_zero && need[n] == 0;
        if (!all_zero) {
            stats().optReadFallbacks++;
            return false;
        }
        VectorTime zero(numProcs);
        zero.encode(w);
        w.putU32(epoch);
        const std::uint32_t nlines =
            (page_bytes + kOptLineBytes - 1) / kOptLineBytes;
        w.putU32(nlines);
        for (std::uint32_t l = 0; l < nlines; ++l)
            w.putU32(0);
        const std::size_t data_off = w.appendRegion(page_bytes);
        optAtomicReadBytes(w.data() + data_off, src, page_bytes);
        stats().optReadsServed++;
        ep->reply(origin, MsgType::HomePageSnapshotReply, w.take(),
                  token);
        return true;
    }

    // Coverage first, copy second: appliedVt elements are read
    // atomically *before* the data, so a racing flush can only make
    // the copy newer than the vector claims — the client merges the
    // understated vector and later notices re-invalidate, which is
    // conservative, never wrong.
    VectorTime applied(numProcs);
    for (NodeId n = 0; n < numProcs; ++n) {
        applied[n] = std::atomic_ref<std::uint32_t>(hs->appliedVt[n])
                         .load(std::memory_order_acquire);
    }
    if (!applied.dominates(need)) {
        // The needed flushes are still in flight; the locked path
        // parks the request until they apply.
        stats().optReadFallbacks++;
        return false;
    }

    // Seqlock copy: all line versions even before the copy and
    // unchanged after it, else a guarded flush application was
    // mid-bracket — retry up to the budget, then fall back. The page
    // bytes land directly in the wire buffer (no bounce copy); the
    // version footer region is back-filled once the copy validates.
    applied.encode(w);
    w.putU32(epoch);
    w.putU32(hs->numLines);
    const std::size_t vers_off =
        w.appendRegion(std::size_t{hs->numLines} * 4);
    const std::size_t data_off = w.appendRegion(page_bytes);
    // Reused across requests: this runs on the service thread only.
    static thread_local std::vector<std::uint32_t> v1;
    v1.resize(hs->numLines);
    bool valid = false;
    for (int attempt = 0; attempt <= optReadRetryBudget && !valid;
         ++attempt) {
        bool busy = false;
        for (std::uint32_t l = 0; l < hs->numLines; ++l) {
            v1[l] = hs->lineVersions[l].load(std::memory_order_acquire);
            if ((v1[l] & 1u) != 0) {
                busy = true;
                break;
            }
        }
        if (busy) {
            stats().optReadRetries++;
            continue;
        }
        optAtomicReadBytes(w.data() + data_off, src, page_bytes);
        // Order the copy's relaxed loads before the re-read below:
        // any line bumped during the copy must be seen as changed.
        std::atomic_thread_fence(std::memory_order_acquire);
        bool torn = false;
        for (std::uint32_t l = 0; l < hs->numLines; ++l) {
            if (hs->lineVersions[l].load(std::memory_order_acquire) !=
                v1[l]) {
                torn = true;
                break;
            }
        }
        if (torn) {
            stats().optReadRetries++;
            continue;
        }
        valid = true;
    }
    if (!valid) {
        stats().optReadFallbacks++;
        return false;
    }

    // Same little-endian raw layout putU32 writes element-wise.
    std::memcpy(w.data() + vers_off, v1.data(),
                std::size_t{hs->numLines} * 4);
    stats().optReadsServed++;
    ep->reply(origin, MsgType::HomePageSnapshotReply, w.take(), token);
    return true;
}

void
LrcRuntime::handleHomeMigrate(Message &msg)
{
    WireReader r(msg.payload);
    const PageId page = r.getU32();
    const NodeId new_home = static_cast<NodeId>(r.getU16());
    const std::uint32_t epoch = r.getU32();
    const bool full = r.getU8() != 0;

    std::scoped_lock g(nl->core, nl->home);
    if (!homes.setHome(page, new_home, epoch))
        return; // stale broadcast of an already superseded migration
    if (!full) {
        serveParkedPageRequests(); // parked entries may need to chase
        return;
    }

    // We are the new home: install the applied vector, word sums and
    // the authoritative copy.
    DSM_ASSERT(new_home == id, "full migration payload sent to node %d",
               id);
    const std::uint32_t page_words =
        static_cast<std::uint32_t>(arena->pageSize() / 4);
    homes.drop(page); // any stale state from an earlier tenure
    PageHomeTable::HomeState &hs = homes.state(page, page_words);
    hs.appliedVt = VectorTime::decode(r);
    const std::uint32_t nruns = r.getU32();
    for (std::uint32_t i = 0; i < nruns; ++i) {
        const std::uint32_t start = r.getU32();
        const std::uint32_t length = r.getU32();
        const std::uint64_t value = r.getU64();
        for (std::uint32_t k = 0; k < length; ++k)
            hs.wordSums[start + k] = value;
    }

    installFullPage(page, r);

    PageMeta &m = meta(page);
    m.copyVt.mergeMax(hs.appliedVt);
    resolveCoveredNotices(page, m);
    // The transitions below race a sibling's shard-guarded write-fault
    // upgrade (Read -> ReadWrite) without this shard lock.
    std::lock_guard<std::mutex> sg(nl->shardFor(page));
    if (m.copyVt[id] > hs.appliedVt[id]) {
        // Our own committed writes for this page are still chasing the
        // home chain (flushed to a stale home, not yet forwarded back
        // to us), so the installed copy regresses them. appliedVt
        // describes the copy truthfully for remote requests, but local
        // program order expects those words: hold local access until
        // the chain catches up — the chasing flushes are forwarded to
        // us and applyFlushAtHome revalidates once
        // appliedVt[id] >= copyVt[id] (restoring ReadWrite when an
        // open twin exists, so the open interval keeps collecting).
        // This closes the doubly-migrated open-twin window that used
        // to be a documented residual: a faulting sibling now waits as
        // the home instead of reading the regressed words.
        pages.setAccess(page, PageAccess::None);
    } else if (m.notices.empty() && m.copyVt[id] <= hs.appliedVt[id] &&
               pages.access(page) == PageAccess::None) {
        // SMP nodes: a sibling's open twin keeps the page writable
        // (its interval continues across the migration; Read would
        // double-twin on the next store).
        pages.setAccess(page, twins.hasPage(page)
                                  ? PageAccess::ReadWrite
                                  : PageAccess::Read);
    }

    serveParkedPageRequests();
    homeCv.notify_all();
}

// Checkpoint serialization. Runs at a barrier cut with the service
// thread joined and every application thread parked at the checkpoint
// rendezvous: nothing is mid-acquire, mid-fetch or mid-wait, so the
// full protocol state is capturable without the usual lock order.
// Parked flushes and parked page requests may legitimately be
// non-empty (they wait for in-flight peers) and are carried verbatim.

void
LrcRuntime::serialize(WireWriter &w) const
{
    Runtime::serialize(w);
    DSM_ASSERT(fetchesInFlight.empty(),
               "checkpoint cut with a fetch in flight");
    vt.encode(w);
    // The home table is the snapshot's largest section and barely
    // changes between cuts; serializing it at a fixed offset (right
    // after the fixed-size vector clock) keeps its bytes word-aligned
    // across epochs so incremental deltas see only the pages that
    // really changed. The growing sections (interval log, diff store,
    // page metadata) follow, where their append-driven shifts stay
    // confined to the blob's tail.
    homes.serialize(w);
    ilog.serialize(w);
    w.putU32(static_cast<std::uint32_t>(diffStore.size()));
    for (const auto &[key, entry] : diffStore) {
        w.putU32(key.first);
        w.putU64(key.second);
        entry.diff.encode(w);
        w.putU64(entry.vtSum);
    }
    w.putU32(static_cast<std::uint32_t>(pageMeta.size()));
    for (const auto &[page, m] : pageMeta) {
        w.putU32(page);
        m.copyVt.encode(w);
        w.putU32(static_cast<std::uint32_t>(m.notices.size()));
        for (const auto &[proc, idx] : m.notices) {
            w.putI64(proc);
            w.putU32(idx);
        }
        w.putU64(m.writerMask);
    }
    w.putU32(static_cast<std::uint32_t>(pageTs.size()));
    for (const auto &[page, ts] : pageTs) {
        w.putU32(page);
        w.putU32(ts.numBlocks());
        for (std::uint64_t value : ts.raw())
            w.putU64(value);
    }
    w.putU32(static_cast<std::uint32_t>(pages.numPages()));
    for (PageId p = 0; p < pages.numPages(); ++p)
        w.putU8(static_cast<std::uint8_t>(pages.access(p)));
    twins.serialize(w);
    const std::vector<Run> dirtyRuns = dirty.dirtyRunsIn(0, arena->size());
    w.putU32(static_cast<std::uint32_t>(dirtyRuns.size()));
    for (const Run &run : dirtyRuns) {
        w.putU32(run.start);
        w.putU32(run.length);
    }
    w.putU32(lastBarrierSentIdx);
    w.putU32(static_cast<std::uint32_t>(parkedPageReqs.size()));
    for (const ParkedPageReq &req : parkedPageReqs) {
        w.putI64(req.origin);
        w.putU64(req.token);
        w.putU32(req.page);
        req.need.encode(w);
        req.reqLog.encode(w);
    }
    w.putU32(static_cast<std::uint32_t>(parkedFlushes.size()));
    for (const ParkedFlush &pf : parkedFlushes) {
        w.putI64(pf.proc);
        w.putU32(pf.idx);
        w.putU32(pf.prevIdx);
        w.putU64(pf.vtSum);
        w.putU32(pf.page);
        pf.diff.encode(w);
    }
    w.putU32(static_cast<std::uint32_t>(pendingHomeFlushes.size()));
    for (const auto &[dst, entries] : pendingHomeFlushes) {
        w.putI64(dst);
        w.putU32(static_cast<std::uint32_t>(entries.size()));
        for (const PendingFlush &pf : entries) {
            w.putU32(pf.page);
            w.putU32(pf.idx);
            w.putU32(pf.prevIdx);
            w.putU64(pf.vtSum);
            pf.diff.encode(w);
        }
    }
    w.putU32(ownIdxFlushed.load(std::memory_order_acquire));
    w.putU8(gcValidated ? 1 : 0);
    w.putU32(static_cast<std::uint32_t>(barrierScratch.size()));
    for (const auto &[barrier, scratch] : barrierScratch) {
        w.putU32(barrier);
        w.putU32(static_cast<std::uint32_t>(scratch.arrivalVt.size()));
        for (const VectorTime &avt : scratch.arrivalVt)
            avt.encode(w);
        w.putI64(scratch.validatedArrivals);
        w.putI64(scratch.departsBuilt);
    }
}

void
LrcRuntime::restoreFrom(WireReader &r)
{
    Runtime::restoreFrom(r);
    vt = VectorTime::decode(r);
    homes.restoreFrom(r);
    ilog.restoreFrom(r);
    diffStore.clear();
    const std::uint32_t ndiffs = r.getU32();
    for (std::uint32_t i = 0; i < ndiffs; ++i) {
        const PageId page = r.getU32();
        const std::uint64_t key = r.getU64();
        DiffEntry &entry = diffStore[{page, key}];
        entry.diff = Diff::decode(r);
        entry.vtSum = r.getU64();
    }
    pageMeta.clear();
    invalidPages.clear();
    const std::uint32_t nmeta = r.getU32();
    for (std::uint32_t i = 0; i < nmeta; ++i) {
        const PageId page = r.getU32();
        PageMeta &m = pageMeta[page];
        m.copyVt = VectorTime::decode(r);
        const std::uint32_t nnotices = r.getU32();
        m.notices.reserve(nnotices);
        for (std::uint32_t n = 0; n < nnotices; ++n) {
            const NodeId proc = static_cast<NodeId>(r.getI64());
            const std::uint32_t idx = r.getU32();
            m.notices.emplace_back(proc, idx);
        }
        m.writerMask = r.getU64();
        // Re-establish the invariant invalidPages ⇔ pending notices.
        if (!m.notices.empty())
            invalidPages.insert(page);
    }
    pageTs.clear();
    const std::uint32_t nts = r.getU32();
    for (std::uint32_t i = 0; i < nts; ++i) {
        const PageId page = r.getU32();
        const std::uint32_t nblocks = r.getU32();
        BlockTimestamps ts(nblocks);
        for (std::uint32_t b = 0; b < nblocks; ++b)
            ts.set(b, r.getU64());
        pageTs.emplace(page, std::move(ts));
    }
    const std::uint32_t npages = r.getU32();
    DSM_ASSERT(npages == pages.numPages(), "page-table size mismatch");
    for (PageId p = 0; p < npages; ++p)
        pages.setAccess(p, static_cast<PageAccess>(r.getU8()));
    twins.restoreFrom(r);
    dirty.clearAll();
    const std::uint32_t nruns = r.getU32();
    for (std::uint32_t i = 0; i < nruns; ++i) {
        const std::uint64_t start = r.getU32();
        const std::uint64_t length = r.getU32();
        dirty.markRange(start * 4, length * 4);
    }
    lastBarrierSentIdx = r.getU32();
    parkedPageReqs.clear();
    const std::uint32_t nparkedReqs = r.getU32();
    for (std::uint32_t i = 0; i < nparkedReqs; ++i) {
        ParkedPageReq req;
        req.origin = static_cast<NodeId>(r.getI64());
        req.token = r.getU64();
        req.page = r.getU32();
        req.need = VectorTime::decode(r);
        req.reqLog = VectorTime::decode(r);
        parkedPageReqs.push_back(std::move(req));
    }
    parkedFlushes.clear();
    const std::uint32_t nparkedFlushes = r.getU32();
    for (std::uint32_t i = 0; i < nparkedFlushes; ++i) {
        ParkedFlush pf;
        pf.proc = static_cast<NodeId>(r.getI64());
        pf.idx = r.getU32();
        pf.prevIdx = r.getU32();
        pf.vtSum = r.getU64();
        pf.page = r.getU32();
        pf.diff = Diff::decode(r);
        parkedFlushes.push_back(std::move(pf));
    }
    pendingHomeFlushes.clear();
    const std::uint32_t nbuckets = r.getU32();
    for (std::uint32_t i = 0; i < nbuckets; ++i) {
        const NodeId dst = static_cast<NodeId>(r.getI64());
        std::vector<PendingFlush> &entries = pendingHomeFlushes[dst];
        const std::uint32_t nentries = r.getU32();
        entries.reserve(nentries);
        for (std::uint32_t e = 0; e < nentries; ++e) {
            PendingFlush pf;
            pf.page = r.getU32();
            pf.idx = r.getU32();
            pf.prevIdx = r.getU32();
            pf.vtSum = r.getU64();
            pf.diff = Diff::decode(r);
            entries.push_back(std::move(pf));
        }
    }
    ownIdxFlushed.store(r.getU32(), std::memory_order_release);
    gcValidated = r.getU8() != 0;
    barrierScratch.clear();
    const std::uint32_t nscratch = r.getU32();
    for (std::uint32_t i = 0; i < nscratch; ++i) {
        const BarrierId barrier = r.getU32();
        BarrierScratch &scratch = barrierScratch[barrier];
        const std::uint32_t nvts = r.getU32();
        scratch.arrivalVt.reserve(nvts);
        for (std::uint32_t v = 0; v < nvts; ++v)
            scratch.arrivalVt.push_back(VectorTime::decode(r));
        scratch.validatedArrivals = static_cast<int>(r.getI64());
        scratch.departsBuilt = static_cast<int>(r.getI64());
    }
}

void
LrcRuntime::wipeForRecovery()
{
    Runtime::wipeForRecovery();
    vt = VectorTime(numProcs);
    ilog = IntervalLog(numProcs);
    diffStore.clear();
    pageMeta.clear();
    invalidPages.clear();
    pageTs.clear();
    pages.setAll(PageAccess::None); // restoreFrom rewrites every entry
    twins.clear();
    dirty.clearAll();
    lastBarrierSentIdx = 0;
    homes.clearForRecovery();
    parkedPageReqs.clear();
    parkedFlushes.clear();
    pendingHomeFlushes.clear();
    ownIdxFlushed.store(0, std::memory_order_release);
    gcValidated = false;
    barrierScratch.clear();
}

std::vector<std::uint32_t>
LrcRuntime::vectorFrontier() const
{
    std::vector<std::uint32_t> frontier(vt.size());
    for (int p = 0; p < vt.size(); ++p)
        frontier[p] = vt[p];
    return frontier;
}

} // namespace dsm
