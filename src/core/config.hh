/**
 * @file
 * Named configurations of the design space the paper explores:
 * consistency model x write trapping x write collection (Table 1).
 * The combination compiler-instrumentation + diffing is excluded, as
 * in the paper, because it would pay the memory overhead of both the
 * software dirty bits and the diffs.
 */

#ifndef DSM_CORE_CONFIG_HH
#define DSM_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "time/cost_model.hh"

namespace dsm {

enum class Model : std::uint8_t { EC, LRC };

enum class TrapMethod : std::uint8_t
{
    CompilerInstrumentation,
    Twinning,
};

enum class CollectMethod : std::uint8_t
{
    Timestamping,
    Diffing,
};

const char *toString(Model model);
const char *toString(TrapMethod trap);
const char *toString(CollectMethod collect);

struct RuntimeConfig
{
    Model model = Model::LRC;
    TrapMethod trap = TrapMethod::Twinning;
    CollectMethod collect = CollectMethod::Diffing;

    /** Paper-style name: EC-ci, EC-time, EC-diff, LRC-ci, LRC-time,
     *  LRC-diff. */
    std::string name() const;

    /** fatal()s on the excluded ci+diff combination. */
    void validate() const;

    /** Parse a paper-style name; fatal() on unknown names. */
    static RuntimeConfig parse(const std::string &name);

    /** The six legal combinations, in Table 4/5 order. */
    static const std::vector<RuntimeConfig> &all();

    bool operator==(const RuntimeConfig &other) const = default;
};

/** Parameters of a simulated cluster. */
struct ClusterConfig
{
    int nprocs = 8;
    RuntimeConfig runtime;
    std::size_t arenaBytes = 16u << 20;
    std::size_t pageSize = 4096;
    CostModel cost;

    /**
     * Simulate an unreliable AAL3/4 substrate: the first transmission
     * of every n-th message is lost and recovered by the modeled
     * retransmission protocol. 0 disables losses.
     */
    std::uint64_t lossEveryNth = 0;

    /**
     * Use the hierarchical (page-level + word-level) dirty bit scheme
     * for LRC-ci (Section 4.1). Disabling it scans the whole shared
     * region at every write collection — the ablation the paper argues
     * against.
     */
    bool hierarchicalDirty = true;

    /**
     * Twin small EC objects eagerly at write-lock acquire (the paper's
     * improvement over the Midway VM implementation, Sections 4.2 and
     * 9). Disabling it models the older scheme's cost: one protection
     * fault per small-object write acquire before the twin is made.
     */
    bool ecEagerSmallTwin = true;
};

} // namespace dsm

#endif // DSM_CORE_CONFIG_HH
