/**
 * @file
 * Named configurations of the design space the paper explores:
 * consistency model x write trapping x write collection (Table 1).
 * The combination compiler-instrumentation + diffing is excluded, as
 * in the paper, because it would pay the memory overhead of both the
 * software dirty bits and the diffs.
 */

#ifndef DSM_CORE_CONFIG_HH
#define DSM_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "time/cost_model.hh"

namespace dsm {

enum class Model : std::uint8_t { EC, LRC };

enum class TrapMethod : std::uint8_t
{
    CompilerInstrumentation,
    Twinning,
};

enum class CollectMethod : std::uint8_t
{
    Timestamping,
    Diffing,
};

const char *toString(Model model);
const char *toString(TrapMethod trap);
const char *toString(CollectMethod collect);

struct RuntimeConfig
{
    Model model = Model::LRC;
    TrapMethod trap = TrapMethod::Twinning;
    CollectMethod collect = CollectMethod::Diffing;

    /** Paper-style name: EC-ci, EC-time, EC-diff, LRC-ci, LRC-time,
     *  LRC-diff. */
    std::string name() const;

    /** fatal()s on the excluded ci+diff combination. */
    void validate() const;

    /** Parse a paper-style name; fatal() on unknown names. */
    static RuntimeConfig parse(const std::string &name);

    /** The six legal combinations, in Table 4/5 order. */
    static const std::vector<RuntimeConfig> &all();

    bool operator==(const RuntimeConfig &other) const = default;
};

/** Parameters of a simulated cluster. */
struct ClusterConfig
{
    int nprocs = 8;

    /**
     * Application threads per node (SMP nodes). Every node runs this
     * many SPMD worker threads sharing the node's memory, protocol
     * state and network endpoint; worker w = node * T + threadId
     * partitions the applications. 0 means "default": the DSM_THREADS
     * environment variable if set, else 1. With T == 1 the runtime is
     * observationally identical to the historical one-thread-per-node
     * system (the per-thread clock aliases the node clock and no
     * intra-node queueing ever happens).
     */
    int threadsPerNode = 0;

    RuntimeConfig runtime;
    std::size_t arenaBytes = 16u << 20;
    std::size_t pageSize = 4096;
    CostModel cost;

    /**
     * Simulate an unreliable AAL3/4 substrate: the first transmission
     * of every n-th message is lost and recovered by the modeled
     * retransmission protocol. 0 disables losses.
     */
    std::uint64_t lossEveryNth = 0;

    /**
     * Use the hierarchical (page-level + word-level) dirty bit scheme
     * for LRC-ci (Section 4.1). Disabling it scans the whole shared
     * region at every write collection — the ablation the paper argues
     * against.
     */
    bool hierarchicalDirty = true;

    /**
     * Twin small EC objects eagerly at write-lock acquire (the paper's
     * improvement over the Midway VM implementation, Sections 4.2 and
     * 9). Disabling it models the older scheme's cost: one protection
     * fault per small-object write acquire before the twin is made.
     */
    bool ecEagerSmallTwin = true;

    // --- Fast-path memory pipeline (ablatable against the seed paths).

    /**
     * Compare 64-bit blocks during diff creation and twin-vs-copy
     * timestamp stamping, skipping clean memory 32 bytes at a time.
     * Disabling it reproduces the seed per-4-byte memcmp scan. Both
     * emit identical word-granularity runs.
     */
    bool wideDiffScan = true;

    /**
     * Coalesce diff runs separated by at most this many unchanged
     * words into one run (fewer per-run wire headers, more payload
     * bytes). 0 keeps runs word-exact — required whenever concurrent
     * writers of one page may interleave within the gap, so it is the
     * only safe general default for LRC's multi-writer protocol.
     */
    std::uint32_t diffGapWords = 0;

    /**
     * Batch LRC access-miss traffic: one diff request/reply pair per
     * writer carries all of a page's missing intervals and piggybacks
     * other invalid pages whose pending writers are already being
     * contacted. Disabling it falls back to the seed one-request-per-
     * (page, writer) protocol.
     */
    bool batchDiffFetch = true;

    /**
     * Recycle wire payload and twin buffers through the process-wide
     * BufferPool instead of allocating a fresh vector per message.
     */
    bool pooledBuffers = true;

    /**
     * Piggyback write notices (interval records) on LRC fetch replies
     * (diff, timestamp and home-page), TreadMarks-style: a requester
     * advertises its interval-log coverage and the responder appends
     * the records it lacks, so the data a miss brings back cannot be
     * followed by an immediate re-invalidation of the same page for
     * an interval the reply already contained. For the timestamping
     * implementations this also lifts the requester-vector cap on
     * transmitted runs (the piggybacked records supply the ordering
     * knowledge the cap protected). Counted by noticesPiggybacked /
     * reinvalidationsAvoided.
     */
    bool piggybackWriteNotices = true;

    /**
     * Garbage-collect interval records and stored diffs at barriers
     * once the interval log holds at least gcIntervalThreshold
     * records: every node validates its invalid pages before arriving,
     * the manager computes the minimum arrival vector, and departures
     * instruct all nodes to discard records/diffs below it. Keeps
     * long-running LRC executions' memory bounded (TreadMarks-style).
     */
    bool gcAtBarriers = true;
    std::uint32_t gcIntervalThreshold = 256;

    /**
     * Size the GC trigger from arena pressure instead of the bare
     * record count: with this on, barrier-time GC also fires once the
     * interval log references at least gcPressurePages page entries
     * (live records x average pages per record), so a log full of fat
     * records collects long before the static record-count threshold.
     * The static gcIntervalThreshold remains as the fallback trigger
     * either way. Off by default (legacy trigger).
     */
    bool adaptiveGcThreshold = false;
    std::uint32_t gcPressurePages = 2048;

    /**
     * Home-based LRC (HLRC-style): every page has a home node
     * (round-robin, migratable) that absorbs diffs eagerly at interval
     * close, so an access miss is exactly one request/reply pair
     * against the home and no diffs are ever stored — the barrier-time
     * diff GC handshake becomes a no-op. Takes effect for LRC with
     * diff collection (LRC-diff); the timestamping implementations
     * remain homeless.
     */
    bool homeBasedLrc = false;

    /**
     * Remote accesses (diff flushes + page fetches) by a single node
     * to a page homed elsewhere before the home migrates to that node.
     * 0 disables migration.
     */
    std::uint32_t homeMigrateThreshold = 64;

    /**
     * Epoch window (in accesses to one homed page) of the migration
     * counters: every homeDecayWindow accesses the per-node counts are
     * halved, so migration reacts to the recent access mix instead of
     * firing on stale history accumulated long ago. 0 restores the
     * legacy undecayed counter.
     */
    std::uint32_t homeDecayWindow = 1024;

    // --- Sharing-policy layer: adaptive policies for migratory
    // sharing (locks and task queues — the pattern on which the
    // paper's EC and LRC results diverge most). Each knob defaults to
    // -1 = "resolve from the environment at Cluster construction, off
    // when unset", so whole ctest/bench legs can flip a policy without
    // recompiling while tests that pin a value explicitly stay pinned.

    /**
     * Bounded local-priority lock hand-off (SMP nodes): after at most
     * this many consecutive local grants of one lock (hand-offs to
     * parked siblings and fast-path reacquires alike), a pending
     * remote requester is served before the next local taker.
     * Preserves the zero-message short-circuit for bursts of sibling
     * contention while capping how long a queued remote request can
     * starve (EC's task-queue app degrades unboundedly under pure
     * local-first hand-off at threadsPerNode > 1). 0 = unbounded (the
     * pure local-first policy); -1 = the DSM_LOCK_FAIRNESS
     * environment variable if set, else 0. Counted by
     * remoteHandoffsForced / maxLocalHandoffRun.
     */
    int lockLocalHandoffBound = -1;

    /**
     * Migrate-to-last-writer home policy: a homed page whose flushes
     * keep switching writers (a migratory object — task queue slots,
     * lock-protected counters) follows the writer chain instead of
     * waiting for one node to dominate the access counts. Classified
     * by writer switches within the homeDecayWindow epoch (see
     * homeWriterSwitchThreshold). -1 = DSM_HOME_LAST_WRITER env if
     * set, else off. Counted by lastWriterMigrations.
     */
    int homeMigrateLastWriter = -1;

    /**
     * Writer switches of one homed page within the decay window that
     * classify it as migratory under the last-writer policy (a switch
     * is a flush — or a local interval close at the home — by a
     * different writer than the previous one).
     */
    std::uint32_t homeWriterSwitchThreshold = 3;

    /**
     * Adaptive fallback for home ping-pong: once a page has migrated
     * this many times (its migration epoch), further migrations are
     * suppressed and the page stays pinned at its current home — the
     * lever that turns pathological follow-the-writer ping-pong into
     * a stable, reproducible static-home pattern. 0 = no cap; -1 =
     * DSM_HOME_PINGPONG env if set, else 0 with the access-count
     * policy alone and 8 when the last-writer policy is on (a
     * migratory page settles after a bounded chase). Counted by
     * homeMigrationsSuppressed.
     */
    int homePingPongLimit = -1;

    /**
     * Optimistic lock-free home reads (FaRM-style version
     * validation): a read-only access miss asks the home for a
     * versioned snapshot, and the home's service thread answers it
     * without acquiring the node's core/home protocol locks — it
     * seqlock-copies the page against the per-cacheline version
     * footer maintained by guarded flush application, retrying on a
     * torn read and falling back to the locked path after
     * optReadMaxRetries tears (or when the snapshot cannot cover the
     * requester's needed intervals). The reply carries the home's
     * migration epoch; a requester whose mapping disagrees rejects
     * the snapshot and refetches. -1 = DSM_OPT_READ env if set, else
     * off. Counted by optReadsServed / optReadRetries /
     * optReadFallbacks. Only meaningful with homeBasedLrc.
     */
    int optimisticHomeReads = -1;

    /**
     * Torn optimistic snapshots tolerated before one request falls
     * back to the locked home read path.
     */
    int optReadMaxRetries = 3;

    /**
     * Defer HomeDiffFlush sends and merge the payloads per home: a
     * releaser that closes several intervals between remote
     * communication points (lock grants, barrier arrivals, its own
     * home fetches) sends one flush message per home carrying every
     * pending interval's diffs instead of one message per close — the
     * home's word-sum guard already tolerates any arrival order, and
     * requests for not-yet-flushed intervals park at the home exactly
     * as they do for in-flight ones. -1 = DSM_HOME_DEFER env if set,
     * else off (eager per-close flushes, the legacy protocol).
     * Counted by homeFlushesDeferred.
     */
    int homeFlushDefer = -1;

    // --- Latency-path layer (PR 9): reply-bypass delivery, adaptive
    // blocking dequeue and same-destination coalescing. Same -1 =
    // "resolve from the environment at Cluster construction"
    // convention as the policy knobs.

    /**
     * Reply-bypass delivery: RPC replies are written straight into
     * the blocked caller's futex reply slot, skipping the receiver's
     * service-thread MPSC hop, guarded by a per-(src, dst) outstanding
     * -inbox-message counter so a bypassed reply can never overtake an
     * earlier inbox message from the same peer (HomeMigrate installs,
     * LockForward chains). -1 = DSM_REPLY_BYPASS env if set, else on.
     * Counted by repliesBypassed / replyBypassRefusals.
     */
    int replyBypass = -1;

    /**
     * Adaptive blocking dequeue: app-level receive polls (the QS
     * task-queue scan) park on the endpoint's activity futex word
     * with an adaptive spin threshold instead of spinning through
     * chargeWork backoff, and the service thread's ring pop uses a
     * dynamically sized spin budget (halve on park, grow on hot pop)
     * instead of the binary parked/hot budget. -1 = DSM_BLOCKING_DEQ
     * env if set, else off. Counted by idlePolls / idleParks.
     */
    int blockingDequeue = -1;

    /**
     * Send-side same-destination coalescing: small eager messages
     * (home diff flushes, home-migrate installs) are buffered per
     * destination and shipped as one framed CoalescedFrame ring slot,
     * flushed at request boundaries (before any blocking call, before
     * any direct send or reply to the same destination, at the end of
     * each service-thread dispatch and before idle parks) so framing
     * never reorders against other traffic to that peer. The frame
     * format is transport-neutral (length-prefixed serde entries).
     * -1 = DSM_COALESCE env if set, else off. Counted by
     * coalesceFramesSent / messagesCoalesced.
     */
    int coalesceSends = -1;

    /**
     * Per-lock adaptive fairness bound: instead of the static
     * DSM_LOCK_FAIRNESS k, each lock's local-hand-off bound grows
     * (x2, capped) while local runs complete with no remote waiter
     * queued and shrinks (/2, floored at 1) every time the bound
     * forces a remote grant — EC's task queue settles near k=16 while
     * LRC's prefers k=4, so one static k always sacrifices one of
     * them. Takes effect only when a base bound is armed (the static
     * k seeds the initial per-lock bound). -1 =
     * DSM_LOCK_FAIRNESS_ADAPT env if set, else off. Counted by
     * fairnessBoundGrows / fairnessBoundShrinks.
     */
    int lockFairnessAdaptive = -1;

    // --- Crash tolerance: fault injection + coordinated
    // checkpointing. Same -1 = "resolve from the environment at
    // Cluster construction" convention as the policy knobs, so the CI
    // fault legs and the nightly chaos workflow flip them per process
    // while tests that pin values stay pinned. With every knob at its
    // resolved default (no DSM_FAULT_*/DSM_CKPT_* in the environment)
    // the fault layer is never constructed and the hot paths are
    // bit-identical to a build without it (zero-cost abstraction,
    // asserted by the CI micro_net comparison).

    /**
     * Seed of the deterministic fault injector (message-drop
     * decisions). -1 = DSM_FAULT_SEED env if set, else 1.
     */
    long long faultSeed = -1;

    /**
     * Fraction of *droppable* messages (direct request/reply RPCs —
     * never chain-routed lock or home traffic, never Shutdown) the
     * injector discards before they reach the destination inbox, in
     * ppm-style units: the env variable takes a float in [0, 1).
     * Enables the Endpoint deadline + bounded-retransmit machinery.
     * < 0 = DSM_FAULT_MSG_DROP env if set, else 0 (off).
     */
    double faultMsgDrop = -1.0;

    /**
     * Node to chaos-kill at a barrier: the victim's protocol state is
     * wiped and restored from its latest checkpoint, and its parked
     * inbox traffic replays forward. -1 = DSM_FAULT_KILL_NODE env if
     * set, else no kill.
     */
    int faultKillNode = -1;

    /**
     * Barrier-arrival count (per node, 1-based) at which the kill
     * fires. -1 = DSM_FAULT_KILL_EPOCH env if set, else 2 when a kill
     * is armed.
     */
    int faultKillEpoch = -1;

    /**
     * Take a coordinated checkpoint every N barrier cuts (1 = every
     * barrier). 0 = never; -1 = DSM_CKPT_EVERY env if set, else 1
     * when checkpointing is otherwise engaged (a kill is armed or
     * ckptDir is set), else 0.
     */
    int checkpointEvery = -1;

    /**
     * Directory for tier-1 file-backed snapshots (one blob per node
     * per cut + a manifest recording the cut's vector-time frontier).
     * Empty = DSM_CKPT_DIR env if set, else in-memory tier 0 only.
     */
    std::string ckptDir;

    /**
     * Silent-peer outage injection: at this node's checkpoint cut the
     * injector silences it (100% drop of its droppable traffic, both
     * directions, overriding the retransmit attempt immunity — a
     * total outage, unlike the probabilistic faultMsgDrop) for
     * faultOutageMs of wall-clock, then the node is wiped, restored
     * from its latest checkpoint and unsilenced. Survivors detect the
     * outage via the failure detector and degrade (typed
     * PeerUnavailable retries) instead of hanging. -1 =
     * DSM_FAULT_OUTAGE_NODE env if set, else no outage.
     */
    int faultOutageNode = -1;

    /**
     * Barrier-arrival count (per node, 1-based) at which the outage
     * fires. -1 = DSM_FAULT_OUTAGE_EPOCH env if set, else 2 when an
     * outage is armed.
     */
    int faultOutageEpoch = -1;

    /**
     * Outage duration in wall-clock milliseconds; must comfortably
     * exceed the detector deadline so survivors genuinely observe the
     * peer down. -1 = DSM_FAULT_OUTAGE_MS env if set, else 120.
     */
    int faultOutageMs = -1;

    /**
     * Failure-detector liveness deadline in milliseconds: a peer not
     * heard from (message arrival or in-process heartbeat) within the
     * deadline is declared down. 0 disarms the detector. -1 =
     * DSM_FD_DEADLINE_MS env if set, else 50 when an outage is armed,
     * else 0.
     */
    int fdDeadlineMs = -1;

    /**
     * Endpoint retransmit schedule in microseconds: first deadline
     * and exponential-backoff cap. -1 = DSM_FAULT_RTO_FIRST_US /
     * DSM_FAULT_RTO_CAP_US env if set, else the historical 2000 /
     * 500000.
     */
    long long faultRtoFirstUs = -1;
    long long faultRtoCapUs = -1;

    /**
     * Incremental delta checkpoints: between full anchor cuts, a
     * node's snapshot is diffed (SIMD changed-run scan) against the
     * previous cut's image and only the changed runs are stored
     * (checkpointDeltaBytes), with periodic anchors bounding chain
     * length. Restore materializes anchor + deltas and is
     * bit-identical to restoring a full cut. -1 = DSM_CKPT_DELTA env
     * if set, else off (every cut full).
     */
    int ckptDelta = -1;

    /**
     * Anchor cadence for delta chains: every N-th checkpoint of a
     * node is a full cut (N = 1 degenerates to all-full). -1 =
     * DSM_CKPT_ANCHOR env if set, else 8.
     */
    int ckptAnchorEvery = -1;

    // --- Transport tier (DESIGN.md §9). Same env-resolution
    // convention: the empty string means "take DSM_TRANSPORT at
    // Cluster construction, ring when unset".

    /**
     * Which interconnect carries the cluster's messages:
     *  - "ring"   — tier 0, all nodes are threads of this process
     *               sharing in-memory MPSC rings (the historical
     *               substrate; every feature works here);
     *  - "socket" — tier 1, Cluster::run forks one process per node
     *               and messages cross Unix-domain sockets as
     *               length-prefixed frames;
     *  - "tcp"    — tier 1 over loopback TCP (ports rendezvous
     *               through the socket directory).
     * In-process-only features (coordinated checkpointing, chaos
     * kill, silent-peer outages, the failure detector) force a
     * documented fallback to "ring" — they reach across node state in
     * ways only one address space allows. Empty = DSM_TRANSPORT env
     * if set, else "ring".
     */
    std::string transport;

    /**
     * Rendezvous directory for the socket tiers (listeners, port
     * files, result dumps). Empty = DSM_SOCKET_DIR env if set, else a
     * fresh mkdtemp directory per run, removed afterwards.
     */
    std::string socketDir;

    /** transport with the empty = "env or ring" default applied and
     *  the in-process-only fallback rules enforced. */
    std::string resolvedTransport() const;

    /** socketDir with the empty = "env or ephemeral" default (empty
     *  result = make a fresh directory per run). */
    std::string resolvedSocketDir() const;

    /** threadsPerNode with the 0 = "env or 1" default applied. */
    int resolvedThreadsPerNode() const;

    /** lockLocalHandoffBound with the -1 = "env or 0" default. */
    int resolvedLockFairness() const;

    /** homeMigrateLastWriter with the -1 = "env or off" default. */
    bool resolvedHomeLastWriter() const;

    /** homePingPongLimit with the -1 = "env, else policy default". */
    std::uint32_t resolvedHomePingPongLimit() const;

    /** homeFlushDefer with the -1 = "env or off" default. */
    bool resolvedHomeFlushDefer() const;

    /** optimisticHomeReads with the -1 = "env or off" default. */
    bool resolvedOptimisticHomeReads() const;

    /** replyBypass with the -1 = "env or ON" default. */
    bool resolvedReplyBypass() const;

    /** blockingDequeue with the -1 = "env or off" default. */
    bool resolvedBlockingDequeue() const;

    /** coalesceSends with the -1 = "env or off" default. */
    bool resolvedCoalesceSends() const;

    /** lockFairnessAdaptive with the -1 = "env or off" default. */
    bool resolvedLockFairnessAdaptive() const;

    /** faultSeed with the -1 = "env or 1" default. */
    std::uint64_t resolvedFaultSeed() const;

    /** faultMsgDrop with the < 0 = "env or 0" default, in [0, 1). */
    double resolvedFaultMsgDrop() const;

    /** faultKillNode with the -1 = "env or none" default (-1 = no
     *  kill). */
    int resolvedFaultKillNode() const;

    /** faultKillEpoch with the -1 = "env, else 2 when armed" default;
     *  0 when no kill is armed. */
    int resolvedFaultKillEpoch() const;

    /** checkpointEvery with the -1 = "env, else engage-on-demand"
     *  default. */
    int resolvedCheckpointEvery() const;

    /** ckptDir with the empty = "env or none" default. */
    std::string resolvedCkptDir() const;

    /** faultOutageNode with the -1 = "env or none" default (-1 = no
     *  outage). */
    int resolvedFaultOutageNode() const;

    /** faultOutageEpoch with the -1 = "env, else 2 when armed"
     *  default; 0 when no outage is armed. */
    int resolvedFaultOutageEpoch() const;

    /** faultOutageMs with the -1 = "env or 120" default. */
    int resolvedFaultOutageMs() const;

    /** Detector deadline in ns; 0 = detector disarmed. */
    std::uint64_t resolvedFdDeadlineNs() const;

    /** Retransmit schedule in ns (first deadline, backoff cap). */
    std::uint64_t resolvedRtoFirstNs() const;
    std::uint64_t resolvedRtoCapNs() const;

    /** ckptDelta with the -1 = "env or off" default. */
    bool resolvedCkptDelta() const;

    /** ckptAnchorEvery with the -1 = "env or 8" default. */
    int resolvedCkptAnchorEvery() const;

    /** True when any fault-injection knob resolves on (drop rate > 0,
     *  a kill armed, or a silent-peer outage armed). */
    bool faultsEngaged() const;
};

} // namespace dsm

#endif // DSM_CORE_CONFIG_HH
