#include "core/checkpoint.hh"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "core/runtime.hh"
#include "mem/wide_scan.hh"
#include "net/failure_detector.hh"
#include "net/fault_injector.hh"
#include "util/logging.hh"

namespace dsm {

CheckpointCoordinator::CheckpointCoordinator(
    NodeId self, int threads_per_node, Options options, Network &network,
    Endpoint &endpoint, LockService &lock_service,
    BarrierService &barrier_service)
    : id(self), threadsPerNode(threads_per_node), opts(std::move(options)),
      net(network), ep(endpoint), locks(lock_service),
      barriers(barrier_service)
{
    DSM_ASSERT(opts.every >= 1, "checkpoint interval %u", opts.every);
    DSM_ASSERT(threadsPerNode >= 1, "bad threadsPerNode %d",
               threads_per_node);
}

void
CheckpointCoordinator::atBarrier(Runtime &rt, BarrierId)
{
    std::unique_lock<std::mutex> g(mu);
    if (++arrived < threadsPerNode) {
        // Not the node's last thread: park until the leader finishes
        // the whole stop/snapshot/[restore]/restart sequence. The
        // rendezvous is what guarantees no sibling is mid-access or
        // mid-acquire while the leader reads protocol state.
        const std::uint64_t gen = generation;
        cv.wait(g, [&] { return generation != gen; });
        return;
    }
    arrived = 0;
    if (++barrierSeq % opts.every == 0)
        checkpointAsLeader(rt);
    ++generation;
    g.unlock();
    cv.notify_all();
}

void
CheckpointCoordinator::checkpointAsLeader(Runtime &rt)
{
    // Quiesce: the service thread drains the inbox up to the
    // self-addressed Shutdown marker and joins. Peer messages behind
    // the marker park in the ring — it is the holdback queue — and
    // are processed after the restart, i.e. after the cut.
    ep.stop();

    std::vector<std::byte> image = snapshot(rt);
    ++epochsDone;
    // Anchor cadence: epoch 1 and every anchorEvery-th cut after it
    // are full; between anchors only the runs that changed against
    // the previous cut's image are stored. lastBlob always keeps the
    // materialized image (the in-memory restore tier and the next
    // delta's base); lastBytes reports what a store actually costs.
    const bool full = !opts.delta || lastBlob.empty() ||
                      (epochsDone - 1) % opts.anchorEvery == 0;
    if (full) {
        lastBytes = image.size();
        lastBlob = std::move(image);
        if (!opts.dir.empty())
            persist(rt, lastBlob, true);
    } else {
        const std::vector<std::byte> delta =
            makeDelta(lastBlob, image, epochsDone - 1);
        lastBytes = delta.size();
        ep.stats().checkpointDeltaBytes += delta.size();
        lastBlob = std::move(image);
        if (!opts.dir.empty())
            persist(rt, delta, false);
    }
    ep.stats().checkpointsTaken++;

    if (id == opts.outageNode && epochsDone == opts.outageEpoch) {
        // Silent-peer outage: go dark for opts.outageMs. The injector
        // drops all our droppable traffic — attempt immunity included
        // — and with the service thread already joined no heartbeat is
        // stamped, so survivors' failure detectors genuinely declare
        // us down and their blocked waits degrade into counted
        // retries. Then rebuild from the latest checkpoint tier and
        // rejoin; our first deliveries stamp us alive again and the
        // survivors' recovery hooks run.
        DSM_ASSERT(opts.injector != nullptr,
                   "outage armed without a fault injector");
        opts.injector->setSilenced(id, true);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.outageMs));
        const auto t0 = std::chrono::steady_clock::now();
        rt.wipeForRecovery();
        locks.wipeForRecovery();
        barriers.wipeForRecovery();
        restore(rt, restoreSource());
        const auto t1 = std::chrono::steady_clock::now();
        restoreNs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        ep.stats().recoveryReplays++;
        opts.injector->setSilenced(id, false);
    }

    if (id == opts.killNode && epochsDone == opts.killEpoch) {
        // Chaos kill: this node "dies" at the cut and is rebuilt from
        // the snapshot alone. Mark the inbox down while the node is
        // dead so a recovery-aware consumer would see a typed
        // PeerDown instead of blocking, then restore and clear.
        net.markNodeDown(id);
        const auto t0 = std::chrono::steady_clock::now();
        rt.wipeForRecovery();
        locks.wipeForRecovery();
        barriers.wipeForRecovery();
        restore(rt, restoreSource());
        const auto t1 = std::chrono::steady_clock::now();
        restoreNs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        ep.stats().recoveryReplays++;
        net.clearNodeDown(id);
    }

    // A long cut must not read as an outage to peers' detectors.
    if (opts.detector != nullptr)
        opts.detector->heartbeat(id);

    // Restart: the fresh service thread drains the parked messages —
    // the node replays forward from the cut. Restart depends on no
    // peer, so recovery cannot deadlock.
    ep.start();
}

std::vector<std::byte>
CheckpointCoordinator::restoreSource() const
{
    if (opts.dir.empty())
        return lastBlob;
    if (opts.delta) {
        PersistedImage p = loadLatestImage(opts.dir, id);
        DSM_ASSERT(p.epoch == epochsDone,
                   "persisted chain at epoch %llu, cut at %llu",
                   static_cast<unsigned long long>(p.epoch),
                   static_cast<unsigned long long>(epochsDone));
        return std::move(p.image);
    }
    return loadPersisted();
}

std::vector<std::byte>
CheckpointCoordinator::snapshot(Runtime &rt) const
{
    WireWriter w;
    w.putU64(kMagic);
    w.putU32(kVersion);
    w.putI64(id);
    w.putU64(epochsDone + 1);
    rt.serialize(w);
    locks.serialize(w);
    barriers.serialize(w);
    return w.take();
}

void
CheckpointCoordinator::restore(Runtime &rt,
                               const std::vector<std::byte> &blob)
{
    WireReader r(blob);
    DSM_ASSERT(r.getU64() == kMagic, "bad checkpoint magic");
    DSM_ASSERT(r.getU32() == kVersion, "bad checkpoint version");
    DSM_ASSERT(r.getI64() == id, "checkpoint of a different node");
    DSM_ASSERT(r.getU64() == epochsDone, "checkpoint of a different cut");
    rt.restoreFrom(r);
    locks.restoreFrom(r);
    barriers.restoreFrom(r);
    DSM_ASSERT(r.done(), "trailing bytes in checkpoint blob");
}

std::string
CheckpointCoordinator::blobPath() const
{
    return opts.dir + "/node" + std::to_string(id) + "-epoch" +
           std::to_string(epochsDone) + ".bin";
}

void
CheckpointCoordinator::persist(Runtime &rt,
                               const std::vector<std::byte> &blob,
                               bool full) const
{
    std::filesystem::create_directories(opts.dir);
    {
        std::ofstream out(blobPath(), std::ios::binary | std::ios::trunc);
        DSM_ASSERT(out.good(), "cannot write checkpoint %s",
                   blobPath().c_str());
        out.write(reinterpret_cast<const char *>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
        DSM_ASSERT(out.good(), "short checkpoint write to %s",
                   blobPath().c_str());
    }
    // One manifest per node (no cross-thread file contention): one
    // line per cut with its kind (a delta records the epoch it is
    // based on; base+delta chains materialize through applyDelta) and
    // the vector-time frontier of the snapshot.
    const std::string manifest =
        opts.dir + "/manifest-node" + std::to_string(id) + ".txt";
    std::ofstream out(manifest,
                      manifestOwned ? std::ios::app : std::ios::trunc);
    manifestOwned = true;
    DSM_ASSERT(out.good(), "cannot write manifest %s", manifest.c_str());
    out << "node " << id << " epoch " << epochsDone << " bytes "
        << blob.size() << " kind " << (full ? "full" : "delta")
        << " base " << (full ? 0 : epochsDone - 1) << " frontier";
    const std::vector<std::uint32_t> frontier = rt.vectorFrontier();
    if (frontier.empty()) {
        out << " -"; // EC: no vector clock, consistency rides on locks
    } else {
        for (std::uint32_t v : frontier)
            out << ' ' << v;
    }
    out << '\n';
}

std::vector<std::byte>
CheckpointCoordinator::makeDelta(const std::vector<std::byte> &prev,
                                 const std::vector<std::byte> &cur,
                                 std::uint64_t base_epoch)
{
    // Runs cover the common word-aligned prefix; a verbatim tail
    // covers whatever lies past it, so images may change length
    // between cuts (a growing alloc log, a fatter interval log).
    const std::size_t common = std::min(prev.size(), cur.size()) /
                               kScanWordBytes * kScanWordBytes;
    const std::uint32_t words =
        static_cast<std::uint32_t>(common / kScanWordBytes);
    WireWriter w;
    w.putU64(kDeltaMagic);
    w.putU64(base_epoch);
    w.putU64(cur.size());
    w.putU64(prev.size());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    scanChangedRuns(cur.data(), prev.data(), words, bestScanKernel(),
                    [&](std::uint32_t first, std::uint32_t end) {
                        runs.emplace_back(first, end);
                    });
    w.putU32(static_cast<std::uint32_t>(runs.size()));
    for (const auto &[first, end] : runs) {
        w.putU32(first);
        w.putU32(end - first);
        w.putBytes(cur.data() + std::size_t{first} * kScanWordBytes,
                   std::size_t{end - first} * kScanWordBytes);
    }
    const std::size_t tail = cur.size() - common;
    w.putU32(static_cast<std::uint32_t>(tail));
    if (tail > 0)
        w.putBytes(cur.data() + common, tail);
    return w.take();
}

std::vector<std::byte>
CheckpointCoordinator::applyDelta(const std::vector<std::byte> &prev,
                                  const std::vector<std::byte> &delta,
                                  std::uint64_t base_epoch)
{
    WireReader r(delta);
    DSM_ASSERT(r.getU64() == kDeltaMagic, "bad delta magic");
    const std::uint64_t base = r.getU64();
    DSM_ASSERT(base_epoch == 0 || base == base_epoch,
               "delta based on epoch %llu, expected %llu",
               static_cast<unsigned long long>(base),
               static_cast<unsigned long long>(base_epoch));
    const std::uint64_t cur_size = r.getU64();
    const std::uint64_t prev_size = r.getU64();
    DSM_ASSERT(prev_size == prev.size(),
               "delta against a %llu-byte image, have %llu",
               static_cast<unsigned long long>(prev_size),
               static_cast<unsigned long long>(prev.size()));
    const std::size_t common =
        std::min<std::size_t>(prev.size(),
                              static_cast<std::size_t>(cur_size)) /
        kScanWordBytes * kScanWordBytes;
    std::vector<std::byte> out(static_cast<std::size_t>(cur_size));
    std::memcpy(out.data(), prev.data(), common);
    const std::uint32_t nruns = r.getU32();
    for (std::uint32_t i = 0; i < nruns; ++i) {
        const std::uint32_t first = r.getU32();
        const std::uint32_t n = r.getU32();
        DSM_ASSERT((std::size_t{first} + n) * kScanWordBytes <= common,
                   "delta run past the common prefix");
        r.getBytes(out.data() + std::size_t{first} * kScanWordBytes,
                   std::size_t{n} * kScanWordBytes);
    }
    const std::uint32_t tail = r.getU32();
    DSM_ASSERT(common + tail == cur_size, "delta tail mismatch");
    if (tail > 0)
        r.getBytes(out.data() + common, tail);
    DSM_ASSERT(r.done(), "trailing bytes in delta blob");
    return out;
}

CheckpointCoordinator::PersistedImage
CheckpointCoordinator::loadLatestImage(const std::string &dir,
                                       NodeId node)
{
    PersistedImage out;
    const std::string manifest =
        dir + "/manifest-node" + std::to_string(node) + ".txt";
    std::ifstream in(manifest);
    if (!in.good())
        return out; // nothing persisted yet: epoch 0
    struct Cut
    {
        bool full = true;
        std::vector<std::uint32_t> frontier;
    };
    std::map<std::uint64_t, Cut> cuts;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tok, kind = "full";
        std::uint64_t epoch = 0, skip = 0;
        ls >> tok >> skip >> tok >> epoch >> tok >> skip;
        ls >> tok;
        if (tok == "kind") { // pre-delta manifests lack the field
            ls >> kind >> tok >> skip; // "base" B
            ls >> tok;                 // "frontier"
        }
        DSM_ASSERT(tok == "frontier", "malformed manifest line '%s'",
                   line.c_str());
        Cut cut;
        cut.full = kind == "full";
        std::string f;
        while (ls >> f) {
            if (f == "-")
                break;
            cut.frontier.push_back(
                static_cast<std::uint32_t>(std::stoul(f)));
        }
        cuts[epoch] = std::move(cut);
    }
    if (cuts.empty())
        return out;
    const std::uint64_t latest = cuts.rbegin()->first;
    // Walk back to the newest full anchor, then replay the deltas
    // forward (each is based on its immediate predecessor).
    std::uint64_t anchor = latest;
    while (!cuts.at(anchor).full) {
        DSM_ASSERT(anchor > 1 && cuts.count(anchor - 1) != 0,
                   "delta chain of node %d has no anchor",
                   static_cast<int>(node));
        --anchor;
    }
    auto read_blob = [&](std::uint64_t epoch) {
        const std::string path = dir + "/node" + std::to_string(node) +
                                 "-epoch" + std::to_string(epoch) +
                                 ".bin";
        std::ifstream f(path, std::ios::binary | std::ios::ate);
        DSM_ASSERT(f.good(), "cannot read checkpoint %s", path.c_str());
        const std::streamsize size = f.tellg();
        f.seekg(0);
        std::vector<std::byte> blob(static_cast<std::size_t>(size));
        f.read(reinterpret_cast<char *>(blob.data()), size);
        DSM_ASSERT(f.good(), "short checkpoint read from %s",
                   path.c_str());
        return blob;
    };
    out.image = read_blob(anchor);
    for (std::uint64_t e = anchor + 1; e <= latest; ++e)
        out.image = applyDelta(out.image, read_blob(e), e - 1);
    out.epoch = latest;
    out.frontier = std::move(cuts.at(latest).frontier);
    return out;
}

std::vector<std::byte>
CheckpointCoordinator::loadPersisted() const
{
    std::ifstream in(blobPath(), std::ios::binary | std::ios::ate);
    DSM_ASSERT(in.good(), "cannot read checkpoint %s", blobPath().c_str());
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::byte> blob(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(blob.data()), size);
    DSM_ASSERT(in.good(), "short checkpoint read from %s",
               blobPath().c_str());
    return blob;
}

} // namespace dsm
