#include "core/checkpoint.hh"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "core/runtime.hh"
#include "util/logging.hh"

namespace dsm {

CheckpointCoordinator::CheckpointCoordinator(
    NodeId self, int threads_per_node, Options options, Network &network,
    Endpoint &endpoint, LockService &lock_service,
    BarrierService &barrier_service)
    : id(self), threadsPerNode(threads_per_node), opts(std::move(options)),
      net(network), ep(endpoint), locks(lock_service),
      barriers(barrier_service)
{
    DSM_ASSERT(opts.every >= 1, "checkpoint interval %u", opts.every);
    DSM_ASSERT(threadsPerNode >= 1, "bad threadsPerNode %d",
               threads_per_node);
}

void
CheckpointCoordinator::atBarrier(Runtime &rt, BarrierId)
{
    std::unique_lock<std::mutex> g(mu);
    if (++arrived < threadsPerNode) {
        // Not the node's last thread: park until the leader finishes
        // the whole stop/snapshot/[restore]/restart sequence. The
        // rendezvous is what guarantees no sibling is mid-access or
        // mid-acquire while the leader reads protocol state.
        const std::uint64_t gen = generation;
        cv.wait(g, [&] { return generation != gen; });
        return;
    }
    arrived = 0;
    if (++barrierSeq % opts.every == 0)
        checkpointAsLeader(rt);
    ++generation;
    g.unlock();
    cv.notify_all();
}

void
CheckpointCoordinator::checkpointAsLeader(Runtime &rt)
{
    // Quiesce: the service thread drains the inbox up to the
    // self-addressed Shutdown marker and joins. Peer messages behind
    // the marker park in the ring — it is the holdback queue — and
    // are processed after the restart, i.e. after the cut.
    ep.stop();

    lastBlob = snapshot(rt);
    lastBytes = lastBlob.size();
    ++epochsDone;
    ep.stats().checkpointsTaken++;
    if (!opts.dir.empty())
        persist(rt, lastBlob);

    if (id == opts.killNode && epochsDone == opts.killEpoch) {
        // Chaos kill: this node "dies" at the cut and is rebuilt from
        // the snapshot alone. Mark the inbox down while the node is
        // dead so a recovery-aware consumer would see a typed
        // PeerDown instead of blocking, then restore and clear.
        net.markNodeDown(id);
        const auto t0 = std::chrono::steady_clock::now();
        rt.wipeForRecovery();
        locks.wipeForRecovery();
        barriers.wipeForRecovery();
        const std::vector<std::byte> blob =
            opts.dir.empty() ? lastBlob : loadPersisted();
        restore(rt, blob);
        const auto t1 = std::chrono::steady_clock::now();
        restoreNs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        ep.stats().recoveryReplays++;
        net.clearNodeDown(id);
    }

    // Restart: the fresh service thread drains the parked messages —
    // the node replays forward from the cut. Restart depends on no
    // peer, so recovery cannot deadlock.
    ep.start();
}

std::vector<std::byte>
CheckpointCoordinator::snapshot(Runtime &rt) const
{
    WireWriter w;
    w.putU64(kMagic);
    w.putU32(kVersion);
    w.putI64(id);
    w.putU64(epochsDone + 1);
    rt.serialize(w);
    locks.serialize(w);
    barriers.serialize(w);
    return w.take();
}

void
CheckpointCoordinator::restore(Runtime &rt,
                               const std::vector<std::byte> &blob)
{
    WireReader r(blob);
    DSM_ASSERT(r.getU64() == kMagic, "bad checkpoint magic");
    DSM_ASSERT(r.getU32() == kVersion, "bad checkpoint version");
    DSM_ASSERT(r.getI64() == id, "checkpoint of a different node");
    DSM_ASSERT(r.getU64() == epochsDone, "checkpoint of a different cut");
    rt.restoreFrom(r);
    locks.restoreFrom(r);
    barriers.restoreFrom(r);
    DSM_ASSERT(r.done(), "trailing bytes in checkpoint blob");
}

std::string
CheckpointCoordinator::blobPath() const
{
    return opts.dir + "/node" + std::to_string(id) + "-epoch" +
           std::to_string(epochsDone) + ".bin";
}

void
CheckpointCoordinator::persist(Runtime &rt,
                               const std::vector<std::byte> &blob) const
{
    std::filesystem::create_directories(opts.dir);
    {
        std::ofstream out(blobPath(), std::ios::binary | std::ios::trunc);
        DSM_ASSERT(out.good(), "cannot write checkpoint %s",
                   blobPath().c_str());
        out.write(reinterpret_cast<const char *>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
        DSM_ASSERT(out.good(), "short checkpoint write to %s",
                   blobPath().c_str());
    }
    // One manifest per node (no cross-thread file contention): one
    // line per cut with the vector-time frontier of the snapshot.
    const std::string manifest =
        opts.dir + "/manifest-node" + std::to_string(id) + ".txt";
    std::ofstream out(manifest, std::ios::app);
    DSM_ASSERT(out.good(), "cannot write manifest %s", manifest.c_str());
    out << "node " << id << " epoch " << epochsDone << " bytes "
        << blob.size() << " frontier";
    const std::vector<std::uint32_t> frontier = rt.vectorFrontier();
    if (frontier.empty()) {
        out << " -"; // EC: no vector clock, consistency rides on locks
    } else {
        for (std::uint32_t v : frontier)
            out << ' ' << v;
    }
    out << '\n';
}

std::vector<std::byte>
CheckpointCoordinator::loadPersisted() const
{
    std::ifstream in(blobPath(), std::ios::binary | std::ios::ate);
    DSM_ASSERT(in.good(), "cannot read checkpoint %s", blobPath().c_str());
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::byte> blob(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(blob.data()), size);
    DSM_ASSERT(in.good(), "short checkpoint read from %s",
               blobPath().c_str());
    return blob;
}

} // namespace dsm
