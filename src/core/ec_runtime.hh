/**
 * @file
 * Entry consistency runtime (Midway-style; Sections 3.1, 4, 5 of the
 * paper). Shared data is bound to locks; an acquire makes exactly the
 * bound data consistent via an update protocol. Per-lock incarnation
 * numbers order transfers.
 *
 * Write trapping:
 *  - compiler instrumentation: instrumented stores set software dirty
 *    words at the region's block granularity;
 *  - twinning: small objects (<= one page) are twinned eagerly when
 *    the write lock is acquired (this paper's improvement over the
 *    Midway VM scheme); large objects are write-protected and twinned
 *    page-by-page on the first fault.
 *
 * Write collection:
 *  - timestamping: each block carries the incarnation number current
 *    when its change was detected; a grant transmits runs of blocks
 *    newer than the requester's incarnation;
 *  - diffing: each transfer creates a diff tagged with the incarnation;
 *    grants send the diffs the requester lacks; on an exclusive
 *    transfer the diff history migrates with the ownership.
 */

#ifndef DSM_CORE_EC_RUNTIME_HH
#define DSM_CORE_EC_RUNTIME_HH

#include <unordered_map>

#include "core/runtime.hh"
#include "mem/diff.hh"
#include "mem/dirty_bits.hh"
#include "mem/page_table.hh"
#include "mem/twin_store.hh"
#include "mem/word_ts.hh"

namespace dsm {

class EcRuntime : public Runtime
{
  public:
    explicit EcRuntime(const Deps &deps);

    void bindLock(LockId lock, std::vector<Range> ranges) override;
    void rebindLock(LockId lock, std::vector<Range> ranges) override;
    void acquireForRebind(LockId lock) override;

    std::string name() const override;

    /** Checkpoint support (core/checkpoint.hh): protocol state on top
     *  of the base arena/alloc-log image. */
    void serialize(WireWriter &w) const override;
    void restoreFrom(WireReader &r) override;
    void wipeForRecovery() override;

  protected:
    void doRead(GlobalAddr addr, void *dst, std::size_t size) override;
    void doWrite(GlobalAddr addr, const void *src, std::size_t size,
                 bool bulk) override;

  private:
    struct LockInfo
    {
        std::vector<Range> ranges;
        std::uint64_t boundBytes = 0;
        std::uint32_t bindVersion = 0;
        /** Incarnation number: this node has seen all data with
         *  timestamps <= inc. */
        std::uint32_t inc = 0;
        /** Trapping/collection block size (region granularity for
         *  compiler instrumentation, 4 bytes for twinning). */
        std::uint32_t blockSize = 4;
        /** Per-block timestamps over the concatenated ranges. */
        BlockTimestamps ts;
        /** Diff history: (incarnation tag, diff), ascending tags. */
        std::vector<std::pair<std::uint32_t, Diff>> history;
        /**
         * The history covers exactly the transfers in
         * (historyBase, inc]. A requester whose incarnation is at or
         * below historyBase cannot be served incrementally (its diffs
         * were deleted on an earlier exclusive transfer) and receives
         * the full bound data instead.
         */
        std::uint32_t historyBase = 0;
    };

    /** Apply @p fn(arenaAddr, concatOffset, length) per bound piece. */
    template <typename Fn>
    void forEachPiece(const LockInfo &info, Fn fn) const;

    /** Copy the bound ranges into one concatenated buffer. */
    std::vector<std::byte> gatherRanges(const LockInfo &info) const;

    /** Write a concatenated buffer back to the bound ranges. */
    void scatterRanges(const LockInfo &info, const std::byte *buf);

    LockInfo &info(LockId lock);

    std::uint32_t numBlocks(const LockInfo &info) const;

    /** Install binding state (shared by bind and rebind). */
    void setBinding(LockInfo &info, std::vector<Range> ranges);

    // Lock service hooks.
    std::vector<std::byte> makeRequest(LockId lock, AccessMode mode);
    std::vector<std::byte> makeGrant(LockId lock, AccessMode mode,
                                     NodeId origin, WireReader &req);
    void applyGrant(LockId lock, AccessMode mode, WireReader &r);
    void onAcquired(LockId lock, AccessMode mode);

    /**
     * Run write collection for @p lock: fold trapped changes into the
     * timestamp array or diff history with tag inc+1. Caller holds the
     * node mutex.
     */
    void flushLock(LockId lock, LockInfo &info);

    /** Twin-trapping flush: changed byte runs in concat space. */
    std::vector<Run> twinChanges(LockId lock, LockInfo &info);

    /** Dirty-bit flush: changed byte runs in concat space. */
    std::vector<Run> dirtyChanges(LockInfo &info);

    /** Record changed concat-space *byte* runs with tag. */
    void recordChanges(LockInfo &info, const std::vector<Run> &byte_runs,
                       std::uint32_t tag, std::vector<std::byte> *gathered);

    bool usesTwinning() const
    {
        return cluster->runtime.trap == TrapMethod::Twinning;
    }

    bool usesDiffing() const
    {
        return cluster->runtime.collect == CollectMethod::Diffing;
    }

    std::unordered_map<LockId, LockInfo> lockInfoMap;
    /** Locks being acquired with rebind intent (no-data grants). */
    std::unordered_map<LockId, bool> rebindIntent;
    PageTable pages;   ///< soft protection for large twin-mode objects
    TwinStore twins;
    DirtyBitmap dirty; ///< compiler-instrumentation dirty words
};

} // namespace dsm

#endif // DSM_CORE_EC_RUNTIME_HH
