#include "core/page_home.hh"

#include <algorithm>
#include <cstring>

#include "mem/wide_scan.hh"
#include "util/logging.hh"


namespace dsm {

std::uint64_t
applyDiffGuarded(std::byte *dst, std::vector<std::uint64_t> &word_sums,
                 const Diff &diff, std::uint64_t vt_sum, NodeStats *stats,
                 std::byte *shadow,
                 std::atomic<std::uint32_t> *line_versions)
{
    std::uint64_t words_written = 0;
    for (const DiffRun &run : diff.diffRuns()) {
        const std::span<const std::byte> data = diff.runData(run);
        const std::uint32_t first_word = run.offset / Diff::kWordBytes;
        const std::uint32_t nwords =
            (run.size + Diff::kWordBytes - 1) / Diff::kWordBytes;
        DSM_ASSERT(run.offset % Diff::kWordBytes == 0 &&
                       first_word + nwords <= word_sums.size(),
                   "flush run outside the page");
        // Seqlock write-side bracket: mark every line this run may
        // touch odd before any data store, even again after the last —
        // a concurrent lock-free snapshot that saw any of these lines
        // mid-bracket (odd, or changed across its copy) retries. Lines
        // whose words are all guard-skipped below are bumped anyway;
        // that only costs a spurious retry, never a torn validation.
        const std::uint32_t first_line = run.offset / kOptLineBytes;
        const std::uint32_t last_line =
            (run.offset + run.size - 1) / kOptLineBytes;
        if (line_versions) {
            for (std::uint32_t l = first_line; l <= last_line; ++l)
                line_versions[l].fetch_add(1, std::memory_order_acq_rel);
        }
        for (std::uint32_t k = 0; k < nwords; ++k) {
            const std::uint32_t word = first_word + k;
            if (vt_sum < word_sums[word])
                continue;
            const std::uint32_t byte = k * Diff::kWordBytes;
            const std::uint32_t len = std::min<std::uint32_t>(
                Diff::kWordBytes, run.size - byte);
            if (shadow &&
                std::memcmp(dst + run.offset + byte,
                            shadow + run.offset + byte, len) != 0) {
                // The open interval rewrote this word locally after
                // the flushed value: the word sums only know committed
                // history (the node's own pre-migration flushes can
                // chase the home role back to it), but the uncommitted
                // write is causally newer — leave both copies alone so
                // it survives into the next diff.
                continue;
            }
            if (line_versions) {
                optAtomicWriteBytes(dst + run.offset + byte,
                                    data.data() + byte, len);
            } else {
                std::memcpy(dst + run.offset + byte, data.data() + byte,
                            len);
            }
            if (shadow) {
                std::memcpy(shadow + run.offset + byte,
                            data.data() + byte, len);
            }
            word_sums[word] = vt_sum;
            ++words_written;
        }
        if (line_versions) {
            for (std::uint32_t l = first_line; l <= last_line; ++l)
                line_versions[l].fetch_add(1, std::memory_order_acq_rel);
        }
    }
    if (stats)
        stats->diffsApplied++;
    return words_written;
}

std::uint64_t
stampChangedWordSums(std::vector<std::uint64_t> &word_sums,
                     const std::byte *cur, const std::byte *twin,
                     std::uint32_t len, std::uint64_t vt_sum,
                     ScanKernel kernel)
{
    const std::uint32_t words = len / Diff::kWordBytes;
    std::uint64_t stamped = 0;
    scanChangedRuns(cur, twin, words, kernel,
                    [&](std::uint32_t w, std::uint32_t e) {
                        for (std::uint32_t k = w; k < e; ++k) {
                            word_sums[k] = std::max(word_sums[k], vt_sum);
                        }
                        stamped += e - w;
                    });
    // Trailing short word (objects need not be word multiples).
    const std::uint32_t tail = words * Diff::kWordBytes;
    if (tail < len && std::memcmp(cur + tail, twin + tail, len - tail)) {
        word_sums[words] = std::max(word_sums[words], vt_sum);
        ++stamped;
    }
    return stamped;
}

void
PageHomeTable::serialize(WireWriter &w) const
{
    w.putU32(static_cast<std::uint32_t>(overrides.size()));
    for (const auto &[page, mapping] : overrides) {
        w.putU32(page);
        w.putI64(mapping.home);
        w.putU32(mapping.epoch);
    }
    w.putU32(static_cast<std::uint32_t>(states.size()));
    for (const auto &[page, hs] : states) {
        w.putU32(page);
        hs.appliedVt.encode(w);
        w.putU32(static_cast<std::uint32_t>(hs.wordSums.size()));
        for (std::uint64_t sum : hs.wordSums)
            w.putU64(sum);
        w.putU32(static_cast<std::uint32_t>(hs.accessCounts.size()));
        for (std::uint32_t count : hs.accessCounts)
            w.putU32(count);
        w.putU32(hs.windowAccesses);
        w.putI64(hs.lastWriter);
        w.putU32(hs.writerSwitches);
    }
}

void
PageHomeTable::restoreFrom(WireReader &r)
{
    for (auto &slot : snapshotIndex)
        slot.store(nullptr, std::memory_order_relaxed);
    overrides.clear();
    states.clear();
    const std::uint32_t noverrides = r.getU32();
    for (std::uint32_t i = 0; i < noverrides; ++i) {
        const PageId page = r.getU32();
        Mapping &m = overrides[page];
        m.home = static_cast<NodeId>(r.getI64());
        m.epoch = r.getU32();
    }
    const std::uint32_t nstates = r.getU32();
    for (std::uint32_t i = 0; i < nstates; ++i) {
        const PageId page = r.getU32();
        HomeState &hs = states[page];
        hs.appliedVt = VectorTime::decode(r);
        const std::uint32_t nsums = r.getU32();
        hs.wordSums.resize(nsums);
        for (std::uint32_t s = 0; s < nsums; ++s)
            hs.wordSums[s] = r.getU64();
        const std::uint32_t ncounts = r.getU32();
        hs.accessCounts.resize(ncounts);
        for (std::uint32_t c = 0; c < ncounts; ++c)
            hs.accessCounts[c] = r.getU32();
        hs.windowAccesses = r.getU32();
        hs.lastWriter = static_cast<int>(r.getI64());
        hs.writerSwitches = r.getU32();
        // Version footers are deliberately not on the wire: rebuild
        // them zeroed (all even — every line reads as quiescent) and
        // republish the state for the lock-free snapshot path.
        hs.sizeLineVersions(nsums);
        publishState(page, &hs);
    }
}

} // namespace dsm
