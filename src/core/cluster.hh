/**
 * @file
 * The simulated cluster: per-node arenas, endpoints, lock and barrier
 * services, and an EC or LRC runtime, all wired to one simulated
 * network. run() executes an SPMD application function on
 * threadsPerNode worker threads per node (one per node historically;
 * SMP nodes since the threads-per-node axis opened) and reports
 * per-node virtual times and protocol statistics — the reproduction's
 * equivalent of the paper's 8-processor execution times, extended to
 * the (nodes x threads) scenario grid.
 */

#ifndef DSM_CORE_CLUSTER_HH
#define DSM_CORE_CLUSTER_HH

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/ec_runtime.hh"
#include "core/lrc_runtime.hh"

namespace dsm {

/** Outcome of one cluster run. */
struct RunResult
{
    /** Simulated execution time: max over nodes of the final clock. */
    std::uint64_t execTimeNs = 0;

    std::vector<std::uint64_t> nodeTimesNs;

    /** Sum of all nodes' counters. */
    NodeStats total;

    std::vector<NodeStats> perNode;

    /** Total messages accepted by the network. */
    std::uint64_t networkMessages = 0;

    /** Largest per-node snapshot blob of the run (0 = checkpointing
     *  off; table3's recovery column). */
    std::uint64_t checkpointBytes = 0;

    /** Wall-clock nanoseconds of the slowest wipe+restore (0 = no
     *  chaos kill ran). */
    std::uint64_t restoreTimeNs = 0;

    double execSeconds() const { return execTimeNs * 1e-9; }

    /** Payload megabytes on the wire (paper's "data transferred"). */
    double
    megabytesSent() const
    {
        return static_cast<double>(total.bytesSent) / (1024.0 * 1024.0);
    }
};

class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &config);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /**
     * Run @p app_main once per worker (nprocs x threadsPerNode SPMD
     * threads; the threads of one node share its runtime) and collect
     * the results. A Cluster instance runs one application.
     */
    RunResult run(const std::function<void(Runtime &)> &app_main);

    Runtime &runtime(NodeId node) { return *nodes[node]->rt; }

    /** Validation view of one node's memory (after run()). */
    const std::byte *
    memory(NodeId node, GlobalAddr addr) const
    {
        return nodes[node]->arena.at(addr);
    }

    const ClusterConfig &config() const { return cfg; }

    int nprocs() const { return cfg.nprocs; }

    /** Application threads per node (resolved: never 0). */
    int threadsPerNode() const { return cfg.threadsPerNode; }

    /** SPMD workers: nprocs * threadsPerNode. */
    int nworkers() const { return cfg.nprocs * cfg.threadsPerNode; }

  private:
    struct Node
    {
        Node(const ClusterConfig &config, Transport &net, NodeId id);

        VirtualClock clock;
        NodeStats stats;
        NodeLocks nlocks;
        SharedArena arena;
        RegionTable regions;
        Endpoint ep;
        LockService locks;
        BarrierService barriers;
        std::unique_ptr<Runtime> rt;
        /** Non-null when checkpointing is engaged for this run. */
        std::unique_ptr<CheckpointCoordinator> ckpt;
    };

    /**
     * Socket tiers: fork one process per node, rendezvous them
     * through a socket directory, reap them and assemble the dumps
     * into the in-process RunResult shape (driver/proc_launcher.hh).
     */
    RunResult runAsProcesses(
        const std::function<void(Runtime &)> &app_main);

    /** Child-rank body of a socket-tier run; never returns. */
    [[noreturn]] void
    runChildNode(int rank, const std::string &dir,
                 const std::function<void(Runtime &)> &app_main);

    /** The shared worker-thread fan-out of run()/runChildNode: run
     *  @p app_main on every worker of nodes [first, last), fold the
     *  workers' clocks/stats into their nodes, and return the first
     *  captured app exception (null if none). @p quiesce, if set, runs
     *  after the workers join but before the endpoints stop — the
     *  socket tier's goodbye rendezvous hangs there, so the inbox is
     *  complete before the Shutdown marker enters it. */
    std::exception_ptr
    runWorkers(int first_node, int last_node,
               const std::function<void(Runtime &)> &app_main,
               const std::function<void()> &quiesce = {});

    ClusterConfig cfg;
    std::unique_ptr<Network> net;
    /** Non-null when message drops or a silent-peer outage are armed
     *  (shared by all nodes). */
    std::unique_ptr<FaultInjector> faults;
    /** Non-null when the failure detector is armed (one shared
     *  instance: liveness stamps are cluster-wide, every service
     *  thread both stamps and scans it). */
    std::unique_ptr<FailureDetector> detector;
    std::vector<std::unique_ptr<Node>> nodes;
    bool ran = false;
};

} // namespace dsm

#endif // DSM_CORE_CLUSTER_HH
