#include "core/ec_runtime.hh"

#include <algorithm>

#include "mem/wide_scan.hh"
#include "util/logging.hh"

namespace dsm {

EcRuntime::EcRuntime(const Deps &deps)
    : Runtime(deps),
      pages(deps.arena->numPages(), PageAccess::ReadWrite),
      dirty(deps.arena->size(), deps.arena->pageSize())
{
    DSM_ASSERT(cluster->runtime.model == Model::EC, "config mismatch");
    cluster->runtime.validate();

    LockHooks hooks;
    hooks.makeRequest = [this](LockId lock, AccessMode mode) {
        return makeRequest(lock, mode);
    };
    hooks.makeGrant = [this](LockId lock, AccessMode mode, NodeId origin,
                             WireReader &req) {
        return makeGrant(lock, mode, origin, req);
    };
    hooks.applyGrant = [this](LockId lock, AccessMode mode, WireReader &r) {
        applyGrant(lock, mode, r);
    };
    hooks.onAcquired = [this](LockId lock, AccessMode mode) {
        onAcquired(lock, mode);
    };
    locks->setHooks(std::move(hooks));
    // EC associates data with locks, not barriers (Midway practice):
    // barriers carry no consistency payload. Cached read locks are
    // revalidated at barriers (see LockService::clearReadCaches).
    barriers->setPostWait([this] { locks->clearReadCaches(); });
}

std::string
EcRuntime::name() const
{
    return cluster->runtime.name();
}

EcRuntime::LockInfo &
EcRuntime::info(LockId lock)
{
    return lockInfoMap[lock];
}

template <typename Fn>
void
EcRuntime::forEachPiece(const LockInfo &info, Fn fn) const
{
    std::uint64_t off = 0;
    for (const Range &r : info.ranges) {
        fn(r.addr, off, r.size);
        off += r.size;
    }
}

std::vector<std::byte>
EcRuntime::gatherRanges(const LockInfo &info) const
{
    std::vector<std::byte> buf(info.boundBytes);
    forEachPiece(info, [&](GlobalAddr addr, std::uint64_t off,
                           std::uint64_t len) {
        std::memcpy(buf.data() + off, arena->at(addr), len);
    });
    return buf;
}

void
EcRuntime::scatterRanges(const LockInfo &info, const std::byte *buf)
{
    forEachPiece(info, [&](GlobalAddr addr, std::uint64_t off,
                           std::uint64_t len) {
        std::memcpy(arena->at(addr), buf + off, len);
    });
}

std::uint32_t
EcRuntime::numBlocks(const LockInfo &info) const
{
    return static_cast<std::uint32_t>(
        (info.boundBytes + info.blockSize - 1) / info.blockSize);
}

void
EcRuntime::setBinding(LockInfo &info, std::vector<Range> ranges)
{
    std::uint64_t total = 0;
    for (const Range &r : ranges) {
        DSM_ASSERT(arena->contains(r.addr, r.size),
                   "binding outside allocated shared memory");
        total += r.size;
    }
    info.ranges = std::move(ranges);
    info.boundBytes = total;
    info.blockSize = 4;
    if (cluster->runtime.trap == TrapMethod::CompilerInstrumentation &&
        !info.ranges.empty()) {
        info.blockSize = regions->blockSizeAt(info.ranges.front().addr);
    }
    info.ts = BlockTimestamps(numBlocks(info));
    info.ts.setAll(info.inc);
    info.history.clear();
    info.historyBase = info.inc;
}

void
EcRuntime::bindLock(LockId lock, std::vector<Range> ranges)
{
    std::lock_guard<std::mutex> g(nl->core);
    LockInfo &li = info(lock);
    if (!li.ranges.empty()) {
        // SMP nodes: every thread of a node executes the same SPMD
        // bind sequence; a repeat with the identical ranges is the
        // sibling's copy of a binding already installed.
        DSM_ASSERT(li.ranges == ranges,
                   "lock %u already bound with different ranges (use "
                   "rebindLock)",
                   lock);
        return;
    }
    setBinding(li, std::move(ranges));
}

void
EcRuntime::rebindLock(LockId lock, std::vector<Range> ranges)
{
    DSM_ASSERT(locks->holdsExclusively(lock),
               "rebindLock requires holding the lock exclusively");
    std::lock_guard<std::mutex> g(nl->core);
    LockInfo &li = info(lock);
    stats().rebinds++;
    twins.dropRange(lock);
    setBinding(li, std::move(ranges));
    li.bindVersion++;

    // Re-arm write trapping for the remainder of the critical section.
    if (usesTwinning() && li.boundBytes > 0) {
        if (li.boundBytes <= arena->pageSize()) {
            twins.makeRange(lock, gatherRanges(li));
            const std::uint64_t words = (li.boundBytes + 3) / 4;
            clock().add(costModel().perWordTwinNs * words);
            stats().twinsCreated++;
            stats().twinWordsCopied += words;
        } else {
            forEachPiece(li, [&](GlobalAddr addr, std::uint64_t,
                                 std::uint64_t len) {
                for (PageId p : arena->pagesIn(addr, len)) {
                    std::lock_guard<std::mutex> sg(nl->shardFor(p));
                    if (pages.access(p) == PageAccess::ReadWrite &&
                        !twins.hasPage(p)) {
                        pages.setAccess(p, PageAccess::Read);
                    }
                }
            });
        }
    }
}

void
EcRuntime::onAcquired(LockId lock, AccessMode mode)
{
    // Hook runs with the lock-service mutex held; EC protocol state
    // (lock info, range twins) lives under the core lock.
    if (mode != AccessMode::Write || !usesTwinning())
        return;
    std::lock_guard<std::mutex> g(nl->core);
    auto it = lockInfoMap.find(lock);
    if (it == lockInfoMap.end() || it->second.boundBytes == 0)
        return;
    LockInfo &li = it->second;

    if (li.boundBytes <= arena->pageSize()) {
        // Small object: twin eagerly now — a write lock means the data
        // is likely to be written, so we save the protection fault the
        // Midway VM implementation would take (Section 4.2). With
        // ecEagerSmallTwin disabled we model that older scheme: the
        // same twin is made, but only after the protection fault the
        // first store would take (the paper notes the object is
        // virtually always written, so the fault is charged here).
        if (!twins.hasRange(lock)) {
            if (!cluster->ecEagerSmallTwin) {
                clock().add(costModel().pageFaultNs);
                stats().pageFaults++;
            }
            twins.makeRange(lock, gatherRanges(li));
            const std::uint64_t words = (li.boundBytes + 3) / 4;
            clock().add(costModel().perWordTwinNs * words);
            stats().twinsCreated++;
            stats().twinWordsCopied += words;
        }
    } else {
        // Large object: copy-on-write via the (software) VM system.
        forEachPiece(li, [&](GlobalAddr addr, std::uint64_t,
                             std::uint64_t len) {
            for (PageId p : arena->pagesIn(addr, len)) {
                std::lock_guard<std::mutex> sg(nl->shardFor(p));
                if (pages.access(p) == PageAccess::ReadWrite &&
                    !twins.hasPage(p)) {
                    pages.setAccess(p, PageAccess::Read);
                }
            }
        });
    }
}

void
EcRuntime::doRead(GlobalAddr addr, void *dst, std::size_t size)
{
    // Update protocol: bound data is made current at acquire time, so
    // reads never fault and carry no instrumentation. A data-race-free
    // EC program only reads data whose lock it holds (or that is
    // barrier-separated from writers), so the bytes cannot change
    // underneath the copy and no lock is taken — this is the SMP-node
    // zero-contention read path.
    std::memcpy(dst, arena->at(addr), size);
}

void
EcRuntime::doWrite(GlobalAddr addr, const void *src, std::size_t size,
                   bool bulk)
{
    // Charges are per call (not per page segment), matching the
    // monolithic-mutex accounting bit for bit.
    if (cluster->runtime.trap == TrapMethod::CompilerInstrumentation) {
        if (bulk) {
            // Split-loop instrumentation (Section 4.1 optimization):
            // the dirty-bit loop runs separately from the data loop at
            // about half the per-store cost.
            const std::uint32_t bs = regions->blockSizeAt(addr);
            const std::uint64_t blocks = (size + bs - 1) / bs;
            clock().add(costModel().dirtyStoreNs * blocks / 2);
            stats().dirtyStores += blocks;
        } else {
            clock().add(costModel().dirtyStoreNs);
            stats().dirtyStores++;
        }
        if (size == 0)
            return;
        // Mark + store under the memory shards so a concurrent grant
        // flush (scan + clear on another thread) sees either both or
        // neither.
        NodeLocks::ShardSpan span(*nl, arena->pageOf(addr),
                                  arena->pageOf(addr + size - 1));
        dirty.markRange(addr, size);
        std::memcpy(arena->at(addr), src, size);
        return;
    }
    if (size == 0)
        return;
    // Twinning: copy-on-write fault for protected (large-object)
    // pages; must happen atomically with the store so a concurrent
    // grant flush cannot miss the change.
    NodeLocks::ShardSpan span(*nl, arena->pageOf(addr),
                              arena->pageOf(addr + size - 1));
    for (PageId p : arena->pagesIn(addr, size)) {
        if (pages.access(p) != PageAccess::Read)
            continue;
        const std::uint64_t words = arena->pageSize() / 4;
        clock().add(costModel().pageFaultNs +
                    costModel().perWordTwinNs * words);
        stats().pageFaults++;
        stats().twinsCreated++;
        stats().twinWordsCopied += words;
        twins.makePage(p, arena->at(arena->pageBase(p)),
                       arena->pageSize());
        pages.setAccess(p, PageAccess::ReadWrite);
    }
    std::memcpy(arena->at(addr), src, size);
}

std::vector<Run>
EcRuntime::twinChanges(LockId lock, LockInfo &li)
{
    std::vector<Run> byte_runs;
    const ScanKernel kernel = scanKernelFor(cluster->wideDiffScan);
    auto compare = [&](const std::byte *cur, const std::byte *twin,
                       std::uint64_t len, std::uint64_t concat_base) {
        const std::uint32_t words = static_cast<std::uint32_t>(len / 4);
        scanChangedRuns(
            cur, twin, words, kernel,
            [&](std::uint32_t w, std::uint32_t e) {
                byte_runs.push_back(
                    {static_cast<std::uint32_t>(concat_base + w * 4),
                     (e - w) * 4});
            });
        const std::uint64_t tail = std::uint64_t{words} * 4;
        if (tail < len && std::memcmp(cur + tail, twin + tail,
                                      len - tail) != 0) {
            byte_runs.push_back(
                {static_cast<std::uint32_t>(concat_base + tail),
                 static_cast<std::uint32_t>(len - tail)});
        }
        clock().add(costModel().perWordDiffNs * (words + 1));
        stats().diffWordsCompared += words + 1;
    };

    if (li.boundBytes <= arena->pageSize() && twins.hasRange(lock)) {
        // Eagerly twinned small object.
        std::vector<std::byte> cur = gatherRanges(li);
        const std::vector<std::byte> &twin = twins.rangeTwin(lock);
        compare(cur.data(), twin.data(), li.boundBytes, 0);
        twins.dropRange(lock);
        return byte_runs;
    }

    // Large object (or small object with eager twinning disabled):
    // compare each twinned page's overlap with the bound ranges, then
    // refresh the twin so later flushes report only newer changes.
    forEachPiece(li, [&](GlobalAddr addr, std::uint64_t off,
                         std::uint64_t len) {
        for (PageId p : arena->pagesIn(addr, len)) {
            // Serialize against sibling writers faulting on p.
            std::lock_guard<std::mutex> sg(nl->shardFor(p));
            if (!twins.hasPage(p))
                continue;
            const GlobalAddr page_base = arena->pageBase(p);
            const GlobalAddr lo = std::max<GlobalAddr>(addr, page_base);
            const GlobalAddr hi = std::min<GlobalAddr>(
                addr + len, page_base + arena->pageSize());
            if (lo >= hi)
                continue;
            const std::byte *cur = arena->at(lo);
            std::byte *twin = twins.pageTwinMut(p).data() +
                              (lo - page_base);
            compare(cur, twin, hi - lo, off + (lo - addr));
            std::memcpy(twin, cur, hi - lo);
        }
    });
    return byte_runs;
}

std::vector<Run>
EcRuntime::dirtyChanges(LockInfo &li)
{
    std::vector<Run> byte_runs;
    forEachPiece(li, [&](GlobalAddr addr, std::uint64_t off,
                         std::uint64_t len) {
        // Scan + clear must exclude concurrent instrumented stores to
        // the same pages (mark + copy hold these shards too), or a
        // store could slip between the scan and the clear and be lost.
        NodeLocks::ShardSpan span(*nl, arena->pageOf(addr),
                                  arena->pageOf(addr + len - 1));
        for (const Run &r : dirty.dirtyRunsIn(addr, len)) {
            // r is in absolute 4-byte block indices; clip to the piece.
            const std::uint64_t run_lo = std::uint64_t{r.start} * 4;
            const std::uint64_t run_hi = std::uint64_t{r.end()} * 4;
            const std::uint64_t lo = std::max<std::uint64_t>(run_lo, addr);
            const std::uint64_t hi = std::min<std::uint64_t>(run_hi,
                                                             addr + len);
            if (lo >= hi)
                continue;
            byte_runs.push_back(
                {static_cast<std::uint32_t>(off + (lo - addr)),
                 static_cast<std::uint32_t>(hi - lo)});
        }
        dirty.clearRange(addr, len);
        // Scanning the dirty words of the bound object costs one scan
        // per block at the region's granularity (Section 8.1: larger
        // granularity halves the scan).
        const std::uint64_t blocks = (len + li.blockSize - 1) /
                                     li.blockSize;
        clock().add(costModel().perWordScanNs * blocks);
        stats().tsWordsScanned += blocks;
    });
    return byte_runs;
}

void
EcRuntime::recordChanges(LockInfo &li, const std::vector<Run> &byte_runs,
                         std::uint32_t tag,
                         std::vector<std::byte> *gathered)
{
    if (byte_runs.empty())
        return;
    if (!usesDiffing()) {
        for (const Run &r : byte_runs) {
            const std::uint32_t first = r.start / li.blockSize;
            const std::uint32_t last = (r.end() - 1) / li.blockSize;
            li.ts.setRange(first, last - first + 1, tag);
        }
        return;
    }
    // Diffing: one diff over the concatenated bound area.
    std::vector<std::byte> local;
    if (!gathered) {
        local = gatherRanges(li);
        gathered = &local;
    }
    Diff d;
    {
        // Assemble the diff directly from the byte runs.
        WireWriter w;
        w.putU32(static_cast<std::uint32_t>(li.boundBytes));
        w.putU32(static_cast<std::uint32_t>(byte_runs.size()));
        for (const Run &r : byte_runs) {
            w.putU32(r.start);
            w.putU32(r.length);
            w.putBytes(gathered->data() + r.start, r.length);
        }
        auto bytes = w.take();
        WireReader rd(bytes);
        d = Diff::decode(rd);
    }
    stats().diffsCreated++;
    li.history.emplace_back(tag, std::move(d));
}

void
EcRuntime::flushLock(LockId lock, LockInfo &li)
{
    if (li.boundBytes == 0)
        return;
    const std::uint32_t tag = li.inc + 1;
    std::vector<Run> byte_runs = usesTwinning() ? twinChanges(lock, li)
                                                : dirtyChanges(li);
    recordChanges(li, byte_runs, tag, nullptr);
}

void
EcRuntime::acquireForRebind(LockId lock)
{
    {
        std::lock_guard<std::mutex> g(nl->core);
        rebindIntent[lock] = true;
    }
    acquire(lock, AccessMode::Write);
    {
        // Consumed by makeRequest on the remote path; clear in case
        // the acquire was a local fast path.
        std::lock_guard<std::mutex> g(nl->core);
        rebindIntent.erase(lock);
    }
}

std::vector<std::byte>
EcRuntime::makeRequest(LockId lock, AccessMode)
{
    std::lock_guard<std::mutex> g(nl->core);
    LockInfo &li = info(lock);
    WireWriter w;
    w.putU32(li.inc);
    w.putU32(li.bindVersion);
    auto it = rebindIntent.find(lock);
    const bool no_data = it != rebindIntent.end() && it->second;
    if (no_data)
        rebindIntent.erase(it);
    w.putU8(no_data ? 1 : 0);
    return w.take();
}

std::vector<std::byte>
EcRuntime::makeGrant(LockId lock, AccessMode mode, NodeId, WireReader &req)
{
    std::lock_guard<std::mutex> g(nl->core);
    LockInfo &li = info(lock);
    const std::uint32_t req_inc = req.getU32();
    const std::uint32_t req_version = req.getU32();
    const bool no_data = req.getU8() != 0;

    flushLock(lock, li);
    const std::uint32_t granted = li.inc + 1;
    // Full send when the requester's binding is stale, or (diffing)
    // when the history no longer reaches back to its incarnation.
    const bool full = !no_data &&
                      (req_version < li.bindVersion ||
                       (usesDiffing() && req_inc < li.historyBase));

    WireWriter w;
    w.putU32(li.bindVersion);
    w.putU16(static_cast<std::uint16_t>(li.ranges.size()));
    for (const Range &r : li.ranges) {
        w.putU64(r.addr);
        w.putU64(r.size);
    }
    w.putU32(granted);
    w.putU8(full ? 1 : 0);
    w.putU8(no_data ? 1 : 0);

    if (no_data) {
        // Requester declared rebind intent: transfer ownership and the
        // incarnation only. The old binding's data stays here; the
        // history is dead either way (the rebind clears it).
        if (mode == AccessMode::Write) {
            li.history.clear();
            li.historyBase = granted;
        }
        li.inc = granted;
        stats().updatesSent++;
        return w.take();
    }

    std::uint64_t data_bytes = 0;
    if (!usesDiffing()) {
        // Timestamping: scan the blocks and send runs newer than the
        // requester's incarnation (all runs after a rebind).
        const std::uint32_t nb = numBlocks(li);
        clock().add(costModel().perWordScanNs * nb);
        stats().tsWordsScanned += nb;
        auto runs = full
            ? li.ts.collect([](std::uint64_t) { return true; })
            : li.ts.collect([&](std::uint64_t ts) { return ts > req_inc; });
        std::vector<std::byte> gathered = gatherRanges(li);
        w.putU32(static_cast<std::uint32_t>(runs.size()));
        for (const TsRun &run : runs) {
            const std::uint64_t lo = std::uint64_t{run.firstBlock} *
                                     li.blockSize;
            const std::uint64_t hi = std::min<std::uint64_t>(
                lo + std::uint64_t{run.numBlocks} * li.blockSize,
                li.boundBytes);
            w.putU32(run.firstBlock);
            w.putU32(run.numBlocks);
            w.putU32(static_cast<std::uint32_t>(run.ts));
            w.putBytes(gathered.data() + lo, hi - lo);
            data_bytes += hi - lo;
            stats().tsBytesSent += TsRunWire::kHeaderBytes + (hi - lo);
        }
        stats().tsRunsSent += runs.size();
    } else {
        std::vector<std::pair<std::uint32_t, Diff>> send;
        if (full) {
            std::vector<std::byte> gathered = gatherRanges(li);
            Diff d;
            {
                WireWriter dw;
                dw.putU32(static_cast<std::uint32_t>(li.boundBytes));
                dw.putU32(1);
                dw.putU32(0);
                dw.putU32(static_cast<std::uint32_t>(li.boundBytes));
                dw.putBytes(gathered.data(), gathered.size());
                auto bytes = dw.take();
                WireReader rd(bytes);
                d = Diff::decode(rd);
            }
            stats().diffsCreated++;
            send.emplace_back(granted, std::move(d));
        } else {
            for (const auto &[tag, diff] : li.history) {
                if (tag > req_inc)
                    send.emplace_back(tag, diff);
            }
        }
        w.putU32(static_cast<std::uint32_t>(send.size()));
        for (const auto &[tag, diff] : send) {
            w.putU32(tag);
            diff.encode(w);
            data_bytes += diff.dataBytes();
            stats().diffBytesSent += diff.wireBytes();
        }
        if (mode == AccessMode::Write) {
            // The diff history migrates with the ownership: the old
            // owner deletes, the new owner saves (Section 5.2). What
            // travels covers (req_inc, granted]; anything older is
            // gone, which the new owner's historyBase records.
            li.history.clear();
            li.historyBase = granted;
        }
    }

    li.inc = granted;
    stats().updatesSent++;
    stats().updateBytesSent += data_bytes;
    return w.take();
}

void
EcRuntime::applyGrant(LockId lock, AccessMode, WireReader &r)
{
    std::lock_guard<std::mutex> g(nl->core);
    LockInfo &li = info(lock);
    const std::uint32_t version = r.getU32();
    const std::uint16_t nranges = r.getU16();
    std::vector<Range> ranges(nranges);
    for (Range &range : ranges) {
        range.addr = r.getU64();
        range.size = r.getU64();
    }
    const std::uint32_t granted = r.getU32();
    const bool was_full = r.getU8() != 0;
    const bool no_data = r.getU8() != 0;

    DSM_ASSERT(version >= li.bindVersion,
               "grant carries an older binding than ours");
    if (version > li.bindVersion) {
        twins.dropRange(lock);
        setBinding(li, std::move(ranges));
        li.bindVersion = version;
    }

    if (no_data) {
        li.inc = granted;
        li.historyBase = granted; // nothing received; serve full sends
        return;
    }

    if (!usesDiffing()) {
        const std::uint32_t nruns = r.getU32();
        std::uint64_t words = 0;
        for (std::uint32_t i = 0; i < nruns; ++i) {
            const std::uint32_t first = r.getU32();
            const std::uint32_t count = r.getU32();
            const std::uint32_t ts = r.getU32();
            const std::uint64_t lo = std::uint64_t{first} * li.blockSize;
            const std::uint64_t hi = std::min<std::uint64_t>(
                lo + std::uint64_t{count} * li.blockSize, li.boundBytes);
            std::vector<std::byte> data(hi - lo);
            r.getBytes(data.data(), data.size());
            // Scatter the run back to the bound ranges.
            forEachPiece(li, [&](GlobalAddr addr, std::uint64_t off,
                                 std::uint64_t len) {
                const std::uint64_t plo = std::max<std::uint64_t>(lo, off);
                const std::uint64_t phi = std::min<std::uint64_t>(hi,
                                                                  off + len);
                if (plo >= phi)
                    return;
                std::memcpy(arena->at(addr + (plo - off)),
                            data.data() + (plo - lo), phi - plo);
            });
            li.ts.setRange(first, count, ts);
            words += count;
        }
        clock().add(costModel().perWordApplyNs * words);
    } else {
        const std::uint32_t ndiffs = r.getU32();
        if (ndiffs > 0) {
            std::vector<std::byte> buf = gatherRanges(li);
            for (std::uint32_t i = 0; i < ndiffs; ++i) {
                const std::uint32_t tag = r.getU32();
                Diff d = Diff::decode(r);
                DSM_ASSERT(d.length() == li.boundBytes,
                           "diff length does not match binding");
                d.apply(buf.data(), &stats());
                clock().add(costModel().perWordApplyNs *
                            ((d.dataBytes() + 3) / 4));
                // Save for possible future transmission (Section 5.2).
                li.history.emplace_back(tag, std::move(d));
            }
            scatterRanges(li, buf.data());
        }
        // A full send (one diff spanning the whole binding) can serve
        // any future requester; incremental entries extend coverage
        // down to my previous incarnation.
        li.historyBase = was_full ? 0
                                  : std::min(li.historyBase, li.inc);
    }

    li.inc = granted;
}

// Checkpoint serialization. Runs at a barrier cut with the service
// thread joined and every application thread parked at the checkpoint
// rendezvous, so no protocol state is in motion; components with their
// own leaf mutexes (twins) still lock internally.

void
EcRuntime::serialize(WireWriter &w) const
{
    Runtime::serialize(w);
    w.putU32(static_cast<std::uint32_t>(lockInfoMap.size()));
    for (const auto &[lock, li] : lockInfoMap) {
        w.putU32(lock);
        w.putU32(static_cast<std::uint32_t>(li.ranges.size()));
        for (const Range &range : li.ranges) {
            w.putU64(range.addr);
            w.putU64(range.size);
        }
        w.putU64(li.boundBytes);
        w.putU32(li.bindVersion);
        w.putU32(li.inc);
        w.putU32(li.blockSize);
        w.putU32(li.ts.numBlocks());
        for (std::uint64_t ts : li.ts.raw())
            w.putU64(ts);
        w.putU32(static_cast<std::uint32_t>(li.history.size()));
        for (const auto &[tag, diff] : li.history) {
            w.putU32(tag);
            diff.encode(w);
        }
        w.putU32(li.historyBase);
    }
    w.putU32(static_cast<std::uint32_t>(rebindIntent.size()));
    for (const auto &[lock, intent] : rebindIntent) {
        w.putU32(lock);
        w.putU8(intent ? 1 : 0);
    }
    w.putU32(static_cast<std::uint32_t>(pages.numPages()));
    for (PageId p = 0; p < pages.numPages(); ++p)
        w.putU8(static_cast<std::uint8_t>(pages.access(p)));
    twins.serialize(w);
    const std::vector<Run> dirtyRuns = dirty.dirtyRunsIn(0, arena->size());
    w.putU32(static_cast<std::uint32_t>(dirtyRuns.size()));
    for (const Run &run : dirtyRuns) {
        w.putU32(run.start);
        w.putU32(run.length);
    }
}

void
EcRuntime::restoreFrom(WireReader &r)
{
    Runtime::restoreFrom(r);
    lockInfoMap.clear();
    const std::uint32_t nlocks = r.getU32();
    for (std::uint32_t i = 0; i < nlocks; ++i) {
        const LockId lock = r.getU32();
        LockInfo &li = lockInfoMap[lock];
        const std::uint32_t nranges = r.getU32();
        li.ranges.reserve(nranges);
        for (std::uint32_t rg = 0; rg < nranges; ++rg) {
            Range range;
            range.addr = r.getU64();
            range.size = static_cast<std::size_t>(r.getU64());
            li.ranges.push_back(range);
        }
        li.boundBytes = r.getU64();
        li.bindVersion = r.getU32();
        li.inc = r.getU32();
        li.blockSize = r.getU32();
        const std::uint32_t nblocks = r.getU32();
        li.ts = BlockTimestamps(nblocks);
        for (std::uint32_t b = 0; b < nblocks; ++b)
            li.ts.set(b, r.getU64());
        const std::uint32_t nhistory = r.getU32();
        li.history.reserve(nhistory);
        for (std::uint32_t h = 0; h < nhistory; ++h) {
            const std::uint32_t tag = r.getU32();
            li.history.emplace_back(tag, Diff::decode(r));
        }
        li.historyBase = r.getU32();
    }
    rebindIntent.clear();
    const std::uint32_t nintents = r.getU32();
    for (std::uint32_t i = 0; i < nintents; ++i) {
        const LockId lock = r.getU32();
        rebindIntent[lock] = r.getU8() != 0;
    }
    const std::uint32_t npages = r.getU32();
    DSM_ASSERT(npages == pages.numPages(), "page-table size mismatch");
    for (PageId p = 0; p < npages; ++p)
        pages.setAccess(p, static_cast<PageAccess>(r.getU8()));
    twins.restoreFrom(r);
    dirty.clearAll();
    const std::uint32_t nruns = r.getU32();
    for (std::uint32_t i = 0; i < nruns; ++i) {
        const std::uint64_t start = r.getU32();
        const std::uint64_t length = r.getU32();
        dirty.markRange(start * 4, length * 4);
    }
}

void
EcRuntime::wipeForRecovery()
{
    Runtime::wipeForRecovery();
    lockInfoMap.clear();
    rebindIntent.clear();
    pages.setAll(PageAccess::None); // restoreFrom rewrites every entry
    twins.clear();
    dirty.clearAll();
}

} // namespace dsm
