#include "core/cluster.hh"

#include <exception>
#include <thread>

#include "net/failure_detector.hh"
#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

Cluster::Node::Node(const ClusterConfig &config, Network &net, NodeId id)
    : arena(config.arenaBytes, config.pageSize),
      ep(net, id, clock, stats),
      locks(ep, config.threadsPerNode, config.lockLocalHandoffBound,
            config.lockFairnessAdaptive > 0),
      barriers(ep, config.threadsPerNode)
{
    Runtime::Deps deps;
    deps.self = id;
    deps.nprocs = config.nprocs;
    deps.threadsPerNode = config.threadsPerNode;
    deps.arena = &arena;
    deps.endpoint = &ep;
    deps.locks = &locks;
    deps.barriers = &barriers;
    deps.regions = &regions;
    deps.nodeLocks = &nlocks;
    deps.cluster = &config;
    if (config.runtime.model == Model::EC)
        rt = std::make_unique<EcRuntime>(deps);
    else
        rt = std::make_unique<LrcRuntime>(deps);
}

Cluster::Cluster(const ClusterConfig &config) : cfg(config)
{
    DSM_ASSERT(cfg.nprocs >= 1 && cfg.nprocs <= 64,
               "unreasonable node count %d", cfg.nprocs);
    cfg.threadsPerNode = cfg.resolvedThreadsPerNode();
    // Sharing-policy knobs: apply the "-1 = environment default"
    // resolution once, so every consumer below sees plain values.
    cfg.lockLocalHandoffBound = cfg.resolvedLockFairness();
    cfg.homeMigrateLastWriter = cfg.resolvedHomeLastWriter() ? 1 : 0;
    cfg.homePingPongLimit =
        static_cast<int>(cfg.resolvedHomePingPongLimit());
    cfg.homeFlushDefer = cfg.resolvedHomeFlushDefer() ? 1 : 0;
    cfg.optimisticHomeReads = cfg.resolvedOptimisticHomeReads() ? 1 : 0;
    // Latency-path knobs (PR 9).
    cfg.replyBypass = cfg.resolvedReplyBypass() ? 1 : 0;
    cfg.blockingDequeue = cfg.resolvedBlockingDequeue() ? 1 : 0;
    cfg.coalesceSends = cfg.resolvedCoalesceSends() ? 1 : 0;
    cfg.lockFairnessAdaptive = cfg.resolvedLockFairnessAdaptive() ? 1 : 0;
    DSM_ASSERT(cfg.optReadMaxRetries >= 0, "bad optReadMaxRetries %d",
               cfg.optReadMaxRetries);
    // Crash-tolerance knobs, same discipline. Order matters: the kill
    // epoch defaults on the kill node, and checkpointing engages on
    // either a kill or a snapshot directory.
    cfg.faultSeed = static_cast<long long>(cfg.resolvedFaultSeed());
    cfg.faultKillNode = cfg.resolvedFaultKillNode();
    cfg.faultKillEpoch = cfg.resolvedFaultKillEpoch();
    cfg.faultOutageNode = cfg.resolvedFaultOutageNode();
    cfg.faultOutageEpoch = cfg.resolvedFaultOutageEpoch();
    cfg.faultOutageMs = cfg.resolvedFaultOutageMs();
    cfg.fdDeadlineMs = static_cast<int>(cfg.resolvedFdDeadlineNs() /
                                        1'000'000);
    cfg.faultRtoFirstUs =
        static_cast<long long>(cfg.resolvedRtoFirstNs() / 1000);
    cfg.faultRtoCapUs =
        static_cast<long long>(cfg.resolvedRtoCapNs() / 1000);
    cfg.ckptDir = cfg.resolvedCkptDir();
    cfg.checkpointEvery = cfg.resolvedCheckpointEvery();
    cfg.faultMsgDrop = cfg.resolvedFaultMsgDrop();
    cfg.ckptDelta = cfg.resolvedCkptDelta() ? 1 : 0;
    cfg.ckptAnchorEvery = cfg.resolvedCkptAnchorEvery();
    cfg.runtime.validate();
    // The pool is process-wide; the newest cluster's ablation setting
    // wins (clusters run sequentially in tests and benches).
    BufferPool::instance().setEnabled(cfg.pooledBuffers);

    LossPlan loss;
    if (cfg.lossEveryNth > 0)
        loss = dropEveryNth(cfg.lossEveryNth);
    net = std::make_unique<Network>(cfg.nprocs, cfg.cost, std::move(loss));
    if (cfg.blockingDequeue > 0)
        net->setAdaptiveInboxSpin(true);

    // Real (unmodeled) message drops; null when the knob is off, so
    // the send hot path pays only a pointer test. A silent-peer
    // outage needs the injector too (rate 0 is fine — silence is
    // checked before the rate gate), it is the silence lever.
    const bool outageArmed =
        cfg.faultOutageNode >= 0 && cfg.faultOutageEpoch >= 1;
    if (cfg.faultMsgDrop > 0 || outageArmed) {
        faults = std::make_unique<FaultInjector>(
            static_cast<std::uint64_t>(cfg.faultSeed),
            cfg.faultMsgDrop > 0 ? cfg.faultMsgDrop : 0.0);
        net->setFaultInjector(faults.get());
    }

    // Liveness tracking: one shared detector — any service thread's
    // stamp of a peer is visible to (and revives it for) the whole
    // cluster, mirroring how a real network's arrivals update every
    // observer that hears the node.
    if (cfg.resolvedFdDeadlineNs() > 0) {
        detector = std::make_unique<FailureDetector>(
            *net, cfg.nprocs, cfg.resolvedFdDeadlineNs(), faults.get());
    }

    nodes.reserve(cfg.nprocs);
    for (int i = 0; i < cfg.nprocs; ++i)
        nodes.push_back(std::make_unique<Node>(cfg, *net, i));

    for (auto &node : nodes) {
        Node *n = node.get();
        if (faults)
            n->ep.setFaultsEnabled(true);
        n->ep.setReplyBypass(cfg.replyBypass > 0);
        n->ep.setCoalescing(cfg.coalesceSends > 0);
        n->ep.setBlockingDequeue(cfg.blockingDequeue > 0);
        n->ep.setRetransmitTimeouts(cfg.resolvedRtoFirstNs(),
                                    cfg.resolvedRtoCapNs());
        if (detector) {
            n->ep.setFailureDetector(detector.get());
            // Down -> healthy transition of a peer: re-forward any
            // lock grant the outage orphaned at that peer.
            n->ep.setRecoveryCallback(
                [n](NodeId peer) { n->locks.onPeerRecovered(peer); });
            n->rt->setFailureDetector(detector.get());
        }
        if (cfg.checkpointEvery > 0) {
            CheckpointCoordinator::Options opts;
            opts.every = static_cast<std::uint32_t>(cfg.checkpointEvery);
            opts.killNode = cfg.faultKillNode;
            opts.killEpoch =
                static_cast<std::uint32_t>(cfg.faultKillEpoch);
            opts.dir = cfg.ckptDir;
            opts.outageNode = cfg.faultOutageNode;
            opts.outageEpoch =
                static_cast<std::uint32_t>(cfg.faultOutageEpoch);
            opts.outageMs = static_cast<std::uint32_t>(
                cfg.faultOutageMs > 0 ? cfg.faultOutageMs : 0);
            opts.delta = cfg.ckptDelta > 0;
            opts.anchorEvery =
                static_cast<std::uint32_t>(cfg.ckptAnchorEvery);
            opts.injector = faults.get();
            opts.detector = detector.get();
            n->ckpt = std::make_unique<CheckpointCoordinator>(
                n->ep.self(), cfg.threadsPerNode, std::move(opts), *net,
                n->ep, n->locks, n->barriers);
            n->rt->setCheckpoint(n->ckpt.get());
        }
        n->ep.setHandler([n](Message &msg) {
            switch (msg.type) {
              case MsgType::LockRequest:
              case MsgType::LockForward:
                n->locks.handleMessage(msg);
                break;
              case MsgType::BarrierArrive:
                n->barriers.handleMessage(msg);
                break;
              default:
                n->rt->handleMessage(msg);
            }
        });
    }
}

Cluster::~Cluster()
{
    for (auto &node : nodes)
        node->ep.stop();
    if (net)
        net->shutdown();
}

RunResult
Cluster::run(const std::function<void(Runtime &)> &app_main)
{
    DSM_ASSERT(!ran, "a Cluster instance runs exactly one application");
    ran = true;

    for (auto &node : nodes)
        node->ep.start();

    const int T = cfg.threadsPerNode;
    const int workers = cfg.nprocs * T;
    // SPMD allocation replay starts from the log as it stands *now*
    // (one snapshot per node, before any worker runs): allocations a
    // test performed before run() are skipped by every worker, and the
    // first worker to reach a new position allocates for its siblings.
    std::vector<std::uint32_t> allocBase(cfg.nprocs);
    for (int i = 0; i < cfg.nprocs; ++i)
        allocBase[i] = nodes[i]->rt->allocLogSize();
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::unique_ptr<ThreadContext>> ctxs(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int i = 0; i < cfg.nprocs; ++i) {
        for (int t = 0; t < T; ++t) {
            ThreadContext &ctx = *(ctxs[i * T + t] =
                                       std::make_unique<ThreadContext>());
            ctx.node = static_cast<NodeId>(i);
            ctx.threadId = t;
            ctx.worker = i * T + t;
            ctx.numWorkers = workers;
            // T == 1: the worker shares the node clock with the
            // service thread (the paper's uniprocessor node, where
            // the SIGIO handler stole application cycles) — the
            // historical accounting, bit for bit. T > 1: each
            // worker is its own CPU; the node clock plays the
            // protocol processor, and the clocks meet at sync
            // points and at run end.
            ctx.clock = T == 1 ? &nodes[i]->clock : &ctx.ownClock;
            ctx.allocCursor = allocBase[i];
            threads.emplace_back([&, i] {
                ThreadContext::Scope scope(&ctx);
                try {
                    app_main(*nodes[i]->rt);
                } catch (...) {
                    errors[ctx.worker] = std::current_exception();
                }
            });
        }
    }
    for (auto &t : threads)
        t.join();
    for (auto &node : nodes)
        node->ep.stop();

    // Fold the workers' private counters and clocks into their nodes
    // only now: every worker has joined and every service thread has
    // stopped, so this is plain single-threaded summation.
    for (int i = 0; i < cfg.nprocs; ++i) {
        for (int t = 0; t < T; ++t) {
            const ThreadContext &ctx = *ctxs[i * T + t];
            nodes[i]->stats += ctx.stats;
            nodes[i]->clock.advanceTo(ctx.clock->now());
        }
    }

    for (int w = 0; w < workers; ++w) {
        if (errors[w])
            std::rethrow_exception(errors[w]);
    }

    RunResult result;
    for (auto &node : nodes) {
        const std::uint64_t t = node->clock.now();
        result.nodeTimesNs.push_back(t);
        result.execTimeNs = std::max(result.execTimeNs, t);
        result.perNode.push_back(node->stats);
        result.total += node->stats;
    }
    result.networkMessages = net->totalMessages();
    for (auto &node : nodes) {
        if (!node->ckpt)
            continue;
        result.checkpointBytes =
            std::max(result.checkpointBytes, node->ckpt->lastBlobBytes());
        result.restoreTimeNs =
            std::max(result.restoreTimeNs, node->ckpt->lastRestoreNs());
    }
    return result;
}

} // namespace dsm
