#include "core/cluster.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

#include "driver/proc_launcher.hh"
#include "net/failure_detector.hh"
#include "net/socket_transport.hh"
#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

Cluster::Node::Node(const ClusterConfig &config, Transport &net, NodeId id)
    : arena(config.arenaBytes, config.pageSize),
      ep(net, id, clock, stats),
      locks(ep, config.threadsPerNode, config.lockLocalHandoffBound,
            config.lockFairnessAdaptive > 0),
      barriers(ep, config.threadsPerNode)
{
    Runtime::Deps deps;
    deps.self = id;
    deps.nprocs = config.nprocs;
    deps.threadsPerNode = config.threadsPerNode;
    deps.arena = &arena;
    deps.endpoint = &ep;
    deps.locks = &locks;
    deps.barriers = &barriers;
    deps.regions = &regions;
    deps.nodeLocks = &nlocks;
    deps.cluster = &config;
    if (config.runtime.model == Model::EC)
        rt = std::make_unique<EcRuntime>(deps);
    else
        rt = std::make_unique<LrcRuntime>(deps);
}

Cluster::Cluster(const ClusterConfig &config) : cfg(config)
{
    DSM_ASSERT(cfg.nprocs >= 1 && cfg.nprocs <= 64,
               "unreasonable node count %d", cfg.nprocs);
    cfg.threadsPerNode = cfg.resolvedThreadsPerNode();
    // Sharing-policy knobs: apply the "-1 = environment default"
    // resolution once, so every consumer below sees plain values.
    cfg.lockLocalHandoffBound = cfg.resolvedLockFairness();
    cfg.homeMigrateLastWriter = cfg.resolvedHomeLastWriter() ? 1 : 0;
    cfg.homePingPongLimit =
        static_cast<int>(cfg.resolvedHomePingPongLimit());
    cfg.homeFlushDefer = cfg.resolvedHomeFlushDefer() ? 1 : 0;
    cfg.optimisticHomeReads = cfg.resolvedOptimisticHomeReads() ? 1 : 0;
    // Latency-path knobs (PR 9).
    cfg.replyBypass = cfg.resolvedReplyBypass() ? 1 : 0;
    cfg.blockingDequeue = cfg.resolvedBlockingDequeue() ? 1 : 0;
    cfg.coalesceSends = cfg.resolvedCoalesceSends() ? 1 : 0;
    cfg.lockFairnessAdaptive = cfg.resolvedLockFairnessAdaptive() ? 1 : 0;
    // Transport tier: resolve before the crash-tolerance knobs so the
    // in-process-only fallback sees their resolved values too.
    cfg.transport = cfg.resolvedTransport();
    cfg.socketDir = cfg.resolvedSocketDir();
    DSM_ASSERT(cfg.optReadMaxRetries >= 0, "bad optReadMaxRetries %d",
               cfg.optReadMaxRetries);
    // Crash-tolerance knobs, same discipline. Order matters: the kill
    // epoch defaults on the kill node, and checkpointing engages on
    // either a kill or a snapshot directory.
    cfg.faultSeed = static_cast<long long>(cfg.resolvedFaultSeed());
    cfg.faultKillNode = cfg.resolvedFaultKillNode();
    cfg.faultKillEpoch = cfg.resolvedFaultKillEpoch();
    cfg.faultOutageNode = cfg.resolvedFaultOutageNode();
    cfg.faultOutageEpoch = cfg.resolvedFaultOutageEpoch();
    cfg.faultOutageMs = cfg.resolvedFaultOutageMs();
    cfg.fdDeadlineMs = static_cast<int>(cfg.resolvedFdDeadlineNs() /
                                        1'000'000);
    cfg.faultRtoFirstUs =
        static_cast<long long>(cfg.resolvedRtoFirstNs() / 1000);
    cfg.faultRtoCapUs =
        static_cast<long long>(cfg.resolvedRtoCapNs() / 1000);
    cfg.ckptDir = cfg.resolvedCkptDir();
    cfg.checkpointEvery = cfg.resolvedCheckpointEvery();
    cfg.faultMsgDrop = cfg.resolvedFaultMsgDrop();
    cfg.ckptDelta = cfg.resolvedCkptDelta() ? 1 : 0;
    cfg.ckptAnchorEvery = cfg.resolvedCkptAnchorEvery();
    cfg.runtime.validate();
    // The pool is process-wide; the newest cluster's ablation setting
    // wins (clusters run sequentially in tests and benches).
    BufferPool::instance().setEnabled(cfg.pooledBuffers);

    LossPlan loss;
    if (cfg.lossEveryNth > 0)
        loss = dropEveryNth(cfg.lossEveryNth);
    net = std::make_unique<Network>(cfg.nprocs, cfg.cost, std::move(loss));
    if (cfg.blockingDequeue > 0)
        net->setAdaptiveInboxSpin(true);

    // Real (unmodeled) message drops; null when the knob is off, so
    // the send hot path pays only a pointer test. A silent-peer
    // outage needs the injector too (rate 0 is fine — silence is
    // checked before the rate gate), it is the silence lever.
    const bool outageArmed =
        cfg.faultOutageNode >= 0 && cfg.faultOutageEpoch >= 1;
    if (cfg.faultMsgDrop > 0 || outageArmed) {
        faults = std::make_unique<FaultInjector>(
            static_cast<std::uint64_t>(cfg.faultSeed),
            cfg.faultMsgDrop > 0 ? cfg.faultMsgDrop : 0.0);
        net->setFaultInjector(faults.get());
    }

    // Liveness tracking: one shared detector — any service thread's
    // stamp of a peer is visible to (and revives it for) the whole
    // cluster, mirroring how a real network's arrivals update every
    // observer that hears the node.
    if (cfg.resolvedFdDeadlineNs() > 0) {
        detector = std::make_unique<FailureDetector>(
            *net, cfg.nprocs, cfg.resolvedFdDeadlineNs(), faults.get());
    }

    nodes.reserve(cfg.nprocs);
    for (int i = 0; i < cfg.nprocs; ++i)
        nodes.push_back(std::make_unique<Node>(cfg, *net, i));

    for (auto &node : nodes) {
        Node *n = node.get();
        if (faults)
            n->ep.setFaultsEnabled(true);
        n->ep.setReplyBypass(cfg.replyBypass > 0);
        n->ep.setCoalescing(cfg.coalesceSends > 0);
        n->ep.setBlockingDequeue(cfg.blockingDequeue > 0);
        n->ep.setRetransmitTimeouts(cfg.resolvedRtoFirstNs(),
                                    cfg.resolvedRtoCapNs());
        if (detector) {
            n->ep.setFailureDetector(detector.get());
            // Down -> healthy transition of a peer: re-forward any
            // lock grant the outage orphaned at that peer.
            n->ep.setRecoveryCallback(
                [n](NodeId peer) { n->locks.onPeerRecovered(peer); });
            n->rt->setFailureDetector(detector.get());
        }
        if (cfg.checkpointEvery > 0) {
            CheckpointCoordinator::Options opts;
            opts.every = static_cast<std::uint32_t>(cfg.checkpointEvery);
            opts.killNode = cfg.faultKillNode;
            opts.killEpoch =
                static_cast<std::uint32_t>(cfg.faultKillEpoch);
            opts.dir = cfg.ckptDir;
            opts.outageNode = cfg.faultOutageNode;
            opts.outageEpoch =
                static_cast<std::uint32_t>(cfg.faultOutageEpoch);
            opts.outageMs = static_cast<std::uint32_t>(
                cfg.faultOutageMs > 0 ? cfg.faultOutageMs : 0);
            opts.delta = cfg.ckptDelta > 0;
            opts.anchorEvery =
                static_cast<std::uint32_t>(cfg.ckptAnchorEvery);
            opts.injector = faults.get();
            opts.detector = detector.get();
            n->ckpt = std::make_unique<CheckpointCoordinator>(
                n->ep.self(), cfg.threadsPerNode, std::move(opts), *net,
                n->ep, n->locks, n->barriers);
            n->rt->setCheckpoint(n->ckpt.get());
        }
        n->ep.setHandler([n](Message &msg) {
            switch (msg.type) {
              case MsgType::LockRequest:
              case MsgType::LockForward:
                n->locks.handleMessage(msg);
                break;
              case MsgType::BarrierArrive:
                n->barriers.handleMessage(msg);
                break;
              default:
                n->rt->handleMessage(msg);
            }
        });
    }
}

Cluster::~Cluster()
{
    for (auto &node : nodes)
        node->ep.stop();
    if (net)
        net->shutdown();
}

std::exception_ptr
Cluster::runWorkers(int first_node, int last_node,
                    const std::function<void(Runtime &)> &app_main,
                    const std::function<void()> &quiesce)
{
    const int T = cfg.threadsPerNode;
    const int span = last_node - first_node;
    // SPMD allocation replay starts from the log as it stands *now*
    // (one snapshot per node, before any worker runs): allocations a
    // test performed before run() are skipped by every worker, and the
    // first worker to reach a new position allocates for its siblings.
    std::vector<std::uint32_t> allocBase(span);
    for (int i = 0; i < span; ++i)
        allocBase[i] = nodes[first_node + i]->rt->allocLogSize();
    std::vector<std::exception_ptr> errors(span * T);
    std::vector<std::unique_ptr<ThreadContext>> ctxs(span * T);
    std::vector<std::thread> threads;
    threads.reserve(span * T);
    for (int s = 0; s < span; ++s) {
        const int i = first_node + s;
        for (int t = 0; t < T; ++t) {
            ThreadContext &ctx = *(ctxs[s * T + t] =
                                       std::make_unique<ThreadContext>());
            ctx.node = static_cast<NodeId>(i);
            ctx.threadId = t;
            // Worker numbering is cluster-global regardless of how
            // many nodes this process hosts: the SPMD partition must
            // be identical across transport tiers.
            ctx.worker = i * T + t;
            ctx.numWorkers = cfg.nprocs * T;
            // T == 1: the worker shares the node clock with the
            // service thread (the paper's uniprocessor node, where
            // the SIGIO handler stole application cycles) — the
            // historical accounting, bit for bit. T > 1: each
            // worker is its own CPU; the node clock plays the
            // protocol processor, and the clocks meet at sync
            // points and at run end.
            ctx.clock = T == 1 ? &nodes[i]->clock : &ctx.ownClock;
            ctx.allocCursor = allocBase[s];
            threads.emplace_back([&, i, s, t] {
                ThreadContext::Scope scope(ctxs[s * T + t].get());
                try {
                    app_main(*nodes[i]->rt);
                } catch (...) {
                    errors[s * T + t] = std::current_exception();
                }
            });
        }
    }
    for (auto &t : threads)
        t.join();
    if (quiesce)
        quiesce();
    for (int i = first_node; i < last_node; ++i)
        nodes[i]->ep.stop();

    // Fold the workers' private counters and clocks into their nodes
    // only now: every worker has joined and every service thread has
    // stopped, so this is plain single-threaded summation.
    for (int s = 0; s < span; ++s) {
        for (int t = 0; t < T; ++t) {
            const ThreadContext &ctx = *ctxs[s * T + t];
            nodes[first_node + s]->stats += ctx.stats;
            nodes[first_node + s]->clock.advanceTo(ctx.clock->now());
        }
    }

    for (auto &err : errors) {
        if (err)
            return err;
    }
    return nullptr;
}

RunResult
Cluster::run(const std::function<void(Runtime &)> &app_main)
{
    DSM_ASSERT(!ran, "a Cluster instance runs exactly one application");
    ran = true;

    if (cfg.transport != "ring")
        return runAsProcesses(app_main);

    for (auto &node : nodes)
        node->ep.start();

    if (std::exception_ptr err = runWorkers(0, cfg.nprocs, app_main))
        std::rethrow_exception(err);

    RunResult result;
    for (auto &node : nodes) {
        const std::uint64_t t = node->clock.now();
        result.nodeTimesNs.push_back(t);
        result.execTimeNs = std::max(result.execTimeNs, t);
        result.perNode.push_back(node->stats);
        result.total += node->stats;
    }
    result.networkMessages = net->totalMessages();
    for (auto &node : nodes) {
        if (!node->ckpt)
            continue;
        result.checkpointBytes =
            std::max(result.checkpointBytes, node->ckpt->lastBlobBytes());
        result.restoreTimeNs =
            std::max(result.restoreTimeNs, node->ckpt->lastRestoreNs());
    }
    return result;
}

RunResult
Cluster::runAsProcesses(const std::function<void(Runtime &)> &app_main)
{
    std::string dir = cfg.socketDir;
    const bool ephemeralDir = dir.empty();
    if (ephemeralDir) {
        dir = makeRendezvousDir();
    } else {
        // A pinned directory is created on demand but never removed —
        // the caller owns it (and its leftovers, e.g. for debugging).
        DSM_ASSERT(::mkdir(dir.c_str(), 0700) == 0 || errno == EEXIST,
                   "mkdir(%s): %s", dir.c_str(), std::strerror(errno));
    }

    // Fork before any endpoint starts: the whole cluster was built
    // single-threaded, so every child inherits identical pre-run
    // state — arenas, allocation logs, resolved config. Flush stdio
    // first: a forked copy of the parent's buffered output would be
    // re-flushed by every child at its own exit.
    std::fflush(nullptr);
    std::vector<pid_t> pids;
    const int rank = forkNodeProcesses(cfg.nprocs, pids);
    if (rank >= 0)
        runChildNode(rank, dir, app_main);

    std::string failure;
    std::vector<int> appErrorRanks;
    const bool ok = awaitNodeProcesses(pids, failure, appErrorRanks);

    RunResult result;
    std::string appError;
    if (ok) {
        for (int i = 0; i < cfg.nprocs; ++i) {
            NodeResult r = readNodeResult(dir, i);
            if (!r.error.empty() && appError.empty())
                appError = "node " + std::to_string(i) + ": " + r.error;
            // Fold the child's end state into the parent's node
            // objects so memory(), runtime() and the RunResult shape
            // are transport-neutral.
            Node &node = *nodes[i];
            node.stats = r.stats;
            node.clock.advanceTo(r.clockNs);
            DSM_ASSERT(r.arena.size() == node.arena.size(),
                       "node %d dumped a %zu-byte arena, expected %zu",
                       i, r.arena.size(), node.arena.size());
            std::memcpy(node.arena.at(0), r.arena.data(),
                        r.arena.size());
            result.networkMessages += r.transportMessages;
        }
    }
    if (ephemeralDir)
        removeRendezvousDir(dir);
    DSM_ASSERT(ok, "socket-transport run failed: %s", failure.c_str());
    if (!appError.empty())
        throw std::runtime_error(appError);

    for (auto &node : nodes) {
        const std::uint64_t t = node->clock.now();
        result.nodeTimesNs.push_back(t);
        result.execTimeNs = std::max(result.execTimeNs, t);
        result.perNode.push_back(node->stats);
        result.total += node->stats;
    }
    return result;
}

void
Cluster::runChildNode(int rank, const std::string &dir,
                      const std::function<void(Runtime &)> &app_main)
{
    NodeResult res;
    res.rank = rank;

    LossPlan loss;
    if (cfg.lossEveryNth > 0)
        loss = dropEveryNth(cfg.lossEveryNth);
    SocketTransport st(rank, cfg.nprocs, cfg.cost,
                       cfg.transport == "tcp" ? SocketKind::Tcp
                                              : SocketKind::Unix,
                       dir, std::move(loss));
    if (cfg.blockingDequeue > 0)
        st.setAdaptiveInboxSpin(true);
    if (faults)
        st.setFaultInjector(faults.get());

    Node &node = *nodes[rank];
    node.ep.rebindTransport(st);
    st.connectPeers();
    node.ep.start();

    // The goodbye rendezvous runs between worker join and endpoint
    // stop, even when the app threw: SPMD apps throw symmetrically
    // (an asymmetric throw deadlocks the in-process tier too), so
    // every rank reaches it and the rounds complete.
    const std::exception_ptr err = runWorkers(
        rank, rank + 1, app_main, [&st] { st.finishRun(); });
    if (err) {
        try {
            std::rethrow_exception(err);
        } catch (const std::exception &e) {
            res.error = e.what();
        } catch (...) {
            res.error = "non-standard application exception";
        }
        if (res.error.empty())
            res.error = "application exception";
    }

    res.clockNs = node.clock.now();
    res.transportMessages = st.totalMessages();
    res.stats = node.stats;
    res.arena.assign(node.arena.at(0),
                     node.arena.at(0) + node.arena.size());
    writeNodeResult(dir, res);
    // _exit, not exit: the child inherited the parent's Cluster and
    // must not run its destructors (they would stop endpoints that
    // point at the dying transport). _exit skips stdio flushing, so
    // push out anything the app printed (block-buffered on pipes)
    // before the buffers evaporate.
    std::fflush(nullptr);
    ::_exit(res.error.empty() ? 0 : kAppErrorExit);
}

} // namespace dsm
