#include "core/cluster.hh"

#include <exception>
#include <thread>

#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

Cluster::Node::Node(const ClusterConfig &config, Network &net, NodeId id)
    : arena(config.arenaBytes, config.pageSize),
      ep(net, id, clock, stats),
      locks(ep, mu),
      barriers(ep, mu)
{
    Runtime::Deps deps;
    deps.self = id;
    deps.nprocs = config.nprocs;
    deps.arena = &arena;
    deps.endpoint = &ep;
    deps.locks = &locks;
    deps.barriers = &barriers;
    deps.regions = &regions;
    deps.nodeMutex = &mu;
    deps.cluster = &config;
    if (config.runtime.model == Model::EC)
        rt = std::make_unique<EcRuntime>(deps);
    else
        rt = std::make_unique<LrcRuntime>(deps);
}

Cluster::Cluster(const ClusterConfig &config) : cfg(config)
{
    DSM_ASSERT(cfg.nprocs >= 1 && cfg.nprocs <= 64,
               "unreasonable node count %d", cfg.nprocs);
    cfg.runtime.validate();
    // The pool is process-wide; the newest cluster's ablation setting
    // wins (clusters run sequentially in tests and benches).
    BufferPool::instance().setEnabled(cfg.pooledBuffers);

    LossPlan loss;
    if (cfg.lossEveryNth > 0)
        loss = dropEveryNth(cfg.lossEveryNth);
    net = std::make_unique<Network>(cfg.nprocs, cfg.cost, std::move(loss));

    nodes.reserve(cfg.nprocs);
    for (int i = 0; i < cfg.nprocs; ++i)
        nodes.push_back(std::make_unique<Node>(cfg, *net, i));

    for (auto &node : nodes) {
        Node *n = node.get();
        n->ep.setHandler([n](Message &msg) {
            switch (msg.type) {
              case MsgType::LockRequest:
              case MsgType::LockForward:
                n->locks.handleMessage(msg);
                break;
              case MsgType::BarrierArrive:
                n->barriers.handleMessage(msg);
                break;
              default:
                n->rt->handleMessage(msg);
            }
        });
    }
}

Cluster::~Cluster()
{
    for (auto &node : nodes)
        node->ep.stop();
    if (net)
        net->shutdown();
}

RunResult
Cluster::run(const std::function<void(Runtime &)> &app_main)
{
    DSM_ASSERT(!ran, "a Cluster instance runs exactly one application");
    ran = true;

    for (auto &node : nodes)
        node->ep.start();

    std::vector<std::exception_ptr> errors(nodes.size());
    std::vector<std::thread> threads;
    threads.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        threads.emplace_back([&, i] {
            try {
                app_main(*nodes[i]->rt);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (auto &node : nodes)
        node->ep.stop();

    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }

    RunResult result;
    for (auto &node : nodes) {
        const std::uint64_t t = node->clock.now();
        result.nodeTimesNs.push_back(t);
        result.execTimeNs = std::max(result.execTimeNs, t);
        result.perNode.push_back(node->stats);
        result.total += node->stats;
    }
    result.networkMessages = net->totalMessages();
    return result;
}

} // namespace dsm
