/**
 * @file
 * Coordinated checkpointing and chaos-kill recovery (see DESIGN.md
 * section 5). Barriers are the natural consistent cut of both
 * protocols: every application thread is about to synchronize, no
 * acquire or page fetch is mid-flight, and the consistency model
 * requires nothing of the instant between a node's last release and
 * its barrier arrival. The coordinator exploits this:
 *
 *  - Runtime::barrier() calls atBarrier() before any protocol
 *    pre-barrier work. All T application threads of the node
 *    rendezvous locally; the last one in is the leader.
 *  - The leader stops the node's endpoint: the service thread drains
 *    the inbox up to the self-addressed Shutdown marker and joins.
 *    The MPSC inbox ring itself is the holdback queue — anything a
 *    peer sends after the marker parks in the ring untouched.
 *  - With no live mutators (siblings parked, service thread joined —
 *    a happens-before edge over all service-thread-owned state), the
 *    leader serializes the full node image through the protocol's own
 *    wire formats: arena + alloc log, protocol state (EC lock
 *    bindings / LRC vectors, interval log, diff store, home table),
 *    lock service, barrier service.
 *  - If this node is the chaos victim at this epoch, the leader then
 *    wipes every bit of that state (arena scribbled 0xDB) and
 *    restores it from the snapshot just taken — in file-backed mode
 *    from the file, proving the persisted blob alone rebuilds the
 *    node.
 *  - The endpoint restarts; the new service thread drains the parked
 *    messages — the node "replays forward" from the cut. Restart
 *    depends on no peer, so a checkpointing cluster cannot deadlock
 *    on its own coordinator.
 *
 * Every node runs this same uniform sequence; the victim merely adds
 * the wipe+restore leg. Peers that sent requests to the node while it
 * was down simply see a slow responder: their messages waited in the
 * ring ("parked outbound traffic" from their point of view), and the
 * fault-injection retransmit path covers the case where drops are
 * also armed.
 */

#ifndef DSM_CORE_CHECKPOINT_HH
#define DSM_CORE_CHECKPOINT_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/endpoint.hh"
#include "net/network.hh"
#include "sync/barrier_service.hh"
#include "sync/lock_service.hh"

namespace dsm {

class Runtime;
class FaultInjector;
class FailureDetector;

class CheckpointCoordinator
{
  public:
    /** Snapshot blob header. */
    static constexpr std::uint64_t kMagic = 0x44534d434b505431ull; // DSMCKPT1
    static constexpr std::uint32_t kVersion = 2;
    /** Incremental (changed-runs) blob header. */
    static constexpr std::uint64_t kDeltaMagic =
        0x44534d434b504431ull; // DSMCKPD1

    struct Options
    {
        /** Checkpoint every N barrier() invocations (>= 1). */
        std::uint32_t every = 1;
        /** Chaos victim node (-1 = nobody dies). */
        NodeId killNode = -1;
        /** Epoch (count of checkpoints on this node) at which the
         *  victim is killed and restored. */
        std::uint32_t killEpoch = 0;
        /** Snapshot directory ("" = in-memory tier only). */
        std::string dir;
        /** Silent-peer outage victim (-1 = none): at this node's cut
         *  of epoch outageEpoch the injector silences all its
         *  droppable traffic for outageMs of wall-clock — long enough
         *  for survivors' failure detectors to genuinely declare it
         *  down — then the node is wiped, restored from its latest
         *  checkpoint tier and unsilenced. */
        NodeId outageNode = -1;
        std::uint32_t outageEpoch = 0;
        std::uint32_t outageMs = 0;
        /** Incremental delta checkpoints: between full anchor cuts
         *  (every anchorEvery-th epoch), store only the runs that
         *  changed against the previous cut's image. */
        bool delta = false;
        std::uint32_t anchorEvery = 8;
        /** Silence lever; required when an outage is armed. */
        FaultInjector *injector = nullptr;
        /** Keeps our own liveness fresh across a long cut so peers do
         *  not false-positive a checkpointing node (may be null). */
        FailureDetector *detector = nullptr;
    };

    /** A materialized (anchor + deltas) persisted node image. */
    struct PersistedImage
    {
        std::vector<std::byte> image;
        std::uint64_t epoch = 0; ///< 0 = nothing persisted
        /** Vector-time frontier of the cut ("-" manifest = empty). */
        std::vector<std::uint32_t> frontier;
    };

    /**
     * Load the newest persisted image of @p node from @p dir by
     * walking its manifest: latest full anchor, then each delta in
     * epoch order, materialized via applyDelta. Bit-identical to the
     * full blob the node would have written with deltas off. Returns
     * epoch 0 when the node never persisted a cut. Static so a
     * surviving node can re-host pages homed at a dead peer.
     */
    static PersistedImage loadLatestImage(const std::string &dir,
                                          NodeId node);

    /**
     * Encode @p cur as changed word runs against @p prev (SIMD scan;
     * a verbatim tail covers bytes past the common word-aligned
     * prefix, so images may change length between cuts).
     */
    static std::vector<std::byte>
    makeDelta(const std::vector<std::byte> &prev,
              const std::vector<std::byte> &cur, std::uint64_t base_epoch);

    /** Invert makeDelta: rebuild the full image from @p prev and the
     *  delta blob. Asserts the recorded base epoch is @p base_epoch
     *  (pass 0 to skip the check). */
    static std::vector<std::byte>
    applyDelta(const std::vector<std::byte> &prev,
               const std::vector<std::byte> &delta,
               std::uint64_t base_epoch);

    CheckpointCoordinator(NodeId self, int threads_per_node,
                          Options options, Network &network,
                          Endpoint &endpoint, LockService &locks,
                          BarrierService &barriers);

    /** The per-barrier hook Runtime::barrier() runs first. All of the
     *  node's application threads must call it (SPMD). */
    void atBarrier(Runtime &rt, BarrierId barrier);

    /** Size of the most recent snapshot blob (0 = none taken). */
    std::uint64_t lastBlobBytes() const { return lastBytes; }

    /** Wall-clock nanoseconds of the most recent wipe+restore
     *  (0 = no recovery ran). */
    std::uint64_t lastRestoreNs() const { return restoreNs; }

    /** Checkpoints taken by this node. */
    std::uint64_t epochsTaken() const { return epochsDone; }

  private:
    /** Leader half: stop, snapshot, maybe kill+restore, restart. */
    void checkpointAsLeader(Runtime &rt);

    std::vector<std::byte> snapshot(Runtime &rt) const;
    void restore(Runtime &rt, const std::vector<std::byte> &blob);

    /** The image a wipe at this instant restores from: the in-memory
     *  tier, or (dir set) the persisted blob / materialized delta
     *  chain — proving persistence alone rebuilds the node. */
    std::vector<std::byte> restoreSource() const;

    /** Tier-1 persistence: blob file plus a manifest line with the
     *  cut's kind (full | delta), base epoch and vector-time
     *  frontier. */
    void persist(Runtime &rt, const std::vector<std::byte> &blob,
                 bool full) const;
    std::vector<std::byte> loadPersisted() const;

    std::string blobPath() const;

    NodeId id;
    int threadsPerNode;
    Options opts;
    Network &net;
    Endpoint &ep;
    LockService &locks;
    BarrierService &barriers;

    /** Local thread rendezvous (mirrors the barrier service's). */
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;

    /** Count of barrier() invocations on this node (leader-counted;
     *  SPMD-identical across nodes by construction). */
    std::uint64_t barrierSeq = 0;
    /** Checkpoints actually taken (the manifest epoch). */
    std::uint64_t epochsDone = 0;
    /** First persist of this run truncates the node's manifest: a
     *  reused DSM_CKPT_DIR (bench sweeps run many clusters against
     *  one directory) would otherwise leave a previous run's chain as
     *  the "latest" and loadLatestImage would restore stale state. */
    mutable bool manifestOwned = false;

    /** In-memory snapshot tier (always kept, newest only). With
     *  deltas on this is still the *materialized* full image — the
     *  delta blob is what goes on the wire/disk and into lastBytes. */
    std::vector<std::byte> lastBlob;
    /** Stored size of the most recent cut: the full blob, or the
     *  delta blob when this cut was incremental. */
    std::uint64_t lastBytes = 0;
    std::uint64_t restoreNs = 0;
};

} // namespace dsm

#endif // DSM_CORE_CHECKPOINT_HH
