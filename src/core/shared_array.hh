/**
 * @file
 * Typed convenience view over a shared allocation. All element
 * accesses go through the runtime's instrumented access layer, so the
 * correct write-trapping code runs for every store.
 */

#ifndef DSM_CORE_SHARED_ARRAY_HH
#define DSM_CORE_SHARED_ARRAY_HH

#include <vector>

#include "core/runtime.hh"

namespace dsm {

template <typename T>
class SharedArray
{
  public:
    SharedArray() = default;

    SharedArray(Runtime &rt, GlobalAddr base, std::size_t n)
        : rt(&rt), baseAddr(base), count(n)
    {}

    /** Allocate a fresh shared array (call symmetrically on all
     *  nodes). @p block_size: trapping granularity (4 or 8). */
    static SharedArray
    alloc(Runtime &rt, std::size_t n, std::uint32_t block_size = 4,
          const std::string &name = "")
    {
        GlobalAddr base = rt.sharedAlloc(n * sizeof(T), alignof(T) > 8
                                             ? alignof(T) : 8,
                                         block_size, name);
        return SharedArray(rt, base, n);
    }

    T get(std::size_t i) const { return rt->read<T>(addr(i)); }

    void set(std::size_t i, const T &v) { rt->write(addr(i), v); }

    /** Bulk load [i, i+n) into @p dst. */
    void
    load(std::size_t i, T *dst, std::size_t n) const
    {
        rt->readBuf(addr(i), dst, n);
    }

    /** Bulk store @p src into [i, i+n) (split-loop instrumentation). */
    void
    store(std::size_t i, const T *src, std::size_t n)
    {
        rt->writeBuf(addr(i), src, n);
    }

    std::vector<T>
    loadAll() const
    {
        std::vector<T> out(count);
        if (count)
            load(0, out.data(), count);
        return out;
    }

    GlobalAddr
    addr(std::size_t i) const
    {
        return baseAddr + i * sizeof(T);
    }

    /** Byte range of elements [i, i+n), for lock binding. */
    Range
    range(std::size_t i, std::size_t n) const
    {
        return {addr(i), n * sizeof(T)};
    }

    Range wholeRange() const { return range(0, count); }

    std::size_t size() const { return count; }

    GlobalAddr base() const { return baseAddr; }

  private:
    Runtime *rt = nullptr;
    GlobalAddr baseAddr = 0;
    std::size_t count = 0;
};

} // namespace dsm

#endif // DSM_CORE_SHARED_ARRAY_HH
