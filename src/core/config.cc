#include "core/config.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace dsm {

const char *
toString(Model model)
{
    return model == Model::EC ? "EC" : "LRC";
}

const char *
toString(TrapMethod trap)
{
    return trap == TrapMethod::CompilerInstrumentation ? "ci" : "twin";
}

const char *
toString(CollectMethod collect)
{
    return collect == CollectMethod::Timestamping ? "time" : "diff";
}

std::string
RuntimeConfig::name() const
{
    std::string base = toString(model);
    if (trap == TrapMethod::CompilerInstrumentation)
        return base + "-ci";
    return base + (collect == CollectMethod::Timestamping ? "-time"
                                                          : "-diff");
}

void
RuntimeConfig::validate() const
{
    if (trap == TrapMethod::CompilerInstrumentation &&
        collect == CollectMethod::Diffing) {
        fatal("compiler instrumentation + diffing is not supported: its "
              "memory requirements are prohibitive (Section 1 of the "
              "paper)");
    }
}

RuntimeConfig
RuntimeConfig::parse(const std::string &name)
{
    for (const RuntimeConfig &config : all()) {
        if (config.name() == name)
            return config;
    }
    fatal("unknown runtime configuration '%s' (expected one of EC-ci, "
          "EC-time, EC-diff, LRC-ci, LRC-time, LRC-diff)", name.c_str());
}

int
ClusterConfig::resolvedThreadsPerNode() const
{
    int t = threadsPerNode;
    if (t == 0) {
        t = 1;
        if (const char *v = std::getenv("DSM_THREADS")) {
            const int parsed = std::atoi(v);
            if (parsed > 0)
                t = parsed;
        }
    }
    DSM_ASSERT(t >= 1 && t <= 64, "unreasonable threadsPerNode %d", t);
    return t;
}

const std::vector<RuntimeConfig> &
RuntimeConfig::all()
{
    static const std::vector<RuntimeConfig> kAll = {
        {Model::EC, TrapMethod::CompilerInstrumentation,
         CollectMethod::Timestamping},
        {Model::EC, TrapMethod::Twinning, CollectMethod::Timestamping},
        {Model::EC, TrapMethod::Twinning, CollectMethod::Diffing},
        {Model::LRC, TrapMethod::CompilerInstrumentation,
         CollectMethod::Timestamping},
        {Model::LRC, TrapMethod::Twinning, CollectMethod::Timestamping},
        {Model::LRC, TrapMethod::Twinning, CollectMethod::Diffing},
    };
    return kAll;
}

} // namespace dsm
