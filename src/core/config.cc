#include "core/config.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace dsm {

const char *
toString(Model model)
{
    return model == Model::EC ? "EC" : "LRC";
}

const char *
toString(TrapMethod trap)
{
    return trap == TrapMethod::CompilerInstrumentation ? "ci" : "twin";
}

const char *
toString(CollectMethod collect)
{
    return collect == CollectMethod::Timestamping ? "time" : "diff";
}

std::string
RuntimeConfig::name() const
{
    std::string base = toString(model);
    if (trap == TrapMethod::CompilerInstrumentation)
        return base + "-ci";
    return base + (collect == CollectMethod::Timestamping ? "-time"
                                                          : "-diff");
}

void
RuntimeConfig::validate() const
{
    if (trap == TrapMethod::CompilerInstrumentation &&
        collect == CollectMethod::Diffing) {
        fatal("compiler instrumentation + diffing is not supported: its "
              "memory requirements are prohibitive (Section 1 of the "
              "paper)");
    }
}

RuntimeConfig
RuntimeConfig::parse(const std::string &name)
{
    for (const RuntimeConfig &config : all()) {
        if (config.name() == name)
            return config;
    }
    fatal("unknown runtime configuration '%s' (expected one of EC-ci, "
          "EC-time, EC-diff, LRC-ci, LRC-time, LRC-diff)", name.c_str());
}

std::string
ClusterConfig::resolvedTransport() const
{
    std::string t = transport;
    if (t.empty()) {
        if (const char *v = std::getenv("DSM_TRANSPORT"))
            t = v;
        else
            t = "ring";
    }
    DSM_ASSERT(t == "ring" || t == "socket" || t == "tcp",
               "unknown transport '%s' (expected ring, socket or tcp)",
               t.c_str());
    if (t == "ring")
        return t;
    // In-process-only features reach across node state in ways only
    // one address space allows (checkpoint wipe+restore of a sibling,
    // marking a remote inbox down, shared liveness stamps): their
    // presence pins the run to tier 0. The probabilistic message-drop
    // layer alone is transport-neutral (send-side injector, per-node
    // retransmit/dedup) and stays on the socket tiers.
    const bool inProcessOnly = resolvedCheckpointEvery() > 0 ||
                               resolvedFaultKillNode() >= 0 ||
                               resolvedFaultOutageNode() >= 0 ||
                               resolvedFdDeadlineNs() > 0;
    if (inProcessOnly)
        return "ring";
    return t;
}

std::string
ClusterConfig::resolvedSocketDir() const
{
    if (!socketDir.empty())
        return socketDir;
    if (const char *v = std::getenv("DSM_SOCKET_DIR"))
        return v;
    return {};
}

int
ClusterConfig::resolvedThreadsPerNode() const
{
    int t = threadsPerNode;
    if (t == 0) {
        t = 1;
        if (const char *v = std::getenv("DSM_THREADS")) {
            const int parsed = std::atoi(v);
            if (parsed > 0)
                t = parsed;
        }
    }
    DSM_ASSERT(t >= 1 && t <= 64, "unreasonable threadsPerNode %d", t);
    return t;
}

namespace {

/** -1 = "take the environment variable, else @p fallback". */
int
resolveEnvDefault(int configured, const char *env, int fallback)
{
    if (configured >= 0)
        return configured;
    if (const char *v = std::getenv(env))
        return std::atoi(v);
    return fallback;
}

} // namespace

int
ClusterConfig::resolvedLockFairness() const
{
    const int k =
        resolveEnvDefault(lockLocalHandoffBound, "DSM_LOCK_FAIRNESS", 0);
    DSM_ASSERT(k >= 0 && k <= 1 << 20,
               "unreasonable lock fairness bound %d", k);
    return k;
}

bool
ClusterConfig::resolvedHomeLastWriter() const
{
    return resolveEnvDefault(homeMigrateLastWriter,
                             "DSM_HOME_LAST_WRITER", 0) != 0;
}

std::uint32_t
ClusterConfig::resolvedHomePingPongLimit() const
{
    // With the last-writer policy on, an uncapped follow-the-writer
    // chase of a truly migratory page never settles; a small default
    // budget makes it converge to a pinned home.
    const int fallback = resolvedHomeLastWriter() ? 8 : 0;
    const int limit =
        resolveEnvDefault(homePingPongLimit, "DSM_HOME_PINGPONG",
                          fallback);
    DSM_ASSERT(limit >= 0, "bad homePingPongLimit %d", limit);
    return static_cast<std::uint32_t>(limit);
}

bool
ClusterConfig::resolvedHomeFlushDefer() const
{
    return resolveEnvDefault(homeFlushDefer, "DSM_HOME_DEFER", 0) != 0;
}

bool
ClusterConfig::resolvedOptimisticHomeReads() const
{
    return resolveEnvDefault(optimisticHomeReads, "DSM_OPT_READ", 0) != 0;
}

bool
ClusterConfig::resolvedReplyBypass() const
{
    return resolveEnvDefault(replyBypass, "DSM_REPLY_BYPASS", 1) != 0;
}

bool
ClusterConfig::resolvedBlockingDequeue() const
{
    return resolveEnvDefault(blockingDequeue, "DSM_BLOCKING_DEQ", 0) != 0;
}

bool
ClusterConfig::resolvedCoalesceSends() const
{
    return resolveEnvDefault(coalesceSends, "DSM_COALESCE", 0) != 0;
}

bool
ClusterConfig::resolvedLockFairnessAdaptive() const
{
    return resolveEnvDefault(lockFairnessAdaptive,
                             "DSM_LOCK_FAIRNESS_ADAPT", 0) != 0;
}

std::uint64_t
ClusterConfig::resolvedFaultSeed() const
{
    if (faultSeed >= 0)
        return static_cast<std::uint64_t>(faultSeed);
    if (const char *v = std::getenv("DSM_FAULT_SEED"))
        return static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    return 1;
}

double
ClusterConfig::resolvedFaultMsgDrop() const
{
    double rate = faultMsgDrop;
    if (rate < 0) {
        rate = 0;
        if (const char *v = std::getenv("DSM_FAULT_MSG_DROP"))
            rate = std::atof(v);
    }
    DSM_ASSERT(rate >= 0 && rate < 1, "bad drop rate %f", rate);
    return rate;
}

int
ClusterConfig::resolvedFaultKillNode() const
{
    const int node =
        resolveEnvDefault(faultKillNode, "DSM_FAULT_KILL_NODE", -1);
    return node >= 0 && node < nprocs ? node : -1;
}

int
ClusterConfig::resolvedFaultKillEpoch() const
{
    if (resolvedFaultKillNode() < 0)
        return 0;
    const int epoch =
        resolveEnvDefault(faultKillEpoch, "DSM_FAULT_KILL_EPOCH", 2);
    return epoch >= 1 ? epoch : 0;
}

int
ClusterConfig::resolvedCheckpointEvery() const
{
    // A kill or outage needs a snapshot to restore from, and a
    // DSM_CKPT_DIR run wants blobs on disk: all engage every-barrier
    // checkpoints unless the knob pins something else.
    const bool engaged = resolvedFaultKillEpoch() >= 1 ||
                         resolvedFaultOutageEpoch() >= 1 ||
                         !resolvedCkptDir().empty();
    const int every = resolveEnvDefault(checkpointEvery, "DSM_CKPT_EVERY",
                                        engaged ? 1 : 0);
    return every >= 0 ? every : 0;
}

std::string
ClusterConfig::resolvedCkptDir() const
{
    if (!ckptDir.empty())
        return ckptDir;
    if (const char *v = std::getenv("DSM_CKPT_DIR"))
        return v;
    return {};
}

int
ClusterConfig::resolvedFaultOutageNode() const
{
    const int node =
        resolveEnvDefault(faultOutageNode, "DSM_FAULT_OUTAGE_NODE", -1);
    return node >= 0 && node < nprocs ? node : -1;
}

int
ClusterConfig::resolvedFaultOutageEpoch() const
{
    if (resolvedFaultOutageNode() < 0)
        return 0;
    const int epoch =
        resolveEnvDefault(faultOutageEpoch, "DSM_FAULT_OUTAGE_EPOCH", 2);
    return epoch >= 1 ? epoch : 0;
}

int
ClusterConfig::resolvedFaultOutageMs() const
{
    const int ms =
        resolveEnvDefault(faultOutageMs, "DSM_FAULT_OUTAGE_MS", 120);
    DSM_ASSERT(ms >= 1 && ms <= 60'000, "unreasonable outage %d ms", ms);
    return ms;
}

std::uint64_t
ClusterConfig::resolvedFdDeadlineNs() const
{
    const int fallback = resolvedFaultOutageEpoch() >= 1 ? 50 : 0;
    const int ms =
        resolveEnvDefault(fdDeadlineMs, "DSM_FD_DEADLINE_MS", fallback);
    DSM_ASSERT(ms >= 0 && ms <= 60'000, "unreasonable detector "
               "deadline %d ms", ms);
    return static_cast<std::uint64_t>(ms) * 1'000'000;
}

namespace {

/** -1 = "take the environment variable, else @p fallback" (64-bit). */
long long
resolveEnvDefaultLL(long long configured, const char *env,
                    long long fallback)
{
    if (configured >= 0)
        return configured;
    if (const char *v = std::getenv(env))
        return std::atoll(v);
    return fallback;
}

} // namespace

std::uint64_t
ClusterConfig::resolvedRtoFirstNs() const
{
    const long long us =
        resolveEnvDefaultLL(faultRtoFirstUs, "DSM_FAULT_RTO_FIRST_US",
                            2'000);
    DSM_ASSERT(us >= 1, "bad RTO first %lld us", us);
    return static_cast<std::uint64_t>(us) * 1'000;
}

std::uint64_t
ClusterConfig::resolvedRtoCapNs() const
{
    const long long us = resolveEnvDefaultLL(
        faultRtoCapUs, "DSM_FAULT_RTO_CAP_US", 500'000);
    const std::uint64_t cap = static_cast<std::uint64_t>(us) * 1'000;
    DSM_ASSERT(cap >= resolvedRtoFirstNs(),
               "RTO cap %lld us below first deadline", us);
    return cap;
}

bool
ClusterConfig::resolvedCkptDelta() const
{
    return resolveEnvDefault(ckptDelta, "DSM_CKPT_DELTA", 0) != 0;
}

int
ClusterConfig::resolvedCkptAnchorEvery() const
{
    const int every =
        resolveEnvDefault(ckptAnchorEvery, "DSM_CKPT_ANCHOR", 8);
    DSM_ASSERT(every >= 1, "bad anchor cadence %d", every);
    return every;
}

bool
ClusterConfig::faultsEngaged() const
{
    return resolvedFaultMsgDrop() > 0 || resolvedFaultKillEpoch() >= 1 ||
           resolvedFaultOutageEpoch() >= 1;
}

const std::vector<RuntimeConfig> &
RuntimeConfig::all()
{
    static const std::vector<RuntimeConfig> kAll = {
        {Model::EC, TrapMethod::CompilerInstrumentation,
         CollectMethod::Timestamping},
        {Model::EC, TrapMethod::Twinning, CollectMethod::Timestamping},
        {Model::EC, TrapMethod::Twinning, CollectMethod::Diffing},
        {Model::LRC, TrapMethod::CompilerInstrumentation,
         CollectMethod::Timestamping},
        {Model::LRC, TrapMethod::Twinning, CollectMethod::Timestamping},
        {Model::LRC, TrapMethod::Twinning, CollectMethod::Diffing},
    };
    return kAll;
}

} // namespace dsm
