/**
 * @file
 * Lazy release consistency runtime (TreadMarks-style; Sections 3.2, 4,
 * 5 of the paper). No association between locks and data: an acquire
 * makes all shared data consistent via an invalidate protocol.
 *
 * Execution is divided into intervals; each interval that modified
 * pages is summarized by a record carrying its vector of interval
 * indices and per-page write notices. On acquire, the granter
 * piggybacks the records the requester lacks; arriving write notices
 * invalidate the local page copy. A subsequent access miss fetches the
 * missing modifications from their writers:
 *  - diffing: per-(page, interval) diffs applied in happens-before
 *    order (multiple concurrent writers per page merge word-wise);
 *  - timestamping: per-word (processor, interval) timestamps; the
 *    responder scans the page and transmits runs newer than the
 *    requester's vector.
 *
 * Write trapping is twinning (software-VM write faults) or compiler
 * instrumentation with hierarchical page + word dirty bits.
 *
 * A second, home-based variant (ClusterConfig::homeBasedLrc, diffing
 * only) gives every page a home node: interval close flushes diffs to
 * the homes eagerly (HomeDiffFlush), homes apply them in place, and an
 * access miss fetches one full up-to-date page copy from the home
 * (HomePageRequest/Reply) instead of collecting a diff chain from
 * every concurrent writer. No diffs are stored anywhere, so the
 * barrier-time diff GC handshake is a no-op, and homes migrate to the
 * dominant remote accessor past a configurable threshold.
 */

#ifndef DSM_CORE_LRC_RUNTIME_HH
#define DSM_CORE_LRC_RUNTIME_HH

#include <atomic>
#include <condition_variable>
#include <map>
#include <set>
#include <unordered_map>

#include "core/interval_log.hh"
#include "core/page_home.hh"
#include "core/runtime.hh"
#include "mem/diff.hh"
#include "mem/dirty_bits.hh"
#include "mem/page_table.hh"
#include "mem/twin_store.hh"
#include "mem/word_ts.hh"
#include "sync/vector_time.hh"

namespace dsm {

class LrcRuntime : public Runtime
{
  public:
    explicit LrcRuntime(const Deps &deps);

    void bindLock(LockId lock, std::vector<Range> ranges) override;
    void rebindLock(LockId lock, std::vector<Range> ranges) override;

    std::string name() const override;

    void handleMessage(Message &msg) override;

    // Introspection for tests and long-run memory accounting (call
    // only while the cluster is quiescent, e.g. after run()).
    std::size_t intervalRecordCount() const { return ilog.totalRecords(); }
    std::size_t diffStoreSize() const { return diffStore.size(); }
    NodeId pageHomeOf(PageId page) const { return homes.homeOf(page); }

    /** Home-based variant active? (homeBasedLrc + diff collection) */
    bool
    homeMode() const
    {
        return cluster->homeBasedLrc && usesDiffing();
    }

    /** Checkpoint support (core/checkpoint.hh): vectors, interval log,
     *  diff store, page metadata and the home table on top of the base
     *  arena/alloc-log image. */
    void serialize(WireWriter &w) const override;
    void restoreFrom(WireReader &r) override;
    void wipeForRecovery() override;

    /** The manifest frontier is this node's vector time. */
    std::vector<std::uint32_t> vectorFrontier() const override;

    /**
     * Advertise write intent (see Runtime::declareWriteIntent): the
     * pages of [addr, addr + bytes) enter writtenPages now, so the
     * very next lock request or barrier arrival announces them even
     * though no interval has closed over them yet. Only meaningful
     * when announceWrites is on; a no-op otherwise.
     */
    void declareWriteIntent(GlobalAddr addr, std::size_t bytes) override;

  protected:
    void preBarrier() override;
    void doRead(GlobalAddr addr, void *dst, std::size_t size) override;
    void doWrite(GlobalAddr addr, const void *src, std::size_t size,
                 bool bulk) override;

  private:
    struct PageMeta
    {
        /** Writes reflected in my copy: copyVt[p] = newest interval of
         *  p whose modifications this copy contains. */
        VectorTime copyVt;
        /** Pending write notices (proc, interval) newer than copyVt. */
        std::vector<std::pair<NodeId, std::uint32_t>> notices;
        /**
         * Every processor ever observed writing this page (bit per
         * node: own interval closes, the writers named by every
         * record processed for it, and the written-page announcements
         * piggybacked on lock requests). Gap-coalesced diffs are only
         * enabled while no processor but ourselves has ever written
         * the page — a conservative gate that turns the global unsafe
         * diffGapWords knob into an adaptive single-writer
         * optimization. The lock-request announcement closes the
         * first-contact window for lock-mediated sharing (the granter
         * learns the requester's written pages *before* it cuts its
         * grant-side diff); writers that only ever meet at barriers
         * still learn of each other one interval late, so the knob
         * stays conservative for purely barrier-synchronized apps.
         */
        std::uint64_t writerMask = 0;
    };

    PageMeta &meta(PageId page);
    BlockTimestamps &tsOf(PageId page);

    /** Erase @p page's notices covered by its copyVt and keep
     *  invalidPages exact. Caller holds the node mutex. */
    void resolveCoveredNotices(PageId page, PageMeta &m);

    /**
     * Close the current interval: detect the modified pages (drop
     * twins into diffs, or fold dirty bits into word timestamps),
     * append the interval record, and advance vt[self]. No-op when
     * nothing was written. Caller holds the node mutex.
     */
    void closeInterval();

    /**
     * Process @p rec's write notices: invalidate stale local copies.
     * Idempotent. @p fresh marks the first processing of the record
     * on this node; a fresh notice already covered by a page's valid
     * copy is an avoided re-invalidation (the data piggybacked on an
     * earlier fetch outran the notice) and is counted as such.
     */
    void invalidateFor(const IntervalRec &rec, bool fresh = true);

    /** A page in a batched fetch: its id plus the vector of writes the
     *  local copy already contains. */
    struct BatchPageReq
    {
        PageId page;
        VectorTime copyVt;
    };

    // --- Write-notice piggybacking on fetch replies (TreadMarks).
    // Requests advertise the requester's interval-log coverage;
    // responders append the records the requester lacks. Piggybacked
    // records add no notices (laziness is preserved): they only carry
    // ordering knowledge early, so a later regular delivery of the
    // notice finds the page's copy already covering it.

    /** My interval-log coverage (lastIdxOf per proc). Mutex held. */
    VectorTime logCoverage() const;

    /** Responder half: append count-prefixed records beyond
     *  @p req_log (empty when the feature is off). Mutex held. */
    void encodePiggybackedRecords(WireWriter &w,
                                  const VectorTime &req_log);

    /** Requester half: decode one reply's record section. */
    static void decodePiggybackedRecords(WireReader &r,
                                         std::vector<IntervalRec> &out);

    /** Fold piggybacked records into the log; returns the ones that
     *  were new to this node. Mutex held. */
    std::vector<const IntervalRec *>
    ingestPiggybackedRecords(std::vector<IntervalRec> &recs);

    /** Count fetched pages whose fresh copy already covers a freshly
     *  learned record while staying valid. Mutex held. */
    void countAvoidedReinvalidations(
        const std::vector<const IntervalRec *> &fresh,
        const std::vector<BatchPageReq> &fetched);

    /** ingest + count, for paths with no ordering dependency between
     *  record insertion and data application. Mutex held. */
    void applyPiggybackedRecords(std::vector<IntervalRec> &recs,
                                 const std::vector<BatchPageReq> &fetched);

    /** Service an access miss on @p page (app thread; takes and
     *  releases the protocol locks internally). @p read_only marks a
     *  load-side miss, eligible for the optimistic snapshot path. */
    void fetchPage(PageId page, bool read_only = false);

    /**
     * Fetch dispatch without the trap accounting, deduplicated across
     * sibling threads (SMP nodes): one in-flight fetch per page;
     * late-coming threads wait for it instead of issuing duplicate
     * request rounds. Used by fetchPage and the pre-barrier GC
     * validation sweep.
     */
    void fetchPageData(PageId page, bool read_only = false);

    void fetchDiffs(PageId page);
    void fetchDiffsLegacy(PageId page);
    void fetchTimestamps(PageId page);
    void fetchTimestampsLegacy(PageId page);

    /** Home mode: make @p page current with one request/reply against
     *  its home (or, at the home itself, by waiting for the in-flight
     *  flushes the pending notices announce). Read-only misses may ask
     *  for a lock-free version-validated snapshot (DSM_OPT_READ). */
    void fetchFromHome(PageId page, bool read_only = false);

    /**
     * Install a full page copy from the wire (home-page reply or
     * migration payload), re-basing an open twin and replaying the
     * local uncommitted writes on top when one exists. Takes the
     * page's shard; caller holds nl->core.
     */
    void installFullPage(PageId page, WireReader &r);

    /** Ensure @p page is present (fetch on access==None). Returns with
     *  the node mutex *released*. */
    void ensurePresent(PageId page, bool read_only = false);

    // Wire helpers.
    static void encodeRecord(WireWriter &w, const IntervalRec &rec);
    static IntervalRec decodeRecord(WireReader &r);

    // Lock hooks.
    std::vector<std::byte> makeLockRequest(LockId lock, AccessMode mode);
    std::vector<std::byte> makeLockGrant(LockId lock, AccessMode mode,
                                         NodeId origin, WireReader &req);
    void applyLockGrant(LockId lock, AccessMode mode, WireReader &r);

    // Barrier hooks.
    std::vector<std::byte> makeArrival(BarrierId barrier);
    void mergeArrival(BarrierId barrier, NodeId node, WireReader &r);
    std::vector<std::byte> makeDepart(BarrierId barrier, NodeId node);
    void applyDepart(BarrierId barrier, WireReader &r);

    // Access-miss servicing (service thread).
    void handleDiffRequest(Message &msg);
    void handleDiffBatchRequest(Message &msg);
    void handlePageTsRequest(Message &msg);
    void handlePageTsBatchRequest(Message &msg);

    // Home-based protocol (service thread; all take the node mutex).
    void handleHomeDiffFlush(Message &msg);
    void handleHomePageRequest(Message &msg);
    void handleHomeMigrate(Message &msg);

    /**
     * Optimistic read-only page service: answer a snapshot-eligible
     * HomePageRequest without taking the home core lock. Runs on the
     * service thread (the sole writer of the home mapping, so the
     * isHome/epoch reads need no lock); copies the page under the
     * per-line seqlock footer, retrying torn lines up to the
     * configured budget. Returns true when a HomePageSnapshotReply
     * was sent; false means the caller must fall back to the locked
     * path.
     */
    bool tryServeSnapshot(NodeId origin, std::uint64_t token,
                          PageId page, const VectorTime &need);

    /** Reply to a page request with the home's full copy (plus the
     *  records the origin lacks, per @p req_log). Mutex held. */
    void replyHomePage(NodeId origin, std::uint64_t token, PageId page,
                       const PageHomeTable::HomeState &hs,
                       const VectorTime &req_log);

    /** Serve, forward or keep each parked page request. Mutex held. */
    void serveParkedPageRequests();

    /** Re-encode one page's flush and send it to @p dst (forwarding on
     *  stale mappings and migration hand-offs). Mutex held. */
    void sendSingleFlush(NodeId dst, PageId page, NodeId proc,
                         std::uint32_t idx, std::uint32_t prev_idx,
                         std::uint64_t vt_sum, const Diff &diff);

    /**
     * Apply one flushed diff in place at the home (the caller has
     * checked the writer chain: the writer's previous flush for this
     * page is already applied). Returns true when a migration policy
     * (dominant access counts, or the last-writer classifier) says
     * the home should migrate to @p proc; @p via_last_writer, when
     * non-null, reports whether the last-writer policy was the
     * trigger (counted as lastWriterMigrations only where the
     * migration actually runs — a merged flush can fire the policy
     * for several intervals of one page but migrate once). Mutex
     * held.
     */
    bool applyFlushAtHome(PageId page, NodeId proc, std::uint32_t idx,
                          std::uint64_t vt_sum, const Diff &diff,
                          bool *via_last_writer = nullptr);

    /** Apply every parked flush whose predecessor has arrived, forward
     *  those whose page migrated away, and run any migrations they
     *  trigger. Mutex held. */
    void drainParkedFlushes();

    /** A migration a flush apply asked for, with its policy trigger
     *  (for the lastWriterMigrations counter). */
    struct MigrateReq
    {
        PageId page;
        NodeId dst;
        bool viaLastWriter;
    };

    /** Perform the collected migrations that still find us the home,
     *  counting last-writer-triggered ones. Mutex held. */
    void runMigrations(const std::vector<MigrateReq> &migrate);

    /** Hand @p page's home role to @p new_home. Mutex held. */
    void migrateHome(PageId page, NodeId new_home);

    /** Encode every stored diff of @p page newer than @p req_vt (one
     *  count prefix plus (proc, idx, vtSum, diff) tuples). */
    void encodeDiffsNewerThan(WireWriter &w, PageId page,
                              const VectorTime &req_vt);

    /** Encode the timestamp runs of @p page newer than the requester's
     *  page copy @p req_vt, capped at its global vector @p req_global
     *  (the page vector prefix plus counted runs). */
    void encodeTsNewerThan(WireWriter &w, PageId page,
                           const VectorTime &req_vt,
                           const VectorTime &req_global);

    bool usesTwinning() const
    {
        return cluster->runtime.trap == TrapMethod::Twinning;
    }

    bool usesDiffing() const
    {
        return cluster->runtime.collect == CollectMethod::Diffing;
    }

    /** A stored diff plus the sum of its interval's vector (used to
     *  order application without requiring the interval record). */
    struct DiffEntry
    {
        Diff diff;
        std::uint64_t vtSum = 0;
    };

    /**
     * Snapshot @p page's pending writers into @p responders, and into
     * @p reqs the page itself plus every other invalid page whose
     * pending writers are a subset (the piggyback set — those pages
     * become fully consistent from the same round trips). Also
     * snapshots the interval-log coverage into @p log_cov and, when
     * non-null, the global vector into @p global_vt, all under one
     * acquisition of the node mutex; the snapshot stays valid across
     * the blocking fetch calls because only the app thread adds or
     * clears notices.
     */
    void snapshotBatchTargets(PageId page,
                              std::vector<NodeId> &responders,
                              std::vector<BatchPageReq> &reqs,
                              VectorTime &log_cov,
                              VectorTime *global_vt = nullptr);

    /** One responder's timestamp runs for one page. */
    struct TsReplySet
    {
        VectorTime pageVt;
        std::vector<TsRun> runs;
        std::vector<std::vector<std::byte>> data;
    };

    /** Merge all responders' runs for @p page into the local copy in
     *  happens-before order, clear its notices and revalidate it.
     *  Caller holds the node mutex. */
    void applyTsReplies(PageId page,
                        const std::vector<TsReplySet> &replies);

    VectorTime vt;  ///< vt[self] = last closed
    IntervalLog ilog;
    std::map<std::pair<PageId, std::uint64_t>, DiffEntry> diffStore;
    std::unordered_map<PageId, PageMeta> pageMeta;
    /**
     * Exactly the pages with pending notices (invariant:
     * p ∈ invalidPages ⇔ !meta(p).notices.empty()), kept sorted so
     * the batched-miss piggyback scan and barrier-time GC validation
     * are O(pending) instead of walking all of pageMeta under the
     * node mutex.
     */
    std::set<PageId> invalidPages;
    std::unordered_map<PageId, BlockTimestamps> pageTs;
    PageTable pages;
    TwinStore twins;
    DirtyBitmap dirty;
    std::uint32_t lastBarrierSentIdx = 0;

    /** Pages with an in-flight fetch (SMP nodes; guarded by nl->core,
     *  waited on via fetchCv). Always empty at threadsPerNode == 1. */
    std::set<PageId> fetchesInFlight;
    std::condition_variable fetchCv;

    // Home-based state (unused in homeless mode).
    PageHomeTable homes;
    /** Resolved DSM_OPT_READ: serve read-only misses from lock-free
     *  version-validated snapshots (home mode only). */
    bool optRead = false;
    /** Retry budget shared by the server-side seqlock copy loop and
     *  the client-side epoch-reject loop before falling back to the
     *  locked path. */
    int optReadRetryBudget = 3;
    /**
     * Homeless diff mode with gap coalescing on: piggyback this
     * node's written-page history on every lock request so the
     * granter widens writerMask *before* cutting its grant-side diff
     * (the first-contact fix — see PageMeta::writerMask).
     */
    bool announceWrites = false;
    /** Every page this node ever closed a write interval for, in page
     *  order (guarded by nl->core; only populated when
     *  announceWrites). */
    std::set<PageId> writtenPages;
    /** Wakes an app thread blocked on its own home copy (waiting for
     *  in-flight flushes) or on a mid-fetch home migration. Paired
     *  with nl->core. */
    std::condition_variable homeCv;
    /** Page requests the home cannot answer yet: the needed flushes
     *  are in flight but not applied. */
    struct ParkedPageReq
    {
        NodeId origin;
        std::uint64_t token;
        PageId page;
        VectorTime need;
        /** Origin's interval-log coverage (for reply piggybacking). */
        VectorTime reqLog;
    };
    std::vector<ParkedPageReq> parkedPageReqs;
    /** Flushes the home cannot apply yet: the writer's previous flush
     *  for the page (prevIdx) is still in flight on a forwarding
     *  chain, so applying this one would let appliedVt claim an
     *  interval whose words the copy does not hold. */
    struct ParkedFlush
    {
        NodeId proc;
        std::uint32_t idx;
        std::uint32_t prevIdx;
        std::uint64_t vtSum;
        PageId page;
        Diff diff;
    };
    std::vector<ParkedFlush> parkedFlushes;

    /** One of our own interval's per-page flush payloads, either sent
     *  eagerly at interval close (legacy) or deferred into
     *  pendingHomeFlushes (homeFlushDefer). */
    struct PendingFlush
    {
        PageId page;
        std::uint32_t idx;
        std::uint32_t prevIdx;
        std::uint64_t vtSum;
        Diff diff;
    };
    /**
     * Deferred-merge flush policy (homeFlushDefer / DSM_HOME_DEFER):
     * interval closes park their flush payloads here, one bucket per
     * believed home, and flushPendingHomeFlushes turns each bucket
     * into a single HomeDiffFlush message at the next communication
     * point — a releaser that closes many intervals between remote
     * events sends one message per home instead of one per close.
     * Guarded by nl->home; always empty with the policy off.
     */
    std::map<NodeId, std::vector<PendingFlush>> pendingHomeFlushes;

    /** Encode @p entries (all @p proc's intervals) as one
     *  HomeDiffFlush message to @p dst — the single writer of the
     *  wire format handleHomeDiffFlush decodes (sendSingleFlush and
     *  both flush paths go through here). */
    void sendFlushMessage(NodeId dst, NodeId proc,
                          const std::vector<PendingFlush> &entries);

    /**
     * Send every deferred flush: regroup the buckets by the *current*
     * home (pages may have migrated since their close — entries now
     * homed here enter the parked-flush chain and apply in place),
     * then one message per remote home. Re-establishes the eager
     * protocol's invariant — any interval record that leaves this
     * node refers to a flush already in flight — exactly at the
     * points where records can leave (lock grants, barrier arrivals)
     * or where we could otherwise wait on our own unsent flush (home
     * fetches). Caller holds nl->core.
     */
    void flushPendingHomeFlushes();

    /**
     * Largest own interval index whose flush is in flight (or needed
     * none). With the deferred-flush policy, service-thread reply
     * piggybacking must not leak a record whose flush still sits in
     * pendingHomeFlushes: a requester could otherwise park at a home
     * that waits for us while we block on that requester — written
     * under nl->core (flushPendingHomeFlushes), read lock-free by the
     * service thread (encodePiggybackedRecords).
     */
    std::atomic<std::uint32_t> ownIdxFlushed{0};

    /** Set by preBarrier when this node validated all its pages ahead
     *  of the upcoming arrival (the local half of the GC handshake). */
    bool gcValidated = false;

    /** Barrier-manager scratch: per barrier, arrival vectors + count of
     *  departures already built (to reclaim the entry). */
    struct BarrierScratch
    {
        std::vector<VectorTime> arrivalVt;
        int validatedArrivals = 0;
        int departsBuilt = 0;
        /** Union of the arrivals' written-page announcements (page ->
         *  writer bits), rebroadcast in every departure so writers
         *  that only ever meet at barriers still learn of each other
         *  before their next diff cut (announceWrites only). */
        std::map<PageId, std::uint64_t> announcedMasks;
    };
    std::unordered_map<BarrierId, BarrierScratch> barrierScratch;
};

} // namespace dsm

#endif // DSM_CORE_LRC_RUNTIME_HH
