/**
 * @file
 * Lazy release consistency runtime (TreadMarks-style; Sections 3.2, 4,
 * 5 of the paper). No association between locks and data: an acquire
 * makes all shared data consistent via an invalidate protocol.
 *
 * Execution is divided into intervals; each interval that modified
 * pages is summarized by a record carrying its vector of interval
 * indices and per-page write notices. On acquire, the granter
 * piggybacks the records the requester lacks; arriving write notices
 * invalidate the local page copy. A subsequent access miss fetches the
 * missing modifications from their writers:
 *  - diffing: per-(page, interval) diffs applied in happens-before
 *    order (multiple concurrent writers per page merge word-wise);
 *  - timestamping: per-word (processor, interval) timestamps; the
 *    responder scans the page and transmits runs newer than the
 *    requester's vector.
 *
 * Write trapping is twinning (software-VM write faults) or compiler
 * instrumentation with hierarchical page + word dirty bits.
 */

#ifndef DSM_CORE_LRC_RUNTIME_HH
#define DSM_CORE_LRC_RUNTIME_HH

#include <map>
#include <unordered_map>

#include "core/interval_log.hh"
#include "core/runtime.hh"
#include "mem/diff.hh"
#include "mem/dirty_bits.hh"
#include "mem/page_table.hh"
#include "mem/twin_store.hh"
#include "mem/word_ts.hh"
#include "sync/vector_time.hh"

namespace dsm {

class LrcRuntime : public Runtime
{
  public:
    explicit LrcRuntime(const Deps &deps);

    void bindLock(LockId lock, std::vector<Range> ranges) override;
    void rebindLock(LockId lock, std::vector<Range> ranges) override;

    std::string name() const override;

    void handleMessage(Message &msg) override;

    // Introspection for tests and long-run memory accounting (call
    // only while the cluster is quiescent, e.g. after run()).
    std::size_t intervalRecordCount() const { return ilog.totalRecords(); }
    std::size_t diffStoreSize() const { return diffStore.size(); }

  protected:
    void preBarrier() override;
    void doRead(GlobalAddr addr, void *dst, std::size_t size) override;
    void doWrite(GlobalAddr addr, const void *src, std::size_t size,
                 bool bulk) override;

  private:
    struct PageMeta
    {
        /** Writes reflected in my copy: copyVt[p] = newest interval of
         *  p whose modifications this copy contains. */
        VectorTime copyVt;
        /** Pending write notices (proc, interval) newer than copyVt. */
        std::vector<std::pair<NodeId, std::uint32_t>> notices;
    };

    PageMeta &meta(PageId page);
    BlockTimestamps &tsOf(PageId page);

    /**
     * Close the current interval: detect the modified pages (drop
     * twins into diffs, or fold dirty bits into word timestamps),
     * append the interval record, and advance vt[self]. No-op when
     * nothing was written. Caller holds the node mutex.
     */
    void closeInterval();

    /** Process @p rec's write notices: invalidate stale local copies.
     *  Idempotent. */
    void invalidateFor(const IntervalRec &rec);

    /** Service an access miss on @p page (app thread; takes and
     *  releases the node mutex internally). */
    void fetchPage(PageId page);

    void fetchDiffs(PageId page);
    void fetchDiffsLegacy(PageId page);
    void fetchTimestamps(PageId page);

    /** Ensure @p page is present (fetch on access==None). Returns with
     *  the node mutex *released*. */
    void ensurePresent(PageId page);

    // Wire helpers.
    static void encodeRecord(WireWriter &w, const IntervalRec &rec);
    static IntervalRec decodeRecord(WireReader &r);

    // Lock hooks.
    std::vector<std::byte> makeLockRequest(LockId lock, AccessMode mode);
    std::vector<std::byte> makeLockGrant(LockId lock, AccessMode mode,
                                         NodeId origin, WireReader &req);
    void applyLockGrant(LockId lock, AccessMode mode, WireReader &r);

    // Barrier hooks.
    std::vector<std::byte> makeArrival(BarrierId barrier);
    void mergeArrival(BarrierId barrier, NodeId node, WireReader &r);
    std::vector<std::byte> makeDepart(BarrierId barrier, NodeId node);
    void applyDepart(BarrierId barrier, WireReader &r);

    // Access-miss servicing (service thread).
    void handleDiffRequest(Message &msg);
    void handleDiffBatchRequest(Message &msg);
    void handlePageTsRequest(Message &msg);

    /** Encode every stored diff of @p page newer than @p req_vt (one
     *  count prefix plus (proc, idx, vtSum, diff) tuples). */
    void encodeDiffsNewerThan(WireWriter &w, PageId page,
                              const VectorTime &req_vt);

    bool usesTwinning() const
    {
        return cluster->runtime.trap == TrapMethod::Twinning;
    }

    bool usesDiffing() const
    {
        return cluster->runtime.collect == CollectMethod::Diffing;
    }

    /** A stored diff plus the sum of its interval's vector (used to
     *  order application without requiring the interval record). */
    struct DiffEntry
    {
        Diff diff;
        std::uint64_t vtSum = 0;
    };

    VectorTime vt;  ///< vt[self] = last closed
    IntervalLog ilog;
    std::map<std::pair<PageId, std::uint64_t>, DiffEntry> diffStore;
    std::unordered_map<PageId, PageMeta> pageMeta;
    std::unordered_map<PageId, BlockTimestamps> pageTs;
    PageTable pages;
    TwinStore twins;
    DirtyBitmap dirty;
    std::uint32_t lastBarrierSentIdx = 0;

    /** Set by preBarrier when this node validated all its pages ahead
     *  of the upcoming arrival (the local half of the GC handshake). */
    bool gcValidated = false;

    /** Barrier-manager scratch: per barrier, arrival vectors + count of
     *  departures already built (to reclaim the entry). */
    struct BarrierScratch
    {
        std::vector<VectorTime> arrivalVt;
        int validatedArrivals = 0;
        int departsBuilt = 0;
    };
    std::unordered_map<BarrierId, BarrierScratch> barrierScratch;
};

} // namespace dsm

#endif // DSM_CORE_LRC_RUNTIME_HH
