/**
 * @file
 * The page-home subsystem of home-based LRC (in the style of the
 * Princeton HLRC follow-up work to the paper's homeless TreadMarks
 * protocol). Every page has a home node that absorbs diffs eagerly at
 * interval close and keeps the only up-to-date copy; an access miss is
 * one request/reply pair against the home instead of a diff chain
 * gathered from every concurrent writer.
 *
 * Two pieces live here:
 *  - PageHomeTable: each node's view of the page -> home mapping
 *    (static round-robin plus migration overrides) and, for pages
 *    homed locally, the home-side state: the applied interval vector,
 *    the per-word ordering sums that make out-of-order flush arrival
 *    safe, and the per-node access counters that drive the
 *    migrate-on-threshold policy.
 *  - Guarded diff application: flushes from causally ordered intervals
 *    can arrive at the home in either order (the releaser does not
 *    wait for flush acks), so each diffed word carries its interval's
 *    vector sum and only overwrites a word stamped with a smaller sum.
 *    Concurrent intervals of a data-race-free program touch disjoint
 *    words, so sum order is exact where it matters.
 */

#ifndef DSM_CORE_PAGE_HOME_HH
#define DSM_CORE_PAGE_HOME_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/diff.hh"
#include "sync/vector_time.hh"
#include "util/types.hh"

namespace dsm {

/** Cacheline granularity of the optimistic-read version footer. */
inline constexpr std::uint32_t kOptLineBytes = 64;

#if defined(__SANITIZE_THREAD__)
#define DSM_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DSM_TSAN_BUILD 1
#endif
#endif
#ifndef DSM_TSAN_BUILD
#define DSM_TSAN_BUILD 0
#endif

/**
 * Relaxed atomic copy into memory an optimistic snapshot may read
 * concurrently. Plain stores racing the snapshot's atomic loads would
 * be a data race (and a TSan report) even when the seqlock later
 * discards the torn copy, so every writer of snapshot-visible page
 * bytes uses this when optimistic home reads are enabled. The bulk
 * runs in 8-byte lanes (torn 8-byte boundaries are no worse than torn
 * byte boundaries — the version recheck discards them either way);
 * unaligned head/tail bytes fall back to byte lanes. Alignment is
 * taken from the shared side (dst here, src in the read counterpart),
 * which is what the concurrent accessor also aligns on.
 *
 * Outside TSan builds the copy compiles to plain memcpy, the usual
 * seqlock treatment (Linux, Abseil, FaRM): a racing copy is torn
 * either way and only ever discarded by the version recheck, so the
 * atomic lanes buy nothing but the sanitizer annotation — and memcpy
 * vectorizes where a loop of relaxed atomic_ref ops cannot.
 */
inline void
optAtomicWriteBytes(std::byte *dst, const std::byte *src, std::size_t n)
{
#if !DSM_TSAN_BUILD
    std::memcpy(dst, src, n);
#else
    std::size_t i = 0;
    while (i < n &&
           (reinterpret_cast<std::uintptr_t>(dst + i) & 7) != 0) {
        std::atomic_ref<std::byte>(dst[i]).store(
            src[i], std::memory_order_relaxed);
        ++i;
    }
    for (; i + 8 <= n; i += 8) {
        std::uint64_t v;
        std::memcpy(&v, src + i, 8);
        std::atomic_ref<std::uint64_t>(
            *reinterpret_cast<std::uint64_t *>(dst + i))
            .store(v, std::memory_order_relaxed);
    }
    for (; i < n; ++i) {
        std::atomic_ref<std::byte>(dst[i]).store(
            src[i], std::memory_order_relaxed);
    }
#endif
}

/** Counterpart of optAtomicWriteBytes: the snapshot's copy loop. */
inline void
optAtomicReadBytes(std::byte *dst, const std::byte *src, std::size_t n)
{
#if !DSM_TSAN_BUILD
    std::memcpy(dst, src, n);
#else
    // atomic_ref over const T is C++26; the loads do not mutate.
    std::byte *s = const_cast<std::byte *>(src);
    std::size_t i = 0;
    while (i < n && (reinterpret_cast<std::uintptr_t>(s + i) & 7) != 0) {
        dst[i] =
            std::atomic_ref<std::byte>(s[i]).load(std::memory_order_relaxed);
        ++i;
    }
    for (; i + 8 <= n; i += 8) {
        const std::uint64_t v =
            std::atomic_ref<std::uint64_t>(
                *reinterpret_cast<std::uint64_t *>(s + i))
                .load(std::memory_order_relaxed);
        std::memcpy(dst + i, &v, 8);
    }
    for (; i < n; ++i) {
        dst[i] =
            std::atomic_ref<std::byte>(s[i]).load(std::memory_order_relaxed);
    }
#endif
}

class PageHomeTable
{
  public:
    PageHomeTable() = default;

    /**
     * @param decay_window Epoch window (in accesses to one homed
     *        page) of the migration counters: every decay_window
     *        accesses the per-node counts are halved, so the
     *        migrate-on-threshold policy sees the *recent* access mix
     *        instead of history accumulated long ago. 0 keeps the
     *        legacy undecayed counts.
     * @param last_writer_policy Migrate-to-last-writer: a page whose
     *        flushes keep switching writers (>= switch_threshold
     *        switches within the decay window) is migratory, and the
     *        home follows the most recent writer instead of waiting
     *        for one node to dominate the access counts.
     * @param switch_threshold Writer switches that classify a page as
     *        migratory under the last-writer policy.
     * @param ping_pong_limit Adaptive fallback: once a page's
     *        migration epoch reaches this limit, further migrations
     *        are suppressed and the page is pinned at its current
     *        home (0 = no cap).
     * @param npages Pages of the shared arena; sizes the lock-free
     *        snapshot index for optimistic home reads (0 disables the
     *        index — snapshotState() then always misses).
     */
    PageHomeTable(int nprocs, NodeId self,
                  std::uint32_t migrate_threshold,
                  std::uint32_t decay_window = 0,
                  bool last_writer_policy = false,
                  std::uint32_t switch_threshold = 3,
                  std::uint32_t ping_pong_limit = 0,
                  std::size_t npages = 0)
        : nprocs_(nprocs), self_(self),
          migrateThreshold(migrate_threshold),
          decayWindow(decay_window),
          lastWriterPolicy(last_writer_policy),
          switchThreshold(switch_threshold),
          pingPongLimit(ping_pong_limit),
          snapshotIndex(npages)
    {}

    /** Current home of @p page: round-robin unless migrated. */
    NodeId
    homeOf(PageId page) const
    {
        auto it = overrides.find(page);
        if (it != overrides.end())
            return it->second.home;
        return static_cast<NodeId>(page % nprocs_);
    }

    bool isHome(PageId page) const { return homeOf(page) == self_; }

    /** Migration count under which the current mapping was installed
     *  (0 = the original round-robin assignment). */
    std::uint32_t
    epochOf(PageId page) const
    {
        auto it = overrides.find(page);
        return it == overrides.end() ? 0 : it->second.epoch;
    }

    /**
     * Record a migration. Broadcasts of successive migrations of one
     * page can arrive in either order, so each carries the page's
     * migration epoch and only a strictly newer one applies — a stale
     * notice must never regress the mapping (the current home would
     * stop believing it is the home and every flush/request for the
     * page would bounce forever). Returns false when @p epoch is
     * stale.
     */
    bool
    setHome(PageId page, NodeId home, std::uint32_t epoch)
    {
        auto [it, inserted] = overrides.try_emplace(page);
        if (!inserted && epoch <= it->second.epoch)
            return false;
        it->second = {home, epoch};
        return true;
    }

    /** Home-side per-page state; exists only at the current home. */
    struct HomeState
    {
        /** Newest interval of each processor applied to the copy. */
        VectorTime appliedVt;
        /** Vector-sum stamp of the last write applied to each word. */
        std::vector<std::uint64_t> wordSums;
        /** Remote accesses (flushes + fetches) per node, decayed in
         *  epoch windows (see countAccess). */
        std::vector<std::uint32_t> accessCounts;
        /** Accesses since the counters were last halved. */
        std::uint32_t windowAccesses = 0;
        /** Writer of the last flush applied here (the home itself for
         *  local interval closes); -1 before the first write. */
        int lastWriter = -1;
        /** Writer changes observed, decayed with the epoch window —
         *  the migratory-sharing classifier of the last-writer
         *  policy (single writer per interval by construction: each
         *  flush is one writer's interval). */
        std::uint32_t writerSwitches = 0;
        /**
         * Optimistic-read version footer: one seqlock word per
         * kOptLineBytes cacheline of the page. Guarded flush
         * application brackets its stores with an odd/even bump of
         * every touched line, so a lock-free snapshot that reads all
         * lines even and unchanged across its copy observed no
         * mid-flight flush (the FaRM consistency argument). Version
         * words are not checkpointed: a restore rebuilds them zeroed
         * (all even), which only widens the first post-restore
         * snapshot's view of "unchanged".
         */
        std::unique_ptr<std::atomic<std::uint32_t>[]> lineVersions;
        std::uint32_t numLines = 0;

        void
        sizeLineVersions(std::uint32_t page_words)
        {
            numLines = (page_words * Diff::kWordBytes + kOptLineBytes -
                        1) / kOptLineBytes;
            lineVersions =
                std::make_unique<std::atomic<std::uint32_t>[]>(numLines);
            for (std::uint32_t l = 0; l < numLines; ++l)
                lineVersions[l].store(0, std::memory_order_relaxed);
        }
    };

    /** State of a locally homed @p page, created on first use with
     *  @p page_words zeroed word sums. */
    HomeState &
    state(PageId page, std::uint32_t page_words)
    {
        auto [it, inserted] = states.try_emplace(page);
        if (inserted) {
            it->second.appliedVt = VectorTime(nprocs_);
            it->second.wordSums.assign(page_words, 0);
            it->second.accessCounts.assign(nprocs_, 0);
            it->second.sizeLineVersions(page_words);
            // Publish only after the fields above are sized: the
            // service thread reads through the index without the home
            // lock (map nodes are pointer-stable, so a concurrent
            // rehash by another inserter cannot move the state).
            publishState(page, &it->second);
        }
        return it->second;
    }

    HomeState *
    find(PageId page)
    {
        auto it = states.find(page);
        return it == states.end() ? nullptr : &it->second;
    }

    /**
     * Lock-free lookup for the optimistic snapshot path (service
     * thread only; insertions by application threads holding the
     * protocol locks publish through the same atomic slot). Null when
     * the page has no local home state or the index is unsized.
     */
    HomeState *
    snapshotState(PageId page)
    {
        if (page >= snapshotIndex.size())
            return nullptr;
        return snapshotIndex[page].load(std::memory_order_acquire);
    }

    /** Forget the home-side state after migrating @p page away. */
    void
    drop(PageId page)
    {
        publishState(page, nullptr);
        states.erase(page);
    }

    /**
     * Count an access to a locally homed page. Returns true when
     * @p node crossed the migration threshold and the home should move
     * there (never fires for local accesses or threshold 0).
     *
     * Epoch-windowed decay: every decayWindow accesses (local ones
     * included — they are evidence the current placement serves
     * someone) all per-node counts are halved, so a node must sustain
     * its dominance in the recent window to trigger a migration; a
     * burst long ago decays away instead of firing a migration on
     * stale history.
     */
    bool
    countAccess(HomeState &hs, NodeId node)
    {
        if (decayWindow > 0 && ++hs.windowAccesses >= decayWindow) {
            hs.windowAccesses = 0;
            for (std::uint32_t &count : hs.accessCounts)
                count /= 2;
            hs.writerSwitches /= 2; // same recency discipline
        }
        if (node == self_)
            return false;
        const std::uint32_t count = ++hs.accessCounts[node];
        return migrateThreshold > 0 && count >= migrateThreshold;
    }

    /**
     * Record that @p writer's interval was applied to a locally homed
     * page (a remote flush, or the home's own interval close).
     * Returns true when the migrate-to-last-writer policy says the
     * home should follow @p writer: the page's flushes keep switching
     * writers — the migratory pattern (task queues, lock-protected
     * records) where the statically or access-count-homed page makes
     * every hand-off pay a flush plus a fetch round trip against a
     * third party. Never fires for the home's own writes or with the
     * policy off; callers must additionally honor migrationAllowed().
     */
    bool
    countFlushWriter(HomeState &hs, NodeId writer)
    {
        if (!lastWriterPolicy)
            return false;
        if (hs.lastWriter >= 0 &&
            hs.lastWriter != static_cast<int>(writer)) {
            ++hs.writerSwitches;
        }
        hs.lastWriter = static_cast<int>(writer);
        return writer != self_ && hs.writerSwitches >= switchThreshold;
    }

    /**
     * Adaptive ping-pong fallback: false once @p page's migration
     * epoch has reached the cap — the page is pinned at its current
     * home, turning an endless follow-the-writer chase into a stable
     * static-home pattern.
     */
    bool
    migrationAllowed(PageId page) const
    {
        return pingPongLimit == 0 || epochOf(page) < pingPongLimit;
    }

    std::size_t numHomedStates() const { return states.size(); }

    /** Checkpoint support: capture / rebuild the migration overrides
     *  and the home-side per-page states (policy knobs are not
     *  serialized — they are reconstructed from configuration). */
    void serialize(WireWriter &w) const;
    void restoreFrom(WireReader &r);

    /** Chaos kill: drop all mappings and home states, keeping the
     *  policy knobs (they come from configuration, not the wire). */
    void clearForRecovery()
    {
        for (auto &slot : snapshotIndex)
            slot.store(nullptr, std::memory_order_relaxed);
        overrides.clear();
        states.clear();
    }

  private:
    void
    publishState(PageId page, HomeState *hs)
    {
        if (page < snapshotIndex.size())
            snapshotIndex[page].store(hs, std::memory_order_release);
    }
    struct Mapping
    {
        NodeId home = 0;
        std::uint32_t epoch = 0;
    };

    int nprocs_ = 1;
    NodeId self_ = 0;
    std::uint32_t migrateThreshold = 0;
    std::uint32_t decayWindow = 0;
    bool lastWriterPolicy = false;
    std::uint32_t switchThreshold = 3;
    std::uint32_t pingPongLimit = 0;
    std::unordered_map<PageId, Mapping> overrides;
    std::unordered_map<PageId, HomeState> states;
    /** page -> its HomeState, atomically published for the lock-free
     *  snapshot path (empty when the table was sized without pages). */
    std::vector<std::atomic<HomeState *>> snapshotIndex;
};

/**
 * Apply @p diff onto @p dst, overwriting each word only when
 * @p vt_sum >= the word's entry in @p word_sums (which is then raised
 * to @p vt_sum). Makes home-side application insensitive to the
 * arrival order of causally ordered flushes: the later interval's
 * vector dominates the earlier's, so its sum is strictly larger and a
 * late-arriving older diff cannot overwrite a newer word.
 *
 * @param shadow When non-null, every word written to @p dst is also
 *        written there. The home passes its open twin of the page:
 *        otherwise its next cur-vs-twin diff would claim the remote
 *        writer's words as its own and stamp them with its own
 *        (concurrent, possibly larger) sum, making the guard reject a
 *        causally later flush of those words. Words where @p dst and
 *        @p shadow already differ are skipped outright: the open
 *        interval has locally rewritten them, and in a data-race-free
 *        program that write is causally newer than any flush the home
 *        can receive for the word (the overlap arises when the node's
 *        own pre-migration flushes chase the home role back to it —
 *        overwriting would erase the local write from both copies and
 *        from the next diff).
 * @param line_versions When non-null, the page's optimistic-read
 *        version footer (HomeState::lineVersions): every run's stores
 *        are bracketed by an odd/even seqlock bump of the touched
 *        lines and the data bytes are written with relaxed atomic
 *        stores, so a concurrent lock-free snapshot either validates
 *        a consistent copy or detects the tear and retries.
 * @return Number of words written.
 */
std::uint64_t
applyDiffGuarded(std::byte *dst, std::vector<std::uint64_t> &word_sums,
                 const Diff &diff, std::uint64_t vt_sum,
                 NodeStats *stats = nullptr, std::byte *shadow = nullptr,
                 std::atomic<std::uint32_t> *line_versions = nullptr);

/**
 * Raise @p word_sums to @p vt_sum for every word of @p len bytes that
 * differs between @p cur and @p twin — the home stamps its own
 * in-place writes this way (its copy already holds them), without
 * materializing a diff payload just to read the run offsets.
 *
 * @param kernel Comparison scan kernel (matches DiffScan::kernel).
 * @return Number of words stamped.
 */
std::uint64_t stampChangedWordSums(std::vector<std::uint64_t> &word_sums,
                                   const std::byte *cur,
                                   const std::byte *twin,
                                   std::uint32_t len,
                                   std::uint64_t vt_sum,
                                   ScanKernel kernel);

} // namespace dsm

#endif // DSM_CORE_PAGE_HOME_HH
