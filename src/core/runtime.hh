/**
 * @file
 * The public DSM programming interface shared by the EC and LRC
 * runtimes: symmetric shared allocation, lock acquire/release,
 * barriers, and the typed access layer through which applications read
 * and write shared memory.
 *
 * The access layer substitutes for two mechanisms of the original
 * systems at once (see DESIGN.md):
 *  - compiler instrumentation: write<T>() executes the dirty-bit code
 *    a modified gcc would have emitted after each shared store;
 *  - the VM system: each access checks the software page table and
 *    triggers the protocol fault handler exactly where mprotect +
 *    SIGSEGV would have.
 *
 * writeBuf()/readBuf() are the "loop-split" bulk forms (Section 4.1's
 * instrumentation optimization): one trap covers a whole range.
 */

#ifndef DSM_CORE_RUNTIME_HH
#define DSM_CORE_RUNTIME_HH

#include <cstring>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "core/config.hh"
#include "core/node_locks.hh"
#include "mem/region_table.hh"
#include "mem/shared_arena.hh"
#include "net/endpoint.hh"
#include "sync/barrier_service.hh"
#include "sync/lock_service.hh"

namespace dsm {

class CheckpointCoordinator;
class FailureDetector;

class Runtime
{
  public:
    /** Wiring of one node's per-node services. */
    struct Deps
    {
        NodeId self = 0;
        int nprocs = 1;
        int threadsPerNode = 1;
        SharedArena *arena = nullptr;
        Endpoint *endpoint = nullptr;
        LockService *locks = nullptr;
        BarrierService *barriers = nullptr;
        RegionTable *regions = nullptr;
        NodeLocks *nodeLocks = nullptr;
        const ClusterConfig *cluster = nullptr;
    };

    explicit Runtime(const Deps &deps);
    virtual ~Runtime() = default;

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * Allocate shared memory. All nodes must perform identical
     * allocation sequences (SPMD), so the returned GlobalAddr is valid
     * cluster-wide.
     *
     * @param block_size Granularity of write trapping for this region
     *        (4 or 8 bytes; 8 models double-word compiler
     *        instrumentation as used by Water and 3D-FFT).
     */
    GlobalAddr sharedAlloc(std::size_t bytes, std::size_t align = 8,
                           std::uint32_t block_size = 4,
                           const std::string &name = "");

    /**
     * EC only: associate @p lock with shared data (possibly several
     * non-contiguous ranges, as 3D-FFT requires). Must be called
     * identically on every node before the lock is used.
     */
    virtual void bindLock(LockId lock, std::vector<Range> ranges) = 0;

    /**
     * EC only: change a lock's binding (task queues, memory re-use).
     * Caller must hold @p lock in Write mode. The next transfer
     * conservatively carries all bound data (Section 7.1, Rebinding).
     */
    virtual void rebindLock(LockId lock, std::vector<Range> ranges) = 0;

    /** Acquire @p lock. Read mode = EC read-only lock. */
    void acquire(LockId lock, AccessMode mode = AccessMode::Write);

    /**
     * Acquire @p lock exclusively with the declared intent to rebind
     * it: the grant transfers ownership but carries no data update
     * (the old binding's data is about to become meaningless, and
     * applying it could overwrite live memory under the new use of
     * the region). EC only; LRC treats it as a plain acquire.
     */
    virtual void acquireForRebind(LockId lock) { acquire(lock); }

    void release(LockId lock);

    void barrier(BarrierId barrier);

    /** Typed shared-memory read. */
    template <typename T>
    T
    read(GlobalAddr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        doRead(addr, &v, sizeof(T));
        return v;
    }

    /** Typed shared-memory write (one instrumented store). */
    template <typename T>
    void
    write(GlobalAddr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        doWrite(addr, &v, sizeof(T), false);
    }

    /** Bulk read of @p n elements. */
    template <typename T>
    void
    readBuf(GlobalAddr addr, T *dst, std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        doRead(addr, dst, n * sizeof(T));
    }

    /** Bulk write of @p n elements (split-loop instrumentation). */
    template <typename T>
    void
    writeBuf(GlobalAddr addr, const T *src, std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        doWrite(addr, src, n * sizeof(T), true);
    }

    /**
     * SPMD-identical initialization of shared data *before the first
     * synchronization*: writes the local copy directly with no write
     * trapping and no communication. This is the initialized-data-
     * segment idiom of the original systems — every node computes the
     * same initial image, so all copies stay consistent.
     */
    template <typename T>
    void
    initBuf(GlobalAddr addr, const T *src, std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        initRaw(addr, src, n * sizeof(T));
    }

    template <typename T>
    void
    initWrite(GlobalAddr addr, const T &v)
    {
        initBuf(addr, &v, 1);
    }

    /**
     * Charge @p units of application work to the virtual clock (one
     * unit ~ one inner-loop iteration on the modeled 40-MHz CPU).
     */
    void chargeWork(std::uint64_t units);

    /**
     * Back off inside an app-level empty-poll loop (a task-queue scan
     * that found nothing). Always charges the historical 400-unit
     * polling backoff to the virtual clock, so modeled time is knob-
     * independent. With DSM_BLOCKING_DEQ armed it additionally parks
     * the calling worker on the endpoint's activity futex after an
     * adaptive spin — wall-clock leaves the poll loop instead of
     * burning it, which is what collapses the QS message-count spread
     * (every wasted poll can steal a core from the service thread and
     * perturb message interleavings).
     */
    void pollIdle();

    NodeId self() const { return id; }
    int nprocs() const { return numProcs; }

    /**
     * SPMD worker identity: with SMP nodes (threadsPerNode T > 1) the
     * applications partition over workers, not nodes. Worker w =
     * node * T + threadId; at T == 1 worker() == self() and
     * nworkers() == nprocs(), so single-thread programs are unchanged.
     */
    int
    worker() const
    {
        ThreadContext *ctx = ThreadContext::current();
        return ctx ? ctx->worker : id;
    }

    /** Total SPMD workers in the cluster: nprocs * threadsPerNode. */
    int nworkers() const { return numProcs * threadsT; }

    /** Node-local thread id of the calling worker (0 at T == 1). */
    int
    threadId() const
    {
        ThreadContext *ctx = ThreadContext::current();
        return ctx ? ctx->threadId : 0;
    }

    /** Application threads per node. */
    int threadsPerNode() const { return threadsT; }

    /** The node's lock service (test introspection). */
    LockService &lockService() { return *locks; }

    NodeStats &stats() { return ep->stats(); }
    VirtualClock &clock() { return ep->clock(); }
    const CostModel &costModel() const { return ep->costModel(); }
    SharedArena &sharedArena() { return *arena; }
    const ClusterConfig &clusterConfig() const { return *cluster; }

    /** Paper-style configuration name (EC-ci, LRC-diff, ...). */
    virtual std::string name() const = 0;

    /** Current length of the SPMD allocation log (Cluster::run seeds
     *  each worker's ThreadContext::allocCursor with it, so threads
     *  skip allocations performed before the run started). */
    std::uint32_t
    allocLogSize()
    {
        std::lock_guard<std::mutex> g(allocMu);
        return static_cast<std::uint32_t>(allocLog.size());
    }

    /** Service-thread dispatch for runtime-specific messages
     *  (LRC diff/timestamp fetches). */
    virtual void handleMessage(Message &msg);

    /**
     * Install the coordinated-checkpoint hook (core/checkpoint.hh).
     * When set, every barrier() first runs the checkpoint rendezvous —
     * the natural consistent cut of these protocols — before the
     * protocol's own pre-barrier work. Null (the default) leaves
     * barrier() exactly on the historical path.
     */
    void setCheckpoint(CheckpointCoordinator *coordinator)
    {
        ckptCoord = coordinator;
    }

    /**
     * Install the cluster's failure detector (may be null). A runtime
     * with a detector can take typed-degradation paths on blocking
     * fetches — LRC re-hosts pages homed at a down node from its
     * persisted checkpoint frontier instead of waiting out the
     * outage.
     */
    void setFailureDetector(FailureDetector *fd) { detector = fd; }

    /**
     * Declare the caller's intent to write [addr, addr + bytes)
     * inside the critical section just entered: the pages are
     * advertised to the *next* synchronization partner immediately,
     * instead of being discovered one interval late from the diffs.
     * Closes the first-contact window of adaptive gap coalescing — a
     * page's first concurrently-written interval is already known to
     * overlap, so its diff runs stay word-exact from the start. A
     * no-op for EC and for configurations that never coalesce
     * (homeless LRC with diffGapWords == 0, home mode).
     */
    virtual void declareWriteIntent(GlobalAddr, std::size_t) {}

    /**
     * Snapshot serialization, invoked at a barrier cut with the node's
     * service thread stopped and all application threads parked at the
     * checkpoint rendezvous (so no protocol state is in motion and
     * service-thread-owned structures are safe to read). The base
     * captures what every protocol shares — the arena image and the
     * SPMD allocation log; derived runtimes append their protocol
     * state and must call the base first, in both directions.
     */
    virtual void serialize(WireWriter &w) const;
    virtual void restoreFrom(WireReader &r);

    /**
     * Chaos kill: destroy this node's protocol state before a
     * restoreFrom, so the recovery test proves the snapshot — not
     * surviving memory — rebuilt the node. The base scribbles the
     * arena image and drops the allocation log.
     */
    virtual void wipeForRecovery();

    /**
     * The node's logical-time frontier at a cut, recorded in the
     * checkpoint manifest. LRC reports its vector time; EC has no
     * vector clock (consistency rides on lock incarnations), so the
     * base returns empty.
     */
    virtual std::vector<std::uint32_t> vectorFrontier() const
    {
        return {};
    }

  protected:
    /**
     * Hook run on the application thread just before joining a
     * barrier, outside any runtime lock — the place for blocking
     * protocol work that must precede the arrival message (LRC uses it
     * to validate pages ahead of barrier-time garbage collection).
     */
    virtual void preBarrier() {}

    /**
     * Access-layer hook: perform a shared read of @p size bytes into
     * @p dst, running any consistency actions (LRC access-miss
     * fetches) first. The implementation owns all locking.
     */
    virtual void doRead(GlobalAddr addr, void *dst, std::size_t size) = 0;

    /**
     * Access-layer hook: perform a shared write, running write
     * trapping (dirty bits, twin faults) and the copy atomically with
     * respect to the service thread. @p bulk marks writeBuf
     * (split-loop instrumentation).
     */
    virtual void doWrite(GlobalAddr addr, const void *src,
                         std::size_t size, bool bulk) = 0;

    /**
     * The untrapped initialization store behind initBuf/initWrite:
     * every thread of a node executes the same SPMD init sequence, so
     * the copies are serialized per page (memory shard locks) and the
     * repeats rewrite identical bytes.
     */
    void initRaw(GlobalAddr addr, const void *src, std::size_t size);

    NodeId id;
    int numProcs;
    int threadsT;
    SharedArena *arena;
    Endpoint *ep;
    LockService *locks;
    BarrierService *barriers;
    RegionTable *regions;
    NodeLocks *nl;
    const ClusterConfig *cluster;
    /** Cluster failure detector; null = no liveness tracking. */
    FailureDetector *detector = nullptr;

  private:
    /**
     * SPMD allocation log: all threads of a node perform identical
     * sharedAlloc sequences; the first to reach position i performs
     * the allocation, later threads replay the logged address (their
     * position lives in ThreadContext::allocCursor). Threads without a
     * context append directly, which is the T == 1 behavior.
     */
    mutable std::mutex allocMu;
    std::vector<GlobalAddr> allocLog;

    /** Coordinated-checkpoint hook; null = checkpointing off. */
    CheckpointCoordinator *ckptCoord = nullptr;
};

} // namespace dsm

#endif // DSM_CORE_RUNTIME_HH
