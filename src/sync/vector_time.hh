/**
 * @file
 * Vector of interval indices, one entry per processor (Section 5.1 of
 * the paper). Entry p of the vector for an interval of processor q
 * names the most recent interval of p that precedes it in the partial
 * order. (The paper avoids the term "vector timestamp" to prevent
 * confusion with per-block timestamps; we follow suit.)
 */

#ifndef DSM_SYNC_VECTOR_TIME_HH
#define DSM_SYNC_VECTOR_TIME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/serde.hh"
#include "util/types.hh"

namespace dsm {

class VectorTime
{
  public:
    VectorTime() = default;

    explicit VectorTime(int nprocs) : v(nprocs, 0) {}

    int size() const { return static_cast<int>(v.size()); }

    std::uint32_t
    operator[](int proc) const
    {
        return v[proc];
    }

    std::uint32_t &
    operator[](int proc)
    {
        return v[proc];
    }

    /** Pairwise maximum with @p other (the acquire merge rule). */
    void mergeMax(const VectorTime &other);

    /** True when this >= other pointwise. */
    bool dominates(const VectorTime &other) const;

    /**
     * Sum of entries. If interval A happens-before interval B then
     * sum(A.vt) < sum(B.vt), so sorting by sum yields a valid linear
     * extension of the happens-before partial order — used to order
     * diff application.
     */
    std::uint64_t sum() const;

    void encode(WireWriter &w) const;
    static VectorTime decode(WireReader &r);

    std::string toString() const;

    bool operator==(const VectorTime &other) const = default;

  private:
    std::vector<std::uint32_t> v;
};

} // namespace dsm

#endif // DSM_SYNC_VECTOR_TIME_HH
