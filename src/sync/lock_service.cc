#include "sync/lock_service.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dsm {

LockService::LockService(Endpoint &endpoint, int threads_per_node,
                         int local_handoff_bound, bool adaptive_fairness)
    : ep(endpoint), threadsPerNode(threads_per_node),
      handoffBound(local_handoff_bound),
      adaptiveFairness(adaptive_fairness)
{
    DSM_ASSERT(threadsPerNode >= 1, "bad threadsPerNode %d",
               threads_per_node);
    DSM_ASSERT(handoffBound >= 0, "bad lock fairness bound %d",
               local_handoff_bound);
}

void
LockService::setHooks(LockHooks h)
{
    hooks = std::move(h);
}

int
LockService::selfThread()
{
    ThreadContext *ctx = ThreadContext::current();
    return ctx ? ctx->threadId : LockService::kExternalThread;
}

LockService::LockLocal &
LockService::localState(LockId lock)
{
    auto [it, inserted] = locks.try_emplace(lock);
    if (inserted) {
        // The manager initially owns every lock it manages.
        it->second.owned = isManager(lock);
        if (adaptiveFairness) {
            it->second.bound = handoffBound > 0
                                   ? static_cast<std::uint32_t>(
                                         handoffBound)
                                   : kAdaptiveBoundSeed;
        }
    }
    return it->second;
}

std::uint32_t
LockService::currentFairnessBound(LockId lock) const
{
    std::lock_guard<std::mutex> g(mu);
    auto it = locks.find(lock);
    if (it == locks.end()) {
        return adaptiveFairness
                   ? (handoffBound > 0
                          ? static_cast<std::uint32_t>(handoffBound)
                          : kAdaptiveBoundSeed)
                   : static_cast<std::uint32_t>(handoffBound);
    }
    return effectiveBound(it->second);
}

bool
LockService::holds(LockId lock) const
{
    std::lock_guard<std::mutex> g(mu);
    auto it = locks.find(lock);
    return it != locks.end() &&
           (it->second.writeHolder != kNoHolder ||
            it->second.readHolders > 0);
}

bool
LockService::holdsExclusively(LockId lock) const
{
    std::lock_guard<std::mutex> g(mu);
    auto it = locks.find(lock);
    return it != locks.end() && it->second.writeHolder == selfThread();
}

int
LockService::localWaiterCount(LockId lock) const
{
    std::lock_guard<std::mutex> g(mu);
    auto it = locks.find(lock);
    return it == locks.end() ? 0 : it->second.localWaiters;
}

std::size_t
LockService::pendingRemoteCount(LockId lock) const
{
    std::lock_guard<std::mutex> g(mu);
    auto it = locks.find(lock);
    return it == locks.end() ? 0 : it->second.pending.size();
}

void
LockService::acquire(LockId lock, AccessMode mode)
{
    std::vector<std::byte> info;
    {
        std::unique_lock<std::mutex> g(mu);
        LockLocal &state = localState(lock);
        const int me = selfThread();
        if (threadsPerNode == 1) {
            // The one-app-thread assert of the historical system.
            DSM_ASSERT(state.writeHolder == LockService::kNoHolder &&
                           state.readHolders == 0,
                       "recursive acquire of lock %u", lock);
        } else {
            DSM_ASSERT(state.writeHolder != me,
                       "recursive acquire of lock %u", lock);
        }

        bool waited = false;
        for (;;) {
            // Read holds do NOT exclude sibling writers: an EC read
            // lock is a consistency-transfer grant, not mutual
            // exclusion (reader/writer exclusion across phases comes
            // from barriers — the owner node writes while remote
            // readers hold cached copies, and the paper's programs
            // are phase-separated). A local read hold mirrors a
            // remote cached copy, so a sibling's write acquire must
            // not wait on it — only on another writer (and reads wait
            // for the writer's release, exactly like a remote read
            // request queued at a write-holding owner).
            const bool available = state.writeHolder == LockService::kNoHolder &&
                                   !state.fetching;
            if (available) {
                const bool local = mode == AccessMode::Write
                                       ? state.owned
                                       : (state.owned ||
                                          state.readCached);
                if (!local)
                    break; // remote acquisition

                // Local reacquire: the owner's copy of the associated
                // data is current, and a cached read grant is valid
                // until the next barrier; no messages (Midway/
                // TreadMarks fast path). When we parked behind a
                // sibling thread first, this completes an intra-node
                // hand-off: the transfer never touched the network.
                if (mode == AccessMode::Write)
                    state.writeHolder = me;
                else
                    state.readHolders++;
                // Every local grant at the *owner* — a hand-off to a
                // parked waiter or a fast-path reacquire barging past
                // one — extends the run the fairness bound caps: both
                // keep a queued remote requester waiting. Cached-read
                // reacquires at a non-owner are not counted: the
                // pending queue lives at the owner, so nobody can be
                // waiting here.
                if (state.owned) {
                    state.localHandoffRun++;
                    ep.stats().maxLocalHandoffRun =
                        std::max<std::uint64_t>(
                            ep.stats().maxLocalHandoffRun,
                            state.localHandoffRun);
                }
                if (waited) {
                    // Served locally after parking: either a sibling's
                    // release handed the lock over or a sibling's
                    // completed remote fetch is being shared. Order
                    // our clock past that transfer point; no message
                    // was sent either way.
                    ep.stats().intraNodeLockHandoffs++;
                    ep.clock().advanceTo(state.lastTransferNs);
                    ep.clock().add(ep.costModel().lockHandlingNs);
                }
                ep.stats().localLockHits++;
                if (mode == AccessMode::Write)
                    ep.stats().locksAcquired++;
                else
                    ep.stats().roLocksAcquired++;
                if (hooks.onAcquired)
                    hooks.onAcquired(lock, mode);
                return;
            }
            state.localWaiters++;
            waited = true;
            cv.wait(g);
            state.localWaiters--;
        }

        // At most one in-flight remote acquisition per lock: siblings
        // that miss while we fetch park above and take the lock by
        // local hand-off afterwards.
        state.fetching = true;
        if (hooks.makeRequest)
            info = hooks.makeRequest(lock, mode);
    }

    WireWriter w;
    w.putU32(lock);
    w.putU8(static_cast<std::uint8_t>(mode));
    w.putBlob(info);
    Message reply = ep.call(managerOf(lock), MsgType::LockRequest,
                            w.take());
    ep.clock().add(ep.costModel().lockHandlingNs);

    {
        std::lock_guard<std::mutex> g(mu);
        WireReader r(reply.payload);
        LockId granted = r.getU32();
        auto granted_mode = static_cast<AccessMode>(r.getU8());
        DSM_ASSERT(granted == lock && granted_mode == mode,
                   "grant does not match request");
        if (hooks.applyGrant)
            hooks.applyGrant(lock, mode, r);
        LockLocal &state = localState(lock);
        state.fetching = false;
        state.localHandoffRun = 0; // run restarts at a network grant
        if (mode == AccessMode::Write) {
            state.owned = true;
            state.writeHolder = selfThread();
            ep.stats().locksAcquired++;
        } else {
            state.readCached = true;
            state.readHolders++;
            ep.stats().roLocksAcquired++;
        }
        if (hooks.onAcquired)
            hooks.onAcquired(lock, mode);
        // Parked siblings resume from the grant's arrival, not from a
        // stale (or zero) release stamp.
        state.lastTransferNs = ep.clock().now();
    }
    cv.notify_all();
}

void
LockService::release(LockId lock)
{
    {
        std::lock_guard<std::mutex> g(mu);
        LockLocal &state = localState(lock);
        const int me = selfThread();
        if (state.writeHolder == me) {
            state.writeHolder = LockService::kNoHolder;
        } else {
            DSM_ASSERT(state.readHolders > 0,
                       "release of unheld lock %u", lock);
            state.readHolders--;
        }
        state.lastTransferNs = ep.clock().now();
        const bool free_now =
            state.writeHolder == LockService::kNoHolder &&
            state.readHolders == 0;
        const std::uint32_t bound = effectiveBound(state);
        if (state.localWaiters > 0) {
            // Local waiters win: the lock stays on the node and the
            // next holder takes it without a message. Queued remote
            // requests drain at the first release with no local
            // contention — unless the fairness bound says k
            // consecutive hand-offs have already run, in which case a
            // pending remote requester is served first (ownership
            // leaves; the woken waiters fall back to a remote
            // acquisition through the manager).
            if (bound > 0 && free_now && state.owned &&
                !state.pending.empty() &&
                state.localHandoffRun >= bound) {
                ep.stats().remoteHandoffsForced++;
                if (adaptiveFairness) {
                    // The bound bit: this lock's local appetite is
                    // starving remotes — tighten it.
                    state.bound =
                        std::max<std::uint32_t>(1, state.bound / 2);
                    ep.stats().fairnessBoundShrinks++;
                }
                state.localHandoffRun = 0;
                drainPending(lock, state);
            }
            cv.notify_all();
        } else if (free_now && state.owned) {
            // The run of intra-node hand-offs ends when a release
            // finds no local taker. A run that completed with no
            // remote request ever queued is evidence the bound is too
            // tight for this lock's sharing pattern — let it grow.
            if (adaptiveFairness && state.pending.empty() &&
                state.localHandoffRun > 0 &&
                state.bound < kAdaptiveBoundMax) {
                state.bound = std::min<std::uint32_t>(
                    kAdaptiveBoundMax, state.bound * 2);
                ep.stats().fairnessBoundGrows++;
            }
            state.localHandoffRun = 0;
            drainPending(lock, state);
        }
    }
    // App-level blocking dequeues (Runtime::pollIdle) may be parked
    // waiting for exactly the state this release published.
    ep.bumpActivity();
}

void
LockService::grantNow(LockId lock, LockLocal &state, const Forward &fwd)
{
    DSM_ASSERT(fwd.origin != ep.self(), "self-grant");
    std::vector<std::byte> payload;
    if (hooks.makeGrant) {
        WireReader rinfo(fwd.requestInfo);
        payload = hooks.makeGrant(lock, fwd.mode, fwd.origin, rinfo);
    }
    WireWriter w;
    w.putU32(lock);
    w.putU8(static_cast<std::uint8_t>(fwd.mode));
    w.putBytes(payload.data(), payload.size());
    if (fwd.mode == AccessMode::Write)
        state.owned = false;
    ep.clock().add(ep.costModel().lockHandlingNs);
    ep.reply(fwd.origin, MsgType::LockGrant, w.take(), fwd.token);
}

void
LockService::drainPending(LockId lock, LockLocal &state)
{
    while (!state.pending.empty()) {
        Forward fwd = std::move(state.pending.front());
        state.pending.pop_front();
        grantNow(lock, state, fwd);
        if (fwd.mode == AccessMode::Write) {
            // Ownership moved; later forwards are chained to the new
            // owner by the manager, never to us (FIFO channels make
            // anything still queued here a protocol bug).
            DSM_ASSERT(state.pending.empty(),
                       "forwards queued behind an exclusive transfer");
            break;
        }
    }
}

void
LockService::clearReadCaches()
{
    std::lock_guard<std::mutex> g(mu);
    for (auto &[lock, state] : locks)
        state.readCached = false;
}

void
LockService::handleMessage(Message &msg)
{
    switch (msg.type) {
      case MsgType::LockRequest:
        handleRequest(msg);
        break;
      case MsgType::LockForward:
        handleForward(msg);
        break;
      default:
        panic("lock service got %s", toString(msg.type));
    }
}

void
LockService::handleRequest(Message &msg)
{
    WireReader r(msg.payload);
    LockId lock = r.getU32();
    auto mode = static_cast<AccessMode>(r.getU8());
    std::vector<std::byte> info = r.getBlob();

    std::lock_guard<std::mutex> g(mu);
    DSM_ASSERT(isManager(lock), "lock request at non-manager");
    ep.clock().add(ep.costModel().lockHandlingNs);
    ep.stats().lockForwards++;

    auto [it, inserted] = managed.try_emplace(lock);
    if (inserted)
        it->second.lastOwner = ep.self();
    NodeId target = it->second.lastOwner;
    if (mode == AccessMode::Write)
        it->second.lastOwner = msg.src;

    Forward fwd{msg.src, msg.replyToken, mode, std::move(info)};
    if (target == ep.self()) {
        LockLocal &state = localState(lock);
        if (idleForGrant(state))
            grantNow(lock, state, fwd);
        else
            state.pending.push_back(std::move(fwd));
    } else {
        // Record the forward before sending: if the target dies, the
        // recovery hook re-forwards from this last stable record.
        it->second.hasForward = true;
        it->second.forwardTarget = target;
        it->second.lastForward = fwd;
        WireWriter w;
        w.putU32(lock);
        w.putU8(static_cast<std::uint8_t>(mode));
        w.putU16(static_cast<std::uint16_t>(fwd.origin));
        w.putBlob(fwd.requestInfo);
        ep.send(target, MsgType::LockForward, w.take(), fwd.token);
    }
}

void
LockService::onPeerRecovered(NodeId peer)
{
    std::lock_guard<std::mutex> g(mu);
    for (auto &[lock, m] : managed) {
        if (!m.hasForward || m.forwardTarget != peer)
            continue;
        // Re-grant from the last stable record: the recovered owner
        // either lost the forward with its wiped state (the replay
        // delivers it) or still has it parked/granted (its token
        // dedup window drops the duplicate).
        WireWriter w;
        w.putU32(lock);
        w.putU8(static_cast<std::uint8_t>(m.lastForward.mode));
        w.putU16(static_cast<std::uint16_t>(m.lastForward.origin));
        w.putBlob(m.lastForward.requestInfo);
        ep.send(peer, MsgType::LockForward, w.take(),
                m.lastForward.token);
        ep.stats().orphanForwardsReplayed++;
    }
}

void
LockService::handleForward(Message &msg)
{
    WireReader r(msg.payload);
    LockId lock = r.getU32();
    auto mode = static_cast<AccessMode>(r.getU8());
    NodeId origin = static_cast<NodeId>(r.getU16());
    std::vector<std::byte> info = r.getBlob();

    std::lock_guard<std::mutex> g(mu);
    ep.clock().add(ep.costModel().lockHandlingNs);
    // Token dedup: a manager's orphan replay may duplicate a forward
    // that survived the outage in our parked inbox (or was already
    // granted before the cut). Granting it twice would corrupt
    // ownership; the duplicate is dropped and the original's grant
    // (delivered or in flight) answers the origin.
    const auto key = std::make_pair(origin, msg.replyToken);
    if (std::find(forwardTokens.begin(), forwardTokens.end(), key) !=
        forwardTokens.end())
        return;
    forwardTokens.push_back(key);
    if (forwardTokens.size() > kForwardDedupWindow)
        forwardTokens.pop_front();
    Forward fwd{origin, msg.replyToken, mode, std::move(info)};
    LockLocal &state = localState(lock);
    if (idleForGrant(state))
        grantNow(lock, state, fwd);
    else
        state.pending.push_back(std::move(fwd));
}

void
LockService::serialize(WireWriter &w) const
{
    std::lock_guard<std::mutex> g(mu);
    w.putU32(static_cast<std::uint32_t>(locks.size()));
    for (const auto &[lock, s] : locks) {
        w.putU32(lock);
        w.putU8(s.owned);
        w.putU8(s.readCached);
        w.putI64(s.writeHolder);
        w.putI64(s.readHolders);
        w.putU8(s.fetching);
        w.putI64(s.localWaiters);
        w.putU32(s.localHandoffRun);
        w.putU32(s.bound);
        w.putU64(s.lastTransferNs);
        w.putU32(static_cast<std::uint32_t>(s.pending.size()));
        for (const Forward &f : s.pending) {
            w.putI64(f.origin);
            w.putU64(f.token);
            w.putU8(static_cast<std::uint8_t>(f.mode));
            w.putBlob(f.requestInfo);
        }
    }
    w.putU32(static_cast<std::uint32_t>(managed.size()));
    for (const auto &[lock, m] : managed) {
        w.putU32(lock);
        w.putI64(m.lastOwner);
        w.putU8(m.hasForward);
        w.putI64(m.forwardTarget);
        w.putI64(m.lastForward.origin);
        w.putU64(m.lastForward.token);
        w.putU8(static_cast<std::uint8_t>(m.lastForward.mode));
        w.putBlob(m.lastForward.requestInfo);
    }
    w.putU32(static_cast<std::uint32_t>(forwardTokens.size()));
    for (const auto &[origin, token] : forwardTokens) {
        w.putI64(origin);
        w.putU64(token);
    }
}

void
LockService::restoreFrom(WireReader &r)
{
    std::lock_guard<std::mutex> g(mu);
    locks.clear();
    managed.clear();
    const std::uint32_t nlocks = r.getU32();
    for (std::uint32_t i = 0; i < nlocks; ++i) {
        const LockId lock = r.getU32();
        LockLocal s;
        s.owned = r.getU8() != 0;
        s.readCached = r.getU8() != 0;
        s.writeHolder = static_cast<int>(r.getI64());
        s.readHolders = static_cast<int>(r.getI64());
        s.fetching = r.getU8() != 0;
        s.localWaiters = static_cast<int>(r.getI64());
        s.localHandoffRun = r.getU32();
        s.bound = r.getU32();
        s.lastTransferNs = r.getU64();
        const std::uint32_t npending = r.getU32();
        for (std::uint32_t p = 0; p < npending; ++p) {
            Forward f;
            f.origin = static_cast<NodeId>(r.getI64());
            f.token = r.getU64();
            f.mode = static_cast<AccessMode>(r.getU8());
            f.requestInfo = r.getBlob();
            s.pending.push_back(std::move(f));
        }
        // At a quiesced cut no thread can be mid-fetch or parked.
        DSM_ASSERT(!s.fetching && s.localWaiters == 0,
                   "snapshot of lock %u taken while in motion", lock);
        locks.emplace(lock, std::move(s));
    }
    const std::uint32_t nmanaged = r.getU32();
    for (std::uint32_t i = 0; i < nmanaged; ++i) {
        const LockId lock = r.getU32();
        ManagerState &m = managed[lock];
        m.lastOwner = static_cast<NodeId>(r.getI64());
        m.hasForward = r.getU8() != 0;
        m.forwardTarget = static_cast<NodeId>(r.getI64());
        m.lastForward.origin = static_cast<NodeId>(r.getI64());
        m.lastForward.token = r.getU64();
        m.lastForward.mode = static_cast<AccessMode>(r.getU8());
        m.lastForward.requestInfo = r.getBlob();
    }
    const std::uint32_t ntokens = r.getU32();
    forwardTokens.clear();
    for (std::uint32_t i = 0; i < ntokens; ++i) {
        const NodeId origin = static_cast<NodeId>(r.getI64());
        const std::uint64_t token = r.getU64();
        forwardTokens.emplace_back(origin, token);
    }
}

void
LockService::wipeForRecovery()
{
    std::lock_guard<std::mutex> g(mu);
    locks.clear();
    managed.clear();
    forwardTokens.clear();
}

} // namespace dsm
