#include "sync/lock_service.hh"

#include "util/logging.hh"

namespace dsm {

LockService::LockService(Endpoint &endpoint, std::mutex &node_mutex)
    : ep(endpoint), mu(node_mutex)
{}

void
LockService::setHooks(LockHooks h)
{
    hooks = std::move(h);
}

LockService::LockLocal &
LockService::localState(LockId lock)
{
    auto [it, inserted] = locks.try_emplace(lock);
    if (inserted) {
        // The manager initially owns every lock it manages.
        it->second.owned = isManager(lock);
    }
    return it->second;
}

bool
LockService::holds(LockId lock) const
{
    auto it = locks.find(lock);
    return it != locks.end() && it->second.held;
}

void
LockService::acquire(LockId lock, AccessMode mode)
{
    std::vector<std::byte> info;
    {
        std::lock_guard<std::mutex> g(mu);
        LockLocal &state = localState(lock);
        DSM_ASSERT(!state.held, "recursive acquire of lock %u", lock);
        if (state.owned ||
            (mode == AccessMode::Read && state.readCached)) {
            // Local reacquire: the owner's copy of the associated data
            // is current, and a cached read grant is valid until the
            // next barrier; no messages (Midway/TreadMarks fast path).
            state.held = true;
            state.heldMode = mode;
            ep.stats().localLockHits++;
            if (mode == AccessMode::Write)
                ep.stats().locksAcquired++;
            else
                ep.stats().roLocksAcquired++;
            if (hooks.onAcquired)
                hooks.onAcquired(lock, mode);
            return;
        }
        if (hooks.makeRequest)
            info = hooks.makeRequest(lock, mode);
    }

    WireWriter w;
    w.putU32(lock);
    w.putU8(static_cast<std::uint8_t>(mode));
    w.putBlob(info);
    Message reply = ep.call(managerOf(lock), MsgType::LockRequest,
                            w.take());
    ep.clock().add(ep.costModel().lockHandlingNs);

    {
        std::lock_guard<std::mutex> g(mu);
        WireReader r(reply.payload);
        LockId granted = r.getU32();
        auto granted_mode = static_cast<AccessMode>(r.getU8());
        DSM_ASSERT(granted == lock && granted_mode == mode,
                   "grant does not match request");
        if (hooks.applyGrant)
            hooks.applyGrant(lock, mode, r);
        LockLocal &state = localState(lock);
        state.held = true;
        state.heldMode = mode;
        if (mode == AccessMode::Write) {
            state.owned = true;
            ep.stats().locksAcquired++;
        } else {
            state.readCached = true;
            ep.stats().roLocksAcquired++;
        }
        if (hooks.onAcquired)
            hooks.onAcquired(lock, mode);
    }
}

void
LockService::release(LockId lock)
{
    std::lock_guard<std::mutex> g(mu);
    LockLocal &state = localState(lock);
    DSM_ASSERT(state.held, "release of unheld lock %u", lock);
    state.held = false;
    if (state.owned)
        drainPending(lock, state);
}

void
LockService::grantNow(LockId lock, LockLocal &state, const Forward &fwd)
{
    DSM_ASSERT(fwd.origin != ep.self(), "self-grant");
    std::vector<std::byte> payload;
    if (hooks.makeGrant) {
        WireReader rinfo(fwd.requestInfo);
        payload = hooks.makeGrant(lock, fwd.mode, fwd.origin, rinfo);
    }
    WireWriter w;
    w.putU32(lock);
    w.putU8(static_cast<std::uint8_t>(fwd.mode));
    w.putBytes(payload.data(), payload.size());
    if (fwd.mode == AccessMode::Write)
        state.owned = false;
    ep.clock().add(ep.costModel().lockHandlingNs);
    ep.reply(fwd.origin, MsgType::LockGrant, w.take(), fwd.token);
}

void
LockService::drainPending(LockId lock, LockLocal &state)
{
    while (!state.pending.empty()) {
        Forward fwd = std::move(state.pending.front());
        state.pending.pop_front();
        grantNow(lock, state, fwd);
        if (fwd.mode == AccessMode::Write) {
            // Ownership moved; later forwards are chained to the new
            // owner by the manager, never to us (FIFO channels make
            // anything still queued here a protocol bug).
            DSM_ASSERT(state.pending.empty(),
                       "forwards queued behind an exclusive transfer");
            break;
        }
    }
}

void
LockService::clearReadCaches()
{
    for (auto &[lock, state] : locks)
        state.readCached = false;
}

void
LockService::handleMessage(Message &msg)
{
    switch (msg.type) {
      case MsgType::LockRequest:
        handleRequest(msg);
        break;
      case MsgType::LockForward:
        handleForward(msg);
        break;
      default:
        panic("lock service got %s", toString(msg.type));
    }
}

void
LockService::handleRequest(Message &msg)
{
    WireReader r(msg.payload);
    LockId lock = r.getU32();
    auto mode = static_cast<AccessMode>(r.getU8());
    std::vector<std::byte> info = r.getBlob();

    std::lock_guard<std::mutex> g(mu);
    DSM_ASSERT(isManager(lock), "lock request at non-manager");
    ep.clock().add(ep.costModel().lockHandlingNs);
    ep.stats().lockForwards++;

    auto [it, inserted] = managed.try_emplace(lock);
    if (inserted)
        it->second.lastOwner = ep.self();
    NodeId target = it->second.lastOwner;
    if (mode == AccessMode::Write)
        it->second.lastOwner = msg.src;

    Forward fwd{msg.src, msg.replyToken, mode, std::move(info)};
    if (target == ep.self()) {
        LockLocal &state = localState(lock);
        if (state.owned && !state.held)
            grantNow(lock, state, fwd);
        else
            state.pending.push_back(std::move(fwd));
    } else {
        WireWriter w;
        w.putU32(lock);
        w.putU8(static_cast<std::uint8_t>(mode));
        w.putU16(static_cast<std::uint16_t>(fwd.origin));
        w.putBlob(fwd.requestInfo);
        ep.send(target, MsgType::LockForward, w.take(), fwd.token);
    }
}

void
LockService::handleForward(Message &msg)
{
    WireReader r(msg.payload);
    LockId lock = r.getU32();
    auto mode = static_cast<AccessMode>(r.getU8());
    NodeId origin = static_cast<NodeId>(r.getU16());
    std::vector<std::byte> info = r.getBlob();

    std::lock_guard<std::mutex> g(mu);
    ep.clock().add(ep.costModel().lockHandlingNs);
    Forward fwd{origin, msg.replyToken, mode, std::move(info)};
    LockLocal &state = localState(lock);
    if (state.owned && !state.held)
        grantNow(lock, state, fwd);
    else
        state.pending.push_back(std::move(fwd));
}

} // namespace dsm
