#include "sync/vector_time.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace dsm {

void
VectorTime::mergeMax(const VectorTime &other)
{
    DSM_ASSERT(size() == other.size(), "vector size mismatch");
    for (int i = 0; i < size(); ++i)
        v[i] = std::max(v[i], other.v[i]);
}

bool
VectorTime::dominates(const VectorTime &other) const
{
    DSM_ASSERT(size() == other.size(), "vector size mismatch");
    for (int i = 0; i < size(); ++i) {
        if (v[i] < other.v[i])
            return false;
    }
    return true;
}

std::uint64_t
VectorTime::sum() const
{
    std::uint64_t total = 0;
    for (std::uint32_t x : v)
        total += x;
    return total;
}

void
VectorTime::encode(WireWriter &w) const
{
    w.putU16(static_cast<std::uint16_t>(v.size()));
    for (std::uint32_t x : v)
        w.putU32(x);
}

VectorTime
VectorTime::decode(WireReader &r)
{
    VectorTime vt(r.getU16());
    for (int i = 0; i < vt.size(); ++i)
        vt.v[i] = r.getU32();
    return vt;
}

std::string
VectorTime::toString() const
{
    std::ostringstream os;
    os << "[";
    for (int i = 0; i < size(); ++i)
        os << (i ? "," : "") << v[i];
    os << "]";
    return os.str();
}

} // namespace dsm
