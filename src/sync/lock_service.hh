/**
 * @file
 * Distributed lock protocol shared by the EC and LRC runtimes, exactly
 * as Section 6 of the paper prescribes: "the location and
 * synchronization aspects of locks ... are implemented in the same
 * way, although the consistency aspects differ."
 *
 * Each lock has a statically assigned manager (round-robin by lock
 * id). A request goes to the manager, which forwards it to the
 * processor that last requested the lock; the grant travels directly
 * from that owner to the requester. Requests for held locks queue at
 * the owner and are granted on release.
 *
 * The consistency payloads (EC: incarnation numbers + data updates;
 * LRC: vectors + write notices) are produced and consumed through the
 * LockHooks callbacks supplied by the runtime.
 *
 * Read-only locks (EC) are consistency-transfer grants: the owner
 * replies with current data and retains ownership. A reader's release
 * requires no message. Writers exclude concurrently queued requests at
 * the owner; the applications in the paper access read-locked data
 * only in barrier-separated read phases, so reader/writer exclusion
 * across phases is provided by the barriers, as in the original
 * programs.
 *
 * SMP nodes (threadsPerNode > 1): the service owns its mutex (it no
 * longer shares the node's — there is no single node mutex anymore)
 * and tracks, per lock, which local thread holds it and how many
 * local read holders exist. A thread that finds the lock held by a
 * sibling parks on a local waiter queue; when the holder releases,
 * the waiter takes the lock directly — an intra-node hand-off that
 * involves no network message and no manager (counted by
 * intraNodeLockHandoffs, charged one lockHandlingNs, and ordered by
 * advancing the waiter's clock past the releaser's). Local waiters
 * win over queued remote requests so ownership is not bounced off the
 * node while its own threads still contend; the remote queue drains
 * at the first release that finds no local waiter. At most one remote
 * acquisition per (node, lock) is in flight at a time: siblings that
 * also miss wait for the fetching thread and then take the lock by
 * local hand-off — the network short-circuit the SMP refactor is
 * about. With threadsPerNode == 1 none of these paths execute and the
 * protocol behaves exactly like the historical one-app-thread
 * implementation.
 *
 * Bounded local priority (the sharing-policy layer's fairness knob,
 * Config::lockLocalHandoffBound / DSM_LOCK_FAIRNESS): pure local-first
 * hand-off can starve a queued remote requester for as long as the
 * node's own threads keep contending — EC's task-queue application
 * degrades exactly this way at threadsPerNode > 1 (remote requests for
 * the queue lock wait out entire local task batches). With a bound
 * k > 0, a release that would start the (k+1)-th consecutive local
 * grant — a hand-off to a parked waiter or a fast-path reacquire, both
 * keep the remote waiting — while a remote request is queued serves
 * the remote requester instead: ownership leaves the node, the local
 * waiters re-request through the manager, and the remote's wait is
 * capped at k local grants. Runs without a queued remote request stay
 * unbounded, so the zero-message short-circuit is untouched when
 * nobody else wants the lock. Counted by remoteHandoffsForced;
 * maxLocalHandoffRun records the longest run observed.
 */

#ifndef DSM_SYNC_LOCK_SERVICE_HH
#define DSM_SYNC_LOCK_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/endpoint.hh"
#include "net/serde.hh"

namespace dsm {

/** Consistency callbacks a runtime installs into the lock service.
 *  All hooks are invoked with the lock-service mutex held; they take
 *  the protocol locks (core, ...) they need themselves. */
struct LockHooks
{
    /** At the requester: encode request info (EC: my incarnation;
     *  LRC: my vector). */
    std::function<std::vector<std::byte>(LockId, AccessMode)> makeRequest;

    /** At the owner: consume request info, produce the grant payload
     *  (EC: data newer than the requester's incarnation; LRC: write
     *  notices). */
    std::function<std::vector<std::byte>(LockId, AccessMode, NodeId,
                                         WireReader &)>
        makeGrant;

    /** At the requester: apply the grant payload. */
    std::function<void(LockId, AccessMode, WireReader &)> applyGrant;

    /**
     * At the acquirer, after the lock is held (local fast path or
     * remote grant). EC write-trapping setup happens here: eager
     * twinning of small bound objects, write-protection of large ones.
     */
    std::function<void(LockId, AccessMode)> onAcquired;
};

class LockService
{
  public:
    /**
     * @param endpoint Communication endpoint of this node.
     * @param threads_per_node Application threads sharing this node
     *        (drives the strictness of the recursion assert and the
     *        intra-node hand-off machinery).
     * @param local_handoff_bound Bounded local priority: serve a
     *        pending remote requester after at most this many
     *        consecutive intra-node hand-offs (0 = unbounded, the
     *        pure local-first policy).
     * @param adaptive_fairness Per-lock adaptive bound
     *        (DSM_LOCK_FAIRNESS_ADAPT): each lock starts at the
     *        static bound (or 4 when none is armed), doubles while
     *        releases find no remote waiter queued (up to 64) and
     *        halves every time the bound forces a remote grant (down
     *        to 1) — EC's task queue settles high, LRC's low, without
     *        a hand-tuned global k.
     */
    explicit LockService(Endpoint &endpoint, int threads_per_node = 1,
                         int local_handoff_bound = 0,
                         bool adaptive_fairness = false);

    /** Current fairness bound of @p lock (test/bench introspection):
     *  the adaptive per-lock value when armed, else the static k. */
    std::uint32_t currentFairnessBound(LockId lock) const;

    void setHooks(LockHooks hooks);

    /**
     * Acquire @p lock in @p mode. Write acquires by the current owner
     * with no competing request complete locally without messages
     * (both Midway and TreadMarks have this fast path). Blocking; must
     * be called from an application thread.
     */
    void acquire(LockId lock, AccessMode mode);

    /** Release a held lock; hands off to local waiters first, then
     *  grants queued remote requests. */
    void release(LockId lock);

    /** True when this node is the lock's statically assigned manager. */
    bool
    isManager(LockId lock) const
    {
        return managerOf(lock) == ep.self();
    }

    NodeId
    managerOf(LockId lock) const
    {
        return static_cast<NodeId>(lock % ep.nnodes());
    }

    /** Service-thread dispatch for LockRequest/LockForward messages. */
    void handleMessage(Message &msg);

    /**
     * Orphaned-lock reclamation, run by the endpoint's recovery hook
     * when @p peer transitions down -> healthy: every managed lock
     * whose most recent forward targeted @p peer is re-forwarded with
     * the original token and request info, so a request the outage
     * orphaned is re-granted from the manager's last stable record.
     * The owner-side token dedup window makes the replay idempotent
     * when the original forward survived (parked in the inbox) after
     * all. Counted by orphanForwardsReplayed.
     */
    void onPeerRecovered(NodeId peer);

    /** True if any local application thread currently holds @p lock. */
    bool holds(LockId lock) const;

    /** True if the *calling* thread holds @p lock exclusively (the
     *  precondition of rebindLock — a sibling's hold must not
     *  satisfy it at threadsPerNode > 1). */
    bool holdsExclusively(LockId lock) const;

    /** Local threads currently parked waiting for @p lock (test
     *  introspection — lets a choreographed fairness test hold a lock
     *  until a sibling has provably parked). */
    int localWaiterCount(LockId lock) const;

    /** Remote requests queued at this owner for @p lock (test
     *  introspection). */
    std::size_t pendingRemoteCount(LockId lock) const;

    /**
     * Drop all cached read grants. Midway caches read locks at the
     * reader; our implementation revalidates them at barriers, which
     * is sufficient for the paper's applications because every one of
     * them separates write phases from read phases with barriers.
     * Takes the service mutex itself.
     */
    void clearReadCaches();

    /**
     * Checkpoint support (core/checkpoint.hh). Both run at a barrier
     * cut with the node's service thread stopped and every application
     * thread parked at the checkpoint rendezvous, so no lock state is
     * in motion; they still take the service mutex for form's sake.
     * serialize() captures ownership, cached read grants, queued
     * remote requests and the manager chain tails; restoreFrom()
     * rebuilds exactly that state on a wiped instance.
     */
    void serialize(WireWriter &w) const;
    void restoreFrom(WireReader &r);

    /** Chaos kill: drop all lock state before a restoreFrom. */
    void wipeForRecovery();

  private:
    struct Forward
    {
        NodeId origin = -1;
        std::uint64_t token = 0;
        AccessMode mode = AccessMode::Write;
        std::vector<std::byte> requestInfo;
    };

    /** writeHolder value meaning "no exclusive holder". */
    static constexpr int kNoHolder = -1;

    /** Thread id used for callers without a ThreadContext (tests
     *  driving the service from a bare thread; one per node). */
    static constexpr int kExternalThread = -2;

    struct LockLocal
    {
        bool owned = false; ///< this node holds the ownership token
        /** Read grant cached locally; valid until the next barrier. */
        bool readCached = false;
        /** Node-local thread id of the exclusive holder. */
        int writeHolder = kNoHolder;
        /** Local threads inside a read-mode acquire..release. */
        int readHolders = 0;
        /** A local thread is mid remote acquisition (at most one per
         *  lock; siblings wait and take the lock by hand-off). */
        bool fetching = false;
        /** Local threads parked waiting for a sibling's release. */
        int localWaiters = 0;
        /** Consecutive local grants (hand-offs to parked waiters and
         *  fast-path reacquires alike — both keep a queued remote
         *  waiting) since the lock last left the node, a remote
         *  requester was served, or a release found no local taker
         *  (the fairness bound's run length). */
        std::uint32_t localHandoffRun = 0;
        /** Per-lock adaptive fairness bound (adaptive mode only;
         *  seeded from the static k at first touch, grown/shrunk at
         *  releases). */
        std::uint32_t bound = 0;
        /** Clock of the last local transfer point — a sibling's
         *  release or a completed remote grant (orders an intra-node
         *  hand-off without any message). */
        std::uint64_t lastTransferNs = 0;
        std::deque<Forward> pending; ///< queued remote requests
    };

    struct ManagerState
    {
        NodeId lastOwner = -1; ///< tail of the request chain
        /** Most recent forward sent for this lock (the re-grant
         *  record for orphaned-lock reclamation). */
        bool hasForward = false;
        NodeId forwardTarget = -1; ///< owner the forward was sent to
        Forward lastForward;
    };

    /** Node-local id of the calling thread (-1: no thread context —
     *  tests driving the service from a bare thread). */
    static int selfThread();

    /** Grant to @p fwd now; caller holds the service mutex. */
    void grantNow(LockId lock, LockLocal &state, const Forward &fwd);

    /** Grant queued remote requests after a release; caller holds the
     *  service mutex and has checked no local thread holds or waits. */
    void drainPending(LockId lock, LockLocal &state);

    /** Can a remote request be granted right now? */
    bool
    idleForGrant(const LockLocal &state) const
    {
        // Compare against the sentinel, not < 0: external (context-
        // free) holders carry the negative kExternalThread id and
        // must still block remote grants.
        return state.owned && state.writeHolder == kNoHolder &&
               state.readHolders == 0 && !state.fetching &&
               state.localWaiters == 0;
    }

    void handleRequest(Message &msg);
    void handleForward(Message &msg);

    LockLocal &localState(LockId lock);

    /** Fairness bound in force for @p state right now. */
    std::uint32_t
    effectiveBound(const LockLocal &state) const
    {
        return adaptiveFairness ? state.bound
                                : static_cast<std::uint32_t>(handoffBound);
    }

    Endpoint &ep;
    const int threadsPerNode;
    /** Fairness bound k (0 = unbounded local priority). */
    const int handoffBound;
    /** Per-lock adaptive bound armed (see the constructor). */
    const bool adaptiveFairness;
    /** Adaptive bound clamp and no-static-k seed. */
    static constexpr std::uint32_t kAdaptiveBoundMax = 64;
    static constexpr std::uint32_t kAdaptiveBoundSeed = 4;
    mutable std::mutex mu;
    std::condition_variable cv;
    LockHooks hooks;
    std::unordered_map<LockId, LockLocal> locks;
    std::unordered_map<LockId, ManagerState> managed;
    /** Owner-side dedup of forwards already received, keyed by
     *  (origin, token): a manager's orphan replay of a forward that
     *  actually survived (parked in our inbox through the outage) must
     *  not double-grant. Tokens alone do not identify a request —
     *  every endpoint numbers its calls from the same counter start,
     *  so two origins' independent requests can carry equal tokens. */
    std::deque<std::pair<NodeId, std::uint64_t>> forwardTokens;
    static constexpr std::size_t kForwardDedupWindow = 128;
};

} // namespace dsm

#endif // DSM_SYNC_LOCK_SERVICE_HH
