/**
 * @file
 * Distributed lock protocol shared by the EC and LRC runtimes, exactly
 * as Section 6 of the paper prescribes: "the location and
 * synchronization aspects of locks ... are implemented in the same
 * way, although the consistency aspects differ."
 *
 * Each lock has a statically assigned manager (round-robin by lock
 * id). A request goes to the manager, which forwards it to the
 * processor that last requested the lock; the grant travels directly
 * from that owner to the requester. Requests for held locks queue at
 * the owner and are granted on release.
 *
 * The consistency payloads (EC: incarnation numbers + data updates;
 * LRC: vectors + write notices) are produced and consumed through the
 * LockHooks callbacks supplied by the runtime.
 *
 * Read-only locks (EC) are consistency-transfer grants: the owner
 * replies with current data and retains ownership. A reader's release
 * requires no message. Writers exclude concurrently queued requests at
 * the owner; the applications in the paper access read-locked data
 * only in barrier-separated read phases, so reader/writer exclusion
 * across phases is provided by the barriers, as in the original
 * programs.
 */

#ifndef DSM_SYNC_LOCK_SERVICE_HH
#define DSM_SYNC_LOCK_SERVICE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/endpoint.hh"
#include "net/serde.hh"

namespace dsm {

/** Consistency callbacks a runtime installs into the lock service.
 *  All hooks are invoked with the node mutex held. */
struct LockHooks
{
    /** At the requester: encode request info (EC: my incarnation;
     *  LRC: my vector). */
    std::function<std::vector<std::byte>(LockId, AccessMode)> makeRequest;

    /** At the owner: consume request info, produce the grant payload
     *  (EC: data newer than the requester's incarnation; LRC: write
     *  notices). */
    std::function<std::vector<std::byte>(LockId, AccessMode, NodeId,
                                         WireReader &)>
        makeGrant;

    /** At the requester: apply the grant payload. */
    std::function<void(LockId, AccessMode, WireReader &)> applyGrant;

    /**
     * At the acquirer, after the lock is held (local fast path or
     * remote grant). EC write-trapping setup happens here: eager
     * twinning of small bound objects, write-protection of large ones.
     */
    std::function<void(LockId, AccessMode)> onAcquired;
};

class LockService
{
  public:
    /**
     * @param endpoint Communication endpoint of this node.
     * @param node_mutex The per-node state mutex shared with the
     *        runtime (hooks run under it).
     */
    LockService(Endpoint &endpoint, std::mutex &node_mutex);

    void setHooks(LockHooks hooks);

    /**
     * Acquire @p lock in @p mode. Write acquires by the current owner
     * with no competing request complete locally without messages
     * (both Midway and TreadMarks have this fast path). Blocking; must
     * be called from the application thread.
     */
    void acquire(LockId lock, AccessMode mode);

    /** Release a held lock; grants any queued requests. */
    void release(LockId lock);

    /** True when this node is the lock's statically assigned manager. */
    bool
    isManager(LockId lock) const
    {
        return managerOf(lock) == ep.self();
    }

    NodeId
    managerOf(LockId lock) const
    {
        return static_cast<NodeId>(lock % ep.nnodes());
    }

    /** Service-thread dispatch for LockRequest/LockForward messages. */
    void handleMessage(Message &msg);

    /** True if the app currently holds @p lock. */
    bool holds(LockId lock) const;

    /**
     * Drop all cached read grants. Midway caches read locks at the
     * reader; our implementation revalidates them at barriers, which
     * is sufficient for the paper's applications because every one of
     * them separates write phases from read phases with barriers.
     * Caller must hold the node mutex.
     */
    void clearReadCaches();

  private:
    struct Forward
    {
        NodeId origin = -1;
        std::uint64_t token = 0;
        AccessMode mode = AccessMode::Write;
        std::vector<std::byte> requestInfo;
    };

    struct LockLocal
    {
        bool owned = false; ///< this node holds the ownership token
        bool held = false;  ///< the app thread is inside acquire..release
        /** Read grant cached locally; valid until the next barrier. */
        bool readCached = false;
        AccessMode heldMode = AccessMode::Write;
        std::deque<Forward> pending;
    };

    struct ManagerState
    {
        NodeId lastOwner = -1; ///< tail of the request chain
    };

    /** Grant to @p fwd now; caller holds the node mutex. */
    void grantNow(LockId lock, LockLocal &state, const Forward &fwd);

    /** Grant queued requests after a release; caller holds the mutex. */
    void drainPending(LockId lock, LockLocal &state);

    void handleRequest(Message &msg);
    void handleForward(Message &msg);

    LockLocal &localState(LockId lock);

    Endpoint &ep;
    std::mutex &mu;
    LockHooks hooks;
    std::unordered_map<LockId, LockLocal> locks;
    std::unordered_map<LockId, ManagerState> managed;
};

} // namespace dsm

#endif // DSM_SYNC_LOCK_SERVICE_HH
