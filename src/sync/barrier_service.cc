#include "sync/barrier_service.hh"

#include "util/logging.hh"

namespace dsm {

BarrierService::BarrierService(Endpoint &endpoint, int threads_per_node)
    : ep(endpoint), threadsPerNode(threads_per_node)
{
    DSM_ASSERT(threadsPerNode >= 1, "bad threadsPerNode %d",
               threads_per_node);
}

void
BarrierService::setHooks(BarrierHooks h)
{
    hooks = std::move(h);
}

void
BarrierService::setPostWait(std::function<void()> action)
{
    postWait = std::move(action);
}

void
BarrierService::wait(BarrierId barrier)
{
    std::vector<std::byte> payload;
    {
        std::unique_lock<std::mutex> g(mu);
        LocalState &lb = local[barrier];
        lb.arrivalMaxNs = std::max(lb.arrivalMaxNs, ep.clock().now());
        if (++lb.arrived < threadsPerNode) {
            // Not the node's last thread: park until the sibling that
            // completes the node-level barrier bumps the generation,
            // then step to the completion time it recorded.
            const std::uint64_t gen = lb.generation;
            cv.wait(g, [&] { return lb.generation != gen; });
            ep.clock().advanceTo(lb.completeNs);
            ep.stats().barriersEntered++;
            return;
        }
        // Last thread of the node: the node arrives at the max of its
        // CPUs' clocks (no-op at threadsPerNode == 1).
        ep.clock().advanceTo(lb.arrivalMaxNs);
        if (hooks.makeArrival)
            payload = hooks.makeArrival(barrier);
    }

    WireWriter w;
    w.putU32(barrier);
    w.putBlob(payload);
    Message reply = ep.call(managerOf(barrier), MsgType::BarrierArrive,
                            w.take());
    ep.clock().add(ep.costModel().barrierHandlingNs);

    {
        std::lock_guard<std::mutex> g(mu);
        WireReader r(reply.payload);
        if (hooks.applyDepart)
            hooks.applyDepart(barrier, r);
        if (postWait)
            postWait();
        ep.stats().barriersEntered++;
        LocalState &lb = local[barrier];
        lb.completeNs = ep.clock().now();
        lb.arrived = 0;
        lb.arrivalMaxNs = 0;
        lb.generation++;
    }
    cv.notify_all();
}

void
BarrierService::handleMessage(Message &msg)
{
    DSM_ASSERT(msg.type == MsgType::BarrierArrive, "bad barrier message");
    WireReader r(msg.payload);
    BarrierId barrier = r.getU32();
    std::vector<std::byte> payload = r.getBlob();

    // Manager state is touched only by this (the service) thread; the
    // hooks take the protocol locks they need themselves.
    DSM_ASSERT(managerOf(barrier) == ep.self(),
               "barrier arrival at non-manager");
    ep.clock().add(ep.costModel().barrierHandlingNs);

    BarrierState &state = barriers[barrier];
    if (hooks.mergeArrival) {
        WireReader pr(payload);
        hooks.mergeArrival(barrier, msg.src, pr);
    }
    state.waiters.push_back({msg.src, msg.replyToken});

    if (static_cast<int>(state.waiters.size()) == ep.nnodes()) {
        for (const Waiter &waiter : state.waiters) {
            std::vector<std::byte> depart;
            if (hooks.makeDepart)
                depart = hooks.makeDepart(barrier, waiter.node);
            ep.clock().add(ep.costModel().barrierHandlingNs);
            ep.reply(waiter.node, MsgType::BarrierDepart, std::move(depart),
                     waiter.token);
        }
        state.waiters.clear();
        state.generation++;
    }
}

void
BarrierService::serialize(WireWriter &w) const
{
    std::lock_guard<std::mutex> g(mu);
    w.putU32(static_cast<std::uint32_t>(barriers.size()));
    for (const auto &[id, s] : barriers) {
        w.putU32(id);
        w.putU64(s.generation);
        w.putU32(static_cast<std::uint32_t>(s.waiters.size()));
        for (const Waiter &waiter : s.waiters) {
            w.putI64(waiter.node);
            w.putU64(waiter.token);
        }
    }
    w.putU32(static_cast<std::uint32_t>(local.size()));
    for (const auto &[id, lb] : local) {
        w.putU32(id);
        // A checkpoint cut happens before any thread enters wait(), so
        // the local rendezvous must be at rest (all arrived threads
        // were released by a completed departure).
        DSM_ASSERT(lb.arrived == 0,
                   "snapshot of barrier %u with threads parked", id);
        w.putU64(lb.generation);
        w.putU64(lb.arrivalMaxNs);
        w.putU64(lb.completeNs);
    }
}

void
BarrierService::restoreFrom(WireReader &r)
{
    std::lock_guard<std::mutex> g(mu);
    barriers.clear();
    local.clear();
    const std::uint32_t nbarriers = r.getU32();
    for (std::uint32_t i = 0; i < nbarriers; ++i) {
        const BarrierId id = r.getU32();
        BarrierState &s = barriers[id];
        s.generation = r.getU64();
        const std::uint32_t nwaiters = r.getU32();
        for (std::uint32_t wi = 0; wi < nwaiters; ++wi) {
            Waiter waiter;
            waiter.node = static_cast<NodeId>(r.getI64());
            waiter.token = r.getU64();
            s.waiters.push_back(waiter);
        }
    }
    const std::uint32_t nlocal = r.getU32();
    for (std::uint32_t i = 0; i < nlocal; ++i) {
        const BarrierId id = r.getU32();
        LocalState &lb = local[id];
        lb.arrived = 0;
        lb.generation = r.getU64();
        lb.arrivalMaxNs = r.getU64();
        lb.completeNs = r.getU64();
    }
}

void
BarrierService::wipeForRecovery()
{
    std::lock_guard<std::mutex> g(mu);
    barriers.clear();
    local.clear();
}

} // namespace dsm
