#include "sync/barrier_service.hh"

#include "util/logging.hh"

namespace dsm {

BarrierService::BarrierService(Endpoint &endpoint, std::mutex &node_mutex)
    : ep(endpoint), mu(node_mutex)
{}

void
BarrierService::setHooks(BarrierHooks h)
{
    hooks = std::move(h);
}

void
BarrierService::setPostWait(std::function<void()> action)
{
    postWait = std::move(action);
}

void
BarrierService::wait(BarrierId barrier)
{
    std::vector<std::byte> payload;
    {
        std::lock_guard<std::mutex> g(mu);
        if (hooks.makeArrival)
            payload = hooks.makeArrival(barrier);
    }

    WireWriter w;
    w.putU32(barrier);
    w.putBlob(payload);
    Message reply = ep.call(managerOf(barrier), MsgType::BarrierArrive,
                            w.take());
    ep.clock().add(ep.costModel().barrierHandlingNs);

    {
        std::lock_guard<std::mutex> g(mu);
        WireReader r(reply.payload);
        if (hooks.applyDepart)
            hooks.applyDepart(barrier, r);
        if (postWait)
            postWait();
        ep.stats().barriersEntered++;
    }
}

void
BarrierService::handleMessage(Message &msg)
{
    DSM_ASSERT(msg.type == MsgType::BarrierArrive, "bad barrier message");
    WireReader r(msg.payload);
    BarrierId barrier = r.getU32();
    std::vector<std::byte> payload = r.getBlob();

    std::lock_guard<std::mutex> g(mu);
    DSM_ASSERT(managerOf(barrier) == ep.self(),
               "barrier arrival at non-manager");
    ep.clock().add(ep.costModel().barrierHandlingNs);

    BarrierState &state = barriers[barrier];
    if (hooks.mergeArrival) {
        WireReader pr(payload);
        hooks.mergeArrival(barrier, msg.src, pr);
    }
    state.waiters.push_back({msg.src, msg.replyToken});

    if (static_cast<int>(state.waiters.size()) == ep.nnodes()) {
        for (const Waiter &waiter : state.waiters) {
            std::vector<std::byte> depart;
            if (hooks.makeDepart)
                depart = hooks.makeDepart(barrier, waiter.node);
            ep.clock().add(ep.costModel().barrierHandlingNs);
            ep.reply(waiter.node, MsgType::BarrierDepart, std::move(depart),
                     waiter.token);
        }
        state.waiters.clear();
        state.generation++;
    }
}

} // namespace dsm
