/**
 * @file
 * Barriers with a statically assigned manager (Section 6 of the
 * paper): an arriving processor sends an arrival message to the
 * manager; once the manager has all arrivals it lowers the barrier
 * with departure messages. The consistency payloads (LRC: interval
 * records and vectors; EC: none — data is associated with locks, not
 * barriers) go through the BarrierHooks callbacks.
 *
 * The manager is centralized (node 0), as in TreadMarks. This is also
 * what makes LRC's interval distribution race-free: the manager builds
 * every departure from its own (complete) log, so arrivals for a later
 * barrier can never outrun the knowledge they depend on.
 *
 * SMP nodes (threadsPerNode > 1): a node's arrival is the arrival of
 * its *last* thread. Earlier threads park on a local generation
 * counter; the last one merges all local thread clocks (the node
 * cannot arrive before its slowest CPU), produces the node-level
 * arrival payload (which closes the node's current interval exactly
 * once), performs the network round trip, applies the departure, and
 * wakes its siblings at the completion time. One network arrival per
 * node per barrier, regardless of T — the protocol message complexity
 * is unchanged from the paper's. With threadsPerNode == 1 the wait is
 * exactly the historical single-thread sequence.
 */

#ifndef DSM_SYNC_BARRIER_SERVICE_HH
#define DSM_SYNC_BARRIER_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/endpoint.hh"
#include "net/serde.hh"

namespace dsm {

/** All hooks run with the barrier-service mutex held; they take the
 *  protocol locks (core, ...) they need themselves. */
struct BarrierHooks
{
    /** At each node: payload attached to the arrival message. */
    std::function<std::vector<std::byte>(BarrierId)> makeArrival;

    /** At the manager: merge one node's arrival payload. */
    std::function<void(BarrierId, NodeId, WireReader &)> mergeArrival;

    /** At the manager: build the departure payload for @p node. */
    std::function<std::vector<std::byte>(BarrierId, NodeId)> makeDepart;

    /** At each node: apply the departure payload. */
    std::function<void(BarrierId, WireReader &)> applyDepart;
};

class BarrierService
{
  public:
    explicit BarrierService(Endpoint &endpoint, int threads_per_node = 1);

    void setHooks(BarrierHooks hooks);

    /**
     * Install a local action run (under the barrier-service mutex)
     * after every barrier completes. EC uses this to revalidate cached
     * read locks.
     */
    void setPostWait(std::function<void()> action);

    /** Block until all threads of all nodes arrive at @p barrier.
     *  Application threads only. */
    void wait(BarrierId barrier);

    NodeId
    managerOf(BarrierId) const
    {
        return 0; // centralized barrier manager, as in TreadMarks
    }

    /** Service-thread dispatch for BarrierArrive messages. */
    void handleMessage(Message &msg);

    /**
     * Checkpoint support (core/checkpoint.hh): capture / rebuild the
     * manager's pending arrivals and the local thread-rendezvous
     * generations at a barrier cut (service thread stopped, app
     * threads parked at the checkpoint rendezvous).
     */
    void serialize(WireWriter &w) const;
    void restoreFrom(WireReader &r);

    /** Chaos kill: drop all barrier state before a restoreFrom. */
    void wipeForRecovery();

  private:
    struct Waiter
    {
        NodeId node = -1;
        std::uint64_t token = 0;
    };

    /** Manager-side per-barrier state (service thread only). */
    struct BarrierState
    {
        std::vector<Waiter> waiters;
        std::uint64_t generation = 0;
    };

    /** Node-local thread rendezvous for one barrier id. */
    struct LocalState
    {
        int arrived = 0;
        std::uint64_t generation = 0;
        /** Max clock over the threads that arrived this generation. */
        std::uint64_t arrivalMaxNs = 0;
        /** Completion time the parked threads advance to. */
        std::uint64_t completeNs = 0;
    };

    Endpoint &ep;
    const int threadsPerNode;
    mutable std::mutex mu;
    std::condition_variable cv;
    BarrierHooks hooks;
    std::function<void()> postWait;
    /** Manager state; touched only by the service thread. */
    std::unordered_map<BarrierId, BarrierState> barriers;
    /** Local thread rendezvous; guarded by mu. */
    std::unordered_map<BarrierId, LocalState> local;
};

} // namespace dsm

#endif // DSM_SYNC_BARRIER_SERVICE_HH
