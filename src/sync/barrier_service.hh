/**
 * @file
 * Barriers with a statically assigned manager (Section 6 of the
 * paper): an arriving processor sends an arrival message to the
 * manager; once the manager has all arrivals it lowers the barrier
 * with departure messages. The consistency payloads (LRC: interval
 * records and vectors; EC: none — data is associated with locks, not
 * barriers) go through the BarrierHooks callbacks.
 *
 * The manager is centralized (node 0), as in TreadMarks. This is also
 * what makes LRC's interval distribution race-free: the manager builds
 * every departure from its own (complete) log, so arrivals for a later
 * barrier can never outrun the knowledge they depend on.
 */

#ifndef DSM_SYNC_BARRIER_SERVICE_HH
#define DSM_SYNC_BARRIER_SERVICE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/endpoint.hh"
#include "net/serde.hh"

namespace dsm {

/** All hooks run with the node mutex held. */
struct BarrierHooks
{
    /** At each node: payload attached to the arrival message. */
    std::function<std::vector<std::byte>(BarrierId)> makeArrival;

    /** At the manager: merge one node's arrival payload. */
    std::function<void(BarrierId, NodeId, WireReader &)> mergeArrival;

    /** At the manager: build the departure payload for @p node. */
    std::function<std::vector<std::byte>(BarrierId, NodeId)> makeDepart;

    /** At each node: apply the departure payload. */
    std::function<void(BarrierId, WireReader &)> applyDepart;
};

class BarrierService
{
  public:
    BarrierService(Endpoint &endpoint, std::mutex &node_mutex);

    void setHooks(BarrierHooks hooks);

    /**
     * Install a local action run (under the node mutex) after every
     * barrier completes. EC uses this to revalidate cached read locks.
     */
    void setPostWait(std::function<void()> action);

    /** Block until all nodes arrive at @p barrier. App thread only. */
    void wait(BarrierId barrier);

    NodeId
    managerOf(BarrierId) const
    {
        return 0; // centralized barrier manager, as in TreadMarks
    }

    /** Service-thread dispatch for BarrierArrive messages. */
    void handleMessage(Message &msg);

  private:
    struct Waiter
    {
        NodeId node = -1;
        std::uint64_t token = 0;
    };

    struct BarrierState
    {
        std::vector<Waiter> waiters;
        std::uint64_t generation = 0;
    };

    Endpoint &ep;
    std::mutex &mu;
    BarrierHooks hooks;
    std::function<void()> postWait;
    std::unordered_map<BarrierId, BarrierState> barriers;
};

} // namespace dsm

#endif // DSM_SYNC_BARRIER_SERVICE_HH
