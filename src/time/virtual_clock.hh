/**
 * @file
 * Per-node virtual clock. The clock advances by explicit charges (work
 * units, protocol costs) and by Lamport-style causal maxima when
 * messages arrive, so the final per-node values give a deterministic
 * simulated execution time irrespective of host scheduling.
 *
 * Both the application thread and the service thread of a node advance
 * the same clock; this mirrors the real systems, where the SIGIO
 * handler stole cycles from the application processor.
 */

#ifndef DSM_TIME_VIRTUAL_CLOCK_HH
#define DSM_TIME_VIRTUAL_CLOCK_HH

#include <atomic>
#include <cstdint>

namespace dsm {

class VirtualClock
{
  public:
    VirtualClock() : nowNs(0) {}

    /** Current virtual time in nanoseconds. */
    std::uint64_t
    now() const
    {
        return nowNs.load(std::memory_order_acquire);
    }

    /** Advance by @p deltaNs; returns the new time. */
    std::uint64_t
    add(std::uint64_t delta_ns)
    {
        return nowNs.fetch_add(delta_ns, std::memory_order_acq_rel) +
               delta_ns;
    }

    /** Causal merge: now = max(now, @p t). Returns the new time. */
    std::uint64_t
    advanceTo(std::uint64_t t)
    {
        std::uint64_t cur = nowNs.load(std::memory_order_acquire);
        while (cur < t &&
               !nowNs.compare_exchange_weak(cur, t,
                                            std::memory_order_acq_rel)) {
            // cur reloaded by compare_exchange_weak.
        }
        return now();
    }

    /** Reset to zero (between runs). */
    void reset() { nowNs.store(0, std::memory_order_release); }

  private:
    std::atomic<std::uint64_t> nowNs;
};

} // namespace dsm

#endif // DSM_TIME_VIRTUAL_CLOCK_HH
