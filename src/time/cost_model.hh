/**
 * @file
 * Virtual-time cost model calibrated to the paper's environment:
 * 8 DECstation-5000/240 (40 MHz MIPS) nodes on a 100-Mbps ATM LAN under
 * Ultrix 4.3 (Section 6 of the paper). All protocol actions charge the
 * virtual clock through these constants, so reported "execution times"
 * are deterministic functions of protocol activity plus application
 * work, independent of host speed.
 */

#ifndef DSM_TIME_COST_MODEL_HH
#define DSM_TIME_COST_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace dsm {

/** All values in virtual nanoseconds (or ns per unit). */
struct CostModel
{
    /**
     * Fixed one-way software + wire overhead of one message
     * (programmed I/O into FIFOs, AAL3/4 fragmentation, SIGIO
     * delivery). TreadMarks-era small-message latency on this platform
     * was just under a millisecond round trip.
     */
    std::uint64_t msgFixedNs = 450'000;

    /** Per-byte wire cost: 100 Mbps = 12.5 MB/s = 80 ns/byte. */
    std::uint64_t perByteNs = 80;

    /** mprotect + SIGSEGV delivery + handler entry under Ultrix. */
    std::uint64_t pageFaultNs = 150'000;

    /** Copying one 4-byte word when creating a twin. */
    std::uint64_t perWordTwinNs = 30;

    /** Comparing one word of twin vs. current copy when diffing. */
    std::uint64_t perWordDiffNs = 35;

    /** Scanning one block's timestamp or dirty word. */
    std::uint64_t perWordScanNs = 25;

    /** Applying one received word (diff run or timestamp run). */
    std::uint64_t perWordApplyNs = 20;

    /** Compiler-instrumented dirty-bit store (vector to template). */
    std::uint64_t dirtyStoreNs = 250;

    /** Handling a lock request/forward/grant at a node. */
    std::uint64_t lockHandlingNs = 30'000;

    /** Handling a barrier arrival/departure at a node. */
    std::uint64_t barrierHandlingNs = 30'000;

    /** One application work unit (roughly one inner-loop iteration
     *  including a floating-point operation at 40 MHz). */
    std::uint64_t workUnitNs = 25;

    /** Simulated retransmission timeout for the lossy-network mode. */
    std::uint64_t retransTimeoutNs = 2'000'000;

    /** One-way transit time of a message of @p bytes total size. */
    std::uint64_t
    transitNs(std::size_t bytes) const
    {
        return msgFixedNs + static_cast<std::uint64_t>(bytes) * perByteNs;
    }

    /** Multi-line human-readable rendering for bench headers. */
    std::string toString() const;
};

} // namespace dsm

#endif // DSM_TIME_COST_MODEL_HH
