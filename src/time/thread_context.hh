/**
 * @file
 * Per-application-thread execution context for SMP nodes
 * (ClusterConfig::threadsPerNode > 1). Each worker thread spawned by
 * Cluster::run carries one ThreadContext holding
 *
 *  - its identity: owning node, node-local thread id, global worker
 *    rank (node * threadsPerNode + threadId) and the cluster-wide
 *    worker count — the SPMD partitioning axes the applications use;
 *  - its virtual clock: at threadsPerNode == 1 this aliases the node
 *    clock (the paper's uniprocessor node, where the application and
 *    the SIGIO service handler share one CPU — exactly the seed
 *    semantics, bit-identical by construction); at T > 1 each thread
 *    is modeled as its own CPU with a private clock, merged into the
 *    node's notion of time at synchronization points (lock transfers,
 *    barriers) and at run end, while the node clock plays the role of
 *    the protocol/service processor;
 *  - a private NodeStats delta: counters incremented from application
 *    threads accumulate here with no sharing and are summed into the
 *    node's statistics when the run ends, so per-node totals are
 *    identical to the single-clock seed accounting.
 *
 * The context is published through a thread_local pointer;
 * Endpoint::clock()/stats() route through it, so every existing
 * charge/counter site works unchanged from any thread. Threads without
 * a context (the service thread, tests driving a runtime from the main
 * thread) fall back to the node clock and node stats, which is the
 * seed behavior.
 */

#ifndef DSM_TIME_THREAD_CONTEXT_HH
#define DSM_TIME_THREAD_CONTEXT_HH

#include <cstdint>

#include "time/virtual_clock.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dsm {

class ThreadContext
{
  public:
    NodeId node = 0;
    /** Node-local thread id in [0, threadsPerNode). */
    int threadId = 0;
    /** Global worker rank: node * threadsPerNode + threadId. */
    int worker = 0;
    /** Cluster-wide worker count: nprocs * threadsPerNode. */
    int numWorkers = 1;

    /** The clock application charges go to. Aliases the node clock at
     *  threadsPerNode == 1; points at ownClock otherwise. */
    VirtualClock *clock = nullptr;

    /** Private CPU clock, used when threadsPerNode > 1. */
    VirtualClock ownClock;

    /** Per-thread statistics delta, merged into the node's stats when
     *  the run ends. */
    NodeStats stats;

    /** Next index into the node's SPMD allocation log (all threads of
     *  a node perform identical sharedAlloc sequences; the first to
     *  reach a position allocates, the rest replay the result). */
    std::uint32_t allocCursor = 0;

    static ThreadContext *current() { return tls; }

    /** RAII publication of a context on the current thread. */
    class Scope
    {
      public:
        explicit Scope(ThreadContext *ctx) : prev(tls) { tls = ctx; }
        ~Scope() { tls = prev; }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        ThreadContext *prev;
    };

  private:
    static inline thread_local ThreadContext *tls = nullptr;
};

} // namespace dsm

#endif // DSM_TIME_THREAD_CONTEXT_HH
