// VirtualClock is header-only; this translation unit anchors the
// dsm_time library so every subsystem has a .cc file to link.
#include "time/virtual_clock.hh"
