#include "time/cost_model.hh"

#include <sstream>

namespace dsm {

std::string
CostModel::toString() const
{
    std::ostringstream os;
    os << "cost model (virtual ns): msgFixed=" << msgFixedNs
       << " perByte=" << perByteNs << " pageFault=" << pageFaultNs
       << " twin/word=" << perWordTwinNs << " diff/word=" << perWordDiffNs
       << " scan/word=" << perWordScanNs << " apply/word=" << perWordApplyNs
       << " dirtyStore=" << dirtyStoreNs << " lock=" << lockHandlingNs
       << " barrier=" << barrierHandlingNs << " workUnit=" << workUnitNs;
    return os.str();
}

} // namespace dsm
