#include "driver/table.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace dsm {

Table::Table(std::vector<std::string> hdrs) : headers(std::move(hdrs)) {}

void
Table::addRow(std::vector<std::string> cells)
{
    DSM_ASSERT(cells.size() == headers.size(),
               "row has %zu cells, table has %zu columns", cells.size(),
               headers.size());
    rows.push_back(std::move(cells));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << "  ";
            if (c == 0) {
                os << cells[c]
                   << std::string(widths[c] - cells[c].size(), ' ');
            } else {
                os << std::string(widths[c] - cells[c].size(), ' ')
                   << cells[c];
            }
        }
        os << "\n";
    };
    emit(headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

std::string
fmtSeconds(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", s);
    return buf;
}

std::string
fmtRatio(double r)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", r);
    return buf;
}

std::string
fmtMb(double mb)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fMB", mb);
    return buf;
}

} // namespace dsm
