/**
 * @file
 * Process-per-node launcher for the socket transport tiers.
 *
 * Cluster::run on a socket transport forks one child per node. The
 * parent constructed the whole cluster before forking (single
 * threaded — no endpoint has started yet), so every child inherits
 * identical pre-run state: arenas, allocation logs, resolved config.
 * Each child rank rebinds its node's endpoint to a SocketTransport,
 * rendezvouses with its peers through the shared socket directory,
 * runs its worker threads, and dumps its final state — virtual clock,
 * counters, message count, the full arena image — as
 * `<dir>/node-<rank>.result`. The parent reaps the children, loads
 * the dumps back into its own node objects, and assembles the same
 * RunResult an in-process run produces, so every caller of
 * Cluster::run and Cluster::memory works unchanged across tiers.
 *
 * An application exception in a child travels back as an error string
 * in the dump plus exit code kAppErrorExit; the parent rethrows it as
 * std::runtime_error, mirroring the in-process rethrow.
 */

#ifndef DSM_DRIVER_PROC_LAUNCHER_HH
#define DSM_DRIVER_PROC_LAUNCHER_HH

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace dsm {

/** Child exit code signalling "the app threw; see the dump's error
 *  string" (any other nonzero exit is an infrastructure failure). */
constexpr int kAppErrorExit = 42;

/** One node process's dumped outcome. */
struct NodeResult
{
    int rank = -1;
    std::uint64_t clockNs = 0;
    std::uint64_t transportMessages = 0;
    NodeStats stats;
    std::vector<std::byte> arena;
    std::string error; ///< nonempty = the app threw in this child
};

/** Create a fresh private rendezvous directory (mkdtemp under
 *  $TMPDIR or /tmp). */
std::string makeRendezvousDir();

/** Best-effort removal of a rendezvous directory and the launcher's
 *  files in it (sockets, port files, result dumps). */
void removeRendezvousDir(const std::string &dir);

/**
 * Fork @p nnodes children. Returns the child's rank (0-based) in
 * each child, -1 in the parent; the parent's @p pids receives every
 * child's pid. Must be called from a single-threaded process (fork
 * only duplicates the calling thread).
 */
int forkNodeProcesses(int nnodes, std::vector<pid_t> &pids);

/**
 * Reap every child. Returns true when all exited 0 or kAppErrorExit;
 * false otherwise, with @p failure describing the first
 * infrastructure failure (signal, unexpected exit code). Ranks that
 * exited kAppErrorExit are appended to @p app_error_ranks.
 */
bool awaitNodeProcesses(const std::vector<pid_t> &pids,
                        std::string &failure,
                        std::vector<int> &app_error_ranks);

/** Serialize @p result to `<dir>/node-<rank>.result` (atomic
 *  write-then-rename). */
void writeNodeResult(const std::string &dir, const NodeResult &result);

/** Load rank @p rank's dump; panics on a missing or corrupt file. */
NodeResult readNodeResult(const std::string &dir, int rank);

} // namespace dsm

#endif // DSM_DRIVER_PROC_LAUNCHER_HH
