#include "driver/experiment.hh"

#include "util/logging.hh"

namespace dsm {

ExperimentResult
runExperiment(const std::string &app_name, const RuntimeConfig &config,
              const AppParams &params, const ClusterConfig &base,
              bool require_valid)
{
    ExperimentResult result;
    result.app = app_name;
    result.config = config;

    auto app = makeApp(app_name);
    result.seq = app->runSequential(params);

    ClusterConfig cc = base;
    cc.runtime = config;
    Cluster cluster(cc);
    result.run = cluster.run([&](Runtime &rt) {
        app->runNode(rt, params);
    });
    result.verdict = app->validate(cluster, params);

    if (require_valid && !result.verdict.ok) {
        fatal("%s under %s failed validation: %s", app_name.c_str(),
              config.name().c_str(), result.verdict.detail.c_str());
    }
    return result;
}

ModelSweep
sweepModel(Model model, const std::string &app_name,
           const AppParams &params, const ClusterConfig &base)
{
    ModelSweep sweep;
    for (const RuntimeConfig &config : RuntimeConfig::all()) {
        if (config.model != model)
            continue;
        sweep.results.push_back(
            runExperiment(app_name, config, params, base));
        if (sweep.results.back().run.execTimeNs <
            sweep.results[sweep.bestIndex].run.execTimeNs) {
            sweep.bestIndex = sweep.results.size() - 1;
        }
    }
    return sweep;
}

} // namespace dsm
