#include "driver/proc_launcher.hh"

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#include "util/logging.hh"

namespace dsm {

// The dump memcpys the counter block whole; any non-trivial member
// would silently corrupt the parent's fold.
static_assert(std::is_trivially_copyable_v<NodeStats>,
              "NodeStats must stay a plain counter block");

namespace {

constexpr std::uint32_t kResultMagic = 0x52534d44; // "DMSR"

std::string
resultPath(const std::string &dir, int rank)
{
    return dir + "/node-" + std::to_string(rank) + ".result";
}

void
writeAll(FILE *f, const void *data, std::size_t n)
{
    DSM_ASSERT(std::fwrite(data, 1, n, f) == n, "result dump write: %s",
               std::strerror(errno));
}

void
readAll(FILE *f, void *data, std::size_t n)
{
    DSM_ASSERT(std::fread(data, 1, n, f) == n,
               "result dump truncated");
}

template <typename T>
void
writePod(FILE *f, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    writeAll(f, &v, sizeof(v));
}

template <typename T>
T
readPod(FILE *f)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    readAll(f, &v, sizeof(v));
    return v;
}

} // namespace

std::string
makeRendezvousDir()
{
    const char *base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/dsm-cluster-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    DSM_ASSERT(::mkdtemp(buf.data()) != nullptr, "mkdtemp(%s): %s",
               tmpl.c_str(), std::strerror(errno));
    return std::string(buf.data());
}

void
removeRendezvousDir(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return;
    while (dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
}

int
forkNodeProcesses(int nnodes, std::vector<pid_t> &pids)
{
    pids.clear();
    pids.reserve(nnodes);
    for (int rank = 0; rank < nnodes; ++rank) {
        const pid_t pid = ::fork();
        DSM_ASSERT(pid >= 0, "fork: %s", std::strerror(errno));
        if (pid == 0) {
            pids.clear(); // the child owns no siblings
            return rank;
        }
        pids.push_back(pid);
    }
    return -1;
}

bool
awaitNodeProcesses(const std::vector<pid_t> &pids, std::string &failure,
                   std::vector<int> &app_error_ranks)
{
    bool ok = true;
    for (std::size_t rank = 0; rank < pids.size(); ++rank) {
        int status = 0;
        pid_t r;
        do {
            r = ::waitpid(pids[rank], &status, 0);
        } while (r < 0 && errno == EINTR);
        DSM_ASSERT(r == pids[rank], "waitpid(node %zu): %s", rank,
                   std::strerror(errno));
        if (WIFEXITED(status)) {
            const int code = WEXITSTATUS(status);
            if (code == 0)
                continue;
            if (code == kAppErrorExit) {
                app_error_ranks.push_back(static_cast<int>(rank));
                continue;
            }
            if (ok) {
                failure = "node " + std::to_string(rank) +
                          " exited with code " + std::to_string(code);
            }
            ok = false;
        } else if (WIFSIGNALED(status)) {
            if (ok) {
                failure = "node " + std::to_string(rank) +
                          " killed by signal " +
                          std::to_string(WTERMSIG(status));
            }
            ok = false;
        }
    }
    return ok;
}

void
writeNodeResult(const std::string &dir, const NodeResult &result)
{
    const std::string tmp = resultPath(dir, result.rank) + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    DSM_ASSERT(f != nullptr, "fopen(%s): %s", tmp.c_str(),
               std::strerror(errno));
    writePod(f, kResultMagic);
    writePod(f, result.rank);
    writePod(f, static_cast<std::uint32_t>(result.error.size()));
    if (!result.error.empty())
        writeAll(f, result.error.data(), result.error.size());
    writePod(f, result.clockNs);
    writePod(f, result.transportMessages);
    writePod(f, result.stats);
    writePod(f, static_cast<std::uint64_t>(result.arena.size()));
    if (!result.arena.empty())
        writeAll(f, result.arena.data(), result.arena.size());
    DSM_ASSERT(std::fflush(f) == 0 && std::fclose(f) == 0,
               "result dump flush: %s", std::strerror(errno));
    DSM_ASSERT(std::rename(tmp.c_str(),
                           resultPath(dir, result.rank).c_str()) == 0,
               "result dump rename: %s", std::strerror(errno));
}

NodeResult
readNodeResult(const std::string &dir, int rank)
{
    const std::string path = resultPath(dir, rank);
    FILE *f = std::fopen(path.c_str(), "rb");
    DSM_ASSERT(f != nullptr,
               "node %d produced no result dump (%s): %s", rank,
               path.c_str(), std::strerror(errno));
    NodeResult out;
    DSM_ASSERT(readPod<std::uint32_t>(f) == kResultMagic,
               "corrupt result dump %s", path.c_str());
    out.rank = readPod<int>(f);
    DSM_ASSERT(out.rank == rank, "dump rank %d in %s", out.rank,
               path.c_str());
    const std::uint32_t errLen = readPod<std::uint32_t>(f);
    if (errLen > 0) {
        out.error.resize(errLen);
        readAll(f, out.error.data(), errLen);
    }
    out.clockNs = readPod<std::uint64_t>(f);
    out.transportMessages = readPod<std::uint64_t>(f);
    out.stats = readPod<NodeStats>(f);
    const std::uint64_t arenaBytes = readPod<std::uint64_t>(f);
    out.arena.resize(arenaBytes);
    if (arenaBytes > 0)
        readAll(f, out.arena.data(), arenaBytes);
    std::fclose(f);
    return out;
}

} // namespace dsm
