/**
 * @file
 * Fixed-width table rendering for the bench binaries that regenerate
 * the paper's tables.
 */

#ifndef DSM_DRIVER_TABLE_HH
#define DSM_DRIVER_TABLE_HH

#include <string>
#include <vector>

namespace dsm {

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with column alignment; first column left-aligned. */
    std::string toString() const;

    /** Convenience: print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Format seconds with two decimals (paper table style). */
std::string fmtSeconds(double s);

/** Format a ratio like "1.33x". */
std::string fmtRatio(double r);

/** Format megabytes with one decimal. */
std::string fmtMb(double mb);

} // namespace dsm

#endif // DSM_DRIVER_TABLE_HH
