/**
 * @file
 * Experiment plumbing: run one application under one runtime
 * configuration on a fresh cluster, validate against the sequential
 * reference, and collect the numbers the paper's tables report.
 */

#ifndef DSM_DRIVER_EXPERIMENT_HH
#define DSM_DRIVER_EXPERIMENT_HH

#include <optional>
#include <string>

#include "apps/app.hh"

namespace dsm {

struct ExperimentResult
{
    std::string app;
    RuntimeConfig config;
    SeqResult seq;
    RunResult run;
    Verdict verdict;

    /** Simulated parallel execution time in seconds. */
    double execSeconds() const { return run.execSeconds(); }

    /** Simulated 1-processor time in seconds. */
    double
    seqSeconds(const CostModel &cm) const
    {
        return seq.seconds(cm);
    }
};

/**
 * Run @p app_name under @p config. fatal()s on validation failure when
 * @p require_valid (benches keep the numbers honest by default).
 */
ExperimentResult runExperiment(const std::string &app_name,
                               const RuntimeConfig &config,
                               const AppParams &params,
                               const ClusterConfig &base,
                               bool require_valid = true);

/**
 * Run all implementations of @p model for @p app_name and return them
 * with the index of the fastest — the per-model "best implementation"
 * selection of Table 3.
 */
struct ModelSweep
{
    std::vector<ExperimentResult> results;
    std::size_t bestIndex = 0;

    const ExperimentResult &best() const { return results[bestIndex]; }
};

ModelSweep sweepModel(Model model, const std::string &app_name,
                      const AppParams &params, const ClusterConfig &base);

} // namespace dsm

#endif // DSM_DRIVER_EXPERIMENT_HH
