/**
 * @file
 * The application framework: each of the paper's programs (SOR, SOR+,
 * Quicksort, Water, Barnes-Hut, IS, 3D-FFT) provides
 *  - a sequential reference implementation (the "1 proc." column of
 *    Table 3, and the source of truth for validation),
 *  - an EC program and an LRC program written in the respective
 *    model's style (Section 3.3), sharing the numerical kernels,
 *  - a validation routine comparing the parallel result (collected on
 *    node 0 through the DSM protocol itself) against the reference.
 */

#ifndef DSM_APPS_APP_HH
#define DSM_APPS_APP_HH

#include <memory>
#include <string>

#include "core/cluster.hh"
#include "core/shared_array.hh"

namespace dsm {

/** Workload parameters for every application (Table 2, scalable). */
struct AppParams
{
    // Red-Black SOR.
    int sorRows = 256;
    int sorCols = 256;
    int sorIters = 20;

    // Quicksort.
    int qsElems = 32768;
    int qsCutoff = 512;

    // Water.
    int waterMolecules = 64;
    int waterSteps = 3;
    bool waterRestructured = false; ///< Section 7.2 two-array variant

    // Barnes-Hut.
    int barnesBodies = 256;
    int barnesSteps = 2;
    double barnesTheta = 0.6;

    // Integer Sort.
    int isKeys = 1 << 16;
    int isBmax = 1 << 9;
    int isRankings = 4;

    // 3D-FFT.
    int fftN1 = 32;
    int fftN2 = 32;
    int fftN3 = 16;
    int fftIters = 2;

    std::uint64_t seed = 42;

    /** Tiny sizes for unit/integration tests. */
    static AppParams testScale();

    /** Default bench scale (reduced from Table 2 to fit a simulated
     *  single-host run; shapes are preserved). */
    static AppParams benchScale();

    /** The paper's Table 2 sizes (slow on one host; opt-in). */
    static AppParams paperScale();
};

/** Result of the sequential reference run. */
struct SeqResult
{
    /** Total work units charged; 1-processor time = work x workUnitNs. */
    std::uint64_t workUnits = 0;

    /** Application-defined checksum of the final state. */
    std::uint64_t checksum = 0;

    double seconds(const CostModel &cm) const
    {
        return static_cast<double>(workUnits) * cm.workUnitNs * 1e-9;
    }
};

/** Validation verdict for a parallel run. */
struct Verdict
{
    bool ok = false;
    std::string detail;
};

class App
{
  public:
    virtual ~App() = default;

    virtual std::string name() const = 0;

    /**
     * Run the sequential reference. Stores the reference state
     * internally for later validate() calls.
     */
    virtual SeqResult runSequential(const AppParams &params) = 0;

    /**
     * The SPMD program executed by every node. Dispatches internally
     * on the runtime's model to the EC-style or LRC-style program.
     * After the final barrier, node 0 collects the results through the
     * protocol so its arena holds the final state.
     */
    virtual void runNode(Runtime &rt, const AppParams &params) = 0;

    /**
     * Compare node 0's collected state against the sequential
     * reference. Must be called after run() and runSequential().
     */
    virtual Verdict validate(Cluster &cluster,
                             const AppParams &params) = 0;
};

/** Factory: SOR, SOR+, QS, Water, Barnes, IS, 3D-FFT. */
std::unique_ptr<App> makeApp(const std::string &name);

/** All application names in Table 3 order. */
const std::vector<std::string> &allAppNames();

/** FNV-1a over raw bytes (bit-exact checksums for integer apps). */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/**
 * Compare two double sequences with relative tolerance; returns a
 * verdict with the worst offender in `detail`.
 */
Verdict compareDoubles(const std::vector<double> &expect,
                       const std::vector<double> &got, double rel_tol);

} // namespace dsm

#endif // DSM_APPS_APP_HH
