#include "apps/app.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace dsm {

AppParams
AppParams::testScale()
{
    AppParams p;
    p.sorRows = 24;
    p.sorCols = 16;
    p.sorIters = 4;
    p.qsElems = 2048;
    p.qsCutoff = 64;
    p.waterMolecules = 12;
    p.waterSteps = 2;
    p.barnesBodies = 48;
    p.barnesSteps = 2;
    p.isKeys = 4096;
    p.isBmax = 64;
    p.isRankings = 2;
    p.fftN1 = 8;
    p.fftN2 = 8;
    p.fftN3 = 4;
    p.fftIters = 1;
    return p;
}

AppParams
AppParams::benchScale()
{
    AppParams p;
    p.sorIters = 30;
    p.waterMolecules = 128;
    p.barnesBodies = 384;
    p.barnesSteps = 3;
    p.isRankings = 6;
    p.fftIters = 3;
    return p;
}

AppParams
AppParams::paperScale()
{
    AppParams p;
    p.sorRows = 1000;
    p.sorCols = 1000;
    p.sorIters = 50;
    p.qsElems = 262144;
    p.qsCutoff = 1024;
    p.waterMolecules = 343;
    p.waterSteps = 5;
    p.barnesBodies = 8192;
    p.barnesSteps = 5;
    p.isKeys = 1 << 20;
    p.isBmax = 1 << 9;
    p.isRankings = 10;
    p.fftN1 = 64;
    p.fftN2 = 64;
    p.fftN3 = 32;
    p.fftIters = 2;
    return p;
}

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

Verdict
compareDoubles(const std::vector<double> &expect,
               const std::vector<double> &got, double rel_tol)
{
    if (expect.size() != got.size()) {
        return {false, "size mismatch: expected " +
                           std::to_string(expect.size()) + " got " +
                           std::to_string(got.size())};
    }
    double worst = 0;
    std::size_t worst_at = 0;
    for (std::size_t i = 0; i < expect.size(); ++i) {
        const double denom = std::max({std::fabs(expect[i]),
                                       std::fabs(got[i]), 1.0});
        const double err = std::fabs(expect[i] - got[i]) / denom;
        if (err > worst) {
            worst = err;
            worst_at = i;
        }
    }
    if (worst > rel_tol) {
        std::ostringstream os;
        os << "max rel error " << worst << " at index " << worst_at
           << " (expected " << expect[worst_at] << ", got "
           << got[worst_at] << ")";
        return {false, os.str()};
    }
    std::ostringstream os;
    os << "max rel error " << worst << " over " << expect.size()
       << " values";
    return {true, os.str()};
}

// Factories are defined in the per-application translation units.
std::unique_ptr<App> makeSorApp(bool plus);
std::unique_ptr<App> makeQuicksortApp();
std::unique_ptr<App> makeWaterApp();
std::unique_ptr<App> makeBarnesApp();
std::unique_ptr<App> makeIsApp();
std::unique_ptr<App> makeFftApp();

std::unique_ptr<App>
makeApp(const std::string &name)
{
    if (name == "SOR")
        return makeSorApp(false);
    if (name == "SOR+")
        return makeSorApp(true);
    if (name == "QS")
        return makeQuicksortApp();
    if (name == "Water")
        return makeWaterApp();
    if (name == "Barnes-Hut")
        return makeBarnesApp();
    if (name == "IS")
        return makeIsApp();
    if (name == "3D-FFT")
        return makeFftApp();
    fatal("unknown application '%s'", name.c_str());
}

const std::vector<std::string> &
allAppNames()
{
    static const std::vector<std::string> kNames = {
        "SOR", "SOR+", "QS", "Water", "Barnes-Hut", "IS", "3D-FFT",
    };
    return kNames;
}

} // namespace dsm
