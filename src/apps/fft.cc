/**
 * @file
 * NAS 3D-FFT kernel (Section 2 of the paper). An n1 x n2 x n3 complex
 * array A is distributed along the first dimension. Each iteration
 * runs a forward 3-D FFT followed by the inverse transform:
 *
 *   forward: local 1-D FFTs along dims 3 and 2; pack per-reader
 *   staging blocks; barrier; unpack into the transposed array B
 *   (distributed along dim 2) and FFT along dim 1;
 *   inverse: inverse FFT along dim 1 on B; pack the reverse staging
 *   blocks; barrier; unpack into A and inverse FFT dims 2 and 3.
 *
 * The transpose exchanges contiguous packed staging blocks, one per
 * (writer, reader) pair. Under EC each block is bound to one lock
 * whose multi-page object is entirely rewritten before every
 * transfer — the paper's showcase for the update protocol: one
 * exchange brings all pages at the acquire, where LRC's invalidate
 * protocol takes a separate access miss per page. Forward and reverse
 * staging areas are separate allocations: memory is duplicated rather
 * than rebound (Section 3.3).
 */

#include "apps/app.hh"

#include <cmath>
#include <complex>
#include <numbers>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dsm {

namespace {

using Complex = std::complex<double>;

constexpr std::uint64_t kWorkPerButterfly = 16;
constexpr std::uint64_t kWorkPerPackElem = 2;

/** Iterative radix-2 Cooley-Tukey; n must be a power of two. */
void
fft1d(Complex *a, int n, bool inverse)
{
    for (int i = 1, j = 0; i < n; ++i) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (int len = 2; len <= n; len <<= 1) {
        const double ang =
            2 * std::numbers::pi / len * (inverse ? 1 : -1);
        const Complex wl(std::cos(ang), std::sin(ang));
        for (int i = 0; i < n; i += len) {
            Complex w(1);
            for (int k = 0; k < len / 2; ++k) {
                const Complex u = a[i + k];
                const Complex v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wl;
            }
        }
    }
    if (inverse) {
        for (int i = 0; i < n; ++i)
            a[i] /= n;
    }
}

std::uint64_t
fftWork(int n)
{
    int lg = 0;
    while ((1 << lg) < n)
        ++lg;
    return static_cast<std::uint64_t>(n) * lg * kWorkPerButterfly / 2;
}

/** FFT along dim 3 and dim 2 of planes [ilo, ihi) of @p a. */
std::uint64_t
fftDims32(Complex *a, int ilo, int ihi, int n2, int n3, bool inverse)
{
    std::uint64_t work = 0;
    std::vector<Complex> line(n2);
    for (int i = ilo; i < ihi; ++i) {
        Complex *plane = a + static_cast<std::size_t>(i - ilo) * n2 * n3;
        if (!inverse) {
            for (int j = 0; j < n2; ++j) {
                fft1d(plane + static_cast<std::size_t>(j) * n3, n3,
                      false);
                work += fftWork(n3);
            }
        }
        for (int k = 0; k < n3; ++k) {
            for (int j = 0; j < n2; ++j)
                line[j] = plane[static_cast<std::size_t>(j) * n3 + k];
            fft1d(line.data(), n2, inverse);
            for (int j = 0; j < n2; ++j)
                plane[static_cast<std::size_t>(j) * n3 + k] = line[j];
            work += fftWork(n2);
        }
        if (inverse) {
            for (int j = 0; j < n2; ++j) {
                fft1d(plane + static_cast<std::size_t>(j) * n3, n3,
                      true);
                work += fftWork(n3);
            }
        }
    }
    return work;
}

class FftApp : public App
{
  public:
    std::string name() const override { return "3D-FFT"; }

    SeqResult
    runSequential(const AppParams &params) override
    {
        const int n1 = params.fftN1, n2 = params.fftN2,
                  n3 = params.fftN3;
        const std::size_t total = static_cast<std::size_t>(n1) * n2 * n3;
        refData.resize(total);
        initData(params, refData.data());

        std::uint64_t work = 0;
        std::vector<Complex> line(n1);
        auto fft_dim1 = [&](bool inverse) {
            for (int j = 0; j < n2; ++j) {
                for (int k = 0; k < n3; ++k) {
                    for (int i = 0; i < n1; ++i)
                        line[i] = refData[(static_cast<std::size_t>(i) *
                                           n2 + j) * n3 + k];
                    fft1d(line.data(), n1, inverse);
                    for (int i = 0; i < n1; ++i)
                        refData[(static_cast<std::size_t>(i) * n2 + j) *
                                n3 + k] = line[i];
                    work += fftWork(n1);
                }
            }
        };

        for (int iter = 0; iter < params.fftIters; ++iter) {
            // Forward: dims 3, 2, then 1 — same order as the parallel
            // program, so the results track bit-for-bit.
            work += fftDims32(refData.data(), 0, n1, n2, n3, false);
            fft_dim1(false);
            // Inverse: dim 1, then dims 2, 3.
            fft_dim1(true);
            work += fftDims32(refData.data(), 0, n1, n2, n3, true);
        }

        SeqResult result;
        result.workUnits = work;
        result.checksum = 0;
        return result;
    }

    void runNode(Runtime &rt, const AppParams &params) override;

    Verdict
    validate(Cluster &cluster, const AppParams &params) override
    {
        const int n1 = params.fftN1, n2 = params.fftN2,
                  n3 = params.fftN3;
        const std::size_t total = static_cast<std::size_t>(n1) * n2 * n3;
        std::vector<double> expect, got;
        expect.reserve(2 * total);
        got.reserve(2 * total);
        const Complex *mem =
            reinterpret_cast<const Complex *>(cluster.memory(0, 0));
        for (std::size_t i = 0; i < total; ++i) {
            expect.push_back(refData[i].real());
            expect.push_back(refData[i].imag());
            got.push_back(mem[i].real());
            got.push_back(mem[i].imag());
        }
        return compareDoubles(expect, got, 1e-9);
    }

  private:
    static void
    initData(const AppParams &params, Complex *data)
    {
        Rng rng(params.seed ^ 0xff7);
        const std::size_t total = static_cast<std::size_t>(
                                      params.fftN1) *
                                  params.fftN2 * params.fftN3;
        for (std::size_t i = 0; i < total; ++i)
            data[i] = Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
    }

    std::vector<Complex> refData;
};

void
FftApp::runNode(Runtime &rt, const AppParams &params)
{
    const bool ec = rt.clusterConfig().runtime.model == Model::EC;
    const int n1 = params.fftN1, n2 = params.fftN2, n3 = params.fftN3;
    const int np = rt.nworkers();
    const int self = rt.worker();

    auto lo1 = [&](int p) { return p * n1 / np; };
    auto hi1 = [&](int p) { return (p + 1) * n1 / np; };
    auto lo2 = [&](int p) { return p * n2 / np; };
    auto hi2 = [&](int p) { return (p + 1) * n2 / np; };

    const std::size_t total = static_cast<std::size_t>(n1) * n2 * n3;

    // Shared allocations (identical order everywhere):
    // A (i-major), B (transposed, (j,k,i) layout), forward staging,
    // reverse staging.
    auto a_arr = SharedArray<Complex>::alloc(rt, total, 8, "fft.A");
    auto b_arr = SharedArray<Complex>::alloc(rt, total, 8, "fft.B");

    // stageF[p][q]: written by p (A-owner), read by q (B-owner);
    // layout (j - lo2(q), k, i - lo1(p)), i contiguous.
    // stageR[q][p]: written by q, read by p; layout
    // (i - lo1(p), j - lo2(q), k), k contiguous.
    std::vector<std::vector<SharedArray<Complex>>> stage_f(np),
        stage_r(np);
    for (int p = 0; p < np; ++p) {
        stage_f[p].resize(np);
        stage_r[p].resize(np);
    }
    for (int p = 0; p < np; ++p) {
        for (int q = 0; q < np; ++q) {
            const std::size_t sz = static_cast<std::size_t>(
                                       hi1(p) - lo1(p)) *
                                   (hi2(q) - lo2(q)) * n3;
            stage_f[p][q] = SharedArray<Complex>::alloc(
                rt, sz, 8, "fft.stageF");
            stage_r[q][p] = SharedArray<Complex>::alloc(
                rt, sz, 8, "fft.stageR");
        }
    }

    // Lock id spaces.
    auto a_lock = [&](int p) { return static_cast<LockId>(p); };
    auto b_lock = [&](int p) { return static_cast<LockId>(np + p); };
    auto f_lock = [&](int p, int q) {
        return static_cast<LockId>(2 * np + p * np + q);
    };
    auto r_lock = [&](int q, int p) {
        return static_cast<LockId>(2 * np + np * np + q * np + p);
    };
    if (ec) {
        for (int p = 0; p < np; ++p) {
            rt.bindLock(a_lock(p),
                        {a_arr.range(static_cast<std::size_t>(lo1(p)) *
                                         n2 * n3,
                                     static_cast<std::size_t>(
                                         hi1(p) - lo1(p)) * n2 * n3)});
            rt.bindLock(b_lock(p),
                        {b_arr.range(static_cast<std::size_t>(lo2(p)) *
                                         n3 * n1,
                                     static_cast<std::size_t>(
                                         hi2(p) - lo2(p)) * n3 * n1)});
            for (int q = 0; q < np; ++q) {
                rt.bindLock(f_lock(p, q),
                            {stage_f[p][q].wholeRange()});
                rt.bindLock(r_lock(p, q),
                            {stage_r[p][q].wholeRange()});
            }
        }
    }

    {
        std::vector<Complex> init(total);
        initData(params, init.data());
        rt.initBuf(a_arr.base(), init.data(), total);
    }

    BarrierId next_barrier = 0;
    rt.barrier(next_barrier++);

    const int my1 = hi1(self) - lo1(self);
    const int my2 = hi2(self) - lo2(self);
    std::vector<Complex> planes(static_cast<std::size_t>(my1) * n2 *
                                n3);
    std::vector<Complex> bpart(static_cast<std::size_t>(my2) * n3 * n1);
    std::vector<Complex> block;

    const GlobalAddr my_a =
        a_arr.addr(static_cast<std::size_t>(lo1(self)) * n2 * n3);
    const GlobalAddr my_b =
        b_arr.addr(static_cast<std::size_t>(lo2(self)) * n3 * n1);

    for (int iter = 0; iter < params.fftIters; ++iter) {
        // ---- Forward, dims 3 and 2 (local planes) ----
        if (ec)
            rt.acquire(a_lock(self), AccessMode::Write);
        rt.readBuf(my_a, planes.data(), planes.size());
        rt.chargeWork(fftDims32(planes.data(), lo1(self), hi1(self), n2,
                                n3, false));
        rt.writeBuf(my_a, planes.data(), planes.size());
        if (ec)
            rt.release(a_lock(self));

        // ---- Pack forward staging: one block per reader ----
        for (int q = 0; q < np; ++q) {
            block.resize(stage_f[self][q].size());
            std::size_t w = 0;
            for (int j = lo2(q); j < hi2(q); ++j) {
                for (int k = 0; k < n3; ++k) {
                    for (int i = 0; i < my1; ++i) {
                        block[w++] = planes[(static_cast<std::size_t>(
                                                 i) *
                                                 n2 +
                                             j) *
                                                n3 +
                                            k];
                    }
                }
            }
            rt.chargeWork(block.size() * kWorkPerPackElem);
            if (ec)
                rt.acquire(f_lock(self, q), AccessMode::Write);
            stage_f[self][q].store(0, block.data(), block.size());
            if (ec)
                rt.release(f_lock(self, q));
        }
        rt.barrier(next_barrier++);

        // ---- Unpack into B, FFT along dim 1 ----
        if (ec)
            rt.acquire(b_lock(self), AccessMode::Write);
        for (int p = 0; p < np; ++p) {
            if (ec)
                rt.acquire(f_lock(p, self), AccessMode::Read);
            block.resize(stage_f[p][self].size());
            stage_f[p][self].load(0, block.data(), block.size());
            if (ec)
                rt.release(f_lock(p, self));
            std::size_t r = 0;
            const int pw = hi1(p) - lo1(p);
            for (int j = 0; j < my2; ++j) {
                for (int k = 0; k < n3; ++k) {
                    Complex *dst =
                        &bpart[(static_cast<std::size_t>(j) * n3 + k) *
                               n1];
                    for (int i = 0; i < pw; ++i)
                        dst[lo1(p) + i] = block[r++];
                }
            }
            rt.chargeWork(block.size() * kWorkPerPackElem);
        }
        std::uint64_t work = 0;
        for (int j = 0; j < my2; ++j) {
            for (int k = 0; k < n3; ++k) {
                fft1d(&bpart[(static_cast<std::size_t>(j) * n3 + k) *
                             n1],
                      n1, false);
                work += fftWork(n1);
            }
        }
        // ---- Inverse along dim 1 ----
        for (int j = 0; j < my2; ++j) {
            for (int k = 0; k < n3; ++k) {
                fft1d(&bpart[(static_cast<std::size_t>(j) * n3 + k) *
                             n1],
                      n1, true);
                work += fftWork(n1);
            }
        }
        rt.chargeWork(work);
        rt.writeBuf(my_b, bpart.data(), bpart.size());
        if (ec)
            rt.release(b_lock(self));

        // ---- Pack reverse staging ----
        for (int p = 0; p < np; ++p) {
            block.resize(stage_r[self][p].size());
            const int pw = hi1(p) - lo1(p);
            std::size_t w = 0;
            for (int i = 0; i < pw; ++i) {
                for (int j = 0; j < my2; ++j) {
                    for (int k = 0; k < n3; ++k) {
                        block[w++] =
                            bpart[(static_cast<std::size_t>(j) * n3 +
                                   k) *
                                      n1 +
                                  lo1(p) + i];
                    }
                }
            }
            rt.chargeWork(block.size() * kWorkPerPackElem);
            if (ec)
                rt.acquire(r_lock(self, p), AccessMode::Write);
            stage_r[self][p].store(0, block.data(), block.size());
            if (ec)
                rt.release(r_lock(self, p));
        }
        rt.barrier(next_barrier++);

        // ---- Unpack into A, inverse dims 2 and 3 ----
        if (ec)
            rt.acquire(a_lock(self), AccessMode::Write);
        for (int q = 0; q < np; ++q) {
            if (ec)
                rt.acquire(r_lock(q, self), AccessMode::Read);
            block.resize(stage_r[q][self].size());
            stage_r[q][self].load(0, block.data(), block.size());
            if (ec)
                rt.release(r_lock(q, self));
            std::size_t r = 0;
            for (int i = 0; i < my1; ++i) {
                for (int j = lo2(q); j < hi2(q); ++j) {
                    for (int k = 0; k < n3; ++k) {
                        planes[(static_cast<std::size_t>(i) * n2 + j) *
                                   n3 +
                               k] = block[r++];
                    }
                }
            }
            rt.chargeWork(block.size() * kWorkPerPackElem);
        }
        rt.chargeWork(fftDims32(planes.data(), lo1(self), hi1(self), n2,
                                n3, true));
        rt.writeBuf(my_a, planes.data(), planes.size());
        if (ec)
            rt.release(a_lock(self));
        rt.barrier(next_barrier++);
    }

    // Collect the full A on node 0.
    if (self == 0) {
        if (ec) {
            for (int p = 1; p < np; ++p) {
                rt.acquire(a_lock(p), AccessMode::Read);
                rt.release(a_lock(p));
            }
        } else {
            std::vector<Complex> all(total);
            a_arr.load(0, all.data(), total);
        }
    }
    rt.barrier(next_barrier++);
}

} // namespace

std::unique_ptr<App>
makeFftApp()
{
    return std::make_unique<FftApp>();
}

} // namespace dsm
