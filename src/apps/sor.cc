/**
 * @file
 * Red-Black Successive Over-Relaxation (Section 2 of the paper).
 *
 * The matrix is banded by rows across processors; each iteration has a
 * red and a black phase separated by barriers. Rows are laid out with
 * all red elements first and all black elements next — the layout the
 * paper describes, which produces LRC's prefetch effect (fetching a
 * neighbour's red half brings the black half on the same page).
 *
 * EC program: read-only locks on neighbour boundary rows, exclusive
 * locks on own boundary rows, and one exclusive lock per band interior
 * (local reacquires after the first iteration). SOR+ declares only the
 * boundary rows shared; band interiors live in private memory.
 */

#include "apps/app.hh"

#include <cmath>

#include "util/logging.hh"

namespace dsm {

namespace {

constexpr double kOmega = 1.2;

/** Physical slot of logical column j within its row (reds first). */
inline int
slotInRow(int i, int j, int cols)
{
    return (i + j) % 2 == 0 ? j / 2 : cols / 2 + j / 2;
}

/** Work units per updated element: 4 loads, 3 adds, 2 mults, store. */
constexpr std::uint64_t kWorkPerElement = 20;

struct SorGeometry
{
    int rows;  ///< interior rows (1..rows); rows 0 and rows+1 constant
    int cols;
    int nprocs;

    int bandLo(int p) const { return 1 + p * rows / nprocs; }
    int bandHi(int p) const { return 1 + (p + 1) * rows / nprocs; }

    /** Is @p i the first or last row of some band? */
    bool
    isBoundary(int i) const
    {
        for (int p = 0; p < nprocs; ++p) {
            if (i == bandLo(p) || i == bandHi(p) - 1)
                return true;
        }
        return false;
    }
};

/** Deterministic nonzero initial value (changes every iteration). */
inline float
initValue(int i, int j, int cols)
{
    if (i == 0)
        return 1.0f;
    return static_cast<float>(((i * cols + j) % 97) + 1) / 97.0f;
}

/**
 * Update the @p color cells of row @p i. Rows are physical layouts
 * (reds first). Returns the updated row content in @p cur.
 */
void
updateRow(int i, int color, int cols, const float *prev, float *cur,
          const float *next)
{
    for (int j = 1; j <= cols - 2; ++j) {
        if ((i + j) % 2 != color)
            continue;
        const float up = prev[slotInRow(i - 1, j, cols)];
        const float down = next[slotInRow(i + 1, j, cols)];
        const float left = cur[slotInRow(i, j - 1, cols)];
        const float right = cur[slotInRow(i, j + 1, cols)];
        float &self = cur[slotInRow(i, j, cols)];
        const float avg = 0.25f * (up + down + left + right);
        self = self + static_cast<float>(kOmega) * (avg - self);
    }
}

class SorApp : public App
{
  public:
    explicit SorApp(bool plus) : plus(plus) {}

    std::string name() const override { return plus ? "SOR+" : "SOR"; }

    SeqResult
    runSequential(const AppParams &params) override
    {
        const int rows = params.sorRows;
        const int cols = params.sorCols;
        DSM_ASSERT(cols % 2 == 0, "SOR needs an even column count");

        reference.assign(static_cast<std::size_t>(rows + 2) * cols, 0.0f);
        for (int i = 0; i <= rows + 1; ++i) {
            for (int j = 0; j < cols; ++j)
                reference[i * cols + slotInRow(i, j, cols)] =
                    initValue(i, j, cols);
        }

        std::uint64_t work = 0;
        for (int iter = 0; iter < params.sorIters; ++iter) {
            for (int color = 0; color < 2; ++color) {
                for (int i = 1; i <= rows; ++i) {
                    updateRow(i, color, cols,
                              &reference[(i - 1) * cols],
                              &reference[i * cols],
                              &reference[(i + 1) * cols]);
                }
                work += static_cast<std::uint64_t>(rows) * (cols / 2) *
                        kWorkPerElement;
            }
        }

        SeqResult result;
        result.workUnits = work;
        result.checksum = fnv1a(reference.data(),
                                reference.size() * sizeof(float));
        return result;
    }

    void
    runNode(Runtime &rt, const AppParams &params) override
    {
        if (rt.clusterConfig().runtime.model == Model::EC)
            runEc(rt, params);
        else
            runLrc(rt, params);
    }

    Verdict validate(Cluster &cluster, const AppParams &params) override;

  private:
    /** Locks: row i -> lock id i; interior lock for band p -> rows+2+p.
     *  Results lock (SOR+ band checksums): rows+2+nprocs. */
    static LockId rowLock(int i) { return static_cast<LockId>(i); }

    LockId
    interiorLock(const SorGeometry &g, int p) const
    {
        return static_cast<LockId>(g.rows + 2 + p);
    }

    LockId
    resultsLock(const SorGeometry &g) const
    {
        return static_cast<LockId>(g.rows + 2 + g.nprocs);
    }

    void runEc(Runtime &rt, const AppParams &params);
    void runLrc(Runtime &rt, const AppParams &params);

    /** Shared allocation layout, identical on every node. */
    struct Layout
    {
        SharedArray<float> grid;      ///< full grid (SOR) or boundary
                                      ///< rows only (SOR+)
        SharedArray<std::uint64_t> bandSums; ///< per-band checksums
        std::vector<int> rowSlot;     ///< row -> index into grid rows;
                                      ///< -1 = private (SOR+)
    };

    Layout
    makeLayout(Runtime &rt, const SorGeometry &g)
    {
        Layout l;
        l.rowSlot.assign(g.rows + 2, -1);
        int shared_rows = 0;
        if (!plus) {
            for (int i = 0; i <= g.rows + 1; ++i)
                l.rowSlot[i] = shared_rows++;
        } else {
            for (int i = 0; i <= g.rows + 1; ++i) {
                if (i == 0 || i == g.rows + 1 || g.isBoundary(i))
                    l.rowSlot[i] = shared_rows++;
            }
        }
        l.grid = SharedArray<float>::alloc(
            rt, static_cast<std::size_t>(shared_rows) * g.cols, 4,
            "sor.grid");
        l.bandSums = SharedArray<std::uint64_t>::alloc(
            rt, g.nprocs, 4, "sor.bandSums");
        return l;
    }

    GlobalAddr
    rowAddr(const Layout &l, const SorGeometry &g, int i) const
    {
        DSM_ASSERT(l.rowSlot[i] >= 0, "row %d is not shared", i);
        return l.grid.addr(static_cast<std::size_t>(l.rowSlot[i]) *
                           g.cols);
    }

    bool plus;
    std::vector<float> reference;
    std::uint64_t finalBarrier = 0;
};

void
SorApp::runLrc(Runtime &rt, const AppParams &params)
{
    const SorGeometry g{params.sorRows, params.sorCols, rt.nworkers()};
    const int cols = g.cols;
    Layout l = makeLayout(rt, g);
    const int self = rt.worker();
    const int lo = g.bandLo(self);
    const int hi = g.bandHi(self);

    // Private interior storage for SOR+; full private mirror is not
    // needed for SOR (reads go to shared memory).
    std::vector<std::vector<float>> priv(g.rows + 2);

    // Identical initialization on every node (data segment idiom).
    for (int i = 0; i <= g.rows + 1; ++i) {
        std::vector<float> row(cols);
        for (int j = 0; j < cols; ++j)
            row[slotInRow(i, j, cols)] = initValue(i, j, cols);
        if (l.rowSlot[i] >= 0)
            rt.initBuf(rowAddr(l, g, i), row.data(), cols);
        if (plus && l.rowSlot[i] < 0 && i >= lo && i < hi)
            priv[i] = row;
        if (plus && (i == lo - 1 || i == hi) && l.rowSlot[i] < 0)
            priv[i] = row; // private neighbour copy (never happens:
                           // neighbour edges are always shared)
    }

    BarrierId next_barrier = 0;
    rt.barrier(next_barrier++);

    std::vector<float> prev_row(cols), cur_row(cols), next_row(cols);
    auto load_row = [&](int i, float *dst) {
        if (l.rowSlot[i] >= 0)
            rt.readBuf(rowAddr(l, g, i), dst, cols);
        else
            std::memcpy(dst, priv[i].data(), cols * sizeof(float));
    };
    auto store_row = [&](int i, int color, const float *src) {
        if (l.rowSlot[i] >= 0) {
            // Only the updated colour half changed; store that half.
            // Colour-0 cells occupy the first half of every row.
            const int start = color == 0 ? 0 : cols / 2;
            rt.writeBuf(rowAddr(l, g, i) + start * sizeof(float),
                        src + start, cols / 2);
        } else {
            std::memcpy(priv[i].data(), src, cols * sizeof(float));
        }
    };

    for (int iter = 0; iter < params.sorIters; ++iter) {
        for (int color = 0; color < 2; ++color) {
            for (int i = lo; i < hi; ++i) {
                load_row(i - 1, prev_row.data());
                load_row(i, cur_row.data());
                load_row(i + 1, next_row.data());
                updateRow(i, color, cols, prev_row.data(),
                          cur_row.data(), next_row.data());
                store_row(i, color, cur_row.data());
            }
            rt.chargeWork(static_cast<std::uint64_t>(hi - lo) *
                          (cols / 2) * kWorkPerElement);
            rt.barrier(next_barrier++);
        }
    }

    // Publish a checksum of my band (bit-exact), then collect on 0.
    std::uint64_t sum = 0;
    for (int i = lo; i < hi; ++i) {
        load_row(i, cur_row.data());
        sum = fnv1a(cur_row.data(), cols * sizeof(float), sum ^ i);
    }
    l.bandSums.set(self, sum);
    rt.barrier(next_barrier++);

    if (self == 0) {
        // Materialize every shared row locally (protocol reads).
        for (int i = 0; i <= g.rows + 1; ++i) {
            if (l.rowSlot[i] >= 0)
                rt.readBuf(rowAddr(l, g, i), cur_row.data(), cols);
        }
        for (int p = 0; p < g.nprocs; ++p)
            l.bandSums.get(p);
    }
    if (rt.worker() == 0)
        finalBarrier = next_barrier; // same value on every worker
    rt.barrier(next_barrier++);
}

void
SorApp::runEc(Runtime &rt, const AppParams &params)
{
    const SorGeometry g{params.sorRows, params.sorCols, rt.nworkers()};
    const int cols = g.cols;
    Layout l = makeLayout(rt, g);
    const int self = rt.worker();
    const int lo = g.bandLo(self);
    const int hi = g.bandHi(self);

    // Bind every shared row to its lock; bind band interiors (SOR only)
    // to one lock per band; bind the checksum array to its own lock.
    for (int i = 0; i <= g.rows + 1; ++i) {
        if (l.rowSlot[i] >= 0) {
            rt.bindLock(rowLock(i),
                        {{rowAddr(l, g, i), cols * sizeof(float)}});
        }
    }
    if (!plus) {
        for (int p = 0; p < g.nprocs; ++p) {
            const int plo = g.bandLo(p);
            const int phi = g.bandHi(p);
            if (phi - plo > 2) {
                const GlobalAddr base = rowAddr(l, g, plo + 1);
                rt.bindLock(interiorLock(g, p),
                            {{base, static_cast<std::uint64_t>(
                                        phi - plo - 2) *
                                        cols * sizeof(float)}});
            }
        }
    }
    rt.bindLock(resultsLock(g), {l.bandSums.wholeRange()});

    std::vector<std::vector<float>> priv(g.rows + 2);
    for (int i = 0; i <= g.rows + 1; ++i) {
        std::vector<float> row(cols);
        for (int j = 0; j < cols; ++j)
            row[slotInRow(i, j, cols)] = initValue(i, j, cols);
        if (l.rowSlot[i] >= 0)
            rt.initBuf(rowAddr(l, g, i), row.data(), cols);
        else if (i >= lo && i < hi)
            priv[i] = row;
    }

    BarrierId next_barrier = 0;
    rt.barrier(next_barrier++);

    const bool has_interior = !plus && hi - lo > 2;
    std::vector<float> prev_row(cols), cur_row(cols), next_row(cols);
    auto load_row = [&](int i, float *dst) {
        if (l.rowSlot[i] >= 0)
            rt.readBuf(rowAddr(l, g, i), dst, cols);
        else
            std::memcpy(dst, priv[i].data(), cols * sizeof(float));
    };
    auto store_half = [&](int i, int color, const float *src) {
        if (l.rowSlot[i] >= 0) {
            const int start = color == 0 ? 0 : cols / 2;
            rt.writeBuf(rowAddr(l, g, i) + start * sizeof(float),
                        src + start, cols / 2);
        } else {
            std::memcpy(priv[i].data(), src, cols * sizeof(float));
        }
    };

    for (int iter = 0; iter < params.sorIters; ++iter) {
        for (int color = 0; color < 2; ++color) {
            // Read-only locks on the neighbour boundary rows we read.
            rt.acquire(rowLock(lo - 1), AccessMode::Read);
            rt.acquire(rowLock(hi), AccessMode::Read);
            // Exclusive locks on everything we write.
            rt.acquire(rowLock(lo), AccessMode::Write);
            if (hi - 1 != lo)
                rt.acquire(rowLock(hi - 1), AccessMode::Write);
            if (has_interior)
                rt.acquire(interiorLock(g, self), AccessMode::Write);

            for (int i = lo; i < hi; ++i) {
                load_row(i - 1, prev_row.data());
                load_row(i, cur_row.data());
                load_row(i + 1, next_row.data());
                updateRow(i, color, cols, prev_row.data(),
                          cur_row.data(), next_row.data());
                store_half(i, color, cur_row.data());
            }
            rt.chargeWork(static_cast<std::uint64_t>(hi - lo) *
                          (cols / 2) * kWorkPerElement);

            if (has_interior)
                rt.release(interiorLock(g, self));
            if (hi - 1 != lo)
                rt.release(rowLock(hi - 1));
            rt.release(rowLock(lo));
            rt.release(rowLock(hi));
            rt.release(rowLock(lo - 1));
            rt.barrier(next_barrier++);
        }
    }

    std::uint64_t sum = 0;
    for (int i = lo; i < hi; ++i) {
        load_row(i, cur_row.data());
        sum = fnv1a(cur_row.data(), cols * sizeof(float), sum ^ i);
    }
    rt.acquire(resultsLock(g), AccessMode::Write);
    l.bandSums.set(self, sum);
    rt.release(resultsLock(g));
    rt.barrier(next_barrier++);

    if (self == 0) {
        // Collect: read-only locks bring every shared row current.
        for (int i = 0; i <= g.rows + 1; ++i) {
            if (l.rowSlot[i] < 0)
                continue;
            rt.acquire(rowLock(i), AccessMode::Read);
            rt.release(rowLock(i));
        }
        if (!plus) {
            for (int p = 0; p < g.nprocs; ++p) {
                if (g.bandHi(p) - g.bandLo(p) > 2) {
                    rt.acquire(interiorLock(g, p), AccessMode::Read);
                    rt.release(interiorLock(g, p));
                }
            }
        }
        rt.acquire(resultsLock(g), AccessMode::Read);
        rt.release(resultsLock(g));
    }
    if (rt.worker() == 0)
        finalBarrier = next_barrier; // same value on every worker
    rt.barrier(next_barrier++);
}

Verdict
SorApp::validate(Cluster &cluster, const AppParams &params)
{
    const SorGeometry g{params.sorRows, params.sorCols,
                        cluster.nworkers()};
    const int cols = g.cols;

    // Rebuild the layout bookkeeping (allocation order is fixed).
    std::vector<int> row_slot(g.rows + 2, -1);
    int shared_rows = 0;
    for (int i = 0; i <= g.rows + 1; ++i) {
        if (!plus || i == 0 || i == g.rows + 1 || g.isBoundary(i))
            row_slot[i] = shared_rows++;
    }
    const GlobalAddr grid_base = 0; // first allocation starts at 0

    // 1. Shared rows must match the reference bit-exactly on node 0.
    for (int i = 0; i <= g.rows + 1; ++i) {
        if (row_slot[i] < 0)
            continue;
        const float *got = reinterpret_cast<const float *>(
            cluster.memory(0, grid_base + static_cast<GlobalAddr>(
                                              row_slot[i]) *
                                              cols * sizeof(float)));
        if (std::memcmp(got, &reference[i * cols],
                        cols * sizeof(float)) != 0) {
            return {false, "shared row " + std::to_string(i) +
                               " differs from the reference"};
        }
    }

    // 2. Per-band checksums (covers private interiors in SOR+).
    const GlobalAddr sums_base =
        (grid_base +
         static_cast<GlobalAddr>(shared_rows) * cols * sizeof(float) +
         7) &
        ~GlobalAddr{7};
    for (int p = 0; p < g.nprocs; ++p) {
        std::uint64_t expect = 0;
        for (int i = g.bandLo(p); i < g.bandHi(p); ++i) {
            expect = fnv1a(&reference[i * cols], cols * sizeof(float),
                           expect ^ i);
        }
        std::uint64_t got;
        std::memcpy(&got,
                    cluster.memory(0, sums_base + p * sizeof(got)),
                    sizeof(got));
        if (got != expect) {
            return {false, "band " + std::to_string(p) +
                               " checksum mismatch"};
        }
    }
    return {true, "grid and band checksums match the reference"};
}

} // namespace

std::unique_ptr<App>
makeSorApp(bool plus)
{
    return std::make_unique<SorApp>(plus);
}

} // namespace dsm
