/**
 * @file
 * Water-style molecular dynamics (Section 2 of the paper; simplified
 * force field, same sharing structure as the SPLASH code the paper
 * uses). Molecules are distributed across processors. Each timestep:
 *
 *  force phase    — each processor computes pair interactions between
 *                   its molecules and those of the following half of
 *                   the processors, accumulating into a private array
 *                   (as the SPLASH report suggests), then applies the
 *                   accumulated updates under per-molecule force locks;
 *  displacement   — each processor updates the displacements of its
 *  phase            own molecules from the accumulated forces.
 *
 * EC program: per-molecule read-only locks on displacements during the
 * force phase and on forces during the displacement phase; exclusive
 * per-molecule locks for every update. The molecule record interleaves
 * displacement and force fields (array-of-records), so EC-ci uses
 * 8-byte (double-word) trapping granularity.
 *
 * The restructured variant (Section 7.2) splits the records into two
 * arrays and binds one per-processor lock to the displacement chunk of
 * each owner, trading per-molecule messages for one bulk update.
 */

#include "apps/app.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dsm {

namespace {

constexpr std::uint64_t kWorkPerPair = 250;
constexpr std::uint64_t kWorkPerUpdate = 20;
constexpr double kDt = 0.004;
constexpr double kCutoff2 = 6.25; // interaction cutoff squared

/** Lock id spaces. */
LockId
dispLock(int m)
{
    return static_cast<LockId>(1 + m);
}

LockId
forceLock(int nmol, int m)
{
    return static_cast<LockId>(1 + nmol + m);
}

LockId
procDispLock(int nmol, int p)
{
    return static_cast<LockId>(1 + 2 * nmol + p);
}

/** Simplified pair force: soft-sphere repulsion + weak attraction. */
inline void
pairForce(const double *di, const double *dj, double *fi, double *fj)
{
    double r2 = 0;
    double d[3];
    for (int k = 0; k < 3; ++k) {
        d[k] = di[k] - dj[k];
        r2 += d[k] * d[k];
    }
    if (r2 >= kCutoff2 || r2 < 1e-12)
        return;
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    const double mag = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
    for (int k = 0; k < 3; ++k) {
        const double f = mag * d[k];
        fi[k] += f;
        fj[k] -= f;
    }
}

class WaterApp : public App
{
  public:
    std::string name() const override { return "Water"; }

    SeqResult
    runSequential(const AppParams &params) override
    {
        const int m = params.waterMolecules;
        refDisp.assign(3 * m, 0.0);
        std::vector<double> force(3 * m, 0.0);
        initDisp(params, refDisp.data());

        std::uint64_t work = 0;
        for (int step = 0; step < params.waterSteps; ++step) {
            std::fill(force.begin(), force.end(), 0.0);
            for (int i = 0; i < m; ++i) {
                for (int j = i + 1; j < m; ++j) {
                    pairForce(&refDisp[3 * i], &refDisp[3 * j],
                              &force[3 * i], &force[3 * j]);
                }
            }
            work += static_cast<std::uint64_t>(m) * (m - 1) / 2 *
                    kWorkPerPair;
            for (int i = 0; i < 3 * m; ++i)
                refDisp[i] += kDt * force[i];
            work += static_cast<std::uint64_t>(m) * kWorkPerUpdate;
        }

        SeqResult result;
        result.workUnits = work;
        result.checksum = quantizedChecksum(refDisp);
        return result;
    }

    void runNode(Runtime &rt, const AppParams &params) override;

    Verdict
    validate(Cluster &cluster, const AppParams &params) override
    {
        const int m = params.waterMolecules;
        std::vector<double> got(3 * m);
        if (!params.waterRestructured) {
            // Array of records: [disp[3] force[3]] per molecule.
            for (int i = 0; i < m; ++i) {
                const double *rec = reinterpret_cast<const double *>(
                    cluster.memory(0, static_cast<GlobalAddr>(i) * 6 *
                                          sizeof(double)));
                for (int k = 0; k < 3; ++k)
                    got[3 * i + k] = rec[k];
            }
        } else {
            const double *disp = reinterpret_cast<const double *>(
                cluster.memory(0, 0));
            std::copy(disp, disp + 3 * m, got.begin());
        }
        // Force application order differs across processors, so the
        // sums are not bit-exact; a few steps stay well within 1e-9.
        return compareDoubles(refDisp, got, 1e-9);
    }

  private:
    static void
    initDisp(const AppParams &params, double *disp)
    {
        Rng rng(params.seed ^ 0x4a7e);
        const int m = params.waterMolecules;
        // Roughly uniform in a box sized for liquid-like density.
        const double box = std::cbrt(static_cast<double>(m)) * 1.2;
        for (int i = 0; i < 3 * m; ++i)
            disp[i] = rng.uniform() * box;
    }

    static std::uint64_t
    quantizedChecksum(const std::vector<double> &v)
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (double x : v) {
            const auto q = static_cast<std::int64_t>(x * 1e6);
            h = fnv1a(&q, sizeof(q), h);
        }
        return h;
    }

    std::vector<double> refDisp;
};

void
WaterApp::runNode(Runtime &rt, const AppParams &params)
{
    const bool ec = rt.clusterConfig().runtime.model == Model::EC;
    const bool restructured = params.waterRestructured;
    const int m = params.waterMolecules;
    const int np = rt.nworkers();
    const int self = rt.worker();
    const int lo = self * m / np;
    const int hi = (self + 1) * m / np;

    // Shared layout. Array-of-records: rec i = 6 doubles
    // (disp x,y,z, force x,y,z). Restructured: two separate arrays.
    SharedArray<double> records, disp_arr, force_arr;
    if (!restructured) {
        records = SharedArray<double>::alloc(rt, 6 * m, 8, "water.mol");
    } else {
        disp_arr = SharedArray<double>::alloc(rt, 3 * m, 8,
                                              "water.disp");
        force_arr = SharedArray<double>::alloc(rt, 3 * m, 8,
                                               "water.force");
    }

    auto disp_range = [&](int i) -> Range {
        return restructured ? disp_arr.range(3 * i, 3)
                            : records.range(6 * i, 3);
    };
    auto force_range = [&](int i) -> Range {
        return restructured ? force_arr.range(3 * i, 3)
                            : records.range(6 * i + 3, 3);
    };
    auto disp_addr = [&](int i) {
        return restructured ? disp_arr.addr(3 * i)
                            : records.addr(6 * i);
    };
    auto force_addr = [&](int i) {
        return restructured ? force_arr.addr(3 * i)
                            : records.addr(6 * i + 3);
    };

    if (ec) {
        for (int i = 0; i < m; ++i)
            rt.bindLock(forceLock(m, i), {force_range(i)});
        if (!restructured) {
            for (int i = 0; i < m; ++i)
                rt.bindLock(dispLock(i), {disp_range(i)});
        } else {
            // Section 7.2: one per-processor lock over the contiguous
            // displacement chunk of that processor's molecules.
            for (int p = 0; p < np; ++p) {
                const int plo = p * m / np;
                const int phi = (p + 1) * m / np;
                rt.bindLock(procDispLock(m, p),
                            {disp_arr.range(3 * plo,
                                            3 * (phi - plo))});
            }
        }
    }

    // Identical initial displacements everywhere; forces zero.
    {
        std::vector<double> disp(3 * m);
        initDisp(params, disp.data());
        for (int i = 0; i < m; ++i)
            rt.initBuf(disp_addr(i), &disp[3 * i], 3);
    }

    BarrierId next_barrier = 0;
    rt.barrier(next_barrier++);

    std::vector<double> acc(3 * m);        // private accumulator
    std::vector<double> disp_cache(3 * m); // displacements this step

    for (int step = 0; step < params.waterSteps; ++step) {
        // --- Force phase ---------------------------------------
        // Zero own forces (owner writes; exclusive lock under EC).
        for (int i = lo; i < hi; ++i) {
            if (ec)
                rt.acquire(forceLock(m, i), AccessMode::Write);
            const double zero3[3] = {0, 0, 0};
            rt.writeBuf(force_addr(i), zero3, 3);
            if (ec)
                rt.release(forceLock(m, i));
        }
        rt.barrier(next_barrier++);

        // Read the displacements I interact with. Interaction set:
        // my molecules with each other, and with the molecules of the
        // following floor(np/2) processors (ring), exactly half the
        // pair matrix when combined across processors.
        std::vector<int> partners;
        for (int d = 1; d <= np / 2; ++d) {
            const int p = (self + d) % np;
            if (d == np - d && p < self)
                continue; // even np: split the opposite processor
            partners.push_back(p);
        }

        auto load_disp = [&](int i) {
            if (ec && !restructured && (i < lo || i >= hi))
                rt.acquire(dispLock(i), AccessMode::Read);
            rt.readBuf(disp_addr(i), &disp_cache[3 * i], 3);
            if (ec && !restructured && (i < lo || i >= hi))
                rt.release(dispLock(i));
        };
        for (int i = lo; i < hi; ++i)
            load_disp(i);
        for (int p : partners) {
            const int plo = p * m / np;
            const int phi = (p + 1) * m / np;
            if (ec && restructured) {
                rt.acquire(procDispLock(m, p), AccessMode::Read);
                rt.readBuf(disp_addr(plo), &disp_cache[3 * plo],
                           3 * (phi - plo));
                rt.release(procDispLock(m, p));
            } else {
                for (int i = plo; i < phi; ++i)
                    load_disp(i);
            }
        }

        // Accumulate pair forces privately.
        std::fill(acc.begin(), acc.end(), 0.0);
        std::uint64_t pairs = 0;
        for (int i = lo; i < hi; ++i) {
            for (int j = i + 1; j < hi; ++j) {
                pairForce(&disp_cache[3 * i], &disp_cache[3 * j],
                          &acc[3 * i], &acc[3 * j]);
                ++pairs;
            }
            for (int p : partners) {
                const int plo = p * m / np;
                const int phi = (p + 1) * m / np;
                for (int j = plo; j < phi; ++j) {
                    pairForce(&disp_cache[3 * i], &disp_cache[3 * j],
                              &acc[3 * i], &acc[3 * j]);
                    ++pairs;
                }
            }
        }
        rt.chargeWork(pairs * kWorkPerPair);

        // Apply the accumulated updates at once (SPLASH style): one
        // exclusive per-molecule lock per touched molecule.
        for (int i = 0; i < m; ++i) {
            const double *a = &acc[3 * i];
            if (a[0] == 0 && a[1] == 0 && a[2] == 0)
                continue;
            rt.acquire(forceLock(m, i), AccessMode::Write);
            double f[3];
            rt.readBuf(force_addr(i), f, 3);
            for (int k = 0; k < 3; ++k)
                f[k] += a[k];
            rt.writeBuf(force_addr(i), f, 3);
            rt.release(forceLock(m, i));
        }
        rt.barrier(next_barrier++);

        // --- Displacement phase --------------------------------
        for (int i = lo; i < hi; ++i) {
            // Read the force (EC: read-only lock — written by several
            // processors in the force phase).
            if (ec)
                rt.acquire(forceLock(m, i), AccessMode::Read);
            double f[3];
            rt.readBuf(force_addr(i), f, 3);
            if (ec)
                rt.release(forceLock(m, i));

            if (ec) {
                rt.acquire(restructured ? procDispLock(m, self)
                                        : dispLock(i),
                           AccessMode::Write);
            }
            double d[3];
            rt.readBuf(disp_addr(i), d, 3);
            for (int k = 0; k < 3; ++k)
                d[k] += kDt * f[k];
            rt.writeBuf(disp_addr(i), d, 3);
            if (ec) {
                rt.release(restructured ? procDispLock(m, self)
                                        : dispLock(i));
            }
        }
        rt.chargeWork(static_cast<std::uint64_t>(hi - lo) *
                      kWorkPerUpdate);
        rt.barrier(next_barrier++);
    }

    // Collect on node 0: bring every displacement current through the
    // protocol before reading it.
    if (self == 0) {
        if (ec && restructured) {
            for (int p = 0; p < np; ++p) {
                rt.acquire(procDispLock(m, p), AccessMode::Read);
                rt.release(procDispLock(m, p));
            }
        }
        for (int i = 0; i < m; ++i) {
            if (ec && !restructured) {
                rt.acquire(dispLock(i), AccessMode::Read);
                rt.release(dispLock(i));
            }
            double d[3];
            rt.readBuf(disp_addr(i), d, 3);
        }
    }
    rt.barrier(next_barrier++);
}

} // namespace

std::unique_ptr<App>
makeWaterApp()
{
    return std::make_unique<WaterApp>();
}

} // namespace dsm
