/**
 * @file
 * Quicksort with a centralized task queue (Section 2 of the paper).
 * A processor dequeues a sub-array, partitions it, enqueues the
 * smaller partition, and keeps the larger; partitions at or below the
 * cutoff are sorted locally with bubblesort.
 *
 * LRC program: one exclusive lock protects the queue; the same lock
 * also makes the task's array data visible to the dequeuer (write
 * notices piggyback on the lock grant).
 *
 * EC program (Section 3.3): the queue lock is bound to the queue
 * record only, so the task *data* needs its own synchronization — a
 * lock per queue entry, *rebound* to the sub-array of the task placed
 * in that entry. The entry is published in the queue only after the
 * rebinding is complete (entries carry a ready flag), and rebinding
 * makes the next transfer conservatively carry the whole bound range
 * (Section 7.1).
 */

#include "apps/app.hh"

#include <algorithm>
#include <cstdio>
#include <array>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dsm {

namespace {

constexpr LockId kQueueLock = 0;
constexpr std::uint64_t kWorkPerPartitionElem = 8;
constexpr std::uint64_t kWorkPerBubbleElem = 6;
constexpr std::int32_t kNotReady = -1;

LockId
entryLock(int e)
{
    return static_cast<LockId>(1 + e);
}

/** Hoare-style partition with middle pivot; returns the split point
 *  (first index of the right part), guaranteed in (lo, hi). */
int
partitionRange(int *a, int lo, int hi)
{
    const int pivot = a[lo + (hi - lo) / 2];
    int i = lo - 1;
    int j = hi;
    for (;;) {
        do {
            ++i;
        } while (a[i] < pivot);
        do {
            --j;
        } while (a[j] > pivot);
        if (i >= j)
            return j + 1;
        std::swap(a[i], a[j]);
    }
}

void
bubbleSort(int *a, int lo, int hi)
{
    for (int i = hi - 1; i > lo; --i) {
        bool swapped = false;
        for (int j = lo; j < i; ++j) {
            if (a[j] > a[j + 1]) {
                std::swap(a[j], a[j + 1]);
                swapped = true;
            }
        }
        if (!swapped)
            break;
    }
}

/**
 * Shared queue record layout (int32 words):
 *   [0] head, [1] tail, [2] remaining, [3] leafCount,
 *   [4..] ring entries (lo, hi, ready) x capacity,
 * followed by the leaf log: (lo, hi, sorted, sum31) x maxLeaves.
 */
struct QueueView
{
    SharedArray<std::int32_t> words;
    int capacity = 0;
    int maxLeaves = 0;

    static constexpr int kHead = 0;
    static constexpr int kTail = 1;
    static constexpr int kRemaining = 2;
    static constexpr int kLeafCount = 3;
    static constexpr int kEntries = 4;

    int entryBase(int slot) const { return kEntries + 3 * slot; }

    int
    leafBase(int leaf) const
    {
        return kEntries + 3 * capacity + 4 * leaf;
    }

    int
    totalWords() const
    {
        return kEntries + 3 * capacity + 4 * maxLeaves;
    }
};

class QuicksortApp : public App
{
  public:
    std::string name() const override { return "QS"; }

    SeqResult
    runSequential(const AppParams &params) override
    {
        const int n = params.qsElems;
        input.resize(n);
        Rng rng(params.seed ^ 0x9511);
        for (int &v : input)
            v = static_cast<int>(rng.below(1u << 30));

        sorted = input;
        std::uint64_t work = 0;
        std::vector<std::pair<int, int>> stack{{0, n}};
        while (!stack.empty()) {
            auto [lo, hi] = stack.back();
            stack.pop_back();
            while (hi - lo > params.qsCutoff) {
                const int mid = partitionRange(sorted.data(), lo, hi);
                work += static_cast<std::uint64_t>(hi - lo) *
                        kWorkPerPartitionElem;
                if (mid - lo < hi - mid) {
                    stack.push_back({lo, mid});
                    lo = mid;
                } else {
                    stack.push_back({mid, hi});
                    hi = mid;
                }
            }
            bubbleSort(sorted.data(), lo, hi);
            work += static_cast<std::uint64_t>(hi - lo) * (hi - lo) *
                    kWorkPerBubbleElem / 2;
        }
        DSM_ASSERT(std::is_sorted(sorted.begin(), sorted.end()),
                   "sequential quicksort failed");

        SeqResult result;
        result.workUnits = work;
        result.checksum =
            fnv1a(sorted.data(), sorted.size() * sizeof(int));
        return result;
    }

    void runNode(Runtime &rt, const AppParams &params) override;

    /** Replay the fixed bump-allocation layout (array, queue,
     *  verdict) to locate the verdict word. validate() runs on the
     *  launcher side, which under a process-per-node transport never
     *  executes runNode, so the address must come from the layout
     *  rather than from state recorded during the run. */
    static GlobalAddr
    verdictBase(const AppParams &params)
    {
        const auto align8 = [](GlobalAddr a) {
            return (a + 7) & ~static_cast<GlobalAddr>(7);
        };
        const int n = params.qsElems;
        const int leaves =
            std::max(64, 8 * n / std::max(1, params.qsCutoff));
        QueueView q;
        q.maxLeaves = leaves;
        q.capacity = leaves;
        GlobalAddr addr =
            align8(static_cast<GlobalAddr>(n) * sizeof(int));
        addr = align8(addr + static_cast<GlobalAddr>(q.totalWords()) *
                                 sizeof(std::int32_t));
        return addr;
    }

    Verdict
    validate(Cluster &cluster, const AppParams &params) override
    {
        const std::int32_t verdict = *reinterpret_cast<const int *>(
            cluster.memory(0, verdictBase(params)));
        if (verdict != 1) {
            return {false, "in-run verification failed (verdict=" +
                               std::to_string(verdict) + ")"};
        }
        return {true, "leaf log covers the array, leaves sorted, "
                      "checksums match"};
    }

  private:
    std::vector<int> input;
    std::vector<int> sorted;
};

void
QuicksortApp::runNode(Runtime &rt, const AppParams &params)
{
    const bool ec = rt.clusterConfig().runtime.model == Model::EC;
    const int n = params.qsElems;
    const int cutoff = params.qsCutoff;
    const int self = rt.worker();

    auto array = SharedArray<int>::alloc(rt, n, 4, "qs.array");

    QueueView q;
    // Capacity bounds total enqueues over the run (~2N/cutoff), so
    // ring slots — and their entry locks — are never reused while a
    // slow dequeuer still holds one.
    q.maxLeaves = std::max(64, 8 * n / std::max(1, cutoff));
    q.capacity = q.maxLeaves;
    q.words = SharedArray<std::int32_t>::alloc(rt, q.totalWords(), 4,
                                               "qs.queue");
    auto verdict =
        SharedArray<std::int32_t>::alloc(rt, 1, 4, "qs.verdict");
    DSM_ASSERT(verdict.base() == verdictBase(params),
               "qs.verdict landed off the replayed layout");
    const LockId verdict_lock = entryLock(q.capacity);

    if (ec) {
        rt.bindLock(kQueueLock, {q.words.wholeRange()});
        for (int e = 0; e < q.capacity; ++e)
            rt.bindLock(entryLock(e), {});
        rt.bindLock(verdict_lock, {verdict.wholeRange()});
    }

    {
        std::vector<int> init(n);
        Rng rng(params.seed ^ 0x9511);
        for (int &v : init)
            v = static_cast<int>(rng.below(1u << 30));
        rt.initBuf(array.base(), init.data(), n);
    }

    rt.barrier(0);

    auto qget = [&](int w) { return q.words.get(w); };
    auto qset = [&](int w, std::int32_t v) { q.words.set(w, v); };

    /** Reserve a ring slot for [lo, hi), rebind its entry lock (EC),
     *  then publish it. */
    auto enqueue = [&](int lo, int hi) {
        rt.acquire(kQueueLock, AccessMode::Write);
        const int tail = qget(QueueView::kTail);
        DSM_ASSERT(tail - qget(QueueView::kHead) < q.capacity,
                   "task queue overflow");
        const int slot = tail % q.capacity;
        qset(q.entryBase(slot) + 0, lo);
        qset(q.entryBase(slot) + 1, hi);
        qset(q.entryBase(slot) + 2, kNotReady);
        qset(QueueView::kTail, tail + 1);
        rt.release(kQueueLock);

        if (ec) {
            rt.acquireForRebind(entryLock(slot));
            rt.rebindLock(entryLock(slot),
                          {array.range(lo, hi - lo)});
            rt.release(entryLock(slot));
        }

        rt.acquire(kQueueLock, AccessMode::Write);
        qset(q.entryBase(slot) + 2, 1); // ready
        rt.release(kQueueLock);
        return slot;
    };

    // Node 0 seeds the queue with the whole array.
    if (self == 0) {
        rt.acquire(kQueueLock, AccessMode::Write);
        qset(QueueView::kHead, 0);
        qset(QueueView::kTail, 0);
        qset(QueueView::kRemaining, n);
        qset(QueueView::kLeafCount, 0);
        rt.release(kQueueLock);
        enqueue(0, n);
    }
    rt.barrier(1);

    std::vector<int> buf;
    for (;;) {
        // Dequeue the head task if it is ready.
        int lo = 0, hi = 0, entry = -1;
        bool done = false;
        rt.acquire(kQueueLock, AccessMode::Write);
        if (qget(QueueView::kRemaining) == 0) {
            done = true;
        } else {
            const int head = qget(QueueView::kHead);
            if (head != qget(QueueView::kTail)) {
                const int slot = head % q.capacity;
                if (qget(q.entryBase(slot) + 2) == 1) {
                    lo = qget(q.entryBase(slot) + 0);
                    hi = qget(q.entryBase(slot) + 1);
                    entry = slot;
                    qset(QueueView::kHead, head + 1);
                }
            }
        }
        rt.release(kQueueLock);
        if (done)
            break;
        if (entry < 0) {
            rt.pollIdle(); // polling backoff (parks w/ DSM_BLOCKING_DEQ)
            continue;
        }

        // Take the task data (EC: the entry lock's update carries it).
        if (ec)
            rt.acquire(entryLock(entry), AccessMode::Write);
        const int task_lo = lo;
        buf.resize(hi - lo);
        array.load(lo, buf.data(), buf.size());

        while (hi - lo > cutoff) {
            const int mid =
                lo + partitionRange(buf.data() + (lo - task_lo), 0,
                                    hi - lo);
            rt.chargeWork(static_cast<std::uint64_t>(hi - lo) *
                          kWorkPerPartitionElem);
            array.store(lo, buf.data() + (lo - task_lo), hi - lo);

            if (mid - lo < hi - mid) {
                enqueue(lo, mid);
                lo = mid;
            } else {
                enqueue(mid, hi);
                hi = mid;
            }
        }

        // Leaf: bubblesort, write back, publish to the leaf log.
        bubbleSort(buf.data() + (lo - task_lo), 0, hi - lo);
        rt.chargeWork(static_cast<std::uint64_t>(hi - lo) * (hi - lo) *
                      kWorkPerBubbleElem / 2);
        array.store(lo, buf.data() + (lo - task_lo), hi - lo);
        std::uint64_t leaf_sum = 0;
        for (int i = 0; i < hi - lo; ++i)
            leaf_sum += static_cast<std::uint32_t>(
                buf[(lo - task_lo) + i]);
        if (ec)
            rt.release(entryLock(entry));

        rt.acquire(kQueueLock, AccessMode::Write);
        const int leaf = qget(QueueView::kLeafCount);
        DSM_ASSERT(leaf < q.maxLeaves, "leaf log overflow");
        qset(q.leafBase(leaf) + 0, lo);
        qset(q.leafBase(leaf) + 1, hi);
        qset(q.leafBase(leaf) + 2, 1);
        qset(q.leafBase(leaf) + 3,
             static_cast<std::int32_t>(leaf_sum & 0x7fffffff));
        qset(QueueView::kLeafCount, leaf + 1);
        qset(QueueView::kRemaining,
             qget(QueueView::kRemaining) - (hi - lo));
        rt.release(kQueueLock);
    }

    rt.barrier(2);

    // Node 0 verifies coverage, per-leaf sortedness, boundary order,
    // and the 31-bit element checksum; LRC additionally re-reads the
    // whole array and checks global sortedness.
    if (self == 0) {
        bool ok = true;
        rt.acquire(kQueueLock,
                   ec ? AccessMode::Read : AccessMode::Write);
        const int leaves = qget(QueueView::kLeafCount);
        std::vector<std::array<int, 4>> log(leaves);
        for (int i = 0; i < leaves; ++i) {
            log[i] = {qget(q.leafBase(i) + 0), qget(q.leafBase(i) + 1),
                      qget(q.leafBase(i) + 2), qget(q.leafBase(i) + 3)};
        }
        rt.release(kQueueLock);

        std::sort(log.begin(), log.end());
        int expect_lo = 0;
        for (const auto &leaf : log) {
            if (leaf[0] != expect_lo || leaf[2] != 1) {
                std::fprintf(stderr,
                             "QS verify: coverage broken at leaf "
                             "[%d,%d) expected lo=%d (leaves=%d)\n",
                             leaf[0], leaf[1], expect_lo, leaves);
                ok = false;
                break;
            }
            expect_lo = leaf[1];
        }
        if (ok && expect_lo != n) {
            std::fprintf(stderr,
                         "QS verify: coverage ends at %d, want %d\n",
                         expect_lo, n);
            ok = false;
        }

        if (ok) {
            std::uint64_t expect_sum = 0;
            for (int v : input)
                expect_sum += static_cast<std::uint32_t>(v);
            std::uint64_t got_sum = 0;
            for (const auto &leaf : log)
                got_sum += static_cast<std::uint32_t>(leaf[3]);
            if ((expect_sum & 0x7fffffff) != (got_sum & 0x7fffffff)) {
                std::fprintf(stderr,
                             "QS verify: checksum mismatch "
                             "(got %llx want %llx)\n",
                             static_cast<unsigned long long>(
                                 got_sum & 0x7fffffff),
                             static_cast<unsigned long long>(
                                 expect_sum & 0x7fffffff));
                ok = false;
            }
        }

        if (ok && !ec) {
            std::vector<int> final_array(n);
            array.load(0, final_array.data(), n);
            auto bad = std::is_sorted_until(final_array.begin(),
                                            final_array.end());
            if (bad != final_array.end()) {
                std::fprintf(stderr,
                             "QS verify: unsorted at index %zd "
                             "(%d > %d)\n",
                             bad - final_array.begin() - 1, *(bad - 1),
                             *bad);
                ok = false;
            }
        }

        rt.acquire(verdict_lock, AccessMode::Write);
        rt.write<std::int32_t>(verdict.base(), ok ? 1 : 0);
        rt.release(verdict_lock);
    }
    rt.barrier(3);
}

} // namespace

std::unique_ptr<App>
makeQuicksortApp()
{
    return std::make_unique<QuicksortApp>();
}

} // namespace dsm
