/**
 * @file
 * NAS Integer Sort (Section 2 of the paper): rank N keys in [0, Bmax)
 * by counting sort. Phase 1: each processor ranks its keys locally,
 * then adds its counts into the shared bucket array under an exclusive
 * lock — the bucket array is the paper's canonical *migratory* data
 * (smaller than a page). Phase 2 (after a barrier): every processor
 * reads the final buckets (EC: read-only lock) and computes the global
 * ranks of its own keys, writing them to its slice of the shared rank
 * array (EC: per-processor exclusive locks).
 */

#include "apps/app.hh"

#include <numeric>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dsm {

namespace {

constexpr LockId kBucketLock = 0;
constexpr std::uint64_t kWorkPerKey = 20;

LockId
rankLock(int p)
{
    return static_cast<LockId>(1 + p);
}

class IsApp : public App
{
  public:
    std::string name() const override { return "IS"; }

    SeqResult
    runSequential(const AppParams &params) override
    {
        const int n = params.isKeys;
        const int bmax = params.isBmax;

        keys.resize(n);
        Rng rng(params.seed);
        for (int &k : keys)
            k = static_cast<int>(rng.below(bmax));

        std::uint64_t work = 0;
        refRanks.assign(n, 0);
        for (int rep = 0; rep < params.isRankings; ++rep) {
            std::vector<int> buckets(bmax, 0);
            for (int k : keys)
                buckets[k]++;
            // Exclusive prefix sum: rank of the first key with value v.
            std::vector<int> prefix(bmax, 0);
            std::partial_sum(buckets.begin(), buckets.end() - 1,
                             prefix.begin() + 1);
            std::vector<int> next = prefix;
            for (int i = 0; i < n; ++i)
                refRanks[i] = next[keys[i]]++;
            work += static_cast<std::uint64_t>(n) * kWorkPerKey +
                    2 * bmax;
        }

        SeqResult result;
        result.workUnits = work;
        result.checksum = fnv1a(refRanks.data(),
                                refRanks.size() * sizeof(int));
        return result;
    }

    void
    runNode(Runtime &rt, const AppParams &params) override
    {
        const bool ec = rt.clusterConfig().runtime.model == Model::EC;
        const int n = params.isKeys;
        const int bmax = params.isBmax;
        const int self = rt.worker();
        const int np = rt.nworkers();
        const int lo = self * n / np;
        const int hi = (self + 1) * n / np;

        auto shared_keys = SharedArray<int>::alloc(rt, n, 4, "is.keys");
        auto buckets = SharedArray<int>::alloc(rt, bmax, 4, "is.buckets");
        auto ranks = SharedArray<int>::alloc(rt, n, 4, "is.ranks");

        if (ec) {
            rt.bindLock(kBucketLock, {buckets.wholeRange()});
            for (int p = 0; p < np; ++p) {
                const int plo = p * n / np;
                const int phi = (p + 1) * n / np;
                rt.bindLock(rankLock(p), {ranks.range(plo, phi - plo)});
            }
        }

        // Keys are input data: identical on every node (data segment).
        {
            std::vector<int> init(n);
            Rng rng(params.seed);
            for (int &k : init)
                k = static_cast<int>(rng.below(bmax));
            rt.initBuf(shared_keys.base(), init.data(), n);
        }

        BarrierId next_barrier = 0;
        rt.barrier(next_barrier++);

        std::vector<int> my_keys(hi - lo);
        shared_keys.load(lo, my_keys.data(), my_keys.size());

        for (int rep = 0; rep < params.isRankings; ++rep) {
            // Reset the buckets (rotating resetter, under the lock).
            if (self == rep % np) {
                rt.acquire(kBucketLock, AccessMode::Write);
                std::vector<int> zeros(bmax, 0);
                buckets.store(0, zeros.data(), bmax);
                rt.release(kBucketLock);
            }
            rt.barrier(next_barrier++);

            // Phase 1: local ranking, then merge into shared buckets.
            std::vector<int> local(bmax, 0);
            for (int k : my_keys)
                local[k]++;
            rt.chargeWork(static_cast<std::uint64_t>(my_keys.size()) *
                          kWorkPerKey / 2);

            rt.acquire(kBucketLock, AccessMode::Write);
            std::vector<int> cur(bmax);
            buckets.load(0, cur.data(), bmax);
            for (int b = 0; b < bmax; ++b)
                cur[b] += local[b];
            buckets.store(0, cur.data(), bmax);
            rt.release(kBucketLock);
            rt.chargeWork(2u * bmax);
            rt.barrier(next_barrier++);

            // Phase 2: read the final buckets, rank my keys.
            if (ec)
                rt.acquire(kBucketLock, AccessMode::Read);
            std::vector<int> final_buckets(bmax);
            buckets.load(0, final_buckets.data(), bmax);
            if (ec)
                rt.release(kBucketLock);

            std::vector<int> prefix(bmax, 0);
            std::partial_sum(final_buckets.begin(),
                             final_buckets.end() - 1, prefix.begin() + 1);
            // Global rank = prefix[key] + number of equal keys at lower
            // global index. Keys are input data (replicated), so the
            // equal-keys-before count needs no communication.
            std::vector<int> seen_before(bmax, 0);
            {
                std::vector<int> other(lo);
                if (lo > 0)
                    shared_keys.load(0, other.data(), lo);
                for (int k : other)
                    seen_before[k]++;
            }
            std::vector<int> my_ranks(my_keys.size());
            for (std::size_t i = 0; i < my_keys.size(); ++i) {
                const int k = my_keys[i];
                my_ranks[i] = prefix[k] + seen_before[k]++;
            }
            rt.chargeWork(static_cast<std::uint64_t>(n) + 2 * bmax +
                          my_keys.size() * kWorkPerKey / 2);

            if (ec)
                rt.acquire(rankLock(self), AccessMode::Write);
            ranks.store(lo, my_ranks.data(), my_ranks.size());
            if (ec)
                rt.release(rankLock(self));
            rt.barrier(next_barrier++);
        }

        // Collect on node 0.
        if (self == 0) {
            if (ec) {
                for (int p = 0; p < np; ++p) {
                    rt.acquire(rankLock(p), AccessMode::Read);
                    rt.release(rankLock(p));
                }
            } else {
                std::vector<int> all(n);
                ranks.load(0, all.data(), n);
            }
        }
        rt.barrier(next_barrier++);
    }

    Verdict
    validate(Cluster &cluster, const AppParams &params) override
    {
        const int n = params.isKeys;
        const int bmax = params.isBmax;
        // Allocation order: keys, buckets, ranks (ints, 8-aligned).
        auto align8 = [](GlobalAddr a) {
            return (a + 7) & ~GlobalAddr{7};
        };
        const GlobalAddr keys_base = 0;
        const GlobalAddr buckets_base =
            align8(keys_base + static_cast<GlobalAddr>(n) * 4);
        const GlobalAddr ranks_base =
            align8(buckets_base + static_cast<GlobalAddr>(bmax) * 4);

        const int *got = reinterpret_cast<const int *>(
            cluster.memory(0, ranks_base));
        for (int i = 0; i < n; ++i) {
            if (got[i] != refRanks[i]) {
                return {false,
                        "rank[" + std::to_string(i) + "] = " +
                            std::to_string(got[i]) + ", expected " +
                            std::to_string(refRanks[i])};
            }
        }
        return {true, "all " + std::to_string(n) + " ranks match"};
    }

  private:
    std::vector<int> keys;
    std::vector<int> refRanks;
};

} // namespace

std::unique_ptr<App>
makeIsApp()
{
    return std::make_unique<IsApp>();
}

} // namespace dsm
