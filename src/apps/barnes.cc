/**
 * @file
 * Barnes-Hut N-body simulation (Section 2 of the paper). Bodies exert
 * gravity through a hierarchical oct-tree of cells. Each timestep:
 *
 *   tree build      — processor 0 rebuilds the oct-tree from the body
 *                     positions and publishes cells + per-body costs;
 *   load balancing  — every processor reads the shared cost data and
 *                     recomputes the body partition;
 *   force phase     — each processor computes forces on its bodies by
 *                     tree traversal (theta opening criterion);
 *   position phase  — each processor advances its own bodies.
 *
 * Phases are separated by barriers; within a phase at most one
 * processor updates any item (no write races), exactly the structure
 * the paper describes. Under EC, cells and bodies are read through
 * read-only locks; a body's fields are split into two lock sets (core:
 * position/velocity/mass/cost; force) because the force phase accesses
 * fields of two bodies together and a single per-body lock would
 * deadlock (Section 3.3, Object granularity).
 */

#include "apps/app.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dsm {

namespace {

constexpr double kGravity = 1.0;
constexpr double kSoftening2 = 1e-4;
constexpr double kDt = 0.02;

constexpr std::uint64_t kWorkPerCellVisit = 40;
constexpr std::uint64_t kWorkPerInteraction = 250;
constexpr std::uint64_t kWorkPerUpdate = 25;
constexpr std::uint64_t kWorkPerInsert = 40;

constexpr int kCoreStride = 8;  ///< pos3, vel3, mass, cost
constexpr int kCellDStride = 10; ///< center3, half, com3, mass, cost, pad
constexpr int kCellIStride = 8;  ///< child slots

constexpr int kEmpty = -1;

inline int
encodeBody(int b)
{
    return -2 - b;
}

inline bool
isBody(int child)
{
    return child <= -2;
}

inline int
decodeBody(int child)
{
    return -2 - child;
}

/** Local (plain-memory) tree used by both the sequential reference and
 *  the published/reconstructed shared tree. */
struct LocalTree
{
    std::vector<double> cellD; ///< kCellDStride per cell
    std::vector<int> cellI;    ///< kCellIStride per cell
    int numCells = 0;

    double *d(int c) { return &cellD[c * kCellDStride]; }
    const double *d(int c) const { return &cellD[c * kCellDStride]; }
    int *kids(int c) { return &cellI[c * kCellIStride]; }
    const int *kids(int c) const { return &cellI[c * kCellIStride]; }

    int
    newCell(const double *center, double half)
    {
        const int c = numCells++;
        DSM_ASSERT(static_cast<std::size_t>(c) * kCellDStride <
                       cellD.size(),
                   "cell pool exhausted");
        double *cd = d(c);
        for (int k = 0; k < 3; ++k)
            cd[k] = center[k];
        cd[3] = half;
        for (int k = 4; k < kCellDStride; ++k)
            cd[k] = 0;
        for (int k = 0; k < kCellIStride; ++k)
            kids(c)[k] = kEmpty;
        return c;
    }
};

struct Bodies
{
    std::vector<double> core;  ///< kCoreStride per body
    std::vector<double> force; ///< 3 per body (padded to 4)

    double *pos(int b) { return &core[b * kCoreStride]; }
    double *vel(int b) { return &core[b * kCoreStride + 3]; }
    double &mass(int b) { return core[b * kCoreStride + 6]; }
    double &cost(int b) { return core[b * kCoreStride + 7]; }
    double *f(int b) { return &force[b * 4]; }
};

int
octantOf(const double *center, const double *pos)
{
    int oct = 0;
    for (int k = 0; k < 3; ++k) {
        if (pos[k] >= center[k])
            oct |= 1 << k;
    }
    return oct;
}

/** Build the oct-tree over all bodies; returns charged work units. */
std::uint64_t
buildTree(LocalTree &tree, Bodies &bodies, int m)
{
    tree.numCells = 0;
    const int capacity = 8 * m + 64;
    tree.cellD.assign(static_cast<std::size_t>(capacity) * kCellDStride,
                      0.0);
    tree.cellI.assign(static_cast<std::size_t>(capacity) * kCellIStride,
                      kEmpty);

    double lo[3], hi[3];
    for (int k = 0; k < 3; ++k) {
        lo[k] = 1e30;
        hi[k] = -1e30;
    }
    for (int b = 0; b < m; ++b) {
        for (int k = 0; k < 3; ++k) {
            lo[k] = std::min(lo[k], bodies.pos(b)[k]);
            hi[k] = std::max(hi[k], bodies.pos(b)[k]);
        }
    }
    double center[3], half = 0;
    for (int k = 0; k < 3; ++k) {
        center[k] = 0.5 * (lo[k] + hi[k]);
        half = std::max(half, 0.5 * (hi[k] - lo[k]) + 1e-9);
    }
    tree.newCell(center, half);

    std::uint64_t work = 0;
    for (int b = 0; b < m; ++b) {
        int cur = 0;
        int depth = 0;
        for (;;) {
            DSM_ASSERT(++depth < 128, "oct-tree too deep "
                                      "(coincident bodies?)");
            const double *cd = tree.d(cur);
            const int oct = octantOf(cd, bodies.pos(b));
            int &slot = tree.kids(cur)[oct];
            if (slot == kEmpty) {
                slot = encodeBody(b);
                break;
            }
            if (isBody(slot)) {
                // Split: push the resident body down one level.
                const int other = decodeBody(slot);
                double sub[3];
                const double sh = cd[3] / 2;
                for (int k = 0; k < 3; ++k) {
                    sub[k] = cd[k] +
                             ((oct >> k) & 1 ? sh : -sh);
                }
                const int nc = tree.newCell(sub, sh);
                slot = nc;
                const int ooct =
                    octantOf(tree.d(nc), bodies.pos(other));
                tree.kids(nc)[ooct] = encodeBody(other);
                cur = nc;
                continue;
            }
            cur = slot;
        }
        work += kWorkPerInsert;
    }

    // Bottom-up mass, center of mass, and cost aggregation. Cells are
    // created parent-before-child, so a reverse sweep is bottom-up.
    for (int c = tree.numCells - 1; c >= 0; --c) {
        double *cd = tree.d(c);
        double msum = 0, cost = 0, com[3] = {0, 0, 0};
        for (int s = 0; s < 8; ++s) {
            const int child = tree.kids(c)[s];
            if (child == kEmpty)
                continue;
            double cm, cc, cpos[3];
            if (isBody(child)) {
                const int b = decodeBody(child);
                cm = bodies.mass(b);
                cc = bodies.cost(b);
                for (int k = 0; k < 3; ++k)
                    cpos[k] = bodies.pos(b)[k];
            } else {
                const double *kd = tree.d(child);
                cm = kd[7];
                cc = kd[8];
                for (int k = 0; k < 3; ++k)
                    cpos[k] = kd[4 + k];
            }
            msum += cm;
            cost += cc;
            for (int k = 0; k < 3; ++k)
                com[k] += cm * cpos[k];
        }
        cd[7] = msum;
        cd[8] = cost;
        for (int k = 0; k < 3; ++k)
            cd[4 + k] = msum > 0 ? com[k] / msum : cd[k];
    }
    return work;
}

/** Accumulate the force on body @p b; returns interactions count.
 *  @p visit is called once per cell whose data the traversal reads. */
template <typename Visit>
std::uint64_t
forceOnBody(const LocalTree &tree, Bodies &bodies, int b, double theta,
            double *out, Visit visit)
{
    std::uint64_t interactions = 0;
    std::vector<int> stack{0};
    const double *bp = bodies.pos(b);
    while (!stack.empty()) {
        const int c = stack.back();
        stack.pop_back();
        visit(c);
        for (int s = 0; s < 8; ++s) {
            const int child = tree.kids(c)[s];
            if (child == kEmpty)
                continue;
            double d[3], m;
            if (isBody(child)) {
                const int j = decodeBody(child);
                if (j == b)
                    continue;
                for (int k = 0; k < 3; ++k)
                    d[k] = bodies.pos(j)[k] - bp[k];
                m = bodies.mass(j);
            } else {
                const double *kd = tree.d(child);
                double r2 = kSoftening2;
                for (int k = 0; k < 3; ++k) {
                    const double dd = kd[4 + k] - bp[k];
                    r2 += dd * dd;
                }
                if (2 * kd[3] * 2 * kd[3] >= theta * theta * r2) {
                    stack.push_back(child);
                    continue;
                }
                for (int k = 0; k < 3; ++k)
                    d[k] = kd[4 + k] - bp[k];
                m = kd[7];
            }
            double r2 = kSoftening2;
            for (int k = 0; k < 3; ++k)
                r2 += d[k] * d[k];
            const double inv = 1.0 / std::sqrt(r2);
            const double mag = kGravity * m * inv * inv * inv;
            for (int k = 0; k < 3; ++k)
                out[k] += mag * d[k];
            ++interactions;
        }
    }
    return interactions;
}

class BarnesApp : public App
{
  public:
    std::string name() const override { return "Barnes-Hut"; }

    SeqResult
    runSequential(const AppParams &params) override
    {
        const int m = params.barnesBodies;
        Bodies bodies;
        initBodies(params, bodies);
        LocalTree tree;

        std::uint64_t work = 0;
        for (int step = 0; step < params.barnesSteps; ++step) {
            work += buildTree(tree, bodies, m);
            std::uint64_t visits = 0, inter = 0;
            for (int b = 0; b < m; ++b) {
                double f[3] = {0, 0, 0};
                const std::uint64_t n = forceOnBody(
                    tree, bodies, b, params.barnesTheta, f,
                    [&](int) { ++visits; });
                inter += n;
                for (int k = 0; k < 3; ++k)
                    bodies.f(b)[k] = f[k];
                bodies.cost(b) = static_cast<double>(n) + 1;
            }
            work += visits * kWorkPerCellVisit +
                    inter * kWorkPerInteraction;
            for (int b = 0; b < m; ++b) {
                for (int k = 0; k < 3; ++k) {
                    bodies.vel(b)[k] += kDt * bodies.f(b)[k];
                    bodies.pos(b)[k] += kDt * bodies.vel(b)[k];
                }
            }
            work += static_cast<std::uint64_t>(m) * kWorkPerUpdate;
        }

        refCore = bodies.core;
        SeqResult result;
        result.workUnits = work;
        result.checksum = 0;
        return result;
    }

    void runNode(Runtime &rt, const AppParams &params) override;

    Verdict
    validate(Cluster &cluster, const AppParams &params) override
    {
        const int m = params.barnesBodies;
        // Core array is the first allocation (offset 0) on node 0.
        const double *got =
            reinterpret_cast<const double *>(cluster.memory(0, 0));
        std::vector<double> expect_pos, got_pos;
        for (int b = 0; b < m; ++b) {
            for (int k = 0; k < 3; ++k) {
                expect_pos.push_back(refCore[b * kCoreStride + k]);
                got_pos.push_back(got[b * kCoreStride + k]);
            }
        }
        return compareDoubles(expect_pos, got_pos, 1e-10);
    }

  private:
    static void
    initBodies(const AppParams &params, Bodies &bodies)
    {
        const int m = params.barnesBodies;
        bodies.core.assign(static_cast<std::size_t>(m) * kCoreStride,
                           0.0);
        bodies.force.assign(static_cast<std::size_t>(m) * 4, 0.0);
        Rng rng(params.seed ^ 0xb0d7);
        for (int b = 0; b < m; ++b) {
            for (int k = 0; k < 3; ++k) {
                bodies.pos(b)[k] = rng.uniform() * 10.0 - 5.0;
                bodies.vel(b)[k] = (rng.uniform() - 0.5) * 0.1;
            }
            bodies.mass(b) = 0.5 + rng.uniform();
            bodies.cost(b) = 1.0;
        }
    }

    std::vector<double> refCore;
};

void
BarnesApp::runNode(Runtime &rt, const AppParams &params)
{
    const bool ec = rt.clusterConfig().runtime.model == Model::EC;
    const int m = params.barnesBodies;
    const int np = rt.nworkers();
    const int self = rt.worker();
    const int cell_capacity = 8 * m + 64;

    auto core_arr = SharedArray<double>::alloc(
        rt, static_cast<std::size_t>(m) * kCoreStride, 8, "bh.core");
    auto force_arr = SharedArray<double>::alloc(
        rt, static_cast<std::size_t>(m) * 4, 8, "bh.force");
    auto celld_arr = SharedArray<double>::alloc(
        rt, static_cast<std::size_t>(cell_capacity) * kCellDStride, 8,
        "bh.cellD");
    auto celli_arr = SharedArray<std::int32_t>::alloc(
        rt, static_cast<std::size_t>(cell_capacity) * kCellIStride, 4,
        "bh.cellI");
    auto meta_arr =
        SharedArray<std::int32_t>::alloc(rt, 2, 4, "bh.meta");

    // Lock spaces: tree meta; per-cell (two non-contiguous ranges:
    // doubles + child ints); per-body core; per-body force.
    const LockId tree_lock = 0;
    auto cell_lock = [&](int c) { return static_cast<LockId>(1 + c); };
    auto core_lock = [&](int b) {
        return static_cast<LockId>(1 + cell_capacity + b);
    };
    auto flock = [&](int b) {
        return static_cast<LockId>(1 + cell_capacity + m + b);
    };
    if (ec) {
        rt.bindLock(tree_lock, {meta_arr.wholeRange()});
        for (int c = 0; c < cell_capacity; ++c) {
            rt.bindLock(
                cell_lock(c),
                {celld_arr.range(static_cast<std::size_t>(c) *
                                     kCellDStride,
                                 kCellDStride),
                 celli_arr.range(static_cast<std::size_t>(c) *
                                     kCellIStride,
                                 kCellIStride)});
        }
        for (int b = 0; b < m; ++b) {
            rt.bindLock(core_lock(b),
                        {core_arr.range(static_cast<std::size_t>(b) *
                                            kCoreStride,
                                        kCoreStride)});
            rt.bindLock(flock(b),
                        {force_arr.range(static_cast<std::size_t>(b) *
                                             4,
                                         4)});
        }
    }

    // Identical initial bodies everywhere.
    Bodies bodies;
    initBodies(params, bodies);
    rt.initBuf(core_arr.base(), bodies.core.data(), bodies.core.size());
    rt.initBuf(force_arr.base(), bodies.force.data(),
               bodies.force.size());

    BarrierId next_barrier = 0;
    rt.barrier(next_barrier++);

    LocalTree tree;
    std::vector<char> core_fresh(m, 0);

    auto fetch_core = [&](int b) {
        if (core_fresh[b])
            return;
        if (ec) {
            rt.acquire(core_lock(b), AccessMode::Read);
            rt.release(core_lock(b));
        }
        rt.readBuf(core_arr.addr(static_cast<std::size_t>(b) *
                                 kCoreStride),
                   bodies.pos(b), kCoreStride);
        core_fresh[b] = 1;
    };

    for (int step = 0; step < params.barnesSteps; ++step) {
        std::fill(core_fresh.begin(), core_fresh.end(), 0);

        // --- Tree build (processor 0) --------------------------
        if (self == 0) {
            for (int b = 0; b < m; ++b)
                fetch_core(b);
            rt.chargeWork(buildTree(tree, bodies, m));

            // Publish the used cells and the count.
            for (int c = 0; c < tree.numCells; ++c) {
                if (ec)
                    rt.acquire(cell_lock(c), AccessMode::Write);
                rt.writeBuf(
                    celld_arr.addr(static_cast<std::size_t>(c) *
                                   kCellDStride),
                    tree.d(c), kCellDStride);
                rt.writeBuf(
                    celli_arr.addr(static_cast<std::size_t>(c) *
                                   kCellIStride),
                    tree.kids(c), kCellIStride);
                if (ec)
                    rt.release(cell_lock(c));
            }
            if (ec)
                rt.acquire(tree_lock, AccessMode::Write);
            meta_arr.set(0, tree.numCells);
            if (ec)
                rt.release(tree_lock);
        }
        rt.barrier(next_barrier++);

        // --- Load balancing + tree read ------------------------
        // Read the tree (EC: read-only lock per cell — the paper's
        // load-balancing/force-phase read pattern).
        int ncells;
        if (ec) {
            rt.acquire(tree_lock, AccessMode::Read);
            ncells = meta_arr.get(0);
            rt.release(tree_lock);
        } else {
            ncells = meta_arr.get(0);
        }
        if (self != 0) {
            tree.numCells = ncells;
            tree.cellD.resize(static_cast<std::size_t>(cell_capacity) *
                              kCellDStride);
            tree.cellI.resize(static_cast<std::size_t>(cell_capacity) *
                              kCellIStride);
            for (int c = 0; c < ncells; ++c) {
                if (ec) {
                    rt.acquire(cell_lock(c), AccessMode::Read);
                    rt.release(cell_lock(c));
                }
                rt.readBuf(celld_arr.addr(static_cast<std::size_t>(c) *
                                          kCellDStride),
                           tree.d(c), kCellDStride);
                rt.readBuf(celli_arr.addr(static_cast<std::size_t>(c) *
                                          kCellIStride),
                           tree.kids(c), kCellIStride);
            }
        }

        // Cost-weighted contiguous partition from the root cost.
        // Every processor derives the same boundaries from per-body
        // costs, fetched through the protocol (the load-balance read).
        std::vector<double> cost_prefix(m + 1, 0.0);
        for (int b = 0; b < m; ++b) {
            fetch_core(b);
            cost_prefix[b + 1] = cost_prefix[b] + bodies.cost(b);
        }
        rt.chargeWork(static_cast<std::uint64_t>(m) * 3);
        auto owner_range = [&](int p) {
            const double total = cost_prefix[m];
            const double lo_t = total * p / np;
            const double hi_t = total * (p + 1) / np;
            int blo = static_cast<int>(
                std::lower_bound(cost_prefix.begin() + 1,
                                 cost_prefix.end(), lo_t,
                                 [](double a, double t) {
                                     return a <= t;
                                 }) -
                (cost_prefix.begin() + 1));
            int bhi = static_cast<int>(
                std::lower_bound(cost_prefix.begin() + 1,
                                 cost_prefix.end(), hi_t,
                                 [](double a, double t) {
                                     return a <= t;
                                 }) -
                (cost_prefix.begin() + 1));
            if (p == np - 1)
                bhi = m;
            return std::pair<int, int>(blo, bhi);
        };
        const auto [blo, bhi] = owner_range(self);

        // --- Force phase ----------------------------------------
        std::uint64_t visits = 0, inter = 0;
        std::vector<double> new_cost(std::max(0, bhi - blo), 0.0);
        for (int b = blo; b < bhi; ++b) {
            double f[3] = {0, 0, 0};
            // The traversal reads other bodies' cores on demand.
            // Leaf bodies the traversal reads are fresh: every core
            // was fetched during the load-balance cost scan above.
            const std::uint64_t n =
                forceOnBody(tree, bodies, b, params.barnesTheta, f,
                            [&](int) { ++visits; });
            inter += n;
            new_cost[b - blo] = static_cast<double>(n) + 1;
            if (ec)
                rt.acquire(flock(b), AccessMode::Write);
            rt.writeBuf(force_arr.addr(static_cast<std::size_t>(b) * 4),
                        f, 3);
            if (ec)
                rt.release(flock(b));
        }
        rt.chargeWork(visits * kWorkPerCellVisit +
                      inter * kWorkPerInteraction);
        rt.barrier(next_barrier++);

        // --- Position phase -------------------------------------
        for (int b = blo; b < bhi; ++b) {
            if (ec)
                rt.acquire(flock(b), AccessMode::Read);
            double f[3];
            rt.readBuf(force_arr.addr(static_cast<std::size_t>(b) * 4),
                       f, 3);
            if (ec)
                rt.release(flock(b));

            if (ec)
                rt.acquire(core_lock(b), AccessMode::Write);
            double rec[kCoreStride];
            rt.readBuf(core_arr.addr(static_cast<std::size_t>(b) *
                                     kCoreStride),
                       rec, kCoreStride);
            for (int k = 0; k < 3; ++k) {
                rec[3 + k] += kDt * f[k];     // velocity
                rec[k] += kDt * rec[3 + k];   // position
            }
            rec[7] = new_cost[b - blo];       // cost
            rt.writeBuf(core_arr.addr(static_cast<std::size_t>(b) *
                                      kCoreStride),
                        rec, kCoreStride);
            if (ec)
                rt.release(core_lock(b));
        }
        rt.chargeWork(static_cast<std::uint64_t>(bhi - blo) *
                      kWorkPerUpdate);
        rt.barrier(next_barrier++);
    }

    // Collect all body cores on node 0.
    if (self == 0) {
        std::fill(core_fresh.begin(), core_fresh.end(), 0);
        for (int b = 0; b < m; ++b)
            fetch_core(b);
    }
    rt.barrier(next_barrier++);
}

} // namespace

std::unique_ptr<App>
makeBarnesApp()
{
    return std::make_unique<BarnesApp>();
}

} // namespace dsm
