#include "util/buffer_pool.hh"

namespace dsm {

BufferPool &
BufferPool::instance()
{
    static BufferPool pool;
    return pool;
}

std::vector<std::byte>
BufferPool::acquire(std::size_t reserve_hint)
{
    std::vector<std::byte> buf;
    {
        std::lock_guard<std::mutex> g(mu);
        counters.acquires++;
        if (on && !cache.empty()) {
            counters.hits++;
            buf = std::move(cache.back());
            cache.pop_back();
            counters.cached = cache.size();
        }
    }
    buf.clear();
    if (reserve_hint > buf.capacity())
        buf.reserve(reserve_hint);
    return buf;
}

void
BufferPool::release(std::vector<std::byte> &&buf)
{
    std::lock_guard<std::mutex> g(mu);
    counters.releases++;
    if (!on || buf.capacity() < kMinUsefulCapacity ||
        buf.capacity() > kMaxCachedCapacity || cache.size() >= kMaxCached) {
        counters.discarded++;
        return; // freed when buf goes out of scope
    }
    buf.clear();
    cache.push_back(std::move(buf));
    counters.cached = cache.size();
}

void
BufferPool::setEnabled(bool enabled)
{
    std::lock_guard<std::mutex> g(mu);
    on = enabled;
    if (!on)
        cache.clear();
    counters.cached = cache.size();
}

bool
BufferPool::enabled() const
{
    std::lock_guard<std::mutex> g(mu);
    return on;
}

BufferPool::PoolStats
BufferPool::stats() const
{
    std::lock_guard<std::mutex> g(mu);
    return counters;
}

void
BufferPool::drain()
{
    std::lock_guard<std::mutex> g(mu);
    cache.clear();
    counters = PoolStats{};
}

} // namespace dsm
