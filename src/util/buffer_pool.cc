#include "util/buffer_pool.hh"

namespace dsm {

/**
 * Per-thread freelist. Destroyed at thread exit, spilling its buffers
 * back to the global cache (joined simulation threads recycle their
 * warm buffers into the next run). The function-local singleton in
 * BufferPool::instance() outlives every thread-local on both the main
 * thread ([basic.start.term]) and joined worker threads.
 */
struct BufferPoolLocalCache
{
    std::vector<std::vector<std::byte>> bufs;

    ~BufferPoolLocalCache()
    {
        if (!bufs.empty())
            BufferPool::instance().adoptOrphans(std::move(bufs));
    }
};

namespace {

BufferPoolLocalCache &
localCache()
{
    thread_local BufferPoolLocalCache tl;
    return tl;
}

} // namespace

BufferPool &
BufferPool::instance()
{
    static BufferPool pool;
    return pool;
}

std::vector<std::byte>
BufferPool::acquire(std::size_t reserve_hint)
{
    acquireCount.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::byte> buf;
    if (on.load(std::memory_order_relaxed)) {
        auto &local = localCache().bufs;
        if (local.empty())
            refill(local);
        if (!local.empty()) {
            hitCount.fetch_add(1, std::memory_order_relaxed);
            // Saturating decrement: a concurrent drain() zeroes the
            // counter while other threads' freelists still hold
            // counted buffers; wrapping would jam the admission bound
            // at SIZE_MAX forever.
            std::size_t cur = parked.load(std::memory_order_relaxed);
            while (cur > 0 &&
                   !parked.compare_exchange_weak(
                       cur, cur - 1, std::memory_order_relaxed)) {
            }
            buf = std::move(local.back());
            local.pop_back();
        }
    }
    buf.clear();
    if (reserve_hint > buf.capacity())
        buf.reserve(reserve_hint);
    return buf;
}

void
BufferPool::release(std::vector<std::byte> &&buf)
{
    releaseCount.fetch_add(1, std::memory_order_relaxed);
    if (!on.load(std::memory_order_relaxed) ||
        buf.capacity() < kMinUsefulCapacity ||
        buf.capacity() > kMaxCachedCapacity ||
        parked.load(std::memory_order_relaxed) >= kMaxCached) {
        discardCount.fetch_add(1, std::memory_order_relaxed);
        return; // freed when buf goes out of scope
    }
    parked.fetch_add(1, std::memory_order_relaxed);
    buf.clear();
    auto &local = localCache().bufs;
    local.push_back(std::move(buf));
    if (local.size() > kLocalCached)
        spill(local);
}

void
BufferPool::spill(std::vector<std::vector<std::byte>> &local)
{
    // Move the colder half (LIFO bottom) to the global cache in one
    // mutex acquisition; the warm top stays with the thread.
    const std::size_t keep = kLocalCached / 2;
    std::lock_guard<std::mutex> g(mu);
    cache.insert(cache.end(),
                 std::make_move_iterator(local.begin()),
                 std::make_move_iterator(local.end() - keep));
    local.erase(local.begin(), local.end() - keep);
}

bool
BufferPool::refill(std::vector<std::vector<std::byte>> &local)
{
    const std::size_t want = kLocalCached / 2;
    std::lock_guard<std::mutex> g(mu);
    if (cache.empty())
        return false;
    const std::size_t take = std::min(want, cache.size());
    local.insert(local.end(),
                 std::make_move_iterator(cache.end() - take),
                 std::make_move_iterator(cache.end()));
    cache.erase(cache.end() - take, cache.end());
    return true;
}

void
BufferPool::adoptOrphans(std::vector<std::vector<std::byte>> &&bufs)
{
    // Counted as parked already; just move the storage.
    std::lock_guard<std::mutex> g(mu);
    cache.insert(cache.end(), std::make_move_iterator(bufs.begin()),
                 std::make_move_iterator(bufs.end()));
}

void
BufferPool::setEnabled(bool enabled)
{
    on.store(enabled, std::memory_order_relaxed);
    if (!enabled)
        drain();
}

BufferPool::PoolStats
BufferPool::stats() const
{
    PoolStats s;
    s.acquires = acquireCount.load(std::memory_order_relaxed);
    s.hits = hitCount.load(std::memory_order_relaxed);
    s.releases = releaseCount.load(std::memory_order_relaxed);
    s.discarded = discardCount.load(std::memory_order_relaxed);
    s.cached = parked.load(std::memory_order_relaxed);
    return s;
}

void
BufferPool::drain()
{
    auto &local = localCache().bufs;
    std::size_t dropped = local.size();
    local.clear();
    {
        std::lock_guard<std::mutex> g(mu);
        dropped += cache.size();
        cache.clear();
    }
    acquireCount.store(0, std::memory_order_relaxed);
    hitCount.store(0, std::memory_order_relaxed);
    releaseCount.store(0, std::memory_order_relaxed);
    discardCount.store(0, std::memory_order_relaxed);
    // Subtract what was actually dropped (saturating) instead of
    // zeroing: buffers still counted in other live threads' freelists
    // stay counted, so the admission bound holds when adoptOrphans
    // later moves them into the global cache.
    std::size_t cur = parked.load(std::memory_order_relaxed);
    while (!parked.compare_exchange_weak(
        cur, cur - std::min(cur, dropped), std::memory_order_relaxed)) {
    }
}

} // namespace dsm
