/**
 * @file
 * Small deterministic pseudo-random generators. Tests and workload
 * generators must not depend on std::mt19937 state layout or on
 * platform entropy, so we ship our own splitmix64/xorshift generators.
 */

#ifndef DSM_UTIL_RNG_HH
#define DSM_UTIL_RNG_HH

#include <cstdint>

namespace dsm {

/** splitmix64: good avalanche, used for seeding and hashing. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Deterministic xorshift128+ generator with convenience helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull)
    {
        std::uint64_t s = seed;
        state0 = splitmix64(s);
        state1 = splitmix64(s);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state0;
        const std::uint64_t y = state1;
        state0 = y;
        x ^= x << 23;
        state1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return state1 + y;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state0;
    std::uint64_t state1;
};

} // namespace dsm

#endif // DSM_UTIL_RNG_HH
