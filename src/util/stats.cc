#include "util/stats.hh"

#include <sstream>

namespace dsm {

namespace {

/** Apply @p fn(name, field-reference) to every counter of @p s. */
template <typename Stats, typename Fn>
void
forEachField(Stats &s, Fn fn)
{
    fn("messagesSent", s.messagesSent);
    fn("messagesReceived", s.messagesReceived);
    fn("bytesSent", s.bytesSent);
    fn("bytesReceived", s.bytesReceived);
    fn("retransmissions", s.retransmissions);
    fn("repliesBypassed", s.repliesBypassed);
    fn("replyBypassRefusals", s.replyBypassRefusals);
    fn("coalesceFramesSent", s.coalesceFramesSent);
    fn("messagesCoalesced", s.messagesCoalesced);
    fn("idlePolls", s.idlePolls);
    fn("idleParks", s.idleParks);
    fn("locksAcquired", s.locksAcquired);
    fn("roLocksAcquired", s.roLocksAcquired);
    fn("localLockHits", s.localLockHits);
    fn("lockForwards", s.lockForwards);
    fn("barriersEntered", s.barriersEntered);
    fn("intraNodeLockHandoffs", s.intraNodeLockHandoffs);
    fn("remoteHandoffsForced", s.remoteHandoffsForced);
    fn("maxLocalHandoffRun", s.maxLocalHandoffRun);
    fn("fairnessBoundGrows", s.fairnessBoundGrows);
    fn("fairnessBoundShrinks", s.fairnessBoundShrinks);
    fn("pageFaults", s.pageFaults);
    fn("twinsCreated", s.twinsCreated);
    fn("twinWordsCopied", s.twinWordsCopied);
    fn("dirtyStores", s.dirtyStores);
    fn("diffsCreated", s.diffsCreated);
    fn("diffsApplied", s.diffsApplied);
    fn("diffWordsCompared", s.diffWordsCompared);
    fn("diffBytesSent", s.diffBytesSent);
    fn("tsWordsScanned", s.tsWordsScanned);
    fn("tsRunsSent", s.tsRunsSent);
    fn("tsBytesSent", s.tsBytesSent);
    fn("intervalsCreated", s.intervalsCreated);
    fn("writeNoticesSent", s.writeNoticesSent);
    fn("writeNoticesReceived", s.writeNoticesReceived);
    fn("pagesInvalidated", s.pagesInvalidated);
    fn("accessMisses", s.accessMisses);
    fn("diffRequestsSent", s.diffRequestsSent);
    fn("diffPagesPiggybacked", s.diffPagesPiggybacked);
    fn("tsRequestsSent", s.tsRequestsSent);
    fn("tsPagesPiggybacked", s.tsPagesPiggybacked);
    fn("noticesPiggybacked", s.noticesPiggybacked);
    fn("reinvalidationsAvoided", s.reinvalidationsAvoided);
    fn("homeFlushesSent", s.homeFlushesSent);
    fn("pageFetchRoundTrips", s.pageFetchRoundTrips);
    fn("homeMigrations", s.homeMigrations);
    fn("lastWriterMigrations", s.lastWriterMigrations);
    fn("homeMigrationsSuppressed", s.homeMigrationsSuppressed);
    fn("homeFlushesDeferred", s.homeFlushesDeferred);
    fn("optReadsServed", s.optReadsServed);
    fn("optReadRetries", s.optReadRetries);
    fn("optReadFallbacks", s.optReadFallbacks);
    fn("gcRounds", s.gcRounds);
    fn("gcRecordsReclaimed", s.gcRecordsReclaimed);
    fn("gcDiffsReclaimed", s.gcDiffsReclaimed);
    fn("updatesSent", s.updatesSent);
    fn("updateBytesSent", s.updateBytesSent);
    fn("rebinds", s.rebinds);
    fn("checkpointsTaken", s.checkpointsTaken);
    fn("recoveryReplays", s.recoveryReplays);
    fn("msgRetransmits", s.msgRetransmits);
    fn("peerDownDetections", s.peerDownDetections);
    fn("peerDownRecoveries", s.peerDownRecoveries);
    fn("peerUnavailableRetries", s.peerUnavailableRetries);
    fn("orphanForwardsReplayed", s.orphanForwardsReplayed);
    fn("rehostedFetches", s.rehostedFetches);
    fn("checkpointDeltaBytes", s.checkpointDeltaBytes);
    fn("workUnits", s.workUnits);
}

} // namespace

NodeStats &
NodeStats::operator+=(const NodeStats &other)
{
    // maxLocalHandoffRun is a high-water mark, not a volume: merging
    // thread deltas (or nodes into a cluster total) takes the max.
    const std::uint64_t max_run =
        std::max(maxLocalHandoffRun, other.maxLocalHandoffRun);
    std::vector<std::uint64_t> vals;
    forEachField(other, [&](const char *, const std::uint64_t &v) {
        vals.push_back(v);
    });
    std::size_t i = 0;
    forEachField(*this, [&](const char *, std::uint64_t &v) {
        v += vals[i++];
    });
    maxLocalHandoffRun = max_run;
    return *this;
}

std::vector<std::pair<std::string, std::uint64_t>>
NodeStats::items() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    forEachField(*this, [&](const char *name, const std::uint64_t &v) {
        out.emplace_back(name, v);
    });
    return out;
}

std::string
NodeStats::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[name, value] : items()) {
        if (value == 0)
            continue;
        if (!first)
            os << " ";
        os << name << "=" << value;
        first = false;
    }
    return os.str();
}

} // namespace dsm
