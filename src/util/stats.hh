/**
 * @file
 * Per-node statistics counters. Every protocol event the paper reasons
 * about (messages, bytes, faults, twins, diffs, timestamp scans, dirty
 * stores, ...) has a named counter here; benches print them next to the
 * reproduced tables.
 */

#ifndef DSM_UTIL_STATS_HH
#define DSM_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dsm {

/**
 * Counters for one node. Plain uint64 fields with a strict
 * single-writer discipline: the service thread writes the node's own
 * instance, every application thread writes the private delta in its
 * ThreadContext, and Cluster::run sums the deltas into the node
 * instance after the worker threads join — no field is ever written
 * concurrently, and totals are independent of how the increments were
 * distributed across threads.
 */
struct NodeStats
{
    // Network.
    std::uint64_t messagesSent = 0;
    std::uint64_t messagesReceived = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t retransmissions = 0;
    /** Replies delivered straight into the blocked caller's futex
     *  reply slot, skipping the receiver's service-thread inbox hop
     *  (DSM_REPLY_BYPASS). Counted at the sending node. */
    std::uint64_t repliesBypassed = 0;
    /** Bypass attempts refused by the per-pair ordering guard (an
     *  earlier inbox message from the same peer was still in flight)
     *  or by an occupied/unregistered reply slot; the reply took the
     *  ordinary inbox path instead. */
    std::uint64_t replyBypassRefusals = 0;
    /** Same-destination coalescing (DSM_COALESCE): framed batches
     *  shipped and the small messages folded into them (each frame
     *  replaces messagesCoalesced ring slots with one). */
    std::uint64_t coalesceFramesSent = 0;
    std::uint64_t messagesCoalesced = 0;
    /** Adaptive blocking dequeue (DSM_BLOCKING_DEQ): app-level empty
     *  polls, and the subset that gave up spinning and parked on the
     *  endpoint activity futex. */
    std::uint64_t idlePolls = 0;
    std::uint64_t idleParks = 0;

    // Synchronization.
    std::uint64_t locksAcquired = 0;
    std::uint64_t roLocksAcquired = 0;
    std::uint64_t localLockHits = 0;
    std::uint64_t lockForwards = 0;
    std::uint64_t barriersEntered = 0;
    /** SMP nodes: lock acquisitions that parked behind a sibling and
     *  were then served locally (the sibling's release handed the
     *  lock over, or its completed remote fetch is being shared) — no
     *  network message, no manager involvement (never nonzero at
     *  threadsPerNode == 1). */
    std::uint64_t intraNodeLockHandoffs = 0;
    /** Bounded-fairness hand-off (lockLocalHandoffBound k > 0):
     *  releases at which a pending remote requester was served ahead
     *  of parked local waiters because k consecutive intra-node
     *  hand-offs had already run. */
    std::uint64_t remoteHandoffsForced = 0;
    /** Longest run of consecutive local grants of one lock (hand-offs
     *  to parked waiters and fast-path reacquires alike) — a
     *  high-water mark (operator+= takes the max, not the sum). With
     *  a fairness bound k and a remote requester pending, the run a
     *  remote waits out never exceeds k. */
    std::uint64_t maxLocalHandoffRun = 0;
    /** Per-lock adaptive fairness (DSM_LOCK_FAIRNESS_ADAPT): bound
     *  growth events (a local run completed with no remote waiter
     *  queued) and shrink events (the bound forced a remote grant). */
    std::uint64_t fairnessBoundGrows = 0;
    std::uint64_t fairnessBoundShrinks = 0;

    // Write trapping.
    std::uint64_t pageFaults = 0;
    std::uint64_t twinsCreated = 0;
    std::uint64_t twinWordsCopied = 0;
    std::uint64_t dirtyStores = 0;

    // Write collection.
    std::uint64_t diffsCreated = 0;
    std::uint64_t diffsApplied = 0;
    std::uint64_t diffWordsCompared = 0;
    std::uint64_t diffBytesSent = 0;
    std::uint64_t tsWordsScanned = 0;
    std::uint64_t tsRunsSent = 0;
    std::uint64_t tsBytesSent = 0;

    // LRC protocol.
    std::uint64_t intervalsCreated = 0;
    std::uint64_t writeNoticesSent = 0;
    std::uint64_t writeNoticesReceived = 0;
    std::uint64_t pagesInvalidated = 0;
    std::uint64_t accessMisses = 0;
    std::uint64_t diffRequestsSent = 0;
    std::uint64_t diffPagesPiggybacked = 0;
    std::uint64_t tsRequestsSent = 0;
    std::uint64_t tsPagesPiggybacked = 0;
    /** Write notices (record x page) appended to fetch replies. */
    std::uint64_t noticesPiggybacked = 0;
    /** Notices that arrived for a page whose copy already held that
     *  interval's data while the page stayed valid — the invalidation
     *  plus refetch the seed protocol would have performed. */
    std::uint64_t reinvalidationsAvoided = 0;

    // Home-based LRC.
    std::uint64_t homeFlushesSent = 0;
    std::uint64_t pageFetchRoundTrips = 0;
    std::uint64_t homeMigrations = 0;
    /** Migrations triggered by the migrate-to-last-writer policy
     *  (subset of homeMigrations). */
    std::uint64_t lastWriterMigrations = 0;
    /** Migrations a policy wanted but the ping-pong cap suppressed
     *  (the page stays pinned at its current home). */
    std::uint64_t homeMigrationsSuppressed = 0;
    /** Interval closes whose flush payload for some home was merged
     *  into an already-pending deferred flush — each is one
     *  HomeDiffFlush message that never went on the wire. */
    std::uint64_t homeFlushesDeferred = 0;
    /** Optimistic home reads: read-only page requests the home's
     *  service thread answered with a version-validated snapshot,
     *  without taking the core/home protocol locks. */
    std::uint64_t optReadsServed = 0;
    /** Torn optimistic snapshot attempts (a guarded flush application
     *  raced the copy; the seqlock re-read caught it and the copy was
     *  retried). */
    std::uint64_t optReadRetries = 0;
    /** Optimistic reads that fell back to the locked path: the retry
     *  budget ran out, the snapshot could not cover the requester's
     *  needed intervals, or the requester rejected the reply's
     *  migration-epoch stamp. */
    std::uint64_t optReadFallbacks = 0;

    // Barrier-time interval/diff garbage collection.
    std::uint64_t gcRounds = 0;
    std::uint64_t gcRecordsReclaimed = 0;
    std::uint64_t gcDiffsReclaimed = 0;

    // EC protocol.
    std::uint64_t updatesSent = 0;
    std::uint64_t updateBytesSent = 0;
    std::uint64_t rebinds = 0;

    // Crash tolerance (checkpoint/restore + fault injection).
    /** Barrier-cut snapshots this node serialized. */
    std::uint64_t checkpointsTaken = 0;
    /** Kill-and-restore cycles: the node was wiped, restored from its
     *  latest snapshot and replayed the parked inbox forward. */
    std::uint64_t recoveryReplays = 0;
    /** Request retransmissions by the Endpoint deadline path after a
     *  fault-injected drop (distinct from `retransmissions`, which
     *  counts the *modeled* stop-and-wait retries of LossPlan). */
    std::uint64_t msgRetransmits = 0;
    /** Failure-detector transitions this node's service thread
     *  performed: peers declared down after a missed liveness
     *  deadline, and peers revived by a fresh stamp. Each transition
     *  is CAS-guarded, so the cluster-wide sums count each outage
     *  once no matter how many nodes raced to observe it. */
    std::uint64_t peerDownDetections = 0;
    std::uint64_t peerDownRecoveries = 0;
    /** Blocking call() waits that timed out while the detector held
     *  some peer down — the typed PeerUnavailable retry loop (bounded
     *  backoff, never a silent park) degrading instead of hanging. */
    std::uint64_t peerUnavailableRetries = 0;
    /** Lock forwards the manager re-sent after a holder's recovery
     *  (orphaned-lock reclamation; the owner-side token dedup makes
     *  the duplicates idempotent). */
    std::uint64_t orphanForwardsReplayed = 0;
    /** Home-page fetches served from a down home's persisted
     *  checkpoint frontier instead of waiting out the outage. */
    std::uint64_t rehostedFetches = 0;
    /** Bytes of incremental (changed-runs-only) checkpoint blobs, as
     *  opposed to checkpointsTaken full anchor cuts. */
    std::uint64_t checkpointDeltaBytes = 0;

    // Application-reported work units (drives the compute time model).
    std::uint64_t workUnits = 0;

    /** Accumulate @p other into this. */
    NodeStats &operator+=(const NodeStats &other);

    /** (name, value) pairs for printing, in declaration order. */
    std::vector<std::pair<std::string, std::uint64_t>> items() const;

    /** Compact single-line rendering of the nonzero counters. */
    std::string toString() const;
};

} // namespace dsm

#endif // DSM_UTIL_STATS_HH
