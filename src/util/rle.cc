#include "util/rle.hh"

#include <algorithm>

namespace dsm {

std::uint64_t
runsCoverage(const std::vector<Run> &runs)
{
    std::uint64_t total = 0;
    for (const auto &r : runs)
        total += r.length;
    return total;
}

std::vector<Run>
normalizeRuns(std::vector<Run> runs)
{
    if (runs.empty())
        return runs;
    std::sort(runs.begin(), runs.end(),
              [](const Run &a, const Run &b) { return a.start < b.start; });
    std::vector<Run> out;
    out.push_back(runs.front());
    for (std::size_t i = 1; i < runs.size(); ++i) {
        Run &last = out.back();
        const Run &cur = runs[i];
        if (cur.start <= last.end()) {
            last.length = std::max(last.end(), cur.end()) - last.start;
        } else {
            out.push_back(cur);
        }
    }
    return out;
}

} // namespace dsm
