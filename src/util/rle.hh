/**
 * @file
 * Run-length helpers used by both diff creation and timestamp
 * transmission: collapse a sequence of per-block predicates or values
 * into (start, length) runs.
 */

#ifndef DSM_UTIL_RLE_HH
#define DSM_UTIL_RLE_HH

#include <cstdint>
#include <vector>

namespace dsm {

/** A run of consecutive block indices [start, start + length). */
struct Run
{
    std::uint32_t start = 0;
    std::uint32_t length = 0;

    std::uint32_t end() const { return start + length; }
    bool operator==(const Run &other) const = default;
};

/**
 * Collect maximal runs of indices in [0, n) for which @p pred is true.
 *
 * @param n Number of blocks to examine.
 * @param pred Callable bool(uint32_t index).
 * @return Runs in increasing index order.
 */
template <typename Pred>
std::vector<Run>
collectRuns(std::uint32_t n, Pred pred)
{
    std::vector<Run> runs;
    std::uint32_t i = 0;
    while (i < n) {
        if (pred(i)) {
            std::uint32_t start = i;
            while (i < n && pred(i))
                ++i;
            runs.push_back({start, i - start});
        } else {
            ++i;
        }
    }
    return runs;
}

/**
 * Collect maximal runs of equal values for which @p keep is true.
 * Used for wire encoding of timestamps: one timestamp value is sent per
 * run of blocks with the same timestamp (Section 5.1 of the paper).
 */
template <typename T, typename Keep>
std::vector<std::pair<Run, T>>
collectValueRuns(const std::vector<T> &values, Keep keep)
{
    std::vector<std::pair<Run, T>> runs;
    std::uint32_t n = static_cast<std::uint32_t>(values.size());
    std::uint32_t i = 0;
    while (i < n) {
        if (keep(values[i])) {
            std::uint32_t start = i;
            T v = values[i];
            while (i < n && keep(values[i]) && values[i] == v)
                ++i;
            runs.push_back({{start, i - start}, v});
        } else {
            ++i;
        }
    }
    return runs;
}

/** Total number of indices covered by @p runs. */
std::uint64_t runsCoverage(const std::vector<Run> &runs);

/** Merge adjacent/overlapping runs into a minimal sorted set. */
std::vector<Run> normalizeRuns(std::vector<Run> runs);

} // namespace dsm

#endif // DSM_UTIL_RLE_HH
