/**
 * @file
 * Fundamental identifiers and value types shared by every dsmcmp module.
 */

#ifndef DSM_UTIL_TYPES_HH
#define DSM_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace dsm {

/** Identifier of a node (simulated processor) in the cluster. */
using NodeId = int;

/** Identifier of a distributed lock. */
using LockId = std::uint32_t;

/** Identifier of a barrier. */
using BarrierId = std::uint32_t;

/**
 * Address in the shared virtual address space. A GlobalAddr is an offset
 * into the shared arena; because every node performs the same allocation
 * sequence, the same GlobalAddr names the same object on every node.
 */
using GlobalAddr = std::uint64_t;

/** Sentinel for "no address". */
constexpr GlobalAddr kNullAddr = ~static_cast<GlobalAddr>(0);

/** Index of a virtual memory page within the shared arena. */
using PageId = std::uint32_t;

/** A contiguous byte range of the shared address space. */
struct Range
{
    GlobalAddr addr = 0;
    std::uint64_t size = 0;

    GlobalAddr end() const { return addr + size; }

    bool
    overlaps(const Range &other) const
    {
        return addr < other.end() && other.addr < end();
    }

    bool operator==(const Range &other) const = default;
};

/**
 * Mode of a lock acquire. Read corresponds to EC's read-only locks
 * (shared, consistency-only); Write is an exclusive lock.
 */
enum class AccessMode : std::uint8_t { Read, Write };

/** Human-readable name of an access mode. */
inline const char *
toString(AccessMode mode)
{
    return mode == AccessMode::Read ? "read" : "write";
}

} // namespace dsm

#endif // DSM_UTIL_TYPES_HH
