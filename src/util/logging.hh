/**
 * @file
 * Status and error reporting in the gem5 style: panic() for internal
 * invariant violations (aborts), fatal() for user errors (clean exit),
 * warn()/inform() for non-fatal status messages.
 */

#ifndef DSM_UTIL_LOGGING_HH
#define DSM_UTIL_LOGGING_HH

#include <cstdarg>

namespace dsm {

/**
 * Report an internal error that should never happen regardless of user
 * input (a dsmcmp bug) and abort, possibly dumping core.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a condition that prevents the run from continuing but is the
 * user's fault (bad configuration, invalid arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about behaviour that may be incorrect but allows continuing. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message with no connotation of incorrect behaviour. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable or disable inform() output (warnings always print). */
void setVerbose(bool verbose);

/** True when inform() output is enabled. */
bool verbose();

} // namespace dsm

/** Assert an internal invariant; calls panic() with location on failure. */
#define DSM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::dsm::warn("" __VA_ARGS__);                                    \
            ::dsm::panic("assertion '%s' failed at %s:%d", #cond,           \
                         __FILE__, __LINE__);                               \
        }                                                                   \
    } while (0)

#endif // DSM_UTIL_LOGGING_HH
