#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dsm {

namespace {

std::atomic<bool> verboseFlag{false};

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

} // namespace dsm
