/**
 * @file
 * Process-wide recycler of byte buffers. The encode/apply fast paths
 * (WireWriter payloads, page twins) used to allocate a fresh
 * std::vector<std::byte> per message or twin; the pool hands the
 * capacity of retired buffers back to the next producer instead.
 *
 * Two levels: every thread keeps a small LIFO freelist (no
 * synchronization at all on the hot path) that spills to / refills
 * from a mutex-guarded global cache in half-batches, so the mutex is
 * touched once per kLocalCached/2 operations instead of once per
 * buffer. The whole pool is bounded (a fixed number of parked buffers
 * in total, each capped in capacity) so a burst of large messages
 * cannot pin memory forever.
 *
 * Disabling the pool (see ClusterConfig::pooledBuffers, the DSM_POOL=0
 * ablation) turns acquire/release into plain allocate/free behind one
 * relaxed atomic load — the seed behavior, without the process-wide
 * lock the previous implementation still paid when disabled.
 */

#ifndef DSM_UTIL_BUFFER_POOL_HH
#define DSM_UTIL_BUFFER_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dsm {

class BufferPool
{
  public:
    /** The single process-wide pool. */
    static BufferPool &instance();

    /** Caching limits: how many buffers may be parked at once (local
     *  freelists + global cache), how large a buffer is still worth
     *  keeping, and how many a thread may hold privately. */
    static constexpr std::size_t kMaxCached = 256;
    static constexpr std::size_t kMaxCachedCapacity = 1u << 20;
    static constexpr std::size_t kMinUsefulCapacity = 64;
    static constexpr std::size_t kLocalCached = 32;

    /**
     * Obtain an empty buffer, reusing a cached one when available
     * (thread-local freelist first, then a half-batch refill from the
     * global cache). @p reserve_hint pre-reserves capacity for the
     * expected payload.
     */
    std::vector<std::byte> acquire(std::size_t reserve_hint = 0);

    /** Return a retired buffer; its contents are discarded. Buffers
     *  that are too small, too large, or beyond the cache bound are
     *  simply freed. */
    void release(std::vector<std::byte> &&buf);

    /** Enable/disable recycling (disabled = plain allocate/free). */
    void setEnabled(bool on);

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    struct PoolStats
    {
        std::uint64_t acquires = 0;
        std::uint64_t hits = 0;     ///< acquires served from a cache
        std::uint64_t releases = 0;
        std::uint64_t discarded = 0; ///< releases the cache rejected
        std::size_t cached = 0;      ///< buffers currently parked
    };

    PoolStats stats() const;

    /**
     * Drop every cached buffer reachable from this thread (its local
     * freelist plus the global cache) and reset counters (tests,
     * ablations). Other live threads' freelists are untouched; they
     * spill back to the global cache when those threads exit.
     */
    void drain();

  private:
    friend struct BufferPoolLocalCache;

    /** Move half of @p overflow into the global cache (mutex). */
    void spill(std::vector<std::vector<std::byte>> &local);

    /** Refill @p local with up to half its bound from the global
     *  cache; returns false when the global cache was empty. */
    bool refill(std::vector<std::vector<std::byte>> &local);

    /** Thread-exit path: park a dying thread's freelist. */
    void adoptOrphans(std::vector<std::vector<std::byte>> &&bufs);

    std::atomic<bool> on{true};

    // Counters are relaxed atomics: exact under the single-threaded
    // test harness, monotone and near-exact under concurrency.
    mutable std::atomic<std::uint64_t> acquireCount{0};
    mutable std::atomic<std::uint64_t> hitCount{0};
    mutable std::atomic<std::uint64_t> releaseCount{0};
    mutable std::atomic<std::uint64_t> discardCount{0};
    /** Buffers parked across all freelists + the global cache; bounds
     *  admission (>= kMaxCached rejects the release). */
    std::atomic<std::size_t> parked{0};

    mutable std::mutex mu;
    std::vector<std::vector<std::byte>> cache; ///< global spill, LIFO
};

} // namespace dsm

#endif // DSM_UTIL_BUFFER_POOL_HH
