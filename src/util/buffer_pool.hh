/**
 * @file
 * Process-wide recycler of byte buffers. The encode/apply fast paths
 * (WireWriter payloads, page twins) used to allocate a fresh
 * std::vector<std::byte> per message or twin; the pool hands the
 * capacity of retired buffers back to the next producer instead.
 *
 * The pool is bounded (a fixed number of cached buffers, each capped
 * in capacity) so a burst of large messages cannot pin memory forever.
 * All operations are mutex-guarded: the simulated nodes of one cluster
 * live in a single process and share it. Disabling the pool (see
 * ClusterConfig::pooledBuffers) turns acquire/release into plain
 * allocate/free, which is the seed behavior for ablation runs.
 */

#ifndef DSM_UTIL_BUFFER_POOL_HH
#define DSM_UTIL_BUFFER_POOL_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dsm {

class BufferPool
{
  public:
    /** The single process-wide pool. */
    static BufferPool &instance();

    /** Caching limits: how many buffers may be parked at once and how
     *  large a buffer is still worth keeping. */
    static constexpr std::size_t kMaxCached = 256;
    static constexpr std::size_t kMaxCachedCapacity = 1u << 20;
    static constexpr std::size_t kMinUsefulCapacity = 64;

    /**
     * Obtain an empty buffer, reusing a cached one when available.
     * @p reserve_hint pre-reserves capacity for the expected payload.
     */
    std::vector<std::byte> acquire(std::size_t reserve_hint = 0);

    /** Return a retired buffer; its contents are discarded. Buffers
     *  that are too small, too large, or beyond the cache bound are
     *  simply freed. */
    void release(std::vector<std::byte> &&buf);

    /** Enable/disable recycling (disabled = plain allocate/free). */
    void setEnabled(bool on);

    bool enabled() const;

    struct PoolStats
    {
        std::uint64_t acquires = 0;
        std::uint64_t hits = 0;     ///< acquires served from the cache
        std::uint64_t releases = 0;
        std::uint64_t discarded = 0; ///< releases the cache rejected
        std::size_t cached = 0;      ///< buffers currently parked
    };

    PoolStats stats() const;

    /** Drop every cached buffer and reset counters (tests, ablations). */
    void drain();

  private:
    mutable std::mutex mu;
    std::vector<std::vector<std::byte>> cache; ///< LIFO for warmth
    bool on = true;
    PoolStats counters;
};

} // namespace dsm

#endif // DSM_UTIL_BUFFER_POOL_HH
