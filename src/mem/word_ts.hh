/**
 * @file
 * Per-block timestamp arrays used by the timestamping write-collection
 * method (Section 5.1 of the paper). A block is the resolution of
 * write trapping: one word (4 bytes) for twinning, one word or
 * double-word for compiler instrumentation.
 *
 * The timestamp value type is a uint64:
 *  - EC stores the lock incarnation number (low 32 bits);
 *  - LRC packs (processor id << 32) | interval index.
 * On the wire, one timestamp value is sent per run of consecutive
 * blocks with the same timestamp.
 */

#ifndef DSM_MEM_WORD_TS_HH
#define DSM_MEM_WORD_TS_HH

#include <cstdint>
#include <vector>

#include "mem/wide_scan.hh"
#include "net/serde.hh"
#include "util/logging.hh"
#include "util/rle.hh"

namespace dsm {

/** Pack an LRC (processor, interval) timestamp. */
inline std::uint64_t
packTs(int proc, std::uint32_t interval)
{
    return (static_cast<std::uint64_t>(proc) << 32) | interval;
}

inline int
tsProc(std::uint64_t ts)
{
    return static_cast<int>(ts >> 32);
}

inline std::uint32_t
tsInterval(std::uint64_t ts)
{
    return static_cast<std::uint32_t>(ts);
}

/** A run of consecutive blocks sharing one timestamp value. */
struct TsRun
{
    std::uint32_t firstBlock = 0;
    std::uint32_t numBlocks = 0;
    std::uint64_t ts = 0;

    bool operator==(const TsRun &other) const = default;
};

class BlockTimestamps
{
  public:
    BlockTimestamps() = default;

    explicit BlockTimestamps(std::uint32_t nblocks) : ts(nblocks, 0) {}

    std::uint32_t numBlocks() const
    {
        return static_cast<std::uint32_t>(ts.size());
    }

    std::uint64_t
    get(std::uint32_t block) const
    {
        DSM_ASSERT(block < ts.size(), "block %u out of range", block);
        return ts[block];
    }

    void
    set(std::uint32_t block, std::uint64_t value)
    {
        DSM_ASSERT(block < ts.size(), "block %u out of range", block);
        ts[block] = value;
    }

    void setRange(std::uint32_t first, std::uint32_t n, std::uint64_t value);

    void setAll(std::uint64_t value);

    /**
     * Scan all blocks and return runs of equal-timestamp blocks for
     * which @p newer(ts) is true. This is the collection scan whose
     * cost the paper charges against timestamping.
     */
    template <typename Pred>
    std::vector<TsRun>
    collect(Pred newer) const
    {
        std::vector<TsRun> out;
        for (auto &[run, value] : collectValueRuns(ts, newer))
            out.push_back({run.start, run.length, value});
        return out;
    }

    const std::vector<std::uint64_t> &raw() const { return ts; }

  private:
    std::vector<std::uint64_t> ts;
};

/**
 * Stamp every word (4-byte block) of @p len bytes whose contents
 * differ between @p cur and @p twin with @p value — the twin+timestamp
 * collection step of LRC-time. @p kernel selects the comparison scan
 * (mem/wide_scan.hh); Scalar reproduces the seed per-word memcmp loop.
 *
 * @return Number of words stamped.
 */
std::uint64_t stampChangedWords(BlockTimestamps &ts, const std::byte *cur,
                                const std::byte *twin, std::uint32_t len,
                                std::uint64_t value,
                                ScanKernel kernel = bestScanKernel());

/**
 * Wire encoding of a timestamp run together with its data blocks.
 * Used by both EC lock grants and LRC page fetch replies.
 */
struct TsRunWire
{
    /** 8 (addr/first) + 4 (count) + 8 (ts value). */
    static constexpr std::size_t kHeaderBytes = 20;
};

} // namespace dsm

#endif // DSM_MEM_WORD_TS_HH
