/**
 * @file
 * Software MMU: per-page access rights checked by the runtime's access
 * layer. Substitutes for Ultrix mprotect/SIGSEGV (see DESIGN.md): the
 * protocol-visible behaviour — which accesses fault and when — is
 * identical; faults are delivered as synchronous callbacks into the
 * runtime instead of signals.
 */

#ifndef DSM_MEM_PAGE_TABLE_HH
#define DSM_MEM_PAGE_TABLE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace dsm {

/** Access rights of one page on one node. */
enum class PageAccess : std::uint8_t
{
    None,      ///< any access faults (LRC invalid page)
    Read,      ///< writes fault (twin-on-write trapping)
    ReadWrite, ///< no faults
};

/**
 * The access bits are atomics so SMP-node fast paths (every shared
 * read/write checks its page) can load them without a lock.
 * Transitions follow the lock discipline in DESIGN.md: fault-driven
 * upgrades happen under the page's memory shard, protocol-driven
 * transitions (invalidation, validation after a fetch, interval close
 * downgrades) under the protocol core lock — the combinations that
 * could race additionally take the shard, so no transition is ever
 * lost.
 */
class PageTable
{
  public:
    /** All pages start with @p initial access. */
    PageTable(std::size_t npages, PageAccess initial);

    PageAccess
    access(PageId page) const
    {
        return accessBits[page].load(std::memory_order_acquire);
    }

    void
    setAccess(PageId page, PageAccess a)
    {
        accessBits[page].store(a, std::memory_order_release);
    }

    void setAll(PageAccess a);

    std::size_t numPages() const { return accessBits.size(); }

    /** True when a read of the page would fault. */
    bool
    readFaults(PageId page) const
    {
        return access(page) == PageAccess::None;
    }

    /** True when a write to the page would fault. */
    bool
    writeFaults(PageId page) const
    {
        return access(page) != PageAccess::ReadWrite;
    }

  private:
    std::vector<std::atomic<PageAccess>> accessBits;
};

} // namespace dsm

#endif // DSM_MEM_PAGE_TABLE_HH
