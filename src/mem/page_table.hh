/**
 * @file
 * Software MMU: per-page access rights checked by the runtime's access
 * layer. Substitutes for Ultrix mprotect/SIGSEGV (see DESIGN.md): the
 * protocol-visible behaviour — which accesses fault and when — is
 * identical; faults are delivered as synchronous callbacks into the
 * runtime instead of signals.
 */

#ifndef DSM_MEM_PAGE_TABLE_HH
#define DSM_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace dsm {

/** Access rights of one page on one node. */
enum class PageAccess : std::uint8_t
{
    None,      ///< any access faults (LRC invalid page)
    Read,      ///< writes fault (twin-on-write trapping)
    ReadWrite, ///< no faults
};

class PageTable
{
  public:
    /** All pages start with @p initial access. */
    PageTable(std::size_t npages, PageAccess initial);

    PageAccess
    access(PageId page) const
    {
        return accessBits[page];
    }

    void
    setAccess(PageId page, PageAccess a)
    {
        accessBits[page] = a;
    }

    void setAll(PageAccess a);

    std::size_t numPages() const { return accessBits.size(); }

    /** True when a read of the page would fault. */
    bool
    readFaults(PageId page) const
    {
        return accessBits[page] == PageAccess::None;
    }

    /** True when a write to the page would fault. */
    bool
    writeFaults(PageId page) const
    {
        return accessBits[page] != PageAccess::ReadWrite;
    }

  private:
    std::vector<PageAccess> accessBits;
};

} // namespace dsm

#endif // DSM_MEM_PAGE_TABLE_HH
