#include "mem/diff.hh"

#include <cstring>

#include "mem/wide_scan.hh"
#include "util/logging.hh"

namespace dsm {

Diff
Diff::create(const std::byte *cur, const std::byte *twin, std::uint32_t len,
             NodeStats *stats, DiffScan scan)
{
    Diff d;
    d.areaLen = len;

    const std::uint32_t words = len / kWordBytes;

    // One up-front allocation covers the common sparse-page shape;
    // denser diffs grow geometrically from there.
    d.runs.reserve(16);
    d.payload.reserve(std::min<std::size_t>(len, 256));

    // Open word run [openStart, openEnd) of content to transmit. With
    // gapWords > 0 a run may bridge short unchanged stretches.
    bool open = false;
    std::uint32_t openStart = 0;
    std::uint32_t openEnd = 0;

    auto emit = [&](std::uint32_t lastByte) {
        const std::uint32_t firstByte = openStart * kWordBytes;
        DiffRun run;
        run.offset = firstByte;
        run.size = lastByte - firstByte;
        run.dataPos = static_cast<std::uint32_t>(d.payload.size());
        d.payload.insert(d.payload.end(), cur + firstByte,
                         cur + lastByte);
        d.runs.push_back(run);
    };

    scanChangedRuns(cur, twin, words, scan.kernel,
                    [&](std::uint32_t w, std::uint32_t e) {
                        if (open && w - openEnd <= scan.gapWords) {
                            openEnd = e;
                            return;
                        }
                        if (open)
                            emit(openEnd * kWordBytes);
                        open = true;
                        openStart = w;
                        openEnd = e;
                    });

    // Trailing bytes (objects need not be word multiples); the tail is
    // compared as one short word and may coalesce with the final run.
    const std::uint32_t tail = words * kWordBytes;
    const bool tail_differs =
        tail < len && std::memcmp(cur + tail, twin + tail, len - tail) != 0;
    if (tail_differs && open && scan.gapWords > 0 &&
        words - openEnd <= scan.gapWords) {
        emit(len);
    } else {
        if (open)
            emit(openEnd * kWordBytes);
        if (tail_differs) {
            openStart = words;
            emit(len);
        }
    }

    if (stats) {
        stats->diffWordsCompared += comparedWords(len);
        stats->diffsCreated++;
    }
    return d;
}

void
Diff::apply(std::byte *dst, NodeStats *stats) const
{
    for (const auto &run : runs) {
        std::memcpy(dst + run.offset, payload.data() + run.dataPos,
                    run.size);
    }
    if (stats)
        stats->diffsApplied++;
}

std::uint64_t
Diff::wireBytes() const
{
    return kHeaderBytes + runs.size() * kRunHeaderBytes + dataBytes();
}

void
Diff::encode(WireWriter &w) const
{
    w.putU32(areaLen);
    w.putU32(static_cast<std::uint32_t>(runs.size()));
    for (const auto &run : runs) {
        w.putU32(run.offset);
        w.putU32(run.size);
        w.putBytes(payload.data() + run.dataPos, run.size);
    }
}

Diff
Diff::decode(WireReader &r)
{
    Diff d;
    d.areaLen = r.getU32();
    std::uint32_t nruns = r.getU32();
    d.runs.resize(nruns);
    for (auto &run : d.runs) {
        run.offset = r.getU32();
        run.size = r.getU32();
        run.dataPos = static_cast<std::uint32_t>(d.payload.size());
        d.payload.resize(d.payload.size() + run.size);
        r.getBytes(d.payload.data() + run.dataPos, run.size);
        DSM_ASSERT(std::uint64_t{run.offset} + run.size <= d.areaLen,
                   "diff run out of bounds");
    }
    return d;
}

} // namespace dsm
