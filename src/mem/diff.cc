#include "mem/diff.hh"

#include <cstring>

#include "util/logging.hh"

namespace dsm {

Diff
Diff::create(const std::byte *cur, const std::byte *twin, std::uint32_t len,
             NodeStats *stats)
{
    Diff d;
    d.areaLen = len;

    const std::uint32_t words = len / 4;
    std::uint32_t i = 0;

    auto wordDiffers = [&](std::uint32_t w) {
        return std::memcmp(cur + w * 4, twin + w * 4, 4) != 0;
    };

    while (i < words) {
        if (wordDiffers(i)) {
            std::uint32_t start = i;
            while (i < words && wordDiffers(i))
                ++i;
            DiffRun run;
            run.offset = start * 4;
            run.data.assign(cur + start * 4, cur + i * 4);
            d.runs.push_back(std::move(run));
        } else {
            ++i;
        }
    }

    // Trailing bytes (objects need not be word multiples).
    const std::uint32_t tail = words * 4;
    if (tail < len && std::memcmp(cur + tail, twin + tail, len - tail)) {
        DiffRun run;
        run.offset = tail;
        run.data.assign(cur + tail, cur + len);
        d.runs.push_back(std::move(run));
    }

    if (stats) {
        stats->diffWordsCompared += words + (tail < len ? 1 : 0);
        stats->diffsCreated++;
    }
    return d;
}

void
Diff::apply(std::byte *dst, NodeStats *stats) const
{
    for (const auto &run : runs) {
        std::memcpy(dst + run.offset, run.data.data(), run.data.size());
    }
    if (stats)
        stats->diffsApplied++;
}

std::uint64_t
Diff::dataBytes() const
{
    std::uint64_t total = 0;
    for (const auto &run : runs)
        total += run.data.size();
    return total;
}

std::uint64_t
Diff::wireBytes() const
{
    // 4 (length) + 4 (nruns) + per run: 4 (offset) + 4 (size) + data.
    return 8 + runs.size() * 8 + dataBytes();
}

void
Diff::encode(WireWriter &w) const
{
    w.putU32(areaLen);
    w.putU32(static_cast<std::uint32_t>(runs.size()));
    for (const auto &run : runs) {
        w.putU32(run.offset);
        w.putU32(static_cast<std::uint32_t>(run.data.size()));
        w.putBytes(run.data.data(), run.data.size());
    }
}

Diff
Diff::decode(WireReader &r)
{
    Diff d;
    d.areaLen = r.getU32();
    std::uint32_t nruns = r.getU32();
    d.runs.resize(nruns);
    for (auto &run : d.runs) {
        run.offset = r.getU32();
        std::uint32_t n = r.getU32();
        run.data.resize(n);
        r.getBytes(run.data.data(), n);
        DSM_ASSERT(run.offset + n <= d.areaLen, "diff run out of bounds");
    }
    return d;
}

} // namespace dsm
