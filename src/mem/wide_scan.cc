/**
 * @file
 * Explicit SIMD comparison kernels behind the ScanKernel::Simd entry
 * points. x86-64 gets AVX2 kernels compiled with a target attribute
 * (no global -march needed) and selected once via cpuid; aarch64 gets
 * NEON, which is baseline. Everything else resolves to the Wide
 * memcmp-chunked walk, so requesting Simd is safe on any CPU.
 *
 * Both kernels operate on 4-byte comparison words and return exactly
 * what the scalar loops return, for any alignment and any tail length
 * (the word count excludes the non-word tail, which the callers
 * compare separately, same as the scalar paths).
 */

#include "mem/wide_scan.hh"

#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DSM_SCAN_X86_64 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define DSM_SCAN_NEON 1
#include <arm_neon.h>
#endif

namespace dsm {

const char *
toString(ScanKernel kernel)
{
    switch (kernel) {
      case ScanKernel::Scalar:
        return "scalar";
      case ScanKernel::Wide:
        return "wide";
      case ScanKernel::Simd:
        return "simd";
    }
    return "?";
}

namespace {

/** Finish any remainder with the per-word walk. */
std::uint32_t
scalarDiffTail(const std::byte *cur, const std::byte *twin,
               std::uint32_t w, std::uint32_t words)
{
    while (w < words && !scanWordDiffers(cur, twin, w))
        ++w;
    return w;
}

std::uint32_t
scalarSameTail(const std::byte *cur, const std::byte *twin,
               std::uint32_t w, std::uint32_t words)
{
    while (w < words && scanWordDiffers(cur, twin, w))
        ++w;
    return w;
}

/** Open-run coalescer shared by the SIMD run scans: per-chunk runs
 *  that touch merge, gaps emit the pending run. */
struct RunJoiner
{
    void *ctx;
    RunEmitFn emit;
    bool open = false;
    std::uint32_t start = 0;
    std::uint32_t end = 0;

    void
    handle(std::uint32_t a, std::uint32_t b)
    {
        if (open && a == end) {
            end = b;
            return;
        }
        if (open)
            emit(ctx, start, end);
        open = true;
        start = a;
        end = b;
    }

    void
    finish()
    {
        if (open)
            emit(ctx, start, end);
    }
};

#if DSM_SCAN_X86_64

/**
 * Reduce a 32-bit byte-inequality mask (bit i set = byte i differs)
 * to the offset of the first differing 4-byte word, bits 4j..4j+3
 * belonging to word j.
 */
inline std::uint32_t
firstDiffWordInMask(std::uint32_t neq)
{
    std::uint32_t m = neq | (neq >> 1);
    m |= m >> 2;
    m &= 0x11111111u;
    return static_cast<std::uint32_t>(__builtin_ctz(m)) >> 2;
}

/** Offset of the first word whose 4 equality bits are all set. */
inline std::uint32_t
firstSameWordInMask(std::uint32_t eq)
{
    std::uint32_t m = eq & (eq >> 1);
    m &= m >> 2;
    m &= 0x11111111u;
    return m ? (static_cast<std::uint32_t>(__builtin_ctz(m)) >> 2) : 8;
}

/** Are the 512 bytes at word offset @p w identical? One AND-tree over
 *  16 vector compares, a single movemask test — the clean-page stride
 *  that matches libc memcmp's largest-chunk walk. */
__attribute__((target("avx2"))) inline bool
avx2Clean512(const std::byte *cur, const std::byte *twin, std::uint32_t w)
{
    const std::byte *a = cur + std::size_t{w} * kScanWordBytes;
    const std::byte *b = twin + std::size_t{w} * kScanWordBytes;
    __m256i acc = _mm256_set1_epi8(-1);
    for (int k = 0; k < 16; ++k) {
        acc = _mm256_and_si256(
            acc, _mm256_cmpeq_epi8(
                     _mm256_loadu_si256(
                         reinterpret_cast<const __m256i *>(a + 32 * k)),
                     _mm256_loadu_si256(
                         reinterpret_cast<const __m256i *>(b + 32 *
                                                           k))));
    }
    return _mm256_movemask_epi8(acc) == -1;
}

/** Byte-equality movemasks of the four 8-word vectors of one 32-word
 *  block; returns true when any byte differs (callers extract runs
 *  from @p eqm with scalar bit ops only). */
__attribute__((target("avx2"))) inline bool
avx2Masks32(const std::byte *cur, const std::byte *twin, std::uint32_t at,
            std::uint32_t eqm[4])
{
    const std::byte *a = cur + std::size_t{at} * kScanWordBytes;
    const std::byte *b = twin + std::size_t{at} * kScanWordBytes;
    for (int k = 0; k < 4; ++k) {
        eqm[k] = static_cast<std::uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(a + 32 * k)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(b + 32 * k)))));
    }
    return (eqm[0] & eqm[1] & eqm[2] & eqm[3]) != 0xffffffffu;
}

__attribute__((target("avx2"))) std::uint32_t
avx2FindDiffWord(const std::byte *cur, const std::byte *twin,
                 std::uint32_t from, std::uint32_t words)
{
    std::uint32_t w = from;
    // Dense-change fast path (run boundaries usually differ at once).
    if (w < words && scanWordDiffers(cur, twin, w))
        return w;
    // Clean skipping, largest stride first: 128 words (512 bytes) per
    // iteration while memory stays identical — the stride libc memcmp
    // uses on a fully clean page — then 32 words to localize, then
    // the mismatching 8-word vector.
    while (w + 128 <= words && avx2Clean512(cur, twin, w))
        w += 128;
    while (w + 32 <= words) {
        const std::byte *a = cur + std::size_t{w} * kScanWordBytes;
        const std::byte *b = twin + std::size_t{w} * kScanWordBytes;
        __m256i eq0 = _mm256_cmpeq_epi8(
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b)));
        __m256i eq1 = _mm256_cmpeq_epi8(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + 32)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + 32)));
        __m256i eq2 = _mm256_cmpeq_epi8(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + 64)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + 64)));
        __m256i eq3 = _mm256_cmpeq_epi8(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + 96)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + 96)));
        const __m256i all =
            _mm256_and_si256(_mm256_and_si256(eq0, eq1),
                             _mm256_and_si256(eq2, eq3));
        if (_mm256_movemask_epi8(all) != -1) {
            const __m256i eqs[4] = {eq0, eq1, eq2, eq3};
            for (int k = 0; k < 4; ++k) {
                const std::uint32_t mask = static_cast<std::uint32_t>(
                    _mm256_movemask_epi8(eqs[k]));
                if (mask != 0xffffffffu)
                    return w + 8 * k + firstDiffWordInMask(~mask);
            }
        }
        w += 32;
    }
    while (w + 8 <= words) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(
                cur + std::size_t{w} * kScanWordBytes));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(
                twin + std::size_t{w} * kScanWordBytes));
        const std::uint32_t mask = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
        if (mask != 0xffffffffu)
            return w + firstDiffWordInMask(~mask);
        w += 8;
    }
    return scalarDiffTail(cur, twin, w, words);
}

__attribute__((target("avx2"))) std::uint32_t
avx2FindSameWord(const std::byte *cur, const std::byte *twin,
                 std::uint32_t from, std::uint32_t words)
{
    std::uint32_t w = from;
    while (w + 8 <= words) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(
                cur + std::size_t{w} * kScanWordBytes));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(
                twin + std::size_t{w} * kScanWordBytes));
        const std::uint32_t mask = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
        const std::uint32_t hit = firstSameWordInMask(mask);
        if (hit < 8)
            return w + hit;
        w += 8;
    }
    return scalarSameTail(cur, twin, w, words);
}

/**
 * One pass over the page: per 8-word chunk, turn the byte-equality
 * movemask into a nibble-per-word diff mask and extract the runs with
 * bit scans, carrying an open run across chunk boundaries. Clean
 * chunks cost one load pair + compare; dense chunks cost a few bit
 * operations per run — no per-boundary re-scan like the
 * findDiffWord/findSameWord pairing.
 */
__attribute__((target("avx2"))) void
avx2ScanRuns(const std::byte *cur, const std::byte *twin,
             std::uint32_t words, void *ctx, RunEmitFn emit)
{
    std::uint32_t w = 0;
    RunJoiner joiner{ctx, emit};
    auto handle = [&](std::uint32_t a, std::uint32_t b) {
        joiner.handle(a, b);
    };

    // Extract the runs of one 8-word chunk from its byte-equality
    // movemask (nibble per word), carrying the open-run state.
    auto process = [&](std::uint32_t eq, std::uint32_t base) {
        if (eq == 0xffffffffu)
            return;
        std::uint32_t neq = ~eq;
        std::uint32_t wm = neq | (neq >> 1);
        wm |= wm >> 2;
        wm &= 0x11111111u;
        while (wm) {
            const std::uint32_t s =
                static_cast<std::uint32_t>(__builtin_ctz(wm)) >> 2;
            const std::uint32_t t = wm >> (4 * s);
            const std::uint32_t nz = ~t & 0x11111111u;
            const std::uint32_t run =
                nz ? (static_cast<std::uint32_t>(__builtin_ctz(nz)) >> 2)
                   : (8 - s);
            handle(base + s, base + s + run);
            if (s + run >= 8)
                break;
            wm &= ~0u << (4 * (s + run));
        }
    };

    // One 32-word (128-byte) block: compare, and only blocks with a
    // mismatch somewhere pay per-chunk extraction. (The vector work
    // lives in avx2Masks32 — a lambda would not inherit this
    // function's target attribute.)
    auto block32 = [&](std::uint32_t at) {
        std::uint32_t eqm[4];
        if (avx2Masks32(cur, twin, at, eqm)) {
            for (int k = 0; k < 4; ++k)
                process(eqm[k], at + 8 * k);
        }
    };

    // Clean memory is skipped 128 words (512 bytes) per iteration —
    // the stride that matches libc memcmp on a fully clean page; a
    // 512-byte block with a mismatch somewhere re-scans its four
    // 32-word sub-blocks through the extraction path.
    while (w + 128 <= words) {
        if (!avx2Clean512(cur, twin, w)) {
            for (int k = 0; k < 4; ++k)
                block32(w + 32 * k);
        }
        w += 128;
    }
    while (w + 32 <= words) {
        block32(w);
        w += 32;
    }
    while (w + 8 <= words) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(
                cur + std::size_t{w} * kScanWordBytes));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(
                twin + std::size_t{w} * kScanWordBytes));
        process(static_cast<std::uint32_t>(_mm256_movemask_epi8(
                    _mm256_cmpeq_epi8(va, vb))),
                w);
        w += 8;
    }
    // Scalar tail, continuing the same open-run state.
    for (; w < words; ++w) {
        if (scanWordDiffers(cur, twin, w))
            handle(w, w + 1);
    }
    joiner.finish();
}

bool
x86HasAvx2()
{
    return __builtin_cpu_supports("avx2") != 0;
}

#endif // DSM_SCAN_X86_64

#if DSM_SCAN_NEON

std::uint32_t
neonFindDiffWord(const std::byte *cur, const std::byte *twin,
                 std::uint32_t from, std::uint32_t words)
{
    std::uint32_t w = from;
    if (w < words && scanWordDiffers(cur, twin, w))
        return w;
    while (w + 8 <= words) {
        const std::uint8_t *a = reinterpret_cast<const std::uint8_t *>(
            cur + std::size_t{w} * kScanWordBytes);
        const std::uint8_t *b = reinterpret_cast<const std::uint8_t *>(
            twin + std::size_t{w} * kScanWordBytes);
        const uint32x4_t eq0 =
            vceqq_u32(vreinterpretq_u32_u8(vld1q_u8(a)),
                      vreinterpretq_u32_u8(vld1q_u8(b)));
        const uint32x4_t eq1 =
            vceqq_u32(vreinterpretq_u32_u8(vld1q_u8(a + 16)),
                      vreinterpretq_u32_u8(vld1q_u8(b + 16)));
        if (vminvq_u32(vandq_u32(eq0, eq1)) != 0xffffffffu) {
            for (int k = 0; k < 8; ++k) {
                if (scanWordDiffers(cur, twin, w + k))
                    return w + k;
            }
        }
        w += 8;
    }
    return scalarDiffTail(cur, twin, w, words);
}

std::uint32_t
neonFindSameWord(const std::byte *cur, const std::byte *twin,
                 std::uint32_t from, std::uint32_t words)
{
    std::uint32_t w = from;
    while (w + 4 <= words) {
        const std::uint8_t *a = reinterpret_cast<const std::uint8_t *>(
            cur + std::size_t{w} * kScanWordBytes);
        const std::uint8_t *b = reinterpret_cast<const std::uint8_t *>(
            twin + std::size_t{w} * kScanWordBytes);
        const uint32x4_t eq =
            vceqq_u32(vreinterpretq_u32_u8(vld1q_u8(a)),
                      vreinterpretq_u32_u8(vld1q_u8(b)));
        if (vmaxvq_u32(eq) == 0xffffffffu) {
            for (int k = 0; k < 4; ++k) {
                if (!scanWordDiffers(cur, twin, w + k))
                    return w + k;
            }
        }
        w += 4;
    }
    return scalarSameTail(cur, twin, w, words);
}

/** NEON run scan: vector compare per 4-word chunk, scalar run
 *  bookkeeping inside mixed chunks. */
void
neonScanRuns(const std::byte *cur, const std::byte *twin,
             std::uint32_t words, void *ctx, RunEmitFn emit)
{
    std::uint32_t w = 0;
    RunJoiner joiner{ctx, emit};
    auto handle = [&](std::uint32_t a, std::uint32_t b) {
        joiner.handle(a, b);
    };

    while (w + 4 <= words) {
        const std::uint8_t *a = reinterpret_cast<const std::uint8_t *>(
            cur + std::size_t{w} * kScanWordBytes);
        const std::uint8_t *b = reinterpret_cast<const std::uint8_t *>(
            twin + std::size_t{w} * kScanWordBytes);
        const uint32x4_t eq =
            vceqq_u32(vreinterpretq_u32_u8(vld1q_u8(a)),
                      vreinterpretq_u32_u8(vld1q_u8(b)));
        if (vminvq_u32(eq) != 0xffffffffu) {
            for (int k = 0; k < 4; ++k) {
                if (scanWordDiffers(cur, twin, w + k))
                    handle(w + k, w + k + 1);
            }
        }
        w += 4;
    }
    for (; w < words; ++w) {
        if (scanWordDiffers(cur, twin, w))
            handle(w, w + 1);
    }
    joiner.finish();
}

#endif // DSM_SCAN_NEON

using ScanFn = std::uint32_t (*)(const std::byte *, const std::byte *,
                                 std::uint32_t, std::uint32_t);
using RunsFn = void (*)(const std::byte *, const std::byte *,
                        std::uint32_t, void *, RunEmitFn);

/** Wide walks used when the CPU lacks the vector extension. */
std::uint32_t
fallbackFindDiffWord(const std::byte *cur, const std::byte *twin,
                     std::uint32_t from, std::uint32_t words)
{
    return findDiffWord(cur, twin, from, words, ScanKernel::Wide);
}

std::uint32_t
fallbackFindSameWord(const std::byte *cur, const std::byte *twin,
                     std::uint32_t from, std::uint32_t words)
{
    return findSameWord(cur, twin, from, words, ScanKernel::Wide);
}

void
fallbackScanRuns(const std::byte *cur, const std::byte *twin,
                 std::uint32_t words, void *ctx, RunEmitFn emit)
{
    scanChangedRuns(cur, twin, words, ScanKernel::Wide,
                    [&](std::uint32_t w, std::uint32_t e) {
                        emit(ctx, w, e);
                    });
}

struct SimdDispatch
{
    ScanFn diff = fallbackFindDiffWord;
    ScanFn same = fallbackFindSameWord;
    RunsFn runs = fallbackScanRuns;
    bool native = false;

    SimdDispatch()
    {
#if DSM_SCAN_X86_64
        if (x86HasAvx2()) {
            diff = avx2FindDiffWord;
            same = avx2FindSameWord;
            runs = avx2ScanRuns;
            native = true;
        }
#elif DSM_SCAN_NEON
        diff = neonFindDiffWord;
        same = neonFindSameWord;
        runs = neonScanRuns;
        native = true;
#endif
    }
};

const SimdDispatch &
dispatch()
{
    static const SimdDispatch d;
    return d;
}

} // namespace

bool
cpuHasSimdScan()
{
    return dispatch().native;
}

ScanKernel
bestScanKernel()
{
    static const ScanKernel kBest = [] {
        // DSM_WIDE_SCAN=0 pins the seed scalar loop process-wide and
        // DSM_SIMD=0 the wide memcmp fallback — the two CI legs that
        // prove each fallback tier under the full test suite.
        if (const char *v = std::getenv("DSM_WIDE_SCAN");
            v && std::atoi(v) == 0) {
            return ScanKernel::Scalar;
        }
        if (const char *v = std::getenv("DSM_SIMD");
            v && std::atoi(v) == 0) {
            return ScanKernel::Wide;
        }
        return cpuHasSimdScan() ? ScanKernel::Simd : ScanKernel::Wide;
    }();
    return kBest;
}

std::uint32_t
simdFindDiffWord(const std::byte *cur, const std::byte *twin,
                 std::uint32_t from, std::uint32_t words)
{
    return dispatch().diff(cur, twin, from, words);
}

std::uint32_t
simdFindSameWord(const std::byte *cur, const std::byte *twin,
                 std::uint32_t from, std::uint32_t words)
{
    return dispatch().same(cur, twin, from, words);
}

void
simdScanRuns(const std::byte *cur, const std::byte *twin,
             std::uint32_t words, void *ctx, RunEmitFn emit)
{
    dispatch().runs(cur, twin, words, ctx, emit);
}

} // namespace dsm
