/**
 * @file
 * Software dirty bits set by compiler-instrumented stores (Section 4.1
 * of the paper). Word-level bits record which 4-byte blocks changed;
 * for LRC a page-level summary ("hierarchical dirty bits") avoids
 * scanning the whole shared region at collection time.
 */

#ifndef DSM_MEM_DIRTY_BITS_HH
#define DSM_MEM_DIRTY_BITS_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/rle.hh"
#include "util/types.hh"

namespace dsm {

/**
 * Marking is lock-free (atomic fetch_or on the word bitmap, atomic
 * page summary bytes) so concurrent same-node writers never contend
 * here; the scan+clear collection paths additionally hold the page's
 * memory shard lock, which the instrumented store paths also take, so
 * a mark can never slip between a scan and its clear (the lost-update
 * race of an unsynchronized collector).
 */
class DirtyBitmap
{
  public:
    /**
     * @param bytes Size of the covered address space.
     * @param page_size Page size for the hierarchical summary bits.
     */
    DirtyBitmap(std::size_t bytes, std::size_t page_size);

    /** Mark the 4-byte blocks covering [addr, addr+size) dirty. */
    void markRange(GlobalAddr addr, std::size_t size);

    /** True if any block of the page is marked. */
    bool
    pageDirty(PageId page) const
    {
        return pageBits[page].load(std::memory_order_acquire) != 0;
    }

    /** Pages whose summary bit is set, ascending. */
    std::vector<PageId> dirtyPages() const;

    /**
     * Runs of dirty 4-byte blocks within [addr, addr+size), as
     * *absolute* block indices (addr / 4 based).
     */
    std::vector<Run> dirtyRunsIn(GlobalAddr addr, std::size_t size) const;

    /** Number of dirty blocks within the range. */
    std::uint64_t countDirtyIn(GlobalAddr addr, std::size_t size) const;

    /** Clear the word bits (and fix summary bits) for a range. */
    void clearRange(GlobalAddr addr, std::size_t size);

    /** Clear everything. */
    void clearAll();

    bool
    test(std::uint64_t block) const
    {
        return (bits[block >> 6].load(std::memory_order_acquire) >>
                (block & 63)) &
               1;
    }

  private:
    void
    set(std::uint64_t block)
    {
        bits[block >> 6].fetch_or(std::uint64_t{1} << (block & 63),
                                  std::memory_order_acq_rel);
    }

    void
    clear(std::uint64_t block)
    {
        bits[block >> 6].fetch_and(~(std::uint64_t{1} << (block & 63)),
                                   std::memory_order_acq_rel);
    }

    std::size_t pageBytes;
    std::size_t totalBytes;
    /** One bit per 4-byte block. */
    std::vector<std::atomic<std::uint64_t>> bits;
    /** One byte per page (hierarchical summary). */
    std::vector<std::atomic<std::uint8_t>> pageBits;
};

} // namespace dsm

#endif // DSM_MEM_DIRTY_BITS_HH
