#include "mem/region_table.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dsm {

void
RegionTable::add(Region region)
{
    DSM_ASSERT(region.blockSize == 4 || region.blockSize == 8,
               "block size must be 4 or 8, got %u", region.blockSize);
    auto it = std::lower_bound(
        regions.begin(), regions.end(), region.addr,
        [](const Region &r, GlobalAddr addr) { return r.addr < addr; });
    if (it != regions.end())
        DSM_ASSERT(region.end() <= it->addr, "regions overlap");
    if (it != regions.begin())
        DSM_ASSERT(std::prev(it)->end() <= region.addr, "regions overlap");
    regions.insert(it, std::move(region));
}

const Region *
RegionTable::find(GlobalAddr addr) const
{
    auto it = std::upper_bound(
        regions.begin(), regions.end(), addr,
        [](GlobalAddr a, const Region &r) { return a < r.addr; });
    if (it == regions.begin())
        return nullptr;
    --it;
    return addr < it->end() ? &*it : nullptr;
}

std::uint32_t
RegionTable::blockSizeAt(GlobalAddr addr) const
{
    const Region *r = find(addr);
    return r ? r->blockSize : 4;
}

} // namespace dsm
