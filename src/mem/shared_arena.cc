#include "mem/shared_arena.hh"

#include "util/logging.hh"

namespace dsm {

namespace {

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SharedArena::SharedArena(std::size_t bytes, std::size_t page_size)
    : pageBytes(page_size)
{
    DSM_ASSERT(isPowerOfTwo(page_size), "page size must be a power of two");
    const std::size_t rounded =
        (bytes + page_size - 1) / page_size * page_size;
    data.assign(rounded, std::byte{0});
}

GlobalAddr
SharedArena::alloc(std::size_t bytes, std::size_t align)
{
    DSM_ASSERT(isPowerOfTwo(align), "alignment must be a power of two");
    std::size_t base = (top + align - 1) & ~(align - 1);
    if (base + bytes > data.size()) {
        fatal("shared arena exhausted: need %zu bytes, %zu free "
              "(increase ClusterConfig::arenaBytes)",
              bytes, data.size() - base);
    }
    top = base + bytes;
    return static_cast<GlobalAddr>(base);
}

std::vector<PageId>
SharedArena::pagesIn(GlobalAddr addr, std::size_t size) const
{
    std::vector<PageId> pages;
    if (size == 0)
        return pages;
    PageId first = pageOf(addr);
    PageId last = pageOf(addr + size - 1);
    pages.reserve(last - first + 1);
    for (PageId p = first; p <= last; ++p)
        pages.push_back(p);
    return pages;
}

} // namespace dsm
