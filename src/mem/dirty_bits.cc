#include "mem/dirty_bits.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dsm {

DirtyBitmap::DirtyBitmap(std::size_t bytes, std::size_t page_size)
    : pageBytes(page_size), totalBytes(bytes)
{
    const std::size_t blocks = (bytes + 3) / 4;
    bits = std::vector<std::atomic<std::uint64_t>>((blocks + 63) / 64);
    pageBits = std::vector<std::atomic<std::uint8_t>>(
        (bytes + page_size - 1) / page_size);
    clearAll();
}

void
DirtyBitmap::markRange(GlobalAddr addr, std::size_t size)
{
    if (size == 0)
        return;
    DSM_ASSERT(addr + size <= totalBytes, "dirty mark out of bounds");
    const std::uint64_t first = addr / 4;
    const std::uint64_t last = (addr + size - 1) / 4;
    for (std::uint64_t b = first; b <= last; ++b)
        set(b);
    const PageId firstPage = static_cast<PageId>(addr / pageBytes);
    const PageId lastPage = static_cast<PageId>((addr + size - 1) /
                                                pageBytes);
    for (PageId p = firstPage; p <= lastPage; ++p)
        pageBits[p].store(1, std::memory_order_release);
}

std::vector<PageId>
DirtyBitmap::dirtyPages() const
{
    std::vector<PageId> pages;
    for (PageId p = 0; p < pageBits.size(); ++p) {
        if (pageBits[p].load(std::memory_order_acquire))
            pages.push_back(p);
    }
    return pages;
}

std::vector<Run>
DirtyBitmap::dirtyRunsIn(GlobalAddr addr, std::size_t size) const
{
    std::vector<Run> runs;
    if (size == 0)
        return runs;
    const std::uint64_t first = addr / 4;
    const std::uint64_t last = (addr + size - 1) / 4;
    std::uint64_t b = first;
    while (b <= last) {
        if (test(b)) {
            std::uint64_t start = b;
            while (b <= last && test(b))
                ++b;
            runs.push_back({static_cast<std::uint32_t>(start),
                            static_cast<std::uint32_t>(b - start)});
        } else {
            ++b;
        }
    }
    return runs;
}

std::uint64_t
DirtyBitmap::countDirtyIn(GlobalAddr addr, std::size_t size) const
{
    std::uint64_t count = 0;
    for (const auto &run : dirtyRunsIn(addr, size))
        count += run.length;
    return count;
}

void
DirtyBitmap::clearRange(GlobalAddr addr, std::size_t size)
{
    if (size == 0)
        return;
    const std::uint64_t first = addr / 4;
    const std::uint64_t last = (addr + size - 1) / 4;
    for (std::uint64_t b = first; b <= last; ++b)
        clear(b);

    // Recompute the page summary bits this range touches.
    const PageId firstPage = static_cast<PageId>(addr / pageBytes);
    const PageId lastPage = static_cast<PageId>((addr + size - 1) /
                                                pageBytes);
    for (PageId p = firstPage; p <= lastPage; ++p) {
        const std::uint64_t pFirst =
            static_cast<std::uint64_t>(p) * pageBytes / 4;
        const std::uint64_t pLastByte = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(p + 1) * pageBytes, totalBytes);
        const std::uint64_t pLast = (pLastByte - 1) / 4;
        bool any = false;
        for (std::uint64_t b = pFirst; b <= pLast && !any; ++b)
            any = test(b);
        pageBits[p].store(any ? 1 : 0, std::memory_order_release);
    }
}

void
DirtyBitmap::clearAll()
{
    for (auto &word : bits)
        word.store(0, std::memory_order_relaxed);
    for (auto &page : pageBits)
        page.store(0, std::memory_order_relaxed);
}

} // namespace dsm
