#include "mem/twin_store.hh"

#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

void
TwinStore::makePage(PageId page, const std::byte *src, std::size_t size)
{
    // Twins churn once per (page, interval); reuse retired capacity.
    std::vector<std::byte> twin = BufferPool::instance().acquire(size);
    twin.assign(src, src + size);
    std::lock_guard<std::mutex> g(structMu);
    auto [it, inserted] = pageTwins.emplace(page, std::move(twin));
    DSM_ASSERT(inserted, "page %u already twinned", page);
    (void)it;
}

const std::vector<std::byte> &
TwinStore::pageTwin(PageId page) const
{
    std::lock_guard<std::mutex> g(structMu);
    auto it = pageTwins.find(page);
    DSM_ASSERT(it != pageTwins.end(), "page %u not twinned", page);
    return it->second;
}

std::vector<std::byte> &
TwinStore::pageTwinMut(PageId page)
{
    std::lock_guard<std::mutex> g(structMu);
    auto it = pageTwins.find(page);
    DSM_ASSERT(it != pageTwins.end(), "page %u not twinned", page);
    return it->second;
}

void
TwinStore::dropPage(PageId page)
{
    std::vector<std::byte> retired;
    {
        std::lock_guard<std::mutex> g(structMu);
        auto it = pageTwins.find(page);
        if (it == pageTwins.end())
            return;
        retired = std::move(it->second);
        pageTwins.erase(it);
    }
    BufferPool::instance().release(std::move(retired));
}

std::vector<PageId>
TwinStore::twinnedPages() const
{
    std::lock_guard<std::mutex> g(structMu);
    std::vector<PageId> pages;
    pages.reserve(pageTwins.size());
    for (const auto &[page, twin] : pageTwins)
        pages.push_back(page);
    return pages;
}

void
TwinStore::makeRange(LockId lock, std::vector<std::byte> bytes)
{
    std::lock_guard<std::mutex> g(structMu);
    rangeTwins[lock] = std::move(bytes);
}

const std::vector<std::byte> &
TwinStore::rangeTwin(LockId lock) const
{
    std::lock_guard<std::mutex> g(structMu);
    auto it = rangeTwins.find(lock);
    DSM_ASSERT(it != rangeTwins.end(), "lock %u has no range twin", lock);
    return it->second;
}

void
TwinStore::dropRange(LockId lock)
{
    std::lock_guard<std::mutex> g(structMu);
    rangeTwins.erase(lock);
}

void
TwinStore::clear()
{
    std::lock_guard<std::mutex> g(structMu);
    for (auto &[page, twin] : pageTwins)
        BufferPool::instance().release(std::move(twin));
    pageTwins.clear();
    rangeTwins.clear();
}

void
TwinStore::serialize(WireWriter &w) const
{
    std::lock_guard<std::mutex> g(structMu);
    w.putU32(static_cast<std::uint32_t>(pageTwins.size()));
    for (const auto &[page, twin] : pageTwins) {
        w.putU32(page);
        w.putBlob(twin);
    }
    w.putU32(static_cast<std::uint32_t>(rangeTwins.size()));
    for (const auto &[lock, twin] : rangeTwins) {
        w.putU32(lock);
        w.putBlob(twin);
    }
}

void
TwinStore::restoreFrom(WireReader &r)
{
    std::lock_guard<std::mutex> g(structMu);
    for (auto &[page, twin] : pageTwins)
        BufferPool::instance().release(std::move(twin));
    pageTwins.clear();
    rangeTwins.clear();
    const std::uint32_t npages = r.getU32();
    for (std::uint32_t i = 0; i < npages; ++i) {
        const PageId page = r.getU32();
        pageTwins.emplace(page, r.getBlob());
    }
    const std::uint32_t nranges = r.getU32();
    for (std::uint32_t i = 0; i < nranges; ++i) {
        const LockId lock = r.getU32();
        rangeTwins.emplace(lock, r.getBlob());
    }
}

} // namespace dsm
