#include "mem/twin_store.hh"

#include "util/buffer_pool.hh"
#include "util/logging.hh"

namespace dsm {

void
TwinStore::makePage(PageId page, const std::byte *src, std::size_t size)
{
    DSM_ASSERT(!hasPage(page), "page %u already twinned", page);
    // Twins churn once per (page, interval); reuse retired capacity.
    std::vector<std::byte> twin = BufferPool::instance().acquire(size);
    twin.assign(src, src + size);
    pageTwins.emplace(page, std::move(twin));
}

const std::vector<std::byte> &
TwinStore::pageTwin(PageId page) const
{
    auto it = pageTwins.find(page);
    DSM_ASSERT(it != pageTwins.end(), "page %u not twinned", page);
    return it->second;
}

std::vector<std::byte> &
TwinStore::pageTwinMut(PageId page)
{
    auto it = pageTwins.find(page);
    DSM_ASSERT(it != pageTwins.end(), "page %u not twinned", page);
    return it->second;
}

void
TwinStore::dropPage(PageId page)
{
    auto it = pageTwins.find(page);
    if (it == pageTwins.end())
        return;
    BufferPool::instance().release(std::move(it->second));
    pageTwins.erase(it);
}

std::vector<PageId>
TwinStore::twinnedPages() const
{
    std::vector<PageId> pages;
    pages.reserve(pageTwins.size());
    for (const auto &[page, twin] : pageTwins)
        pages.push_back(page);
    return pages;
}

void
TwinStore::makeRange(LockId lock, std::vector<std::byte> bytes)
{
    rangeTwins[lock] = std::move(bytes);
}

const std::vector<std::byte> &
TwinStore::rangeTwin(LockId lock) const
{
    auto it = rangeTwins.find(lock);
    DSM_ASSERT(it != rangeTwins.end(), "lock %u has no range twin", lock);
    return it->second;
}

void
TwinStore::dropRange(LockId lock)
{
    rangeTwins.erase(lock);
}

void
TwinStore::clear()
{
    for (auto &[page, twin] : pageTwins)
        BufferPool::instance().release(std::move(twin));
    pageTwins.clear();
    rangeTwins.clear();
}

} // namespace dsm
