#include "mem/twin_store.hh"

#include "util/logging.hh"

namespace dsm {

void
TwinStore::makePage(PageId page, const std::byte *src, std::size_t size)
{
    DSM_ASSERT(!hasPage(page), "page %u already twinned", page);
    pageTwins.emplace(page, std::vector<std::byte>(src, src + size));
}

const std::vector<std::byte> &
TwinStore::pageTwin(PageId page) const
{
    auto it = pageTwins.find(page);
    DSM_ASSERT(it != pageTwins.end(), "page %u not twinned", page);
    return it->second;
}

std::vector<std::byte> &
TwinStore::pageTwinMut(PageId page)
{
    auto it = pageTwins.find(page);
    DSM_ASSERT(it != pageTwins.end(), "page %u not twinned", page);
    return it->second;
}

void
TwinStore::dropPage(PageId page)
{
    pageTwins.erase(page);
}

std::vector<PageId>
TwinStore::twinnedPages() const
{
    std::vector<PageId> pages;
    pages.reserve(pageTwins.size());
    for (const auto &[page, twin] : pageTwins)
        pages.push_back(page);
    return pages;
}

void
TwinStore::makeRange(LockId lock, std::vector<std::byte> bytes)
{
    rangeTwins[lock] = std::move(bytes);
}

const std::vector<std::byte> &
TwinStore::rangeTwin(LockId lock) const
{
    auto it = rangeTwins.find(lock);
    DSM_ASSERT(it != rangeTwins.end(), "lock %u has no range twin", lock);
    return it->second;
}

void
TwinStore::dropRange(LockId lock)
{
    rangeTwins.erase(lock);
}

void
TwinStore::clear()
{
    pageTwins.clear();
    rangeTwins.clear();
}

} // namespace dsm
