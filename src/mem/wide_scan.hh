/**
 * @file
 * Word-granularity memory comparison scans shared by diff creation
 * (mem/diff.cc), twin-vs-copy timestamp stamping (mem/word_ts.cc),
 * home word-sum stamping (core/page_home.cc) and EC twin comparison
 * (core/ec_runtime.cc).
 *
 * The unit of comparison is the 4-byte word (the trapping resolution
 * of the paper's twinning implementations), and three kernels emit
 * byte-identical word runs:
 *
 *  - Scalar: the seed per-word memcmp loop (ablation baseline).
 *  - Wide:   memcmp-chunked clean skipping + 64-bit loads (PR 1).
 *  - Simd:   explicit AVX2 (x86-64) / NEON (aarch64) compares, 8 words
 *            per vector step, accelerating both clean skipping and —
 *            unlike Wide — the dense-page findSameWord walk.
 *
 * Kernel selection is a runtime decision: bestScanKernel() probes the
 * CPU once and honours two env pins — DSM_SIMD=0 selects the Wide
 * fallback, DSM_WIDE_SCAN=0 the seed Scalar loop — so ctest legs can
 * prove each fallback tier process-wide. The Simd entry points fall
 * back to Wide internally on CPUs without the required extensions, so
 * requesting Simd is always safe. Build-side, the CMake option
 * DSM_MARCH adds architecture flags (e.g. -march=native); the AVX2
 * kernels do not need it (they carry a target attribute) but the rest
 * of the scan code can profit from it.
 */

#ifndef DSM_MEM_WIDE_SCAN_HH
#define DSM_MEM_WIDE_SCAN_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace dsm {

/** Bytes per comparison word (twinning trap resolution). */
inline constexpr std::uint32_t kScanWordBytes = 4;

/** How the comparison scans traverse memory. All kernels emit
 *  identical word-granularity results; only the cost differs. */
enum class ScanKernel : std::uint8_t
{
    Scalar, ///< seed per-word memcmp loop
    Wide,   ///< 64-bit loads + memcmp chunk skipping (PR 1)
    Simd,   ///< explicit AVX2/NEON kernels with runtime dispatch
};

const char *toString(ScanKernel kernel);

/** Does this CPU have the vector extension the Simd kernel wants
 *  (AVX2 on x86-64, NEON on aarch64)? */
bool cpuHasSimdScan();

/**
 * The fastest kernel available: Simd when the CPU supports it and the
 * environment does not veto it (DSM_SIMD=0 pins Wide — the CI leg that
 * proves the fallback), Wide otherwise. Resolved once per process.
 */
ScanKernel bestScanKernel();

inline std::uint64_t
loadU64(const std::byte *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline bool
scanWordDiffers(const std::byte *cur, const std::byte *twin,
                std::uint32_t word)
{
    return std::memcmp(cur + std::size_t{word} * kScanWordBytes,
                       twin + std::size_t{word} * kScanWordBytes,
                       kScanWordBytes) != 0;
}

// Out-of-line SIMD entry points (src/mem/wide_scan.cc). They dispatch
// on the probed CPU and fall back to the Wide/scalar walks.
std::uint32_t simdFindDiffWord(const std::byte *cur, const std::byte *twin,
                               std::uint32_t from, std::uint32_t words);
std::uint32_t simdFindSameWord(const std::byte *cur, const std::byte *twin,
                               std::uint32_t from, std::uint32_t words);

/**
 * First word index in [@p from, @p words) where @p cur and @p twin
 * differ, or @p words if none.
 */
inline std::uint32_t
findDiffWord(const std::byte *cur, const std::byte *twin,
             std::uint32_t from, std::uint32_t words, ScanKernel kernel)
{
    std::uint32_t w = from;
    if (kernel == ScanKernel::Simd)
        return simdFindDiffWord(cur, twin, from, words);
    if (kernel == ScanKernel::Wide) {
        // Dense-change fast path: at a run boundary the very next word
        // usually differs again; answer before the block loops spin up.
        if (w < words && scanWordDiffers(cur, twin, w))
            return w;
        const std::size_t limit = std::size_t{words} * kScanWordBytes;
        std::size_t byte = std::size_t{w} * kScanWordBytes;
        // Clean memory is skipped in big strides: libc memcmp runs at
        // SIMD width on 512/64-byte chunks, then the mismatching chunk
        // is narrowed with 64-bit loads and a final per-word compare.
        while (byte + 512 <= limit &&
               std::memcmp(cur + byte, twin + byte, 512) == 0) {
            byte += 512;
        }
        while (byte + 64 <= limit &&
               std::memcmp(cur + byte, twin + byte, 64) == 0) {
            byte += 64;
        }
        while (byte + 8 <= limit) {
            if (loadU64(cur + byte) != loadU64(twin + byte))
                break;
            byte += 8;
        }
        w = static_cast<std::uint32_t>(byte / kScanWordBytes);
    }
    while (w < words && !scanWordDiffers(cur, twin, w))
        ++w;
    return w;
}

/**
 * First word index in [@p from, @p words) where @p cur and @p twin
 * agree again, or @p words if the mismatch reaches the end. Scalar and
 * Wide walk word by word (mismatch runs are typically short); Simd
 * vectorizes the walk, which is where dense pages win.
 */
inline std::uint32_t
findSameWord(const std::byte *cur, const std::byte *twin,
             std::uint32_t from, std::uint32_t words, ScanKernel kernel)
{
    if (kernel == ScanKernel::Simd)
        return simdFindSameWord(cur, twin, from, words);
    std::uint32_t w = from;
    while (w < words && scanWordDiffers(cur, twin, w))
        ++w;
    return w;
}

/** Kernel for a configuration's wideDiffScan ablation flag: the seed
 *  scalar loop when disabled, the best available kernel otherwise. */
inline ScanKernel
scanKernelFor(bool wide_diff_scan)
{
    return wide_diff_scan ? bestScanKernel() : ScanKernel::Scalar;
}

/** Callback trampoline used by the out-of-line SIMD run scan. */
using RunEmitFn = void (*)(void *ctx, std::uint32_t first_word,
                           std::uint32_t end_word);

/** Single-pass SIMD run scan (src/mem/wide_scan.cc): emits every
 *  maximal run [first, end) of differing words, in order. */
void simdScanRuns(const std::byte *cur, const std::byte *twin,
                  std::uint32_t words, void *ctx, RunEmitFn emit);

/**
 * Walk [0, @p words) and call @p emit(first, end) for every maximal
 * run of differing words, in order. This is the shared traversal of
 * all four scan sites (diff creation, LRC-time stamping, home
 * word-sum stamping, EC twin comparison). The Simd kernel runs it in
 * one pass over the vector compare masks — one load per chunk instead
 * of a findDiffWord/findSameWord call pair per run boundary, which is
 * where dense pages win.
 */
template <typename Emit>
inline void
scanChangedRuns(const std::byte *cur, const std::byte *twin,
                std::uint32_t words, ScanKernel kernel, Emit &&emit)
{
    if (kernel == ScanKernel::Simd) {
        using EmitT = std::remove_reference_t<Emit>;
        simdScanRuns(cur, twin, words, &emit,
                     [](void *ctx, std::uint32_t w, std::uint32_t e) {
                         (*static_cast<EmitT *>(ctx))(w, e);
                     });
        return;
    }
    std::uint32_t w = findDiffWord(cur, twin, 0, words, kernel);
    while (w < words) {
        const std::uint32_t e = findSameWord(cur, twin, w, words, kernel);
        emit(w, e);
        w = findDiffWord(cur, twin, e, words, kernel);
    }
}

} // namespace dsm

#endif // DSM_MEM_WIDE_SCAN_HH
