/**
 * @file
 * Word-granularity memory comparison scans shared by diff creation
 * (mem/diff.cc) and twin-vs-copy timestamp stamping (mem/word_ts.cc).
 *
 * The unit of comparison is the 4-byte word (the trapping resolution
 * of the paper's twinning implementations), but the wide scan walks
 * unchanged memory 32 and 8 bytes at a time with memcpy-safe 64-bit
 * loads, dropping to per-word compares only around mismatches. The
 * emitted word runs are therefore byte-identical to a naive per-word
 * memcmp scan — only the cost of traversing clean memory changes.
 */

#ifndef DSM_MEM_WIDE_SCAN_HH
#define DSM_MEM_WIDE_SCAN_HH

#include <cstdint>
#include <cstring>

namespace dsm {

/** Bytes per comparison word (twinning trap resolution). */
inline constexpr std::uint32_t kScanWordBytes = 4;

inline std::uint64_t
loadU64(const std::byte *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline bool
scanWordDiffers(const std::byte *cur, const std::byte *twin,
                std::uint32_t word)
{
    return std::memcmp(cur + std::size_t{word} * kScanWordBytes,
                       twin + std::size_t{word} * kScanWordBytes,
                       kScanWordBytes) != 0;
}

/**
 * First word index in [@p from, @p words) where @p cur and @p twin
 * differ, or @p words if none. @p wide selects the 64-bit fast path;
 * false reproduces the seed per-word memcmp loop for ablation.
 */
inline std::uint32_t
findDiffWord(const std::byte *cur, const std::byte *twin,
             std::uint32_t from, std::uint32_t words, bool wide)
{
    std::uint32_t w = from;
    if (wide) {
        // Dense-change fast path: at a run boundary the very next word
        // usually differs again; answer before the block loops spin up.
        if (w < words && scanWordDiffers(cur, twin, w))
            return w;
        const std::size_t limit = std::size_t{words} * kScanWordBytes;
        std::size_t byte = std::size_t{w} * kScanWordBytes;
        // Clean memory is skipped in big strides: libc memcmp runs at
        // SIMD width on 512/64-byte chunks, then the mismatching chunk
        // is narrowed with 64-bit loads and a final per-word compare.
        while (byte + 512 <= limit &&
               std::memcmp(cur + byte, twin + byte, 512) == 0) {
            byte += 512;
        }
        while (byte + 64 <= limit &&
               std::memcmp(cur + byte, twin + byte, 64) == 0) {
            byte += 64;
        }
        while (byte + 8 <= limit) {
            if (loadU64(cur + byte) != loadU64(twin + byte))
                break;
            byte += 8;
        }
        w = static_cast<std::uint32_t>(byte / kScanWordBytes);
    }
    while (w < words && !scanWordDiffers(cur, twin, w))
        ++w;
    return w;
}

/**
 * First word index in [@p from, @p words) where @p cur and @p twin
 * agree again, or @p words if the mismatch reaches the end. Mismatch
 * runs are typically short; this is always a per-word walk.
 */
inline std::uint32_t
findSameWord(const std::byte *cur, const std::byte *twin,
             std::uint32_t from, std::uint32_t words)
{
    std::uint32_t w = from;
    while (w < words && scanWordDiffers(cur, twin, w))
        ++w;
    return w;
}

} // namespace dsm

#endif // DSM_MEM_WIDE_SCAN_HH
