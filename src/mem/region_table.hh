/**
 * @file
 * Registry of shared allocations ("regions" in Midway terminology —
 * Section 4.1 of the paper). Each region records the block granularity
 * at which its dirty bits / timestamps operate: one word (4 bytes) by
 * default, or a double-word (8 bytes) for applications whose smallest
 * shared datum is larger than a word (Water, 3D-FFT).
 */

#ifndef DSM_MEM_REGION_TABLE_HH
#define DSM_MEM_REGION_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace dsm {

struct Region
{
    GlobalAddr addr = 0;
    std::uint64_t size = 0;
    std::uint32_t blockSize = 4; ///< 4 or 8 bytes
    std::string name;

    GlobalAddr end() const { return addr + size; }
};

class RegionTable
{
  public:
    /** Register a region; regions must not overlap. */
    void add(Region region);

    /** Region containing @p addr, or nullptr. */
    const Region *find(GlobalAddr addr) const;

    /** Block granularity at @p addr (4 if the address is unknown). */
    std::uint32_t blockSizeAt(GlobalAddr addr) const;

    std::size_t count() const { return regions.size(); }

    const std::vector<Region> &all() const { return regions; }

  private:
    std::vector<Region> regions; ///< sorted by addr
};

} // namespace dsm

#endif // DSM_MEM_REGION_TABLE_HH
