#include "mem/word_ts.hh"

#include <algorithm>

namespace dsm {

void
BlockTimestamps::setRange(std::uint32_t first, std::uint32_t n,
                          std::uint64_t value)
{
    DSM_ASSERT(first + n <= ts.size(), "range out of bounds");
    std::fill(ts.begin() + first, ts.begin() + first + n, value);
}

void
BlockTimestamps::setAll(std::uint64_t value)
{
    std::fill(ts.begin(), ts.end(), value);
}

} // namespace dsm
