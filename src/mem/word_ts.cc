#include "mem/word_ts.hh"

#include <algorithm>

#include "mem/wide_scan.hh"

namespace dsm {

void
BlockTimestamps::setRange(std::uint32_t first, std::uint32_t n,
                          std::uint64_t value)
{
    DSM_ASSERT(first + n <= ts.size(), "range out of bounds");
    std::fill(ts.begin() + first, ts.begin() + first + n, value);
}

void
BlockTimestamps::setAll(std::uint64_t value)
{
    std::fill(ts.begin(), ts.end(), value);
}

std::uint64_t
stampChangedWords(BlockTimestamps &ts, const std::byte *cur,
                  const std::byte *twin, std::uint32_t len,
                  std::uint64_t value, ScanKernel kernel)
{
    const std::uint32_t words = len / kScanWordBytes;
    DSM_ASSERT(words <= ts.numBlocks(), "stamp range exceeds timestamps");
    std::uint64_t stamped = 0;
    scanChangedRuns(cur, twin, words, kernel,
                    [&](std::uint32_t w, std::uint32_t e) {
                        ts.setRange(w, e - w, value);
                        stamped += e - w;
                    });
    return stamped;
}

} // namespace dsm
