#include "mem/page_table.hh"

#include <algorithm>

namespace dsm {

PageTable::PageTable(std::size_t npages, PageAccess initial)
    : accessBits(npages, initial)
{}

void
PageTable::setAll(PageAccess a)
{
    std::fill(accessBits.begin(), accessBits.end(), a);
}

} // namespace dsm
