#include "mem/page_table.hh"

namespace dsm {

PageTable::PageTable(std::size_t npages, PageAccess initial)
    : accessBits(npages)
{
    setAll(initial);
}

void
PageTable::setAll(PageAccess a)
{
    for (auto &bits : accessBits)
        bits.store(a, std::memory_order_relaxed);
}

} // namespace dsm
