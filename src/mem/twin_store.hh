/**
 * @file
 * Storage for twins: unmodified copies of shared data used by the
 * twinning write-trapping method (Section 4.2 of the paper).
 *
 * Two kinds are kept:
 *  - page twins, used by LRC and by EC for large objects
 *    (copy-on-write via the software MMU);
 *  - range twins keyed by lock, used by EC for small objects, which
 *    are copied eagerly when the write lock is acquired (the paper's
 *    improvement over the Midway VM implementation).
 */

#ifndef DSM_MEM_TWIN_STORE_HH
#define DSM_MEM_TWIN_STORE_HH

#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/serde.hh"
#include "util/types.hh"

namespace dsm {

/**
 * Thread-safety (SMP nodes): the map *structure* is guarded by an
 * internal leaf mutex, so lookups/inserts/erases from concurrent
 * threads are safe on their own. The twin *bytes* a returned reference
 * points at are guarded by the caller's lock discipline instead: page
 * twin contents are only touched while holding that page's memory
 * shard lock, range twin contents under the protocol core lock — the
 * same holder that makes or drops the twin, so a reference can never
 * outlive its entry.
 */
class TwinStore
{
  public:
    /** Copy @p size bytes at @p src as the twin of @p page. */
    void makePage(PageId page, const std::byte *src, std::size_t size);

    bool
    hasPage(PageId page) const
    {
        std::lock_guard<std::mutex> g(structMu);
        return pageTwins.count(page) != 0;
    }

    /** Twin bytes of @p page; page must be twinned. */
    const std::vector<std::byte> &pageTwin(PageId page) const;

    /** Mutable twin bytes (for refreshing after a flush). */
    std::vector<std::byte> &pageTwinMut(PageId page);

    void dropPage(PageId page);

    /** Pages currently twinned (unordered). */
    std::vector<PageId> twinnedPages() const;

    /** Copy the concatenated bytes of a lock's bound ranges. */
    void makeRange(LockId lock, std::vector<std::byte> bytes);

    bool
    hasRange(LockId lock) const
    {
        std::lock_guard<std::mutex> g(structMu);
        return rangeTwins.count(lock) != 0;
    }

    const std::vector<std::byte> &rangeTwin(LockId lock) const;

    void dropRange(LockId lock);

    void clear();

    /** Checkpoint support: capture / rebuild both twin maps (takes
     *  the structure mutex itself). */
    void serialize(WireWriter &w) const;
    void restoreFrom(WireReader &r);

    std::size_t
    numPageTwins() const
    {
        std::lock_guard<std::mutex> g(structMu);
        return pageTwins.size();
    }

  private:
    /** Leaf lock: guards the maps, never held while calling out. */
    mutable std::mutex structMu;
    std::unordered_map<PageId, std::vector<std::byte>> pageTwins;
    std::unordered_map<LockId, std::vector<std::byte>> rangeTwins;
};

} // namespace dsm

#endif // DSM_MEM_TWIN_STORE_HH
