/**
 * @file
 * Diffs: run-length encodings of the changes to a shared data object
 * (EC) or page (LRC) — Section 5.2 of the paper. A diff is created by
 * comparing the current copy against the twin at word granularity and
 * applied by splatting its runs onto a destination copy.
 */

#ifndef DSM_MEM_DIFF_HH
#define DSM_MEM_DIFF_HH

#include <cstdint>
#include <span>
#include <vector>

#include "mem/wide_scan.hh"
#include "net/serde.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dsm {

/**
 * One run of changed bytes: @p size bytes at @p offset within the
 * diffed area. The bytes themselves live at @p dataPos in the diff's
 * shared payload buffer (see Diff::runData) — keeping run descriptors
 * POD means creating a diff with many runs costs one payload
 * allocation, not one per run.
 */
struct DiffRun
{
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t dataPos = 0;

    bool operator==(const DiffRun &other) const = default;
};

/** How Diff::create scans the copy against the twin. */
struct DiffScan
{
    /**
     * Comparison kernel (mem/wide_scan.hh): the seed per-word memcmp
     * loop (Scalar), the 64-bit/memcmp-chunked walk (Wide), or the
     * explicit AVX2/NEON kernels (Simd, with internal fallback on
     * CPUs without the extension). All emit identical
     * word-granularity runs. Defaults to the best kernel available.
     */
    ScanKernel kernel = bestScanKernel();

    /**
     * Coalesce runs separated by at most this many unchanged words
     * into one run (carrying the unchanged bytes), trading payload
     * bytes for fewer per-run wire headers. 0 keeps runs word-exact.
     *
     * Caution: a coalesced run overwrites the bridged unchanged words
     * on apply, which is only safe when diffs from concurrent writers
     * of the same page cannot interleave within the gap (single-writer
     * pages, or EC's lock-serialized objects).
     */
    std::uint32_t gapWords = 0;
};

class Diff
{
  public:
    Diff() = default;

    // One shared wire layout: encode(), decode() and wireBytes() all
    // derive from these constants.
    static constexpr std::uint32_t kWordBytes = 4;
    /** 4 (area length) + 4 (run count). */
    static constexpr std::uint64_t kHeaderBytes = 8;
    /** Per run: 4 (offset) + 4 (size). */
    static constexpr std::uint64_t kRunHeaderBytes = 8;

    /** Words a scan of @p len bytes compares; the trailing non-word
     *  tail (1-3 bytes) counts as one short word. */
    static constexpr std::uint64_t
    comparedWords(std::uint32_t len)
    {
        return (std::uint64_t{len} + kWordBytes - 1) / kWordBytes;
    }

    /**
     * Build a diff of @p len bytes by comparing @p cur against
     * @p twin word by word (4-byte granularity, as in the paper's
     * twinning implementations; trailing bytes are compared as one
     * short word).
     *
     * @param stats If non-null, diffWordsCompared/diffsCreated are
     *        recorded there.
     * @param scan Scan kernel and run coalescing; the default is
     *        word-exact scanning with the best available kernel.
     */
    static Diff create(const std::byte *cur, const std::byte *twin,
                       std::uint32_t len, NodeStats *stats = nullptr,
                       DiffScan scan = {});

    /** Copy every run onto @p dst (an area of at least length()). */
    void apply(std::byte *dst, NodeStats *stats = nullptr) const;

    bool empty() const { return runs.empty(); }

    /** Length of the area this diff describes. */
    std::uint32_t length() const { return areaLen; }

    const std::vector<DiffRun> &diffRuns() const { return runs; }

    /** Payload bytes of @p run. */
    std::span<const std::byte>
    runData(const DiffRun &run) const
    {
        return {payload.data() + run.dataPos, run.size};
    }

    /** Total payload bytes carried by the runs. */
    std::uint64_t dataBytes() const { return payload.size(); }

    /** Modeled wire footprint (runs + offsets + header). */
    std::uint64_t wireBytes() const;

    void encode(WireWriter &w) const;
    static Diff decode(WireReader &r);

    bool operator==(const Diff &other) const = default;

  private:
    std::uint32_t areaLen = 0;
    std::vector<DiffRun> runs;
    std::vector<std::byte> payload; ///< concatenated run bytes
};

} // namespace dsm

#endif // DSM_MEM_DIFF_HH
