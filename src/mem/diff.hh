/**
 * @file
 * Diffs: run-length encodings of the changes to a shared data object
 * (EC) or page (LRC) — Section 5.2 of the paper. A diff is created by
 * comparing the current copy against the twin at word granularity and
 * applied by splatting its runs onto a destination copy.
 */

#ifndef DSM_MEM_DIFF_HH
#define DSM_MEM_DIFF_HH

#include <cstdint>
#include <vector>

#include "net/serde.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace dsm {

/** One run of changed bytes at @p offset within the diffed area. */
struct DiffRun
{
    std::uint32_t offset = 0;
    std::vector<std::byte> data;

    bool operator==(const DiffRun &other) const = default;
};

class Diff
{
  public:
    Diff() = default;

    /**
     * Build a diff of @p len bytes by comparing @p cur against
     * @p twin word by word (4-byte granularity, as in the paper's
     * twinning implementations; trailing bytes are compared as one
     * short word).
     *
     * @param stats If non-null, diffWordsCompared/diffsCreated are
     *        recorded there.
     */
    static Diff create(const std::byte *cur, const std::byte *twin,
                       std::uint32_t len, NodeStats *stats = nullptr);

    /** Copy every run onto @p dst (an area of at least length()). */
    void apply(std::byte *dst, NodeStats *stats = nullptr) const;

    bool empty() const { return runs.empty(); }

    /** Length of the area this diff describes. */
    std::uint32_t length() const { return areaLen; }

    const std::vector<DiffRun> &diffRuns() const { return runs; }

    /** Total payload bytes carried by the runs. */
    std::uint64_t dataBytes() const;

    /** Modeled wire footprint (runs + offsets + header). */
    std::uint64_t wireBytes() const;

    void encode(WireWriter &w) const;
    static Diff decode(WireReader &r);

    bool operator==(const Diff &other) const = default;

  private:
    std::uint32_t areaLen = 0;
    std::vector<DiffRun> runs;
};

} // namespace dsm

#endif // DSM_MEM_DIFF_HH
