/**
 * @file
 * Per-node backing store for the shared virtual address space.
 *
 * Every node holds its own SharedArena of identical size and performs
 * the identical allocation sequence (the applications are SPMD), so a
 * GlobalAddr — an offset into the arena — denotes the same object on
 * every node. This reproduces the shared-heap convention of Midway and
 * TreadMarks without address-space tricks.
 */

#ifndef DSM_MEM_SHARED_ARENA_HH
#define DSM_MEM_SHARED_ARENA_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace dsm {

class SharedArena
{
  public:
    /**
     * @param bytes Arena capacity (rounded up to a whole page).
     * @param page_size Virtual page size; must be a power of two.
     */
    SharedArena(std::size_t bytes, std::size_t page_size);

    /** Bump allocation; deterministic, symmetric across nodes. */
    GlobalAddr alloc(std::size_t bytes, std::size_t align = 8);

    /** Local pointer for @p addr on this node. */
    std::byte *
    at(GlobalAddr addr)
    {
        return data.data() + addr;
    }

    const std::byte *
    at(GlobalAddr addr) const
    {
        return data.data() + addr;
    }

    std::size_t size() const { return data.size(); }
    std::size_t pageSize() const { return pageBytes; }
    std::size_t numPages() const { return data.size() / pageBytes; }

    PageId
    pageOf(GlobalAddr addr) const
    {
        return static_cast<PageId>(addr / pageBytes);
    }

    GlobalAddr
    pageBase(PageId page) const
    {
        return static_cast<GlobalAddr>(page) * pageBytes;
    }

    /** Bytes allocated so far. */
    std::size_t used() const { return top; }

    /** True when [addr, addr+bytes) lies inside the allocated area. */
    bool
    contains(GlobalAddr addr, std::size_t bytes) const
    {
        return addr + bytes <= top && addr + bytes >= addr;
    }

    /** Pages overlapped by the byte range [addr, addr + size). */
    std::vector<PageId> pagesIn(GlobalAddr addr, std::size_t size) const;

  private:
    std::vector<std::byte> data;
    std::size_t pageBytes;
    std::size_t top = 0;
};

} // namespace dsm

#endif // DSM_MEM_SHARED_ARENA_HH
