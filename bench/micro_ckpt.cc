/**
 * @file
 * Incremental-checkpoint microbenchmark. Two measurements:
 *
 *  1. Stored-bytes reduction on a sparse-write workload: a 2-node
 *     home-based LRC cluster populates a shared array once, then runs
 *     epochs that each touch a handful of words. Every barrier cut
 *     checkpoints; with deltas on, the cut stores only the changed
 *     word runs against the previous image (full anchors every 8th
 *     epoch). The reported ratio full_bytes / delta_bytes is the
 *     whole point of the delta subsystem — the PR's acceptance bar is
 *     >= 5x — and being a byte count it is exactly reproducible
 *     across hosts, so the gate runs it at the regular tolerance.
 *
 *  2. Delta scan/encode throughput: makeDelta over synthetic images
 *     with scattered changes (the SIMD changed-run scan dominates),
 *     plus an applyDelta round-trip check. Informational: absolute
 *     GB/s varies with the host's memory system.
 *
 * Emits BENCH_ckpt.json (tracked); tools/bench_gate.py gates the
 * reduction ratio.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/checkpoint.hh"
#include "core/cluster.hh"
#include "core/shared_array.hh"

using namespace dsm;

namespace {

constexpr int kWords = 65536; // 512 KiB shared array
constexpr int kSparseEpochs = 6;
constexpr int kSparseWords = 16; // touched per sparse epoch

std::uint64_t
runSparseWorkload(bool delta)
{
    ClusterConfig cc;
    cc.nprocs = 2;
    cc.threadsPerNode = 1;
    cc.arenaBytes = 1u << 21;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    cc.homeBasedLrc = true;
    cc.homeMigrateThreshold = 0;
    cc.faultSeed = 1;
    cc.faultMsgDrop = 0;
    cc.checkpointEvery = 1;
    cc.ckptDelta = delta ? 1 : 0;
    cc.ckptAnchorEvery = 8;

    Cluster cluster(cc);
    RunResult result = cluster.run([](Runtime &rt) {
        auto a =
            SharedArray<std::uint64_t>::alloc(rt, kWords, 4, "ckpt");
        const int w = rt.worker();
        const int nw = rt.nworkers();
        rt.barrier(0);
        for (int i = w; i < kWords; i += nw) // dense populate
            a.set(i, static_cast<std::uint64_t>(i));
        rt.barrier(1);
        for (int e = 0; e < kSparseEpochs; ++e) {
            if (w == 0) {
                for (int i = 0; i < kSparseWords; ++i)
                    a.set(i, static_cast<std::uint64_t>(1000 * e + i));
            }
            rt.barrier(static_cast<BarrierId>(2 + e));
        }
    });
    // Stored cost of the final (sparse) cut: the full blob, or the
    // delta blob when the cut was incremental.
    return result.checkpointBytes;
}

struct ScanResult
{
    double gbps = 0;
    double deltaFrac = 0; ///< delta size / image size
};

ScanResult
scanThroughput()
{
    constexpr std::size_t kImage = 32u << 20; // 32 MiB
    constexpr int kReps = 5;
    std::vector<std::byte> prev(kImage);
    for (std::size_t i = 0; i < kImage; ++i)
        prev[i] = static_cast<std::byte>(i * 2654435761u >> 24);
    std::vector<std::byte> cur = prev;
    // Scatter changes across the image: one word per 4 KiB.
    for (std::size_t off = 128; off < kImage; off += 4096)
        cur[off] = static_cast<std::byte>(~static_cast<unsigned>(
            std::to_integer<unsigned>(cur[off])));

    std::vector<std::byte> delta;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r)
        delta = CheckpointCoordinator::makeDelta(prev, cur, 1);
    const auto t1 = std::chrono::steady_clock::now();

    const std::vector<std::byte> rebuilt =
        CheckpointCoordinator::applyDelta(prev, delta, 1);
    if (rebuilt.size() != cur.size() ||
        std::memcmp(rebuilt.data(), cur.data(), cur.size()) != 0) {
        std::fprintf(stderr, "FAIL: delta round trip corrupted the "
                             "image\n");
        std::abort();
    }

    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 -
                                                                  t0)
            .count();
    ScanResult out;
    // The scan reads both images once per rep.
    out.gbps = 2.0 * kImage * kReps / secs / 1e9;
    out.deltaFrac = static_cast<double>(delta.size()) / kImage;
    return out;
}

} // namespace

int
main()
{
    std::printf("=== micro_ckpt: incremental delta checkpoints ===\n");
    std::printf("sparse workload: %d KiB array, %d sparse epochs of "
                "%d words\n\n",
                kWords * 8 / 1024, kSparseEpochs, kSparseWords);

    const std::uint64_t fullBytes = runSparseWorkload(false);
    const std::uint64_t deltaBytes = runSparseWorkload(true);
    if (deltaBytes == 0) {
        std::fprintf(stderr, "FAIL: delta run stored nothing\n");
        return 1;
    }
    const double reduction =
        static_cast<double>(fullBytes) / static_cast<double>(deltaBytes);

    const ScanResult scan = scanThroughput();

    std::printf("%-30s %12llu\n", "full cut bytes",
                static_cast<unsigned long long>(fullBytes));
    std::printf("%-30s %12llu\n", "delta cut bytes",
                static_cast<unsigned long long>(deltaBytes));
    std::printf("%-30s %11.1fx\n", "stored-bytes reduction", reduction);
    std::printf("%-30s %12.2f\n", "delta scan GB/s", scan.gbps);
    std::printf("%-30s %12.4f\n", "delta/image size fraction",
                scan.deltaFrac);

    const char *out_path = "BENCH_ckpt.json";
    if (FILE *f = std::fopen(out_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"array_kib\": %d,\n"
            "  \"sparse_epochs\": %d,\n"
            "  \"ckpt_full_bytes\": %llu,\n"
            "  \"ckpt_delta_bytes\": %llu,\n"
            "  \"delta_reduction\": %.2f,\n"
            "  \"delta_scan_gbps\": %.2f,\n"
            "  \"delta_size_fraction\": %.4f\n"
            "}\n",
            kWords * 8 / 1024, kSparseEpochs,
            static_cast<unsigned long long>(fullBytes),
            static_cast<unsigned long long>(deltaBytes), reduction,
            scan.gbps, scan.deltaFrac);
        std::fclose(f);
        std::printf("\nwrote %s\n", out_path);
    }
    return 0;
}
