/**
 * @file
 * Microbenchmark of the node inbox and the PR 9 latency paths: the
 * seed mutex+condvar deque (InboxPolicy::MutexQueue) against the
 * bounded lock-free MPSC ring (InboxPolicy::LockFreeRing), plus the
 * reply-bypass and send-coalescing ablations.
 *
 * Shapes, all in real (wall-clock) nanoseconds:
 *  - rpc: Endpoint::call round trips between two nodes' app threads —
 *    the service-thread round-trip latency every LRC access miss and
 *    lock hand-off pays. Measured per-iteration, so the table carries
 *    p50/p99 alongside the mean: the bypass mostly compresses the
 *    tail (the reply's futex double hop through the responder's
 *    service thread).
 *  - rpc ablation: the same round trip with the reply bypass forced
 *    off — the reply funnels through the caller's inbox and service
 *    thread like any message.
 *  - fanin: 7 producer threads blasting one consumer — the batched
 *    diff/timestamp request traffic shape, measuring throughput.
 *  - coalesce: bursts of small same-destination one-way messages
 *    (the HomeDiffFlush shape) with send-side coalescing off vs on —
 *    on buffers the burst and ships one framed ring slot per
 *    request boundary.
 *
 * Emits BENCH_net.json (tracked in the repo) so the inbox latency
 * trajectory is visible across PRs. Acceptance bar for this PR: the
 * bypassed rpc round trip beats the committed pre-bypass ring number
 * by >= 1.3x.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "driver/proc_launcher.hh"
#include "net/endpoint.hh"
#include "net/network.hh"
#include "net/serde.hh"
#include "net/socket_transport.hh"

using namespace dsm;

namespace {

struct RpcResult
{
    double meanNs;
    double p50Ns;
    double p99Ns;
};

RpcResult
rpcRoundTrip(InboxPolicy policy, int iters, bool bypass)
{
    CostModel cm;
    Network net(2, cm, nullptr, policy);
    VirtualClock clocks[2];
    NodeStats stats[2];
    Endpoint a(net, 0, clocks[0], stats[0]);
    Endpoint b(net, 1, clocks[1], stats[1]);
    a.setReplyBypass(bypass);
    b.setReplyBypass(bypass);
    b.setHandler([&](Message &msg) {
        b.reply(msg.src, MsgType::LockGrant, {}, msg.replyToken);
    });
    a.setHandler([](Message &) {});
    a.start();
    b.start();

    // Warm up the path (thread creation, first futex round trips).
    for (int i = 0; i < 2000; ++i)
        a.call(1, MsgType::LockRequest, {});

    std::vector<double> samples(static_cast<std::size_t>(iters));
    for (int i = 0; i < iters; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        a.call(1, MsgType::LockRequest, {});
        const auto t1 = std::chrono::steady_clock::now();
        samples[static_cast<std::size_t>(i)] =
            std::chrono::duration<double, std::nano>(t1 - t0).count();
    }

    a.stop();
    b.stop();
    net.shutdown();

    double sum = 0.0;
    for (double s : samples)
        sum += s;
    std::sort(samples.begin(), samples.end());
    RpcResult r;
    r.meanNs = sum / iters;
    r.p50Ns = samples[samples.size() / 2];
    r.p99Ns = samples[samples.size() * 99 / 100];
    return r;
}

/** The tier-1 point of the rpc shape: the same Endpoint::call round
 *  trip, but over a pair of Unix-domain SocketTransports — what a
 *  DSM_TRANSPORT=socket cluster pays per miss instead of a ring push.
 *  Both transports live in this process (the frame path, reader
 *  threads and receiver-side bypass are identical to the forked
 *  layout; only the fork is skipped). */
RpcResult
rpcRoundTripSocket(int iters, bool bypass)
{
    CostModel cm;
    const std::string dir = makeRendezvousDir();
    std::vector<double> samples(static_cast<std::size_t>(iters));
    {
        SocketTransport ta(0, 2, cm, SocketKind::Unix, dir);
        SocketTransport tb(1, 2, cm, SocketKind::Unix, dir);
        std::thread dial_b([&] { tb.connectPeers(); });
        ta.connectPeers();
        dial_b.join();

        VirtualClock clocks[2];
        NodeStats stats[2];
        Endpoint a(ta, 0, clocks[0], stats[0]);
        Endpoint b(tb, 1, clocks[1], stats[1]);
        a.setReplyBypass(bypass);
        b.setReplyBypass(bypass);
        b.setHandler([&](Message &msg) {
            b.reply(msg.src, MsgType::LockGrant, {}, msg.replyToken);
        });
        a.setHandler([](Message &) {});
        a.start();
        b.start();

        for (int i = 0; i < 2000; ++i)
            a.call(1, MsgType::LockRequest, {});

        for (int i = 0; i < iters; ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            a.call(1, MsgType::LockRequest, {});
            const auto t1 = std::chrono::steady_clock::now();
            samples[static_cast<std::size_t>(i)] =
                std::chrono::duration<double, std::nano>(t1 - t0)
                    .count();
        }

        std::thread finish_b([&] { tb.finishRun(); });
        ta.finishRun();
        finish_b.join();
        a.stop();
        b.stop();
    }
    removeRendezvousDir(dir);

    double sum = 0.0;
    for (double s : samples)
        sum += s;
    std::sort(samples.begin(), samples.end());
    RpcResult r;
    r.meanNs = sum / iters;
    r.p50Ns = samples[samples.size() / 2];
    r.p99Ns = samples[samples.size() * 99 / 100];
    return r;
}

double
faninNsPerMsg(InboxPolicy policy, int producers, int per_producer)
{
    CostModel cm;
    Network net(producers + 1, cm, nullptr, policy);
    const int total = producers * per_producer;

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            NodeStats stats;
            for (int i = 0; i < per_producer; ++i) {
                Message m;
                m.src = 1 + p;
                m.dst = 0;
                m.type = MsgType::LockRequest;
                m.replyToken = static_cast<std::uint64_t>(i) + 1;
                net.send(std::move(m), stats);
            }
        });
    }
    Message out;
    for (int i = 0; i < total; ++i) {
        if (!net.recv(0, out))
            break;
    }
    for (auto &t : threads)
        t.join();
    const auto end = std::chrono::steady_clock::now();
    net.shutdown();
    return std::chrono::duration<double, std::nano>(end - start)
               .count() /
           total;
}

struct CoalesceResult
{
    double nsPerMsg;
    /** Modeled wire messages for the whole run — deterministic, so
     *  the off/on ratio is bit-stable across hosts (the wall-clock
     *  ns/msg wobbles: ring pushes are already cheap uncontended). */
    std::uint64_t wireMessages;
};

/** Bursts of small one-way HomeDiffFlush messages to one peer, a
 *  call() as the request boundary after each burst (which is also
 *  what flushes the coalescing buffer). */
CoalesceResult
coalesceShape(bool coalesce, int bursts, int per_burst)
{
    CostModel cm;
    Network net(2, cm);
    VirtualClock clocks[2];
    NodeStats stats[2];
    Endpoint a(net, 0, clocks[0], stats[0]);
    Endpoint b(net, 1, clocks[1], stats[1]);
    a.setCoalescing(coalesce);
    b.setHandler([&](Message &msg) {
        if (msg.replyToken != 0)
            b.reply(msg.src, MsgType::HomePageReply, {},
                    msg.replyToken);
    });
    a.setHandler([](Message &) {});
    a.start();
    b.start();

    const auto burst = [&] {
        for (int i = 0; i < per_burst; ++i)
            a.send(1, MsgType::HomeDiffFlush,
                   std::vector<std::byte>(16));
        a.call(1, MsgType::HomePageRequest, {});
    };
    for (int w = 0; w < 200; ++w)
        burst();
    const std::uint64_t msgs_before = net.totalMessages();

    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < bursts; ++i)
        burst();
    const auto end = std::chrono::steady_clock::now();
    const std::uint64_t msgs = net.totalMessages() - msgs_before;

    a.stop();
    b.stop();
    net.shutdown();
    CoalesceResult r;
    r.nsPerMsg = std::chrono::duration<double, std::nano>(end - start)
                     .count() /
                 (static_cast<double>(bursts) * per_burst);
    r.wireMessages = msgs;
    return r;
}

} // namespace

int
main()
{
    const int rpc_iters = 20000;
    const int producers = 7;
    const int per_producer = 60000;
    const int coalesce_bursts = 6000;
    const int coalesce_batch = 16;

    std::printf("=== micro_net: inbox latency — mutex+cv vs MPSC ring, "
                "reply bypass, send coalescing ===\n");

    const RpcResult rpc_mutex =
        rpcRoundTrip(InboxPolicy::MutexQueue, rpc_iters, true);
    const RpcResult rpc_ring =
        rpcRoundTrip(InboxPolicy::LockFreeRing, rpc_iters, true);
    const RpcResult rpc_ring_nobypass =
        rpcRoundTrip(InboxPolicy::LockFreeRing, rpc_iters, false);
    const RpcResult rpc_socket = rpcRoundTripSocket(rpc_iters, true);
    const double fan_mutex =
        faninNsPerMsg(InboxPolicy::MutexQueue, producers, per_producer);
    const double fan_ring =
        faninNsPerMsg(InboxPolicy::LockFreeRing, producers,
                      per_producer);
    const CoalesceResult coal_off =
        coalesceShape(false, coalesce_bursts, coalesce_batch);
    const CoalesceResult coal_on =
        coalesceShape(true, coalesce_bursts, coalesce_batch);
    const double coal_msg_reduction =
        static_cast<double>(coal_off.wireMessages) /
        static_cast<double>(coal_on.wireMessages);

    std::printf("%-30s %10s %10s %10s\n", "shape", "mean ns", "p50 ns",
                "p99 ns");
    std::printf("%-30s %10.0f %10.0f %10.0f\n", "rpc mutex inbox",
                rpc_mutex.meanNs, rpc_mutex.p50Ns, rpc_mutex.p99Ns);
    std::printf("%-30s %10.0f %10.0f %10.0f\n", "rpc ring + bypass",
                rpc_ring.meanNs, rpc_ring.p50Ns, rpc_ring.p99Ns);
    std::printf("%-30s %10.0f %10.0f %10.0f\n", "rpc ring, no bypass",
                rpc_ring_nobypass.meanNs, rpc_ring_nobypass.p50Ns,
                rpc_ring_nobypass.p99Ns);
    std::printf("%-30s %10.0f %10.0f %10.0f\n", "rpc socket (UDS)",
                rpc_socket.meanNs, rpc_socket.p50Ns, rpc_socket.p99Ns);
    std::printf("%-30s %9.2fx\n", "bypass speedup (ring rpc)",
                rpc_ring_nobypass.meanNs / rpc_ring.meanNs);
    std::printf("%-30s %9.2fx\n", "ring/socket rpc p50 ratio",
                rpc_ring.p50Ns / rpc_socket.p50Ns);
    std::printf("%-30s %10.0f\n", "fan-in mutex ns/msg", fan_mutex);
    std::printf("%-30s %10.0f  (%.2fx)\n", "fan-in ring ns/msg",
                fan_ring, fan_mutex / fan_ring);
    std::printf("%-30s %10.0f  (%llu wire msgs)\n",
                "coalesce off ns/msg", coal_off.nsPerMsg,
                static_cast<unsigned long long>(coal_off.wireMessages));
    std::printf("%-30s %10.0f  (%llu wire msgs, %.2fx fewer)\n",
                "coalesce on ns/msg", coal_on.nsPerMsg,
                static_cast<unsigned long long>(coal_on.wireMessages),
                coal_msg_reduction);

    char json[2048];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"rpc_iters\": %d,\n"
        "  \"fanin_producers\": %d,\n"
        "  \"fanin_msgs_per_producer\": %d,\n"
        "  \"coalesce_bursts\": %d,\n"
        "  \"coalesce_batch\": %d,\n"
        "  \"rpc_roundtrip_mutex_ns\": %.0f,\n"
        "  \"rpc_roundtrip_ring_ns\": %.0f,\n"
        "  \"rpc_roundtrip_ring_p50_ns\": %.0f,\n"
        "  \"rpc_roundtrip_ring_p99_ns\": %.0f,\n"
        "  \"rpc_roundtrip_ring_nobypass_ns\": %.0f,\n"
        "  \"rpc_roundtrip_ring_nobypass_p50_ns\": %.0f,\n"
        "  \"rpc_roundtrip_ring_nobypass_p99_ns\": %.0f,\n"
        "  \"rpc_roundtrip_socket_ns\": %.0f,\n"
        "  \"rpc_roundtrip_socket_p50_ns\": %.0f,\n"
        "  \"rpc_roundtrip_socket_p99_ns\": %.0f,\n"
        "  \"rpc_ring_vs_socket_p50\": %.3f,\n"
        "  \"rpc_bypass_speedup\": %.2f,\n"
        "  \"rpc_speedup\": %.2f,\n"
        "  \"fanin_mutex_ns_per_msg\": %.0f,\n"
        "  \"fanin_ring_ns_per_msg\": %.0f,\n"
        "  \"fanin_speedup\": %.2f,\n"
        "  \"coalesce_off_ns_per_msg\": %.0f,\n"
        "  \"coalesce_on_ns_per_msg\": %.0f,\n"
        "  \"coalesce_off_wire_msgs\": %llu,\n"
        "  \"coalesce_on_wire_msgs\": %llu,\n"
        "  \"coalesce_msg_reduction\": %.2f\n"
        "}\n",
        rpc_iters, producers, per_producer, coalesce_bursts,
        coalesce_batch, rpc_mutex.meanNs, rpc_ring.meanNs,
        rpc_ring.p50Ns, rpc_ring.p99Ns, rpc_ring_nobypass.meanNs,
        rpc_ring_nobypass.p50Ns, rpc_ring_nobypass.p99Ns,
        rpc_socket.meanNs, rpc_socket.p50Ns, rpc_socket.p99Ns,
        rpc_ring.p50Ns / rpc_socket.p50Ns,
        rpc_ring_nobypass.meanNs / rpc_ring.meanNs,
        rpc_mutex.meanNs / rpc_ring.meanNs, fan_mutex, fan_ring,
        fan_mutex / fan_ring, coal_off.nsPerMsg, coal_on.nsPerMsg,
        static_cast<unsigned long long>(coal_off.wireMessages),
        static_cast<unsigned long long>(coal_on.wireMessages),
        coal_msg_reduction);

    const char *out_path = "BENCH_net.json";
    if (FILE *f = std::fopen(out_path, "w")) {
        std::fputs(json, f);
        std::fclose(f);
        std::printf("\nwrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    return 0;
}
