/**
 * @file
 * Microbenchmark of the node inbox: the seed mutex+condvar deque
 * (InboxPolicy::MutexQueue) against the bounded lock-free MPSC ring
 * with a futex-parked consumer (InboxPolicy::LockFreeRing).
 *
 * Two shapes are measured, both in real (wall-clock) nanoseconds:
 *  - rpc: Endpoint::call round trips between two nodes' app threads
 *    through both service threads — the service-thread round-trip
 *    latency every LRC access miss and lock hand-off pays;
 *  - fanin: 7 producer threads blasting one consumer — the batched
 *    diff/timestamp request traffic shape, measuring throughput.
 *
 * Emits BENCH_net.json (tracked in the repo) so the inbox latency
 * trajectory is visible across PRs. Acceptance bar for this PR: the
 * ring's rpc round trip beats the mutex inbox.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/endpoint.hh"

using namespace dsm;

namespace {

double
rpcRoundTripNs(InboxPolicy policy, int iters)
{
    CostModel cm;
    Network net(2, cm, nullptr, policy);
    VirtualClock clocks[2];
    NodeStats stats[2];
    Endpoint a(net, 0, clocks[0], stats[0]);
    Endpoint b(net, 1, clocks[1], stats[1]);
    b.setHandler([&](Message &msg) {
        b.reply(msg.src, MsgType::LockGrant, {}, msg.replyToken);
    });
    a.setHandler([](Message &) {});
    a.start();
    b.start();

    // Warm up the path (thread creation, first futex round trips).
    for (int i = 0; i < 2000; ++i)
        a.call(1, MsgType::LockRequest, {});

    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        a.call(1, MsgType::LockRequest, {});
    const auto end = std::chrono::steady_clock::now();

    a.stop();
    b.stop();
    net.shutdown();
    return std::chrono::duration<double, std::nano>(end - start)
               .count() /
           iters;
}

double
faninNsPerMsg(InboxPolicy policy, int producers, int per_producer)
{
    CostModel cm;
    Network net(producers + 1, cm, nullptr, policy);
    const int total = producers * per_producer;

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            NodeStats stats;
            for (int i = 0; i < per_producer; ++i) {
                Message m;
                m.src = 1 + p;
                m.dst = 0;
                m.type = MsgType::LockRequest;
                m.replyToken = static_cast<std::uint64_t>(i) + 1;
                net.send(std::move(m), stats);
            }
        });
    }
    Message out;
    for (int i = 0; i < total; ++i) {
        if (!net.recv(0, out))
            break;
    }
    for (auto &t : threads)
        t.join();
    const auto end = std::chrono::steady_clock::now();
    net.shutdown();
    return std::chrono::duration<double, std::nano>(end - start)
               .count() /
           total;
}

} // namespace

int
main()
{
    const int rpc_iters = 20000;
    const int producers = 7;
    const int per_producer = 60000;

    std::printf("=== micro_net: inbox latency, old (mutex+cv) vs new "
                "(lock-free MPSC ring) ===\n");

    const double rpc_mutex =
        rpcRoundTripNs(InboxPolicy::MutexQueue, rpc_iters);
    const double rpc_ring =
        rpcRoundTripNs(InboxPolicy::LockFreeRing, rpc_iters);
    const double fan_mutex =
        faninNsPerMsg(InboxPolicy::MutexQueue, producers, per_producer);
    const double fan_ring =
        faninNsPerMsg(InboxPolicy::LockFreeRing, producers,
                      per_producer);

    std::printf("%-28s %12s %12s %9s\n", "shape", "mutex ns", "ring ns",
                "speedup");
    std::printf("%-28s %12.0f %12.0f %8.2fx\n",
                "rpc round trip (2 nodes)", rpc_mutex, rpc_ring,
                rpc_mutex / rpc_ring);
    std::printf("%-28s %12.0f %12.0f %8.2fx\n", "fan-in msg (7 -> 1)",
                fan_mutex, fan_ring, fan_mutex / fan_ring);

    char json[768];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"rpc_iters\": %d,\n"
        "  \"fanin_producers\": %d,\n"
        "  \"fanin_msgs_per_producer\": %d,\n"
        "  \"rpc_roundtrip_mutex_ns\": %.0f,\n"
        "  \"rpc_roundtrip_ring_ns\": %.0f,\n"
        "  \"rpc_speedup\": %.2f,\n"
        "  \"fanin_mutex_ns_per_msg\": %.0f,\n"
        "  \"fanin_ring_ns_per_msg\": %.0f,\n"
        "  \"fanin_speedup\": %.2f\n"
        "}\n",
        rpc_iters, producers, per_producer, rpc_mutex, rpc_ring,
        rpc_mutex / rpc_ring, fan_mutex, fan_ring,
        fan_mutex / fan_ring);

    const char *out_path = "BENCH_net.json";
    if (FILE *f = std::fopen(out_path, "w")) {
        std::fputs(json, f);
        std::fclose(f);
        std::printf("\nwrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    return 0;
}
