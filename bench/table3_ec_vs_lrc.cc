/**
 * @file
 * Reproduces Table 3 of the paper: for every application, the
 * 1-processor execution time and the best EC and best LRC
 * implementations' 8-processor times, plus the per-run message and
 * data-volume statistics quoted throughout Section 7.2.
 */

#include <algorithm>

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    printHeader("Table 3: EC vs. LRC (best implementation per model)",
                cc);

    // With DSM_CKPT_DIR set every run takes coordinated barrier
    // checkpoints, and the table grows a recovery column: the largest
    // per-node snapshot and the wipe+restore wall time (nonzero only
    // when DSM_FAULT_KILL_NODE also arms a chaos kill).
    const bool recovery = std::getenv("DSM_CKPT_DIR") != nullptr;
    std::vector<std::string> headers = {
        "Application", "NxT", "1 proc.", "EC", "LRC", "LRC-home",
        "EC Imp.", "LRC Imp.", "EC msgs", "LRC msgs", "LRCh msgs",
        "EC MB", "LRC MB", "LRCh MB", "LRCh optRd s/r/f"};
    if (recovery) {
        headers.push_back("Ckpt KB");
        headers.push_back("Restore us");
    }
    Table table(headers);
    Table paper({"Application", "paper EC", "paper LRC", "paper winner",
                 "ours winner", "shape"});

    // Three protocol columns: the EC and LRC sweeps are pinned
    // homeless (so DSM_HOME=1 cannot silently turn the LRC baseline
    // into a second home-based run), and the home column pins the
    // home-based variant of the diffing implementation (timestamping
    // has no home-based variant).
    cc.homeBasedLrc = false;
    ClusterConfig hc = cc;
    hc.homeBasedLrc = true;

    for (const std::string &app : allAppNames()) {
        ModelSweep ec = sweepModel(Model::EC, app, params, cc);
        ModelSweep lrc = sweepModel(Model::LRC, app, params, cc);
        ExperimentResult home = runExperiment(
            app, RuntimeConfig::parse("LRC-diff"), params, hc);
        const ExperimentResult &be = ec.best();
        const ExperimentResult &bl = lrc.best();

        auto impl = [](const RuntimeConfig &config) {
            const std::string name = config.name();
            return name.substr(name.find('-') + 1);
        };
        const std::string topo =
            std::to_string(cc.nprocs) + "x" +
            std::to_string(cc.resolvedThreadsPerNode());
        std::vector<std::string> row = {
            app, topo, fmtSeconds(be.seqSeconds(cc.cost)),
            fmtSeconds(be.execSeconds()), fmtSeconds(bl.execSeconds()),
            fmtSeconds(home.execSeconds()), impl(be.config),
            impl(bl.config), std::to_string(be.run.total.messagesSent),
            std::to_string(bl.run.total.messagesSent),
            std::to_string(home.run.total.messagesSent),
            fmtMb(be.run.megabytesSent()),
            fmtMb(bl.run.megabytesSent()),
            fmtMb(home.run.megabytesSent()),
            // Optimistic home-read traffic of the home-based column
            // (served/retries/fallbacks; all zero unless DSM_OPT_READ
            // arms the lock-free snapshot path).
            std::to_string(home.run.total.optReadsServed) + "/" +
                std::to_string(home.run.total.optReadRetries) + "/" +
                std::to_string(home.run.total.optReadFallbacks)};
        if (recovery) {
            const std::uint64_t kb =
                std::max({be.run.checkpointBytes, bl.run.checkpointBytes,
                          home.run.checkpointBytes}) /
                1024;
            const std::uint64_t us =
                std::max({be.run.restoreTimeNs, bl.run.restoreTimeNs,
                          home.run.restoreTimeNs}) /
                1000;
            row.push_back(std::to_string(kb));
            row.push_back(std::to_string(us));
        }
        table.addRow(row);

        for (const PaperRow &row : paperTable3()) {
            if (row.app != app || row.lrc < 0)
                continue;
            const char *paper_winner =
                row.ec < row.lrc * 0.97 ? "EC"
                : row.lrc < row.ec * 0.97 ? "LRC"
                                          : "tie";
            const double e = be.execSeconds();
            const double l = bl.execSeconds();
            const char *our_winner = e < l * 0.97 ? "EC"
                                     : l < e * 0.97 ? "LRC"
                                                    : "tie";
            paper.addRow({app, fmtSeconds(row.ec), fmtSeconds(row.lrc),
                          paper_winner, our_winner,
                          std::string(paper_winner) == our_winner
                              ? "match"
                              : "DIFFERS"});
        }
    }

    table.print();
    std::printf("\n--- paper-vs-measured winners ---\n");
    paper.print();
    return 0;
}
