/**
 * @file
 * Reproduces Table 3 of the paper: for every application, the
 * 1-processor execution time and the best EC and best LRC
 * implementations' 8-processor times, plus the per-run message and
 * data-volume statistics quoted throughout Section 7.2.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    printHeader("Table 3: EC vs. LRC (best implementation per model)",
                cc);

    Table table({"Application", "NxT", "1 proc.", "EC", "LRC",
                 "LRC-home", "EC Imp.", "LRC Imp.", "EC msgs",
                 "LRC msgs", "LRCh msgs", "EC MB", "LRC MB",
                 "LRCh MB"});
    Table paper({"Application", "paper EC", "paper LRC", "paper winner",
                 "ours winner", "shape"});

    // Three protocol columns: the EC and LRC sweeps are pinned
    // homeless (so DSM_HOME=1 cannot silently turn the LRC baseline
    // into a second home-based run), and the home column pins the
    // home-based variant of the diffing implementation (timestamping
    // has no home-based variant).
    cc.homeBasedLrc = false;
    ClusterConfig hc = cc;
    hc.homeBasedLrc = true;

    for (const std::string &app : allAppNames()) {
        ModelSweep ec = sweepModel(Model::EC, app, params, cc);
        ModelSweep lrc = sweepModel(Model::LRC, app, params, cc);
        ExperimentResult home = runExperiment(
            app, RuntimeConfig::parse("LRC-diff"), params, hc);
        const ExperimentResult &be = ec.best();
        const ExperimentResult &bl = lrc.best();

        auto impl = [](const RuntimeConfig &config) {
            const std::string name = config.name();
            return name.substr(name.find('-') + 1);
        };
        const std::string topo =
            std::to_string(cc.nprocs) + "x" +
            std::to_string(cc.resolvedThreadsPerNode());
        table.addRow({app, topo, fmtSeconds(be.seqSeconds(cc.cost)),
                      fmtSeconds(be.execSeconds()),
                      fmtSeconds(bl.execSeconds()),
                      fmtSeconds(home.execSeconds()), impl(be.config),
                      impl(bl.config),
                      std::to_string(be.run.total.messagesSent),
                      std::to_string(bl.run.total.messagesSent),
                      std::to_string(home.run.total.messagesSent),
                      fmtMb(be.run.megabytesSent()),
                      fmtMb(bl.run.megabytesSent()),
                      fmtMb(home.run.megabytesSent())});

        for (const PaperRow &row : paperTable3()) {
            if (row.app != app || row.lrc < 0)
                continue;
            const char *paper_winner =
                row.ec < row.lrc * 0.97 ? "EC"
                : row.lrc < row.ec * 0.97 ? "LRC"
                                          : "tie";
            const double e = be.execSeconds();
            const double l = bl.execSeconds();
            const char *our_winner = e < l * 0.97 ? "EC"
                                     : l < e * 0.97 ? "LRC"
                                                    : "tie";
            paper.addRow({app, fmtSeconds(row.ec), fmtSeconds(row.lrc),
                          paper_winner, our_winner,
                          std::string(paper_winner) == our_winner
                              ? "match"
                              : "DIFFERS"});
        }
    }

    table.print();
    std::printf("\n--- paper-vs-measured winners ---\n");
    paper.print();
    return 0;
}
