/**
 * @file
 * Reproduces Table 3 of the paper: for every application, the
 * 1-processor execution time and the best EC and best LRC
 * implementations' 8-processor times, plus the per-run message and
 * data-volume statistics quoted throughout Section 7.2.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    printHeader("Table 3: EC vs. LRC (best implementation per model)",
                cc);

    Table table({"Application", "1 proc.", "EC", "LRC", "EC Imp.",
                 "LRC Imp.", "EC msgs", "LRC msgs", "EC MB", "LRC MB"});
    Table paper({"Application", "paper EC", "paper LRC", "paper winner",
                 "ours winner", "shape"});

    for (const std::string &app : allAppNames()) {
        ModelSweep ec = sweepModel(Model::EC, app, params, cc);
        ModelSweep lrc = sweepModel(Model::LRC, app, params, cc);
        const ExperimentResult &be = ec.best();
        const ExperimentResult &bl = lrc.best();

        auto impl = [](const RuntimeConfig &config) {
            const std::string name = config.name();
            return name.substr(name.find('-') + 1);
        };
        table.addRow({app, fmtSeconds(be.seqSeconds(cc.cost)),
                      fmtSeconds(be.execSeconds()),
                      fmtSeconds(bl.execSeconds()), impl(be.config),
                      impl(bl.config),
                      std::to_string(be.run.total.messagesSent),
                      std::to_string(bl.run.total.messagesSent),
                      fmtMb(be.run.megabytesSent()),
                      fmtMb(bl.run.megabytesSent())});

        for (const PaperRow &row : paperTable3()) {
            if (row.app != app || row.lrc < 0)
                continue;
            const char *paper_winner =
                row.ec < row.lrc * 0.97 ? "EC"
                : row.lrc < row.ec * 0.97 ? "LRC"
                                          : "tie";
            const double e = be.execSeconds();
            const double l = bl.execSeconds();
            const char *our_winner = e < l * 0.97 ? "EC"
                                     : l < e * 0.97 ? "LRC"
                                                    : "tie";
            paper.addRow({app, fmtSeconds(row.ec), fmtSeconds(row.lrc),
                          paper_winner, our_winner,
                          std::string(paper_winner) == our_winner
                              ? "match"
                              : "DIFFERS"});
        }
    }

    table.print();
    std::printf("\n--- paper-vs-measured winners ---\n");
    paper.print();
    return 0;
}
