/**
 * @file
 * Ablation of the compiler-instrumentation loop-splitting optimization
 * (Section 4.1): setting software dirty bits in a separate loop halves
 * the per-store overhead. The paper reports 16% on SOR. We compare
 * per-element instrumented stores (write<T>) against the split-loop
 * bulk form (writeBuf) on an EC-ci kernel.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    ClusterConfig cc = benchCluster();
    cc.nprocs = 2;
    cc.runtime = RuntimeConfig::parse("EC-ci");
    printHeader("Ablation: naive vs split-loop instrumentation (EC-ci)",
                cc);

    constexpr int kElems = 1 << 15;
    constexpr int kIters = 20;

    auto run = [&](bool split) {
        Cluster cluster(cc);
        return cluster.run([&](Runtime &rt) {
            auto arr = SharedArray<float>::alloc(rt, kElems, 4, "abl");
            rt.bindLock(1, {arr.wholeRange()});
            rt.barrier(0);
            if (rt.self() == 0) {
                std::vector<float> buf(kElems);
                for (int iter = 0; iter < kIters; ++iter) {
                    rt.acquire(1, AccessMode::Write);
                    if (split) {
                        // Split loops: compute, then one bulk
                        // dirty-bit pass + store.
                        for (int i = 0; i < kElems; ++i)
                            buf[i] = static_cast<float>(i + iter);
                        arr.store(0, buf.data(), kElems);
                    } else {
                        for (int i = 0; i < kElems; ++i)
                            arr.set(i, static_cast<float>(i + iter));
                    }
                    rt.chargeWork(kElems);
                    rt.release(1);
                }
            }
            rt.barrier(1);
        });
    };

    RunResult naive = run(false);
    RunResult split = run(true);
    Table table({"Variant", "exec", "dirty stores"});
    table.addRow({"naive per-store instrumentation",
                  fmtSeconds(naive.execSeconds()),
                  std::to_string(naive.total.dirtyStores)});
    table.addRow({"split-loop instrumentation",
                  fmtSeconds(split.execSeconds()),
                  std::to_string(split.total.dirtyStores)});
    table.print();
    const double gain = 100.0 *
                        (naive.execTimeNs - split.execTimeNs) /
                        static_cast<double>(naive.execTimeNs);
    std::printf("\nsplit-loop improvement: %.1f%% (paper: 16%% on "
                "SOR)\n", gain);
    return 0;
}
