/**
 * @file
 * The sharing-policy QS sweep: quicksort — the paper's migratory
 * task-queue application, and the one Table 3 app whose home-mode
 * outcome was schedule-dependent before the policy layer — run
 * repeatedly at one (nodes x threads) point over the policy grid
 *
 *     fairness bound k (DSM_LOCK_FAIRNESS)
 *   x home migration policy (access-count / migrate-to-last-writer
 *     with the ping-pong cap)
 *   x flush transport (eager / deferred-merged)
 *
 * reporting, per cell, the mean, min-max range and relative spread of
 * the message count and modeled execution time over DSM_QS_RUNS
 * (default 5) runs. The acceptance gate of the policy layer is the
 * spread column: with bounded fairness plus migrate-to-last-writer
 * the home-mode row must be reproducible (< 5% spread), not a tail
 * sample.
 *
 * DSM_NPROCS / DSM_THREADS choose the topology (default 4x2),
 * DSM_SCALE the workload size as in the other tables.
 */

#include <algorithm>
#include <cmath>

#include "bench_common.hh"

using namespace dsm;

namespace {

struct Cell
{
    const char *label;
    bool home;
    int fairness;
    int lastWriter;
    int deferFlush;
    /** Ping-pong cap for the last-writer cells (-1 = resolved
     *  default). */
    int pingPong = -1;
    /** Latency-path knobs (PR 9): -1 keeps the env-resolved default,
     *  0/1 forces. Blocking dequeue replaces the task-queue poll's
     *  hot spin with a futex park; adaptive fairness lets each lock
     *  find its own hand-off bound; coalescing batches small
     *  same-destination flushes into framed slots. */
    int blockingDeq = -1;
    int adaptFair = -1;
    int coalesce = -1;
};

struct Spread
{
    double mean = 0;
    double lo = 0;
    double hi = 0;
    double sd = 0;

    /** Coefficient of variation (the "reproducible across runs"
     *  criterion: < 5%). */
    double
    cvPct() const
    {
        return mean > 0 ? 100.0 * sd / mean : 0.0;
    }
};

Spread
spreadOf(const std::vector<double> &xs)
{
    Spread s;
    s.lo = *std::min_element(xs.begin(), xs.end());
    s.hi = *std::max_element(xs.begin(), xs.end());
    for (double x : xs)
        s.mean += x;
    s.mean /= static_cast<double>(xs.size());
    for (double x : xs)
        s.sd += (x - s.mean) * (x - s.mean);
    s.sd = std::sqrt(s.sd / static_cast<double>(xs.size()));
    return s;
}

std::string
fmt(double v, int digits = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

} // namespace

int
main()
{
    AppParams params = benchParams();
    ClusterConfig base = benchCluster();
    if (base.nprocs == 8 && std::getenv("DSM_NPROCS") == nullptr)
        base.nprocs = 4; // default point of the acceptance sweep: 4x2
    if (base.threadsPerNode == 0 && std::getenv("DSM_THREADS") == nullptr)
        base.threadsPerNode = 2;
    printHeader("QS sharing-policy sweep (fairness x migration x "
                "transport)",
                base);

    int runs = 5;
    if (const char *v = std::getenv("DSM_QS_RUNS"))
        runs = std::max(2, std::atoi(v));

    const Cell cells[] = {
        {"homeless k=0", false, 0, 0, 0},
        {"homeless k=4", false, 4, 0, 0},
        {"home access k=0", true, 0, 0, 0},
        {"home access k=4", true, 4, 0, 0},
        {"home lastw k=0", true, 0, 1, 0},
        {"home lastw k=4", true, 4, 1, 0},
        // The acceptance point: migrate once to the first writer the
        // classifier picks, then pin — uniform per-op costs make the
        // home-mode outcome reproducible instead of a tail sample.
        {"home lastw-pin k=4", true, 4, 1, 0, 1},
        {"home lastw+defer k=4", true, 4, 1, 1},
        // Latency-path sweep points (PR 9): the blocking dequeue on
        // the acceptance cell (its park consolidates the task-queue
        // poll storm — the msgs cv% must not regress vs the row
        // above), the adaptive per-lock bound in place of the static
        // k, and everything armed at once.
        {"home lastw-pin +blkdeq", true, 4, 1, 0, 1, 1},
        {"home lastw-pin adapt-k", true, 0, 1, 0, 1, -1, 1},
        {"home latency-all", true, 4, 1, 1, 1, 1, 1, 1},
    };

    Table table({"policy", "NxT", "time mean (s)", "time range",
                 "time cv%", "msgs mean", "msgs range", "msgs cv%",
                 "forced", "migr", "supp", "flushes merged", "parks",
                 "coal", "bound +/-"});

    const std::string topo =
        std::to_string(base.nprocs) + "x" +
        std::to_string(base.resolvedThreadsPerNode());
    for (const Cell &cell : cells) {
        std::vector<double> times, msgs;
        std::uint64_t forced = 0, migrations = 0, suppressed = 0,
                      merged = 0, parks = 0, coalesced = 0, grows = 0,
                      shrinks = 0;
        for (int r = 0; r < runs; ++r) {
            ClusterConfig cc = base;
            cc.homeBasedLrc = cell.home;
            cc.lockLocalHandoffBound = cell.fairness;
            cc.homeMigrateLastWriter = cell.lastWriter;
            cc.homeFlushDefer = cell.deferFlush;
            cc.homePingPongLimit = cell.pingPong;
            cc.blockingDequeue = cell.blockingDeq;
            cc.lockFairnessAdaptive = cell.adaptFair;
            cc.coalesceSends = cell.coalesce;
            ExperimentResult res = runExperiment(
                "QS", RuntimeConfig::parse("LRC-diff"), params, cc);
            times.push_back(res.execSeconds());
            msgs.push_back(
                static_cast<double>(res.run.total.messagesSent));
            forced += res.run.total.remoteHandoffsForced;
            migrations += res.run.total.homeMigrations;
            suppressed += res.run.total.homeMigrationsSuppressed;
            merged += res.run.total.homeFlushesDeferred;
            parks += res.run.total.idleParks;
            coalesced += res.run.total.messagesCoalesced;
            grows += res.run.total.fairnessBoundGrows;
            shrinks += res.run.total.fairnessBoundShrinks;
        }
        const Spread ts = spreadOf(times);
        const Spread ms = spreadOf(msgs);
        table.addRow(
            {cell.label, topo, fmt(ts.mean, 3),
             fmt(ts.lo, 3) + "-" + fmt(ts.hi, 3),
             fmt(ts.cvPct(), 1), fmt(ms.mean, 0),
             fmt(ms.lo, 0) + "-" + fmt(ms.hi, 0),
             fmt(ms.cvPct(), 1),
             std::to_string(forced / runs),
             std::to_string(migrations / runs),
             std::to_string(suppressed / runs),
             std::to_string(merged / runs),
             std::to_string(parks / runs),
             std::to_string(coalesced / runs),
             std::to_string(grows / runs) + "/" +
                 std::to_string(shrinks / runs)});
    }
    table.print();
    std::printf("\n(means over %d runs each; cv%% is the coefficient "
                "of variation — the < 5%% bar is the policy layer's "
                "reproducibility criterion for QS)\n",
                runs);
    return 0;
}
