/**
 * @file
 * Microbenchmark of diff creation: the seed 4-byte memcmp scan
 * (ScanKernel::Scalar) against the 64-bit/memcmp-chunked block scan
 * (ScanKernel::Wide, PR 1) and the explicit AVX2/NEON kernels
 * (ScanKernel::Simd, this PR) on 4 KiB pages across write densities,
 * plus the effect of run coalescing (gapWords) on wire bytes.
 *
 * Emits BENCH_diff.json (tracked in the repo) so the diff-creation
 * throughput trajectory is visible across PRs. Acceptance bars:
 * PR 1 asked >= 3x wide-vs-seed on a sparse page; this PR asks
 * >= 1.5x simd-vs-wide on a dense page (where the per-word
 * findSameWord walk dominates the wide path).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mem/diff.hh"
#include "util/rng.hh"

using namespace dsm;

namespace {

constexpr std::uint32_t kPageBytes = 4096;

struct Scenario
{
    const char *name;
    int changedWords; ///< words modified per 4 KiB page (1024 words)
};

std::vector<std::byte>
randomPage(Rng &rng)
{
    std::vector<std::byte> page(kPageBytes);
    for (auto &b : page)
        b = std::byte{static_cast<unsigned char>(rng.below(256))};
    return page;
}

/**
 * The seed Diff::create, verbatim in structure: per-word memcmp scan
 * and one freshly allocated byte vector per run. The baseline every
 * fast path is measured against.
 */
struct SeedRun
{
    std::uint32_t offset = 0;
    std::vector<std::byte> data;
};

std::vector<SeedRun>
seedCreate(const std::byte *cur, const std::byte *twin, std::uint32_t len)
{
    std::vector<SeedRun> runs;
    const std::uint32_t words = len / 4;
    std::uint32_t i = 0;
    auto wordDiffers = [&](std::uint32_t w) {
        return std::memcmp(cur + w * 4, twin + w * 4, 4) != 0;
    };
    while (i < words) {
        if (wordDiffers(i)) {
            std::uint32_t start = i;
            while (i < words && wordDiffers(i))
                ++i;
            SeedRun run;
            run.offset = start * 4;
            run.data.assign(cur + start * 4, cur + i * 4);
            runs.push_back(std::move(run));
        } else {
            ++i;
        }
    }
    const std::uint32_t tail = words * 4;
    if (tail < len && std::memcmp(cur + tail, twin + tail, len - tail)) {
        SeedRun run;
        run.offset = tail;
        run.data.assign(cur + tail, cur + len);
        runs.push_back(std::move(run));
    }
    return runs;
}

double
seedThroughput(const std::byte *cur, const std::byte *twin, int iters)
{
    volatile std::uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
        auto runs = seedCreate(cur, twin, kPageBytes);
        sink = sink + runs.size();
    }
    const auto end = std::chrono::steady_clock::now();
    return iters / std::chrono::duration<double>(end - start).count();
}

/** Pages/second for Diff::create under @p scan on @p cur vs @p twin. */
double
throughput(const std::byte *cur, const std::byte *twin, DiffScan scan,
           int iters)
{
    // Warm-up + checksum the result so the compiler keeps the work.
    volatile std::uint64_t sink = 0;
    Diff warm = Diff::create(cur, twin, kPageBytes, nullptr, scan);
    sink = sink + warm.dataBytes();

    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
        Diff d = Diff::create(cur, twin, kPageBytes, nullptr, scan);
        sink = sink + d.dataBytes();
    }
    const auto end = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(end - start).count();
    return iters / secs;
}

} // namespace

int
main()
{
    Rng rng(42);
    std::vector<std::byte> twin = randomPage(rng);

    const std::vector<Scenario> scenarios = {
        {"clean", 0},         {"sparse_16w", 16},
        {"sparse_64w", 64},   {"quarter_256w", 256},
        {"dense_1024w", 1024},
    };
    const int iters = 200000;

    std::string json = "{\n  \"page_bytes\": 4096,\n";
    json += std::string("  \"cpu_simd\": ") +
            (cpuHasSimdScan() ? "true" : "false") + ",\n";
    json += std::string("  \"best_kernel\": \"") +
            toString(bestScanKernel()) + "\",\n  \"scenarios\": [\n";
    std::printf("=== micro_diff: 4 KiB page, %d iterations, "
                "cpu simd: %s ===\n",
                iters, cpuHasSimdScan() ? "yes" : "no");
    std::printf("%-16s %11s %11s %11s %11s %9s %9s %9s\n", "scenario",
                "seed pg/s", "scalar pg/s", "wide pg/s", "simd pg/s",
                "wide/seed", "simd/seed", "simd/wide");

    bool first = true;
    for (const Scenario &sc : scenarios) {
        // Scatter the writes across the page (the paper's sparse
        // update pattern: SOR boundary rows, Water molecule fields).
        std::vector<std::byte> cur = twin;
        Rng mod(7 + sc.changedWords);
        for (int i = 0; i < sc.changedWords; ++i) {
            const std::uint32_t w =
                static_cast<std::uint32_t>(mod.below(kPageBytes / 4));
            cur[w * 4] = std::byte{static_cast<unsigned char>(
                mod.below(255) + 1)};
        }

        const double seed = seedThroughput(cur.data(), twin.data(), iters);
        const double narrow = throughput(cur.data(), twin.data(),
                                         {ScanKernel::Scalar, 0}, iters);
        const double wide = throughput(cur.data(), twin.data(),
                                       {ScanKernel::Wide, 0}, iters);
        const double simd = throughput(cur.data(), twin.data(),
                                       {ScanKernel::Simd, 0}, iters);
        const std::uint64_t wire =
            Diff::create(cur.data(), twin.data(), kPageBytes, nullptr,
                         {ScanKernel::Wide, 0})
                .wireBytes();
        const std::uint64_t wireGap8 =
            Diff::create(cur.data(), twin.data(), kPageBytes, nullptr,
                         {ScanKernel::Wide, 8})
                .wireBytes();

        std::printf("%-16s %11.0f %11.0f %11.0f %11.0f %8.2fx %8.2fx "
                    "%8.2fx\n",
                    sc.name, seed, narrow, wide, simd, wide / seed,
                    simd / seed, simd / wide);

        char row[640];
        std::snprintf(row, sizeof(row),
                      "%s    {\"name\": \"%s\", \"changed_words\": %d, "
                      "\"seed_pages_per_sec\": %.0f, "
                      "\"narrow_pages_per_sec\": %.0f, "
                      "\"wide_pages_per_sec\": %.0f, "
                      "\"simd_pages_per_sec\": %.0f, "
                      "\"speedup_vs_seed\": %.2f, "
                      "\"speedup_simd_vs_seed\": %.2f, "
                      "\"speedup_simd_vs_wide\": %.2f, "
                      "\"wire_bytes\": %llu, "
                      "\"wire_bytes_gap8\": %llu}",
                      first ? "" : ",\n", sc.name, sc.changedWords,
                      seed, narrow, wide, simd, wide / seed,
                      simd / seed, simd / wide,
                      static_cast<unsigned long long>(wire),
                      static_cast<unsigned long long>(wireGap8));
        json += row;
        first = false;
    }
    json += "\n  ]\n}\n";

    const char *out_path = "BENCH_diff.json";
    if (FILE *f = std::fopen(out_path, "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    return 0;
}
