/**
 * @file
 * Shared plumbing for the table-reproduction benches: workload scale
 * selection (DSM_SCALE=test|bench|paper), the 8-node cluster base
 * configuration, and paper-reference values for EXPERIMENTS.md
 * comparisons.
 */

#ifndef DSM_BENCH_COMMON_HH
#define DSM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "driver/experiment.hh"
#include "driver/table.hh"

namespace dsm {

inline AppParams
benchParams()
{
    const char *scale = std::getenv("DSM_SCALE");
    if (scale && std::string(scale) == "paper")
        return AppParams::paperScale();
    if (scale && std::string(scale) == "test")
        return AppParams::testScale();
    return AppParams::benchScale();
}

inline ClusterConfig
benchCluster()
{
    ClusterConfig cc;
    cc.nprocs = 8;
    cc.arenaBytes = 48u << 20;
    cc.pageSize = 4096;
    if (const char *np = std::getenv("DSM_NPROCS"))
        cc.nprocs = std::atoi(np);
    // threadsPerNode stays 0 here: Cluster resolves it from the
    // DSM_THREADS environment variable (default 1), so every table
    // bench runs at any (nodes x threads) point without recompiling.
    // Fast-path ablations (default on; set to 0 to fall back to the
    // seed behavior for old-vs-new comparisons in the table drivers).
    if (const char *v = std::getenv("DSM_BATCH_DIFF"))
        cc.batchDiffFetch = std::atoi(v) != 0;
    if (const char *v = std::getenv("DSM_GC"))
        cc.gcAtBarriers = std::atoi(v) != 0;
    if (const char *v = std::getenv("DSM_WIDE_SCAN"))
        cc.wideDiffScan = std::atoi(v) != 0;
    if (const char *v = std::getenv("DSM_POOL"))
        cc.pooledBuffers = std::atoi(v) != 0;
    if (const char *v = std::getenv("DSM_DIFF_GAP"))
        cc.diffGapWords = static_cast<std::uint32_t>(std::atoi(v));
    if (const char *v = std::getenv("DSM_NOTICE"))
        cc.piggybackWriteNotices = std::atoi(v) != 0;
    // DSM_SIMD=0 and DSM_WIDE_SCAN=0 are additionally read by the
    // scan-kernel dispatch itself (mem/wide_scan.cc): they pin the
    // wide fallback / the seed scalar loop process-wide, so ctest
    // legs cover the fallback tiers without going through this file.
    // Home-based LRC (LRC-diff only; timestamping stays homeless).
    if (const char *v = std::getenv("DSM_HOME"))
        cc.homeBasedLrc = std::atoi(v) != 0;
    if (const char *v = std::getenv("DSM_HOME_MIG"))
        cc.homeMigrateThreshold =
            static_cast<std::uint32_t>(std::atoi(v));
    // Epoch window of the home-migration counters (accesses between
    // halvings); 0 restores the legacy undecayed counts.
    if (const char *v = std::getenv("DSM_HOME_DECAY"))
        cc.homeDecayWindow = static_cast<std::uint32_t>(std::atoi(v));
    // Sharing-policy knobs (DSM_LOCK_FAIRNESS, DSM_HOME_LAST_WRITER,
    // DSM_HOME_PINGPONG, DSM_HOME_DEFER) stay at their -1 sentinels
    // here: Cluster resolves them from the environment itself, so any
    // table bench runs at any policy point without recompiling. The
    // classifier's switch threshold has no env knob and can be pinned
    // here if a sweep needs it.
    return cc;
}

/** Human-readable policy point for bench headers: the sharing-policy
 *  knobs as Cluster will resolve them for @p cc. */
inline std::string
policyLine(const ClusterConfig &cc)
{
    std::string s = "fairness k=" +
                    std::to_string(cc.resolvedLockFairness());
    s += cc.resolvedHomeLastWriter() ? ", migrate-to-last-writer"
                                     : ", migrate-on-access-count";
    s += ", ping-pong cap " +
         std::to_string(cc.resolvedHomePingPongLimit());
    s += cc.resolvedHomeFlushDefer() ? ", deferred flushes"
                                     : ", eager flushes";
    return s;
}

inline void
printHeader(const char *title, const ClusterConfig &cc)
{
    std::printf("=== %s ===\n", title);
    std::printf("%d nodes, %zu-byte pages, %s\n", cc.nprocs, cc.pageSize,
                cc.cost.toString().c_str());
    std::printf("sharing policies: %s\n", policyLine(cc).c_str());
    std::printf("(set DSM_SCALE=test|bench|paper to change workload "
                "sizes)\n\n");
}

/** Paper Table 3 values (seconds on 8 DECstation-5000/240). */
struct PaperRow
{
    const char *app;
    double oneProc;
    double ec;
    double lrc; ///< < 0: n/a
    const char *ecImpl;
    const char *lrcImpl;
};

inline const std::vector<PaperRow> &
paperTable3()
{
    static const std::vector<PaperRow> kRows = {
        {"SOR", 86.10, 13.23, 13.14, "time", "diff"},
        {"SOR+", 86.10, 13.22, -1.0, "time", "time"},
        {"QS", 47.89, 8.33, 9.66, "diff", "diff"},
        {"Water", 61.21, 18.25, 12.41, "ci", "diff"},
        {"Barnes-Hut", 133.76, 63.07, 37.75, "time", "diff"},
        {"IS", 10.27, 1.81, 1.86, "time", "time"},
        {"3D-FFT", 39.82, 8.32, 9.23, "ci", "diff"},
    };
    return kRows;
}

} // namespace dsm

#endif // DSM_BENCH_COMMON_HH
