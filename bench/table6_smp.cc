/**
 * @file
 * The threads-per-node scenario axis the SMP refactor opened: every
 * application at equal worker counts spread over different topologies
 * (8 nodes x 1 thread, 4 x 2, 2 x 4) for the best EC and LRC
 * implementations plus home-based LRC — one run, one table. Fewer
 * nodes x more threads trades protocol traffic (messages) for
 * intra-node sharing (lock hand-offs, shared page copies), which is
 * exactly the EC-vs-LRC design space extended by one dimension: EC's
 * per-object update traffic shrinks with node count, while LRC's
 * invalidate protocol loses its prefetch advantage when fewer copies
 * exist.
 *
 * DSM_SCALE selects workload sizes as in the other tables; DSM_TOPOS
 * (e.g. "8x1,4x2,2x4,1x8") overrides the topology list.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    printHeader("Table 6: SMP nodes — equal workers, varying "
                "(nodes x threads)",
                cc);

    std::vector<std::pair<int, int>> topologies = {
        {8, 1}, {4, 2}, {2, 4}};
    if (const char *t = std::getenv("DSM_TOPOS")) {
        topologies.clear();
        std::string spec(t);
        std::size_t at = 0;
        while (at < spec.size()) {
            const std::size_t comma = spec.find(',', at);
            const std::string part =
                spec.substr(at, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - at);
            const std::size_t x = part.find('x');
            if (x != std::string::npos) {
                topologies.emplace_back(std::atoi(part.c_str()),
                                        std::atoi(part.c_str() + x + 1));
            }
            if (comma == std::string::npos)
                break;
            at = comma + 1;
        }
    }

    Table table({"Application", "NxT", "EC", "LRC", "LRC-home",
                 "EC msgs", "LRC msgs", "LRCh msgs", "LRC handoffs",
                 "EC forced", "LRC forced", "LRCh migr",
                 "LRCh optRd s/r/f"});

    cc.homeBasedLrc = false;
    for (const std::string &app : allAppNames()) {
        for (const auto &[np, t] : topologies) {
            ClusterConfig topo_cc = cc;
            topo_cc.nprocs = np;
            topo_cc.threadsPerNode = t;
            ClusterConfig home_cc = topo_cc;
            home_cc.homeBasedLrc = true;

            ModelSweep ec = sweepModel(Model::EC, app, params, topo_cc);
            ModelSweep lrc =
                sweepModel(Model::LRC, app, params, topo_cc);
            ExperimentResult home = runExperiment(
                app, RuntimeConfig::parse("LRC-diff"), params, home_cc);

            const ExperimentResult &be = ec.best();
            const ExperimentResult &bl = lrc.best();
            table.addRow(
                {app, std::to_string(np) + "x" + std::to_string(t),
                 fmtSeconds(be.execSeconds()),
                 fmtSeconds(bl.execSeconds()),
                 fmtSeconds(home.execSeconds()),
                 std::to_string(be.run.total.messagesSent),
                 std::to_string(bl.run.total.messagesSent),
                 std::to_string(home.run.total.messagesSent),
                 std::to_string(
                     bl.run.total.intraNodeLockHandoffs),
                 // Sharing-policy shape: the bounded hand-off fires
                 // on the lock-heavy apps (QS under EC above all),
                 // and last-writer/home migrations show where the
                 // home chased a migratory page.
                 std::to_string(be.run.total.remoteHandoffsForced),
                 std::to_string(bl.run.total.remoteHandoffsForced),
                 std::to_string(home.run.total.homeMigrations),
                 // Lock-free snapshot reads served at the homes
                 // (served/retries/fallbacks; nonzero only with
                 // DSM_OPT_READ armed).
                 std::to_string(home.run.total.optReadsServed) + "/" +
                     std::to_string(home.run.total.optReadRetries) +
                     "/" +
                     std::to_string(
                         home.run.total.optReadFallbacks)});
        }
    }
    table.print();
    return 0;
}
