/**
 * @file
 * Read-fan-in microbenchmark of the optimistic lock-free home read
 * path (DSM_OPT_READ): client nodes (4 worker threads each, so the
 * home's service thread stays saturated with outstanding read-only
 * misses) repeatedly cold-miss pages homed at node 0 while the home's
 * own worker threads churn local pages — their interval closes hold
 * the node's core and home mutexes, the exact locks the legacy
 * HomePageRequest path must take, and with several churn threads one
 * close is always scanning under the core lock while the others
 * write-fault in parallel, keeping the lock near-continuously hot.
 * With the version-validated snapshot path on, the home's service
 * thread answers read-only misses without either lock, so client read
 * throughput decouples from the home's local work.
 *
 * Emits BENCH_homeread.json (tracked in the repo) with the on/off
 * throughput ratio; tools/bench_gate.py gates it like the other
 * same-host ratios. Acceptance bar for this PR: >= 1.5x for 4 clients,
 * with optReadsServed > 0 on the fast-path run. On a single-core host
 * wall clock tracks total CPU work and lock waits cost nothing, so the
 * ratio lands near 1.5x there; on multi-core runners the blocked
 * service thread is genuinely idle hardware and the gap widens.
 */

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>

#include "core/cluster.hh"
#include "core/shared_array.hh"

using namespace dsm;

namespace {

constexpr int kClients = 4;
constexpr int kNodes = kClients + 1; // node 0 is the contended home
constexpr int kThreads = 8;          // workers per node
constexpr int kPoolPages = 16;       // pages homed at node 0
constexpr int kIntsPerPage = 1024;   // 4 KiB pages
constexpr int kReadsPerPage = 4;     // misses dominate, not read instr.
constexpr int kChurnPages = 96;      // home pages rewritten per close
constexpr int kChurnClosesPerRound = 6; // per home worker thread
constexpr int kRounds = 100;
constexpr int kReps = 4;           // alternated per mode, summed

struct BenchResult
{
    double seconds = 0;
    std::uint64_t optReadsServed = 0;
    std::uint64_t optReadFallbacks = 0;
};

BenchResult
runFanIn(bool opt_on)
{
    ClusterConfig cc;
    cc.nprocs = kNodes;
    cc.threadsPerNode = kThreads;
    cc.arenaBytes = 1u << 24;
    cc.pageSize = 4096;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    cc.homeBasedLrc = true;
    cc.homeMigrateThreshold = 0; // the pool must stay pinned at node 0
    cc.optimisticHomeReads = opt_on ? 1 : 0;

    // Layout: pool page j is arena page j * kNodes (round-robin homes
    // put every such page at node 0); the churn pages live past the
    // pool and are also node-0-homed so their interval closes stamp
    // the home state under the home mutex.
    constexpr int kSpanInts =
        (kPoolPages + kChurnPages) * kNodes * kIntsPerPage;

    // Per-worker wall time spent inside the fan-in loop. The round
    // barrier syncs everyone to the slower churn phase, so total run
    // time hides the read-path difference; the fan-in window is the
    // measured quantity.
    std::array<std::atomic<std::uint64_t>, kNodes * kThreads> fanInNs{};

    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, kSpanInts, 4, "fanin");
        const int self = rt.self();
        const int tid = rt.threadId();
        auto poolInt = [](int page, int i) {
            return page * kNodes * kIntsPerPage + i;
        };
        auto churnInt = [](int page, int i) {
            return (kPoolPages + page) * kNodes * kIntsPerPage + i;
        };
        rt.barrier(0);
        for (int round = 0; round < kRounds; ++round) {
            if (self == 0 && tid == 0) {
                // Refresh the pool (sole writer; the barrier
                // publishes the records, the interval close stamps
                // the home state in place).
                for (int p = 0; p < kPoolPages; ++p)
                    for (int i = 0; i < kReadsPerPage; ++i)
                        a.set(poolInt(p, i), round * 100000 + p * 64 + i);
            }
            rt.barrier(1 + 2 * round);
            if (self == 0) {
                // Churn phase: every home worker loops remote lock
                // acquires (manager is node 1, so each acquire closes
                // an interval) over its own slice of the churn pages.
                // One thread's close scans all current twins under
                // the core lock while the siblings write-fault under
                // shard locks only, then queue for their own close.
                for (int c = 0; c < kChurnClosesPerRound; ++c) {
                    // A fresh lock every close, always managed by node
                    // 1 (lock % kNodes == 1): the acquire is a remote
                    // request every time, so it closes an interval on
                    // this app thread — re-acquiring a cached lock
                    // would not. The grant comes from the idle
                    // manager, keeping node 0's service thread out of
                    // the churn entirely.
                    const int lock =
                        1 + kNodes * ((round * kThreads + tid) *
                                          kChurnClosesPerRound +
                                      c);
                    rt.acquire(lock, AccessMode::Write);
                    for (int p = tid; p < kChurnPages; p += kThreads)
                        a.set(churnInt(p, c % kIntsPerPage), c);
                    rt.release(lock);
                }

            } else {
                // Fan-in phase: each worker thread owns a slice of
                // the pool; its first touch of a page is one cold
                // read-only miss against the contended home.
                const auto f0 = std::chrono::steady_clock::now();
                for (int p = tid; p < kPoolPages; p += kThreads) {
                    for (int i = 0; i < kReadsPerPage; ++i) {
                        const int got = a.get(poolInt(p, i));
                        const int want = round * 100000 + p * 64 + i;
                        if (got != want) {
                            std::fprintf(stderr,
                                         "VALIDATION FAILED: node %d "
                                         "round %d page %d word %d: "
                                         "%d != %d\n",
                                         self, round, p, i, got, want);
                            std::abort();
                        }
                    }
                }
                const auto f1 = std::chrono::steady_clock::now();
                fanInNs[rt.worker()].fetch_add(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        f1 - f0)
                        .count()));
            }
            rt.barrier(2 + 2 * round);
        }
    });

    // Mean fan-in window across the client workers: every worker
    // issues the same number of misses, so the mean window is the
    // per-worker cost of pushing its slice through the home, without
    // the tail amplification a max-over-workers metric picks up from
    // scheduler jitter.
    std::uint64_t sum = 0;
    for (int w = kThreads; w < kNodes * kThreads; ++w)
        sum += fanInNs[w].load();
    const std::uint64_t mean = sum / (kClients * kThreads);

    BenchResult out;
    out.seconds = static_cast<double>(mean) / 1e9;
    out.optReadsServed = result.total.optReadsServed;
    out.optReadFallbacks = result.total.optReadFallbacks;
    return out;
}

} // namespace

int
main()
{
    std::printf("=== micro_homeread: read fan-in against a churning "
                "home, DSM_OPT_READ off vs on ===\n");
    std::printf("%d clients x %d threads x %d pool pages x %d rounds, "
                "%d churn threads at the home\n\n",
                kClients, kThreads, kPoolPages, kRounds, kThreads);

    const double total_reads = static_cast<double>(kClients) *
                               kPoolPages * kReadsPerPage * kRounds;

    // Warm-up (thread spawn, allocator, first faults), then measure
    // alternating repetitions of each mode and sum the fan-in times:
    // single runs are at the mercy of scheduler phase alignment
    // (especially on small hosts), alternation averages it out.
    runFanIn(false);
    BenchResult off{}, on{};
    for (int rep = 0; rep < kReps; ++rep) {
        const BenchResult o = runFanIn(false);
        const BenchResult s = runFanIn(true);
        off.seconds += o.seconds;
        on.seconds += s.seconds;
        on.optReadsServed += s.optReadsServed;
        on.optReadFallbacks += s.optReadFallbacks;
        off.optReadsServed += o.optReadsServed;
    }

    const double rate_off = kReps * total_reads / off.seconds;
    const double rate_on = kReps * total_reads / on.seconds;
    const double speedup = rate_on / rate_off;

    std::printf("%-26s %14s %14s\n", "path", "reads/s", "fan-in s");
    std::printf("%-26s %14.0f %14.3f\n", "locked (opt off)", rate_off,
                off.seconds / kReps);
    std::printf("%-26s %14.0f %14.3f\n", "snapshot (opt on)", rate_on,
                on.seconds / kReps);
    std::printf("%-26s %13.2fx\n", "fan-in speedup", speedup);
    std::printf("optReadsServed=%llu optReadFallbacks=%llu (opt-off "
                "run served %llu)\n",
                static_cast<unsigned long long>(on.optReadsServed),
                static_cast<unsigned long long>(on.optReadFallbacks),
                static_cast<unsigned long long>(off.optReadsServed));
    if (on.optReadsServed == 0) {
        std::fprintf(stderr, "FAIL: fast path never served a read\n");
        return 1;
    }

    char json[512];
    std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"clients\": %d,\n"
        "  \"client_threads\": %d,\n"
        "  \"pool_pages\": %d,\n"
        "  \"rounds\": %d,\n"
        "  \"reads_per_sec_locked\": %.0f,\n"
        "  \"reads_per_sec_snapshot\": %.0f,\n"
        "  \"optread_speedup\": %.2f,\n"
        "  \"opt_reads_served\": %llu,\n"
        "  \"opt_read_fallbacks\": %llu\n"
        "}\n",
        kClients, kThreads, kPoolPages, kRounds, rate_off, rate_on,
        speedup, static_cast<unsigned long long>(on.optReadsServed),
        static_cast<unsigned long long>(on.optReadFallbacks));

    const char *out_path = "BENCH_homeread.json";
    if (FILE *f = std::fopen(out_path, "w")) {
        std::fputs(json, f);
        std::fclose(f);
        std::printf("\nwrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    return 0;
}
