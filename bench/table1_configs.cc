/**
 * @file
 * Reproduces Table 1 of the paper: the write-trapping x
 * write-collection combinations explored, with their provenance.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    std::printf("=== Table 1: combinations of write trapping and "
                "write collection ===\n\n");
    Table table({"Collection \\ Trapping", "Compiler instr.",
                 "Twinning"});
    table.addRow({"Timestamping", "EC-ci (Midway), LRC-ci",
                  "EC-time, LRC-time"});
    table.addRow({"Diffing", "(excluded: memory cost)",
                  "EC-diff, LRC-diff (TreadMarks)"});
    table.print();

    std::printf("\nConfigurations implemented by this library:\n");
    for (const RuntimeConfig &config : RuntimeConfig::all()) {
        std::printf("  %-9s model=%s trapping=%s collection=%s\n",
                    config.name().c_str(), toString(config.model),
                    toString(config.trap), toString(config.collect));
    }
    return 0;
}
