/**
 * @file
 * Reproduces Table 5 of the paper: execution times for the three LRC
 * implementations — compiler instrumentation + timestamps (LRC-ci),
 * twinning + timestamps (LRC-time), twinning + diffs (LRC-diff) — on
 * every application.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    printHeader("Table 5: write trapping x write collection in LRC",
                cc);

    Table paper({"Application", "paper LRC-ci", "paper LRC-time",
                 "paper LRC-diff"});
    paper.addRow({"SOR", "18.87", "13.41", "13.14"});
    paper.addRow({"SOR+", "26.44", "9.66", "10.04"});
    paper.addRow({"QS", "17.11", "13.05", "12.41"});
    paper.addRow({"Water", "2.42", "57.59", "37.75"});
    paper.addRow({"Barnes-Hut", "n/a", "n/a", "n/a"});
    paper.addRow({"IS", "13.95", "1.86", "2.06"});
    paper.addRow({"3D-FFT", "13.41", "10.32", "9.23"});
    // Note: the paper's Table 5 layout is partially garbled in the
    // scanned text; Water's LRC-ci entry (2.42) is clearly a column
    // shift. Values are transcribed as printed.

    Table table({"Application", "LRC-ci", "LRC-time", "LRC-diff",
                 "best"});
    for (const std::string &app : allAppNames()) {
        ModelSweep sweep = sweepModel(Model::LRC, app, params, cc);
        std::vector<std::string> row{app};
        for (const ExperimentResult &r : sweep.results)
            row.push_back(fmtSeconds(r.execSeconds()));
        row.push_back(sweep.best().config.name());
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\n--- paper reference (as printed; partially "
                "garbled in the source scan) ---\n");
    paper.print();
    return 0;
}
