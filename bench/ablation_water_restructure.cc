/**
 * @file
 * Reproduces the Section 7.2 Water restructuring experiment: splitting
 * the molecule records into separate displacement and force arrays
 * lets EC bind one per-processor lock to each owner's displacement
 * chunk (one bulk update instead of per-molecule read locks). The
 * paper reports 12.50 s (EC) vs 11.45 s (LRC) after restructuring,
 * down from 18.25 / 12.41 before.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    printHeader("Ablation: Water data-structure restructuring "
                "(Section 7.2)", cc);

    Table table({"Variant", "EC best", "LRC best", "EC msgs",
                 "LRC msgs"});
    for (bool restructured : {false, true}) {
        AppParams p = params;
        p.waterRestructured = restructured;
        ModelSweep ec = sweepModel(Model::EC, "Water", p, cc);
        ModelSweep lrc = sweepModel(Model::LRC, "Water", p, cc);
        table.addRow(
            {restructured ? "restructured (two arrays)"
                          : "original (array of records)",
             fmtSeconds(ec.best().execSeconds()),
             fmtSeconds(lrc.best().execSeconds()),
             std::to_string(ec.best().run.total.messagesSent),
             std::to_string(lrc.best().run.total.messagesSent)});
    }
    table.print();
    std::printf("\npaper: original EC 18.25 / LRC 12.41; restructured "
                "EC 12.50 / LRC 11.45\n");
    return 0;
}
