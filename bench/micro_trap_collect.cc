/**
 * @file
 * Microbenchmarks (google-benchmark) of the write trapping and write
 * collection primitives themselves: twin creation, diff creation and
 * application, timestamp scans, dirty-bit marking and scanning, and
 * the wire codecs. These are the per-word costs the paper's Section 8
 * trade-offs are made of.
 */

#include <benchmark/benchmark.h>

#include "mem/diff.hh"
#include "mem/dirty_bits.hh"
#include "mem/word_ts.hh"
#include "net/serde.hh"
#include "util/rng.hh"

namespace dsm {
namespace {

std::vector<std::byte>
randomBuffer(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::byte> buf(n);
    for (auto &b : buf)
        b = std::byte{static_cast<unsigned char>(rng.below(256))};
    return buf;
}

void
BM_TwinCopy(benchmark::State &state)
{
    const std::size_t n = state.range(0);
    auto src = randomBuffer(n, 1);
    std::vector<std::byte> twin(n);
    for (auto _ : state) {
        std::memcpy(twin.data(), src.data(), n);
        benchmark::DoNotOptimize(twin.data());
    }
    state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_TwinCopy)->Arg(4096)->Arg(65536);

void
BM_DiffCreate(benchmark::State &state)
{
    const std::size_t n = 4096;
    const int mods = static_cast<int>(state.range(0));
    auto twin = randomBuffer(n, 2);
    auto cur = twin;
    Rng rng(3);
    for (int i = 0; i < mods; ++i)
        cur[rng.below(n)] = std::byte{7};
    for (auto _ : state) {
        Diff d = Diff::create(cur.data(), twin.data(),
                              static_cast<std::uint32_t>(n));
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(16)->Arg(256)->Arg(1024);

void
BM_DiffApply(benchmark::State &state)
{
    const std::size_t n = 4096;
    auto twin = randomBuffer(n, 4);
    auto cur = twin;
    Rng rng(5);
    for (int i = 0; i < 256; ++i)
        cur[rng.below(n)] = std::byte{9};
    Diff d = Diff::create(cur.data(), twin.data(),
                          static_cast<std::uint32_t>(n));
    std::vector<std::byte> dst = twin;
    for (auto _ : state) {
        d.apply(dst.data());
        benchmark::DoNotOptimize(dst.data());
    }
}
BENCHMARK(BM_DiffApply);

void
BM_TimestampScan(benchmark::State &state)
{
    // The collection scan timestamping pays on *every* request
    // (diffing computes its diff once) — Section 5.3.
    BlockTimestamps ts(1024);
    Rng rng(6);
    for (int i = 0; i < 200; ++i)
        ts.set(static_cast<std::uint32_t>(rng.below(1024)),
               packTs(static_cast<int>(rng.below(8)),
                      static_cast<std::uint32_t>(rng.below(50))));
    for (auto _ : state) {
        auto runs = ts.collect([](std::uint64_t t) {
            return t != 0 && tsInterval(t) > 25;
        });
        benchmark::DoNotOptimize(runs);
    }
}
BENCHMARK(BM_TimestampScan);

void
BM_DirtyMarkScan(benchmark::State &state)
{
    DirtyBitmap dirty(1 << 20, 4096);
    Rng rng(8);
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            dirty.markRange(rng.below((1 << 20) - 64), 8);
        auto pages = dirty.dirtyPages();
        benchmark::DoNotOptimize(pages);
        dirty.clearAll();
    }
}
BENCHMARK(BM_DirtyMarkScan);

void
BM_DiffWireRoundTrip(benchmark::State &state)
{
    const std::size_t n = 4096;
    auto twin = randomBuffer(n, 10);
    auto cur = twin;
    Rng rng(11);
    for (int i = 0; i < 128; ++i)
        cur[rng.below(n)] = std::byte{3};
    Diff d = Diff::create(cur.data(), twin.data(),
                          static_cast<std::uint32_t>(n));
    for (auto _ : state) {
        WireWriter w;
        d.encode(w);
        auto bytes = w.take();
        WireReader r(bytes);
        Diff back = Diff::decode(r);
        benchmark::DoNotOptimize(back);
    }
}
BENCHMARK(BM_DiffWireRoundTrip);

} // namespace
} // namespace dsm

BENCHMARK_MAIN();
