/**
 * @file
 * Ablation of home-based vs homeless LRC (both LRC-diff): the homeless
 * protocol pays at access-miss time (collect diffs from every
 * concurrent writer), the home-based one pays at release time (flush
 * diffs to the homes eagerly) and answers every miss with exactly one
 * request/reply pair. Reports, per Table 3 application, the execution
 * time, message and data volume, and the protocol-shape counters:
 * diff requests vs home flushes, miss round trips, and migrations.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    printHeader("Ablation: homeless vs home-based LRC (LRC-diff)", cc);

    Table table({"Application", "Mode", "time", "msgs", "MB", "misses",
                 "diff reqs", "flushes", "fetch RTs", "migrations"});
    for (const std::string &app : allAppNames()) {
        for (bool home : {false, true}) {
            cc.homeBasedLrc = home;
            ExperimentResult r =
                runExperiment(app, cc.runtime, params, cc);
            const NodeStats &t = r.run.total;
            table.addRow({app, home ? "home" : "homeless",
                          fmtSeconds(r.execSeconds()),
                          std::to_string(t.messagesSent),
                          fmtMb(r.run.megabytesSent()),
                          std::to_string(t.accessMisses),
                          std::to_string(t.diffRequestsSent),
                          std::to_string(t.homeFlushesSent),
                          std::to_string(t.pageFetchRoundTrips),
                          std::to_string(t.homeMigrations)});
        }
    }
    table.print();
    std::printf("\nHome mode trades the homeless miss-time diff chain "
                "(one request per concurrent writer) for eager\n"
                "release-time flushes: every miss costs exactly one "
                "round trip and no diffs are ever stored.\n");
    return 0;
}
