/**
 * @file
 * Reproduces Table 2 of the paper: application parameters, at the
 * paper's sizes and at this reproduction's default bench sizes.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    std::printf("=== Table 2: application parameters ===\n\n");
    AppParams paper = AppParams::paperScale();
    AppParams bench = AppParams::benchScale();

    auto fmt = [](const AppParams &p, const std::string &app) {
        char buf[128];
        if (app == "SOR" || app == "SOR+") {
            std::snprintf(buf, sizeof(buf), "%dx%d floats, %d iters",
                          p.sorRows, p.sorCols, p.sorIters);
        } else if (app == "QS") {
            std::snprintf(buf, sizeof(buf), "%d integers, cutoff %d",
                          p.qsElems, p.qsCutoff);
        } else if (app == "Water") {
            std::snprintf(buf, sizeof(buf), "%d molecules, %d steps",
                          p.waterMolecules, p.waterSteps);
        } else if (app == "Barnes-Hut") {
            std::snprintf(buf, sizeof(buf), "%d bodies, %d steps",
                          p.barnesBodies, p.barnesSteps);
        } else if (app == "IS") {
            std::snprintf(buf, sizeof(buf),
                          "N=%d, Bmax=%d, %d rankings", p.isKeys,
                          p.isBmax, p.isRankings);
        } else {
            std::snprintf(buf, sizeof(buf), "%dx%dx%d, %d iters",
                          p.fftN1, p.fftN2, p.fftN3, p.fftIters);
        }
        return std::string(buf);
    };

    Table table({"Application", "paper data set", "bench default"});
    for (const std::string &app : allAppNames())
        table.addRow({app, fmt(paper, app), fmt(bench, app)});
    table.print();
    return 0;
}
