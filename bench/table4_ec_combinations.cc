/**
 * @file
 * Reproduces Table 4 of the paper: execution times for the three EC
 * implementations — compiler instrumentation + timestamps (EC-ci),
 * twinning + timestamps (EC-time), twinning + diffs (EC-diff) — on
 * every application.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    printHeader("Table 4: write trapping x write collection in EC", cc);

    // Paper values for reference (seconds).
    Table paper({"Application", "paper EC-ci", "paper EC-time",
                 "paper EC-diff"});
    paper.addRow({"SOR", "14.86", "13.23", "13.28"});
    paper.addRow({"SOR+", "14.09", "13.22", "13.25"});
    paper.addRow({"QS", "9.71", "8.50", "8.33"});
    paper.addRow({"Water", "18.25", "19.21", "19.73"});
    paper.addRow({"Barnes-Hut", "63.15", "63.07", "64.89"});
    paper.addRow({"IS", "1.86", "1.81", "2.01"});
    paper.addRow({"3D-FFT", "8.32", "9.59", "8.68"});

    Table table({"Application", "EC-ci", "EC-time", "EC-diff",
                 "best"});
    for (const std::string &app : allAppNames()) {
        ModelSweep sweep = sweepModel(Model::EC, app, params, cc);
        std::vector<std::string> row{app};
        for (const ExperimentResult &r : sweep.results)
            row.push_back(fmtSeconds(r.execSeconds()));
        row.push_back(sweep.best().config.name());
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\n--- paper reference ---\n");
    paper.print();
    return 0;
}
