/**
 * @file
 * Ablation of the hierarchical dirty-bit scheme for LRC-ci
 * (Section 4.1): without page-level summary bits, write collection
 * must scan the word-level dirty bits of the entire shared region at
 * every interval close. SOR+ (small shared footprint relative to the
 * arena) shows the effect directly.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    cc.runtime = RuntimeConfig::parse("LRC-ci");
    printHeader("Ablation: hierarchical vs flat dirty bits (LRC-ci)",
                cc);

    Table table({"Scheme", "SOR", "SOR+", "IS"});
    std::vector<std::string> hier{"hierarchical (page + word bits)"};
    std::vector<std::string> flat{"flat (word bits only)"};
    for (const char *app : {"SOR", "SOR+", "IS"}) {
        cc.hierarchicalDirty = true;
        hier.push_back(fmtSeconds(
            runExperiment(app, cc.runtime, params, cc).execSeconds()));
        cc.hierarchicalDirty = false;
        flat.push_back(fmtSeconds(
            runExperiment(app, cc.runtime, params, cc).execSeconds()));
    }
    table.addRow(std::move(hier));
    table.addRow(std::move(flat));
    table.print();
    std::printf("\nThe flat scheme pays a whole-region scan per "
                "interval; the paper adopted the hierarchical scheme "
                "for exactly this reason.\n");
    return 0;
}
