/**
 * @file
 * Ablation of the eager small-object twin (Sections 4.2 and 9): this
 * paper's EC twinning copies a small object as soon as the write lock
 * is acquired, where the Midway VM implementation write-protects it
 * and takes a fault on the first store. Water (per-molecule objects)
 * and IS (one sub-page array) are the sensitive applications.
 */

#include "bench_common.hh"

using namespace dsm;

int
main()
{
    AppParams params = benchParams();
    ClusterConfig cc = benchCluster();
    cc.runtime = RuntimeConfig::parse("EC-diff");
    printHeader("Ablation: eager small-object twin vs Midway-style "
                "protection faults (EC-diff)", cc);

    Table table({"Scheme", "Water", "IS", "Water faults", "IS faults"});
    for (bool eager : {true, false}) {
        cc.ecEagerSmallTwin = eager;
        ExperimentResult water =
            runExperiment("Water", cc.runtime, params, cc);
        ExperimentResult is = runExperiment("IS", cc.runtime, params,
                                            cc);
        table.addRow({eager ? "eager twin (this paper)"
                            : "protect + fault (Midway VM)",
                      fmtSeconds(water.execSeconds()),
                      fmtSeconds(is.execSeconds()),
                      std::to_string(water.run.total.pageFaults),
                      std::to_string(is.run.total.pageFaults)});
    }
    table.print();
    std::printf("\nEager twinning avoids one protection fault per "
                "write-lock acquire of a small object (Section 9).\n");
    return 0;
}
