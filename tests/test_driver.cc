/**
 * @file
 * Tests for the driver layer: configuration parsing, table rendering,
 * experiment plumbing, and the cost model's arithmetic.
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "driver/table.hh"

namespace dsm {
namespace {

TEST(Config, NamesRoundTrip)
{
    for (const RuntimeConfig &config : RuntimeConfig::all()) {
        EXPECT_EQ(RuntimeConfig::parse(config.name()), config);
    }
    EXPECT_EQ(RuntimeConfig::all().size(), 6u);
}

TEST(Config, PaperNames)
{
    EXPECT_EQ(RuntimeConfig::parse("EC-ci").trap,
              TrapMethod::CompilerInstrumentation);
    EXPECT_EQ(RuntimeConfig::parse("EC-time").collect,
              CollectMethod::Timestamping);
    EXPECT_EQ(RuntimeConfig::parse("LRC-diff").model, Model::LRC);
    EXPECT_EQ(RuntimeConfig::parse("LRC-diff").name(), "LRC-diff");
}

TEST(Config, UnknownNameIsFatal)
{
    EXPECT_DEATH({ RuntimeConfig::parse("EC-lazy"); }, "unknown");
}

TEST(CostModel, TransitIsAffine)
{
    CostModel cm;
    cm.msgFixedNs = 100;
    cm.perByteNs = 3;
    EXPECT_EQ(cm.transitNs(0), 100u);
    EXPECT_EQ(cm.transitNs(10), 130u);
    EXPECT_FALSE(cm.toString().empty());
}

TEST(TableRender, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("longer"), std::string::npos);
    // Every line has the same length (fixed-width rendering).
    std::size_t first = s.find('\n');
    std::size_t expect = first;
    for (std::size_t pos = 0; pos < s.size();) {
        std::size_t next = s.find('\n', pos);
        ASSERT_NE(next, std::string::npos);
        EXPECT_LE(next - pos, expect + 2);
        pos = next + 1;
    }
}

TEST(TableRender, Formatters)
{
    EXPECT_EQ(fmtSeconds(1.234), "1.23");
    EXPECT_EQ(fmtRatio(2.5), "2.50x");
    EXPECT_EQ(fmtMb(3.14159), "3.1MB");
}

TEST(AppParams, ScalesAreOrdered)
{
    AppParams test = AppParams::testScale();
    AppParams bench = AppParams::benchScale();
    AppParams paper = AppParams::paperScale();
    EXPECT_LT(test.qsElems, bench.qsElems);
    EXPECT_LT(bench.qsElems, paper.qsElems);
    EXPECT_LT(test.waterMolecules, paper.waterMolecules);
    EXPECT_EQ(paper.isKeys, 1 << 20); // Table 2: N = 2^20
    EXPECT_EQ(paper.isBmax, 1 << 9);  // Table 2: Bmax = 2^9
    EXPECT_EQ(paper.waterMolecules, 343);
    EXPECT_EQ(paper.barnesBodies, 8192);
}

TEST(AppRegistry, AllSevenApplications)
{
    EXPECT_EQ(allAppNames().size(), 7u);
    for (const std::string &name : allAppNames()) {
        auto app = makeApp(name);
        ASSERT_NE(app, nullptr);
        EXPECT_EQ(app->name(), name);
    }
}

TEST(ExperimentRunner, ValidatesAndReports)
{
    AppParams params = AppParams::testScale();
    ClusterConfig base;
    base.nprocs = 2;
    base.arenaBytes = 4u << 20;
    base.pageSize = 1024;
    ExperimentResult r = runExperiment(
        "IS", RuntimeConfig::parse("LRC-diff"), params, base);
    EXPECT_TRUE(r.verdict.ok);
    EXPECT_GT(r.execSeconds(), 0.0);
    EXPECT_GT(r.seqSeconds(base.cost), 0.0);
    EXPECT_EQ(r.app, "IS");
}

} // namespace
} // namespace dsm
