/**
 * @file
 * Integration tests: every application of the paper, under every
 * runtime configuration, must reproduce the sequential reference
 * (bit-exactly for the integer applications, within tight tolerances
 * for the floating-point ones).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/experiment.hh"

namespace dsm {
namespace {

/** Shared cluster base; the DSM_HOME=1 CI leg runs the entire sweep
 *  in home-based LRC mode (effective for LRC-diff, a no-op for the
 *  other configurations). */
ClusterConfig
baseConfig()
{
    ClusterConfig base;
    base.nprocs = 4;
    base.arenaBytes = 8u << 20;
    base.pageSize = 1024;
    if (const char *v = std::getenv("DSM_HOME"))
        base.homeBasedLrc = std::atoi(v) != 0;
    return base;
}

class AppConfigTest : public ::testing::TestWithParam<
                          std::tuple<std::string, std::string>>
{};

TEST_P(AppConfigTest, MatchesSequential)
{
    const auto &[app, config_name] = GetParam();
    AppParams params = AppParams::testScale();
    ClusterConfig base = baseConfig();

    ExperimentResult r = runExperiment(
        app, RuntimeConfig::parse(config_name), params, base,
        /*require_valid=*/false);
    EXPECT_TRUE(r.verdict.ok) << r.verdict.detail;
    EXPECT_GT(r.run.execTimeNs, 0u);
    EXPECT_GT(r.seq.workUnits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllConfigs, AppConfigTest,
    ::testing::Combine(::testing::Values("QS", "Water", "Barnes-Hut",
                                         "IS", "3D-FFT"),
                       ::testing::Values("EC-ci", "EC-time", "EC-diff",
                                         "LRC-ci", "LRC-time",
                                         "LRC-diff")),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/** The restructured Water variant (Section 7.2) must also validate. */
TEST(WaterRestructured, MatchesSequential)
{
    AppParams params = AppParams::testScale();
    params.waterRestructured = true;
    ClusterConfig base = baseConfig();
    for (const char *config : {"EC-time", "LRC-diff"}) {
        ExperimentResult r =
            runExperiment("Water", RuntimeConfig::parse(config), params,
                          base, false);
        EXPECT_TRUE(r.verdict.ok) << config << ": " << r.verdict.detail;
    }
}

/** Different processor counts exercise banding edge cases. */
class NprocsTest : public ::testing::TestWithParam<int>
{};

TEST_P(NprocsTest, SorAcrossClusterSizes)
{
    AppParams params = AppParams::testScale();
    ClusterConfig base = baseConfig();
    base.nprocs = GetParam();
    base.arenaBytes = 4u << 20;
    for (const char *config : {"EC-diff", "LRC-diff"}) {
        ExperimentResult r = runExperiment(
            "SOR", RuntimeConfig::parse(config), params, base, false);
        EXPECT_TRUE(r.verdict.ok)
            << config << " np=" << GetParam() << ": "
            << r.verdict.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NprocsTest,
                         ::testing::Values(1, 2, 3, 8));

/** The sweep helper must pick the fastest implementation. */
TEST(ModelSweep, PicksFastest)
{
    AppParams params = AppParams::testScale();
    ClusterConfig base = baseConfig();
    ModelSweep sweep = sweepModel(Model::EC, "IS", params, base);
    ASSERT_EQ(sweep.results.size(), 3u);
    for (const auto &r : sweep.results) {
        EXPECT_TRUE(r.verdict.ok);
        EXPECT_GE(r.run.execTimeNs, sweep.best().run.execTimeNs);
    }
}

} // namespace
} // namespace dsm
