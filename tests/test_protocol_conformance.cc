/**
 * @file
 * Cross-protocol conformance: the shared SPMD kernels
 * (conformance_kernels.hh) — a halo-exchange stencil, a distributed
 * task queue, and a migratory counter ring (the Table 3 sharing
 * patterns in miniature) — run under entry consistency, homeless LRC,
 * and home-based LRC over the full (2, 4, 8 nodes) x (1, 2, 4
 * threads-per-node) scenario grid, and the final shared state
 * collected on node 0 must be bit-identical across all three
 * protocols at every grid point. Every kernel is integer-valued,
 * partitioned over *workers* (node x thread), and
 * schedule-independent, so "bit-identical" is exact, not a tolerance
 * — which makes this grid the SMP refactor's model-checking net: any
 * lost write, unmirrored twin, missed invalidation or broken
 * intra-node hand-off shows up as a byte difference.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "conformance_kernels.hh"

namespace dsm {
namespace {

using namespace kernels;

// ---------------------------------------------------------------------
// Harness: run one kernel under one protocol, return node 0's final
// shared state.

struct ProtocolLeg
{
    const char *label;
    const char *config;
    bool home;
    /** Piggyback write notices on fetch replies (default-on fast
     *  path); the *_nonotice legs prove the seed protocol and the
     *  piggybacked one produce bit-identical final state. */
    bool piggyback;
    /** Sharing-policy legs: bounded-fairness lock hand-off bound
     *  (0 = unbounded), migrate-to-last-writer home policy, and the
     *  deferred-merged flush transport. Each must leave the final
     *  state bit-identical to the policy-off protocols — they change
     *  who serves whom and when payloads travel, never the values. */
    int fairness = 0;
    bool lastWriter = false;
    bool deferFlush = false;
    /** Optimistic lock-free home reads (DSM_OPT_READ): snapshots must
     *  be invisible in the final state — bit-identical to every other
     *  leg — including while homes migrate under the reads. */
    bool optRead = false;
    /** Latency-path legs (PR 9): -1 keeps the env sentinel (so the
     *  DSM_REPLY_BYPASS / DSM_BLOCKING_DEQ / DSM_COALESCE CI sweeps
     *  flip the whole grid), 0/1 forces the knob for this leg. All
     *  three change only where wall-clock and wire slots go — any
     *  byte they move is a conformance failure. */
    int replyBypass = -1;
    int blockingDeq = -1;
    int coalesce = -1;
    /** Per-lock adaptive fairness bound (DSM_LOCK_FAIRNESS_ADAPT):
     *  reshapes hand-off scheduling, never values. */
    bool adaptFair = false;
};

const ProtocolLeg kLegs[] = {
    {"EC", "EC-diff", false, true},
    {"LRC", "LRC-diff", false, true},
    {"LRC_nonotice", "LRC-diff", false, false},
    {"LRC_time", "LRC-time", false, true},
    {"LRC_time_nonotice", "LRC-time", false, false},
    {"LRC_home", "LRC-diff", true, true},
    {"LRC_home_nonotice", "LRC-diff", true, false},
    // Sharing-policy legs (PR 5): each policy on its own, then all
    // three at once, against the same policy-off reference state.
    {"EC_fair", "EC-diff", false, true, 4},
    {"LRC_fair", "LRC-diff", false, true, 4},
    {"LRC_home_lastwriter", "LRC-diff", true, true, 0, true},
    {"LRC_home_defer", "LRC-diff", true, true, 0, false, true},
    {"LRC_home_allpolicies", "LRC-diff", true, true, 4, true, true},
    // Optimistic-read legs (PR 7): the version-validated snapshot
    // fast path alone, and combined with the migration-heavy
    // last-writer policy (epoch rejects + migration races).
    {"LRC_home_optread", "LRC-diff", true, true, 0, false, false, true},
    {"LRC_home_optread_migrate", "LRC-diff", true, true, 0, true, false,
     true},
    // Latency-path legs (PR 9). Reply bypass defaults *on*, so the
    // interesting forced leg is bypass-off (the reference implicitly
    // covers bypass-on); blocking dequeue, coalescing, and adaptive
    // fairness default off, so each gets a forced-on leg. Home-based
    // legs matter most for coalescing (HomeDiffFlush / HomeMigrate are
    // the only coalescable types) and for the bypass ordering guard
    // (migrate installs racing bypassed replies).
    {"EC_nobypass", "EC-diff", false, true, 0, false, false, false, 0},
    {"LRC_home_nobypass", "LRC-diff", true, true, 0, false, false,
     false, 0},
    {"EC_blockingdeq", "EC-diff", false, true, 0, false, false, false,
     -1, 1},
    {"LRC_home_blockingdeq", "LRC-diff", true, true, 0, false, false,
     false, -1, 1},
    {"LRC_coalesce", "LRC-diff", false, true, 0, false, false, false,
     -1, -1, 1},
    {"LRC_home_coalesce", "LRC-diff", true, true, 0, false, false,
     false, -1, -1, 1},
    {"LRC_home_coalesce_defer", "LRC-diff", true, true, 0, false, true,
     false, -1, -1, 1},
    {"EC_fair_adaptive", "EC-diff", false, true, 4, false, false, false,
     -1, -1, -1, true},
    {"LRC_home_latency_all", "LRC-diff", true, true, 4, true, true,
     true, 1, 1, 1, true},
};

struct KernelCase
{
    const char *name;
    std::function<void(Runtime &)> run;
    std::size_t stateBytes;
    int nprocs;
    int threads;
};

std::vector<std::byte>
runLeg(const ProtocolLeg &leg, const KernelCase &kc)
{
    ClusterConfig cc;
    cc.nprocs = kc.nprocs;
    cc.threadsPerNode = kc.threads;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse(leg.config);
    cc.homeBasedLrc = leg.home;
    cc.piggybackWriteNotices = leg.piggyback;
    // A low threshold makes homes migrate *during* the kernels, so
    // conformance also covers the migration machinery.
    cc.homeMigrateThreshold = 4;
    cc.lockLocalHandoffBound = leg.fairness;
    cc.homeMigrateLastWriter = leg.lastWriter ? 1 : 0;
    cc.homeFlushDefer = leg.deferFlush ? 1 : 0;
    // Force-on for the optread legs; everything else keeps the -1
    // sentinel so a DSM_OPT_READ=1 CI sweep turns the whole grid on.
    if (leg.optRead)
        cc.optimisticHomeReads = 1;
    cc.replyBypass = leg.replyBypass;
    cc.blockingDequeue = leg.blockingDeq;
    cc.coalesceSends = leg.coalesce;
    if (leg.adaptFair)
        cc.lockFairnessAdaptive = 1;
    // Last-writer legs use an aggressive classifier and a tiny
    // ping-pong budget so migrations *and* the pin both happen inside
    // these small kernels.
    if (leg.lastWriter) {
        cc.homeWriterSwitchThreshold = 2;
        cc.homePingPongLimit = 3;
    } else {
        cc.homePingPongLimit = 0;
    }
    Cluster cluster(cc);
    cluster.run(kc.run);
    std::vector<std::byte> state(kc.stateBytes);
    std::memcpy(state.data(), cluster.memory(0, 0), kc.stateBytes);
    return state;
}

class ProtocolConformance : public ::testing::TestWithParam<KernelCase>
{};

TEST_P(ProtocolConformance, BitIdenticalFinalState)
{
    const KernelCase &kc = GetParam();
    const std::vector<std::byte> reference = runLeg(kLegs[0], kc);
    for (std::size_t l = 1; l < std::size(kLegs); ++l) {
        const std::vector<std::byte> got = runLeg(kLegs[l], kc);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], reference[i])
                << kc.name << " np=" << kc.nprocs << ": "
                << kLegs[l].label << " differs from "
                << kLegs[0].label << " at byte " << i;
        }
    }
}

std::vector<KernelCase>
conformanceCases()
{
    std::vector<KernelCase> cases;
    for (int np : {2, 4, 8}) {
        for (int t : {1, 2, 4}) {
            cases.push_back(
                {"stencil", stencilKernel, stencilBytes(), np, t});
            cases.push_back(
                {"taskqueue", taskQueueKernel, taskQueueBytes(), np, t});
            cases.push_back({"ring", ringKernel, ringBytes(), np, t});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Kernels, ProtocolConformance,
                         ::testing::ValuesIn(conformanceCases()),
                         [](const auto &info) {
                             return std::string(info.param.name) + "_np" +
                                    std::to_string(info.param.nprocs) +
                                    "x" +
                                    std::to_string(info.param.threads);
                         });

} // namespace
} // namespace dsm
