/**
 * @file
 * Cross-protocol conformance: the same SPMD kernels — a halo-exchange
 * stencil, a distributed task queue, and a migratory counter ring (the
 * Table 3 sharing patterns in miniature) — run under entry
 * consistency, homeless LRC, and home-based LRC over the full
 * (2, 4, 8 nodes) x (1, 2, 4 threads-per-node) scenario grid, and the
 * final shared state collected on node 0 must be bit-identical across
 * all three protocols at every grid point. Every kernel is
 * integer-valued, partitioned over *workers* (node x thread), and
 * schedule-independent, so "bit-identical" is exact, not a tolerance
 * — which makes this grid the SMP refactor's model-checking net: any
 * lost write, unmirrored twin, missed invalidation or broken
 * intra-node hand-off shows up as a byte difference.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "core/cluster.hh"
#include "core/shared_array.hh"

namespace dsm {
namespace {

constexpr LockId kQueueLock = 1;
constexpr LockId kPayloadLock = 2;
constexpr LockId kRingLock = 3;
constexpr LockId kBandLockBase = 10;

bool
isEc(Runtime &rt)
{
    return rt.clusterConfig().runtime.model == Model::EC;
}

// ---------------------------------------------------------------------
// Kernel 1: halo-exchange stencil (the SOR pattern). Each node owns a
// band of an int64 grid; per step it reads the neighbour edge cells
// under their band locks, then rewrites its band under its own lock.

constexpr int kCells = 768;
constexpr int kSteps = 8;

std::size_t
stencilBytes()
{
    return std::size_t{kCells} * sizeof(std::int64_t);
}

void
stencilKernel(Runtime &rt)
{
    const bool ec = isEc(rt);
    const int np = rt.nworkers();
    const int self = rt.worker();
    const int lo = self * kCells / np;
    const int hi = (self + 1) * kCells / np;
    auto band_lock = [](int p) {
        return static_cast<LockId>(kBandLockBase + p);
    };

    auto grid = SharedArray<std::int64_t>::alloc(rt, kCells, 4, "grid");
    if (ec) {
        for (int p = 0; p < np; ++p) {
            const int plo = p * kCells / np;
            const int phi = (p + 1) * kCells / np;
            rt.bindLock(band_lock(p), {grid.range(plo, phi - plo)});
        }
    }
    {
        std::vector<std::int64_t> init(kCells);
        for (int i = 0; i < kCells; ++i)
            init[i] = (i * 37) % 1001 - 500;
        rt.initBuf(grid.base(), init.data(), kCells);
    }
    BarrierId barrier = 0;
    rt.barrier(barrier++);

    std::vector<std::int64_t> band(hi - lo + 2);
    for (int step = 0; step < kSteps; ++step) {
        // Phase A: read the halo (the previous step's values — a
        // barrier below separates it from this step's writes).
        std::int64_t left = 0, right = 0;
        if (self > 0) {
            if (ec)
                rt.acquire(band_lock(self - 1), AccessMode::Read);
            left = grid.get(lo - 1);
            if (ec)
                rt.release(band_lock(self - 1));
        }
        if (self < np - 1) {
            if (ec)
                rt.acquire(band_lock(self + 1), AccessMode::Read);
            right = grid.get(hi);
            if (ec)
                rt.release(band_lock(self + 1));
        }
        grid.load(lo, band.data() + 1, hi - lo);
        band[0] = left;
        band[hi - lo + 1] = right;
        rt.barrier(barrier++);

        // Phase B: rewrite the band under the band lock.
        std::vector<std::int64_t> next(hi - lo);
        for (int i = 0; i < hi - lo; ++i) {
            next[i] = band[i] + band[i + 1] - (band[i + 2] >> 1) +
                      step;
        }
        rt.chargeWork(hi - lo);
        if (ec)
            rt.acquire(band_lock(self), AccessMode::Write);
        grid.store(lo, next.data(), hi - lo);
        if (ec)
            rt.release(band_lock(self));
        rt.barrier(barrier++);
    }

    // Node 0 collects the whole grid through the protocol.
    if (rt.worker() == 0) {
        for (int p = 0; p < np; ++p) {
            if (ec) {
                rt.acquire(band_lock(p), AccessMode::Read);
                rt.release(band_lock(p));
            }
        }
        for (int i = 0; i < kCells; ++i)
            grid.get(i);
    }
    rt.barrier(barrier++);
}

// ---------------------------------------------------------------------
// Kernel 2: distributed task queue (the Quicksort pattern). Workers
// pull jobs from a lock-protected queue and post deterministic results;
// which worker runs which job varies by schedule, the results do not.

constexpr int kJobs = 40;
constexpr int kPayloadWords = 32;

std::size_t
taskQueueBytes()
{
    return (1 + kJobs + std::size_t{kJobs} * kPayloadWords) *
           sizeof(std::int64_t);
}

void
taskQueueKernel(Runtime &rt)
{
    const bool ec = isEc(rt);
    auto queue =
        SharedArray<std::int64_t>::alloc(rt, 1 + kJobs, 4, "queue");
    auto payload = SharedArray<std::int64_t>::alloc(
        rt, std::size_t{kJobs} * kPayloadWords, 4, "payload");
    if (ec) {
        rt.bindLock(kQueueLock, {queue.wholeRange()});
        rt.bindLock(kPayloadLock, {payload.wholeRange()});
    }
    rt.barrier(0);

    // Node 0 publishes every job's payload under the payload lock.
    if (rt.worker() == 0) {
        if (ec)
            rt.acquire(kPayloadLock, AccessMode::Write);
        std::vector<std::int64_t> words(kPayloadWords);
        for (int j = 0; j < kJobs; ++j) {
            for (int w = 0; w < kPayloadWords; ++w)
                words[w] = j * 1000 + w * w;
            payload.store(std::size_t{static_cast<std::size_t>(j)} *
                              kPayloadWords,
                          words.data(), kPayloadWords);
        }
        if (ec)
            rt.release(kPayloadLock);
    }
    rt.barrier(1);

    for (;;) {
        rt.acquire(kQueueLock, AccessMode::Write);
        const std::int64_t job = queue.get(0);
        if (job < kJobs)
            queue.set(0, job + 1);
        rt.release(kQueueLock);
        if (job >= kJobs)
            break;

        if (ec)
            rt.acquire(kPayloadLock, AccessMode::Read);
        std::int64_t sum = 0;
        for (int w = 0; w < kPayloadWords; ++w)
            sum += payload.get(job * kPayloadWords + w);
        if (ec)
            rt.release(kPayloadLock);
        rt.chargeWork(kPayloadWords);

        rt.acquire(kQueueLock, AccessMode::Write);
        queue.set(1 + job, sum * 3 - job);
        rt.release(kQueueLock);
    }
    rt.barrier(2);

    if (rt.worker() == 0) {
        if (ec) {
            rt.acquire(kQueueLock, AccessMode::Read);
            rt.release(kQueueLock);
            rt.acquire(kPayloadLock, AccessMode::Read);
            rt.release(kPayloadLock);
        }
        for (std::size_t i = 0; i < queue.size(); ++i)
            queue.get(i);
        for (std::size_t i = 0; i < payload.size(); ++i)
            payload.get(i);
    }
    rt.barrier(3);
}

// ---------------------------------------------------------------------
// Kernel 3: migratory counter ring (the IS bucket pattern — the
// table3-style lock-serialized loop). One node per round increments
// every slot under the ring lock; everyone asserts the running total.

constexpr int kSlots = 96;
constexpr int kRounds = 12;

std::size_t
ringBytes()
{
    return std::size_t{kSlots} * sizeof(std::int64_t);
}

void
ringKernel(Runtime &rt)
{
    const bool ec = isEc(rt);
    auto slots = SharedArray<std::int64_t>::alloc(rt, kSlots, 4, "ring");
    if (ec)
        rt.bindLock(kRingLock, {slots.wholeRange()});
    rt.barrier(0);

    for (int round = 0; round < kRounds; ++round) {
        rt.acquire(kRingLock, AccessMode::Write);
        if (round % rt.nworkers() == rt.worker()) {
            for (int i = 0; i < kSlots; ++i)
                slots.set(i, slots.get(i) + i + round);
        }
        rt.release(kRingLock);
        rt.barrier(1 + round);
    }

    if (rt.worker() == 0) {
        if (ec) {
            rt.acquire(kRingLock, AccessMode::Read);
            rt.release(kRingLock);
        }
        for (int i = 0; i < kSlots; ++i)
            slots.get(i);
    }
    rt.barrier(100);
}

// ---------------------------------------------------------------------
// Harness: run one kernel under one protocol, return node 0's final
// shared state.

struct ProtocolLeg
{
    const char *label;
    const char *config;
    bool home;
    /** Piggyback write notices on fetch replies (default-on fast
     *  path); the *_nonotice legs prove the seed protocol and the
     *  piggybacked one produce bit-identical final state. */
    bool piggyback;
    /** Sharing-policy legs: bounded-fairness lock hand-off bound
     *  (0 = unbounded), migrate-to-last-writer home policy, and the
     *  deferred-merged flush transport. Each must leave the final
     *  state bit-identical to the policy-off protocols — they change
     *  who serves whom and when payloads travel, never the values. */
    int fairness = 0;
    bool lastWriter = false;
    bool deferFlush = false;
};

const ProtocolLeg kLegs[] = {
    {"EC", "EC-diff", false, true},
    {"LRC", "LRC-diff", false, true},
    {"LRC_nonotice", "LRC-diff", false, false},
    {"LRC_time", "LRC-time", false, true},
    {"LRC_time_nonotice", "LRC-time", false, false},
    {"LRC_home", "LRC-diff", true, true},
    {"LRC_home_nonotice", "LRC-diff", true, false},
    // Sharing-policy legs (PR 5): each policy on its own, then all
    // three at once, against the same policy-off reference state.
    {"EC_fair", "EC-diff", false, true, 4},
    {"LRC_fair", "LRC-diff", false, true, 4},
    {"LRC_home_lastwriter", "LRC-diff", true, true, 0, true},
    {"LRC_home_defer", "LRC-diff", true, true, 0, false, true},
    {"LRC_home_allpolicies", "LRC-diff", true, true, 4, true, true},
};

struct KernelCase
{
    const char *name;
    std::function<void(Runtime &)> run;
    std::size_t stateBytes;
    int nprocs;
    int threads;
};

std::vector<std::byte>
runLeg(const ProtocolLeg &leg, const KernelCase &kc)
{
    ClusterConfig cc;
    cc.nprocs = kc.nprocs;
    cc.threadsPerNode = kc.threads;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse(leg.config);
    cc.homeBasedLrc = leg.home;
    cc.piggybackWriteNotices = leg.piggyback;
    // A low threshold makes homes migrate *during* the kernels, so
    // conformance also covers the migration machinery.
    cc.homeMigrateThreshold = 4;
    cc.lockLocalHandoffBound = leg.fairness;
    cc.homeMigrateLastWriter = leg.lastWriter ? 1 : 0;
    cc.homeFlushDefer = leg.deferFlush ? 1 : 0;
    // Last-writer legs use an aggressive classifier and a tiny
    // ping-pong budget so migrations *and* the pin both happen inside
    // these small kernels.
    if (leg.lastWriter) {
        cc.homeWriterSwitchThreshold = 2;
        cc.homePingPongLimit = 3;
    } else {
        cc.homePingPongLimit = 0;
    }
    Cluster cluster(cc);
    cluster.run(kc.run);
    std::vector<std::byte> state(kc.stateBytes);
    std::memcpy(state.data(), cluster.memory(0, 0), kc.stateBytes);
    return state;
}

class ProtocolConformance : public ::testing::TestWithParam<KernelCase>
{};

TEST_P(ProtocolConformance, BitIdenticalFinalState)
{
    const KernelCase &kc = GetParam();
    const std::vector<std::byte> reference = runLeg(kLegs[0], kc);
    for (std::size_t l = 1; l < std::size(kLegs); ++l) {
        const std::vector<std::byte> got = runLeg(kLegs[l], kc);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], reference[i])
                << kc.name << " np=" << kc.nprocs << ": "
                << kLegs[l].label << " differs from "
                << kLegs[0].label << " at byte " << i;
        }
    }
}

std::vector<KernelCase>
conformanceCases()
{
    std::vector<KernelCase> cases;
    for (int np : {2, 4, 8}) {
        for (int t : {1, 2, 4}) {
            cases.push_back(
                {"stencil", stencilKernel, stencilBytes(), np, t});
            cases.push_back(
                {"taskqueue", taskQueueKernel, taskQueueBytes(), np, t});
            cases.push_back({"ring", ringKernel, ringBytes(), np, t});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Kernels, ProtocolConformance,
                         ::testing::ValuesIn(conformanceCases()),
                         [](const auto &info) {
                             return std::string(info.param.name) + "_np" +
                                    std::to_string(info.param.nprocs) +
                                    "x" +
                                    std::to_string(info.param.threads);
                         });

} // namespace
} // namespace dsm
