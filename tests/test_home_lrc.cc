/**
 * @file
 * Home-based LRC invariants:
 *  - no node ever stores a diff (homes apply flushes in place, clients
 *    fetch full copies), across dozens of epochs;
 *  - an access miss on a remotely homed page costs exactly one
 *    request/reply round trip, counter-asserted;
 *  - a deliberately skewed access pattern migrates the home past the
 *    threshold and stays correct before, during and after the move.
 */

#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "core/shared_array.hh"

namespace dsm {
namespace {

ClusterConfig
homeConfig(int nprocs, std::uint32_t migrate_threshold)
{
    ClusterConfig cc;
    cc.nprocs = nprocs;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    cc.homeBasedLrc = true;
    cc.homeMigrateThreshold = migrate_threshold;
    // Per-node scripted protocol test: roles key off rt.self(), so the
    // scenario only makes sense with one app thread per node (SMP
    // coverage lives in the worker-parametrized app/conformance/smp
    // suites). Pin T=1 so a DSM_THREADS sweep cannot redefine it.
    cc.threadsPerNode = 1;
    return cc;
}

LrcRuntime &
lrcOf(Cluster &cluster, NodeId node)
{
    auto *lrc = dynamic_cast<LrcRuntime *>(&cluster.runtime(node));
    EXPECT_NE(lrc, nullptr);
    return *lrc;
}

/** 44 epochs of cross-node producing and consuming: the diff store
 *  stays empty on every node, while the same run in homeless mode
 *  does store diffs. */
TEST(HomeLrc, DiffStoreStaysEmptyAcrossEpochs)
{
    constexpr int kEpochs = 44;
    constexpr int kWords = 1024; // 4 pages of 1024 bytes
    auto run = [&](bool home) {
        ClusterConfig cc = homeConfig(4, 0);
        cc.homeBasedLrc = home;
        auto cluster = std::make_unique<Cluster>(cc);
        cluster->run([&](Runtime &rt) {
            auto a = SharedArray<int>::alloc(rt, kWords, 4, "epochs");
            const int np = rt.nprocs();
            const int self = rt.self();
            const int chunk = kWords / np;
            rt.barrier(0);
            for (int e = 0; e < kEpochs; ++e) {
                // Write my chunk, then read my right neighbour's.
                for (int i = 0; i < chunk; ++i)
                    a.set(self * chunk + i, e * 100 + self + i);
                rt.barrier(1 + 2 * e);
                const int peer = (self + 1) % np;
                for (int i = 0; i < chunk; i += 7)
                    ASSERT_EQ(a.get(peer * chunk + i),
                              e * 100 + peer + i);
                rt.barrier(2 + 2 * e);
            }
        });
        return cluster;
    };

    auto home_cluster = run(true);
    std::size_t homeless_diffs = 0;
    {
        auto homeless_cluster = run(false);
        for (int n = 0; n < 4; ++n)
            homeless_diffs +=
                lrcOf(*homeless_cluster, n).diffStoreSize();
    }
    for (int n = 0; n < 4; ++n) {
        EXPECT_EQ(lrcOf(*home_cluster, n).diffStoreSize(), 0u)
            << "node " << n << " stored diffs in home mode";
    }
    EXPECT_GT(homeless_diffs, 0u)
        << "homeless control run should have stored diffs";
}

/** Every cold miss on a remotely homed page is exactly one
 *  request/reply pair: pageFetchRoundTrips == accessMisses on the
 *  consumer, one per epoch. */
TEST(HomeLrc, OneRoundTripPerColdMiss)
{
    constexpr int kEpochs = 40;
    ClusterConfig cc = homeConfig(2, 0); // migration off
    cc.gcAtBarriers = false; // keep proactive GC fetches out of the count
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        // One page (256 ints x 4 bytes = 1024 = page 0, homed at 0).
        auto a = SharedArray<int>::alloc(rt, 256, 4, "page0");
        rt.barrier(0);
        for (int e = 0; e < kEpochs; ++e) {
            if (rt.self() == 0) {
                for (int i = 0; i < 256; ++i)
                    a.set(i, e * 1000 + i);
            }
            rt.barrier(1 + 2 * e);
            if (rt.self() == 1) {
                ASSERT_EQ(a.get(17), e * 1000 + 17);
                ASSERT_EQ(a.get(255), e * 1000 + 255);
            }
            rt.barrier(2 + 2 * e);
        }
    });

    ASSERT_EQ(lrcOf(cluster, 1).pageHomeOf(0), 0);
    const NodeStats &consumer = result.perNode[1];
    EXPECT_EQ(consumer.accessMisses,
              static_cast<std::uint64_t>(kEpochs));
    EXPECT_EQ(consumer.pageFetchRoundTrips, consumer.accessMisses)
        << "every miss must be exactly one request/reply pair";
    // The producer writes its own homed page: no misses, no fetches.
    EXPECT_EQ(result.perNode[0].pageFetchRoundTrips, 0u);
    EXPECT_EQ(result.total.diffRequestsSent, 0u)
        << "home mode must never run the homeless diff protocol";
}

/** Skewed access: node 1 writes and node 2 reads a page homed at node
 *  0. Past the threshold the home migrates off node 0, and the data
 *  stays correct through and after the move. */
TEST(HomeLrc, MigratesUnderSkewedAccess)
{
    constexpr int kEpochs = 16;
    ClusterConfig cc = homeConfig(4, 4);
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 256, 4, "skew");
        rt.barrier(0);
        for (int e = 0; e < kEpochs; ++e) {
            if (rt.self() == 1) {
                for (int i = 0; i < 256; ++i)
                    a.set(i, e * 10 + i);
            }
            rt.barrier(1 + 2 * e);
            if (rt.self() == 2) {
                for (int i = 0; i < 256; i += 13)
                    ASSERT_EQ(a.get(i), e * 10 + i);
            }
            rt.barrier(2 + 2 * e);
        }
    });

    EXPECT_GE(result.total.homeMigrations, 1u)
        << "the skewed accessor should have pulled the home over";
    // All nodes agree on the final mapping, and it moved off node 0.
    const NodeId final_home = lrcOf(cluster, 0).pageHomeOf(0);
    EXPECT_NE(final_home, 0);
    for (int n = 1; n < 4; ++n)
        EXPECT_EQ(lrcOf(cluster, n).pageHomeOf(0), final_home);
    for (int n = 0; n < 4; ++n)
        EXPECT_EQ(lrcOf(cluster, n).diffStoreSize(), 0u);
}

} // namespace
} // namespace dsm
