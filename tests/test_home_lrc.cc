/**
 * @file
 * Home-based LRC invariants:
 *  - no node ever stores a diff (homes apply flushes in place, clients
 *    fetch full copies), across dozens of epochs;
 *  - an access miss on a remotely homed page costs exactly one
 *    request/reply round trip, counter-asserted;
 *  - a deliberately skewed access pattern migrates the home past the
 *    threshold and stays correct before, during and after the move;
 *  - the sharing-policy layer: migrate-to-last-writer follows an
 *    alternating writer chain, the ping-pong cap pins a pathologically
 *    migrating page, and the deferred-flush policy merges a run of
 *    interval closes into one HomeDiffFlush per home.
 */

#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "core/shared_array.hh"

namespace dsm {
namespace {

ClusterConfig
homeConfig(int nprocs, std::uint32_t migrate_threshold)
{
    ClusterConfig cc;
    cc.nprocs = nprocs;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = 1024;
    cc.runtime = RuntimeConfig::parse("LRC-diff");
    cc.homeBasedLrc = true;
    cc.homeMigrateThreshold = migrate_threshold;
    // Per-node scripted protocol test: roles key off rt.self(), so the
    // scenario only makes sense with one app thread per node (SMP
    // coverage lives in the worker-parametrized app/conformance/smp
    // suites). Pin T=1 so a DSM_THREADS sweep cannot redefine it.
    cc.threadsPerNode = 1;
    return cc;
}

/** White-box handle on a node's live protocol state. Only meaningful
 *  when the workers ran in this address space: under a process-per-
 *  node transport the launcher-side runtimes never execute the app,
 *  so every test that inspects lrcOf() pins cc.transport = "ring"
 *  (otherwise the assertions would pass vacuously on pristine
 *  state). */
LrcRuntime &
lrcOf(Cluster &cluster, NodeId node)
{
    auto *lrc = dynamic_cast<LrcRuntime *>(&cluster.runtime(node));
    EXPECT_NE(lrc, nullptr);
    return *lrc;
}

/** 44 epochs of cross-node producing and consuming: the diff store
 *  stays empty on every node, while the same run in homeless mode
 *  does store diffs. */
TEST(HomeLrc, DiffStoreStaysEmptyAcrossEpochs)
{
    constexpr int kEpochs = 44;
    constexpr int kWords = 1024; // 4 pages of 1024 bytes
    auto run = [&](bool home) {
        ClusterConfig cc = homeConfig(4, 0);
        cc.homeBasedLrc = home;
        cc.transport = "ring"; // white-box lrcOf() inspection below
        auto cluster = std::make_unique<Cluster>(cc);
        cluster->run([&](Runtime &rt) {
            auto a = SharedArray<int>::alloc(rt, kWords, 4, "epochs");
            const int np = rt.nprocs();
            const int self = rt.self();
            const int chunk = kWords / np;
            rt.barrier(0);
            for (int e = 0; e < kEpochs; ++e) {
                // Write my chunk, then read my right neighbour's.
                for (int i = 0; i < chunk; ++i)
                    a.set(self * chunk + i, e * 100 + self + i);
                rt.barrier(1 + 2 * e);
                const int peer = (self + 1) % np;
                for (int i = 0; i < chunk; i += 7)
                    ASSERT_EQ(a.get(peer * chunk + i),
                              e * 100 + peer + i);
                rt.barrier(2 + 2 * e);
            }
        });
        return cluster;
    };

    auto home_cluster = run(true);
    std::size_t homeless_diffs = 0;
    {
        auto homeless_cluster = run(false);
        for (int n = 0; n < 4; ++n)
            homeless_diffs +=
                lrcOf(*homeless_cluster, n).diffStoreSize();
    }
    for (int n = 0; n < 4; ++n) {
        EXPECT_EQ(lrcOf(*home_cluster, n).diffStoreSize(), 0u)
            << "node " << n << " stored diffs in home mode";
    }
    EXPECT_GT(homeless_diffs, 0u)
        << "homeless control run should have stored diffs";
}

/** Every cold miss on a remotely homed page is exactly one
 *  request/reply pair: pageFetchRoundTrips == accessMisses on the
 *  consumer, one per epoch. */
TEST(HomeLrc, OneRoundTripPerColdMiss)
{
    constexpr int kEpochs = 40;
    ClusterConfig cc = homeConfig(2, 0); // migration off
    cc.gcAtBarriers = false; // keep proactive GC fetches out of the count
    cc.transport = "ring";   // white-box lrcOf() inspection below
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        // One page (256 ints x 4 bytes = 1024 = page 0, homed at 0).
        auto a = SharedArray<int>::alloc(rt, 256, 4, "page0");
        rt.barrier(0);
        for (int e = 0; e < kEpochs; ++e) {
            if (rt.self() == 0) {
                for (int i = 0; i < 256; ++i)
                    a.set(i, e * 1000 + i);
            }
            rt.barrier(1 + 2 * e);
            if (rt.self() == 1) {
                ASSERT_EQ(a.get(17), e * 1000 + 17);
                ASSERT_EQ(a.get(255), e * 1000 + 255);
            }
            rt.barrier(2 + 2 * e);
        }
    });

    ASSERT_EQ(lrcOf(cluster, 1).pageHomeOf(0), 0);
    const NodeStats &consumer = result.perNode[1];
    EXPECT_EQ(consumer.accessMisses,
              static_cast<std::uint64_t>(kEpochs));
    EXPECT_EQ(consumer.pageFetchRoundTrips, consumer.accessMisses)
        << "every miss must be exactly one request/reply pair";
    // The producer writes its own homed page: no misses, no fetches.
    EXPECT_EQ(result.perNode[0].pageFetchRoundTrips, 0u);
    EXPECT_EQ(result.total.diffRequestsSent, 0u)
        << "home mode must never run the homeless diff protocol";
}

/** Skewed access: node 1 writes and node 2 reads a page homed at node
 *  0. Past the threshold the home migrates off node 0, and the data
 *  stays correct through and after the move. */
TEST(HomeLrc, MigratesUnderSkewedAccess)
{
    constexpr int kEpochs = 16;
    ClusterConfig cc = homeConfig(4, 4);
    cc.transport = "ring"; // white-box lrcOf() inspection below
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 256, 4, "skew");
        rt.barrier(0);
        for (int e = 0; e < kEpochs; ++e) {
            if (rt.self() == 1) {
                for (int i = 0; i < 256; ++i)
                    a.set(i, e * 10 + i);
            }
            rt.barrier(1 + 2 * e);
            if (rt.self() == 2) {
                for (int i = 0; i < 256; i += 13)
                    ASSERT_EQ(a.get(i), e * 10 + i);
            }
            rt.barrier(2 + 2 * e);
        }
    });

    EXPECT_GE(result.total.homeMigrations, 1u)
        << "the skewed accessor should have pulled the home over";
    // All nodes agree on the final mapping, and it moved off node 0.
    const NodeId final_home = lrcOf(cluster, 0).pageHomeOf(0);
    EXPECT_NE(final_home, 0);
    for (int n = 1; n < 4; ++n)
        EXPECT_EQ(lrcOf(cluster, n).pageHomeOf(0), final_home);
    for (int n = 0; n < 4; ++n)
        EXPECT_EQ(lrcOf(cluster, n).diffStoreSize(), 0u);
}

// ---------------------------------------------------------------------
// Sharing-policy layer.

/** Alternating writers (the migratory pattern): nodes 1 and 2 take
 *  turns rewriting a page homed at node 0. The access-count policy is
 *  off; only the migrate-to-last-writer classifier can move the home,
 *  and it must, while the data stays correct through every move. */
TEST(HomeLrc, LastWriterPolicyFollowsMigratoryWriter)
{
    constexpr int kEpochs = 12;
    ClusterConfig cc = homeConfig(3, 0); // access-count policy off
    cc.homeMigrateLastWriter = 1;
    cc.homeWriterSwitchThreshold = 2;
    cc.homePingPongLimit = 0; // uncapped: pure follow-the-writer
    cc.transport = "ring";    // white-box lrcOf() inspection below
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 256, 4, "mig");
        rt.barrier(0);
        for (int e = 0; e < kEpochs; ++e) {
            const int writer = 1 + e % 2;
            if (rt.self() == writer) {
                for (int i = 0; i < 256; ++i)
                    a.set(i, e * 1000 + i);
            }
            rt.barrier(1 + 2 * e);
            if (rt.self() != writer) {
                for (int i = 0; i < 256; i += 11)
                    ASSERT_EQ(a.get(i), e * 1000 + i);
            }
            rt.barrier(2 + 2 * e);
        }
    });

    EXPECT_GE(result.total.lastWriterMigrations, 1u)
        << "alternating writers must classify the page migratory";
    EXPECT_GE(result.total.homeMigrations,
              result.total.lastWriterMigrations);
    // The final mapping is consistent everywhere.
    const NodeId final_home = lrcOf(cluster, 0).pageHomeOf(0);
    for (int n = 1; n < 3; ++n)
        EXPECT_EQ(lrcOf(cluster, n).pageHomeOf(0), final_home);
}

/** Same alternating pattern with a ping-pong budget of 2: the page
 *  migrates at most twice, further policy firings are suppressed, and
 *  the pinned page still serves every reader correctly. */
TEST(HomeLrc, PingPongCapPinsHome)
{
    constexpr int kEpochs = 14;
    ClusterConfig cc = homeConfig(3, 0);
    cc.homeMigrateLastWriter = 1;
    cc.homeWriterSwitchThreshold = 2;
    cc.homePingPongLimit = 2;
    Cluster cluster(cc);
    RunResult result = cluster.run([&](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 256, 4, "pin");
        rt.barrier(0);
        for (int e = 0; e < kEpochs; ++e) {
            const int writer = 1 + e % 2;
            if (rt.self() == writer) {
                for (int i = 0; i < 256; ++i)
                    a.set(i, e * 1000 + i);
            }
            rt.barrier(1 + 2 * e);
            if (rt.self() != writer) {
                for (int i = 0; i < 256; i += 17)
                    ASSERT_EQ(a.get(i), e * 1000 + i);
            }
            rt.barrier(2 + 2 * e);
        }
    });

    EXPECT_LE(result.total.homeMigrations, 2u)
        << "the ping-pong cap must pin the page after two moves";
    EXPECT_GE(result.total.homeMigrationsSuppressed, 1u)
        << "the suppressed migrations should be counted";
}

/** Deferred-flush merging: node 1 closes four intervals on a remotely
 *  homed page (three via remote acquires of fresh locks, one at the
 *  barrier) with no communication that would force a flush in
 *  between. With DSM_HOME_DEFER the four payloads ride one
 *  HomeDiffFlush; eagerly they are four messages. Both runs must
 *  leave identical bytes at the home. */
TEST(HomeLrc, DeferredFlushesMergePerHome)
{
    RunResult result;
    auto run = [&](bool defer) {
        ClusterConfig cc = homeConfig(2, 0);
        cc.homeFlushDefer = defer ? 1 : 0;
        auto cluster = std::make_unique<Cluster>(cc);
        result = cluster->run([&](Runtime &rt) {
            auto a = SharedArray<int>::alloc(rt, 256, 4, "defer");
            rt.barrier(0);
            if (rt.self() == 1) {
                // Each remote acquire (locks 2, 4, 6 start owned by
                // their manager, node 0) closes the previous
                // interval; with the deferred policy the request
                // carries no records, so the flush payloads pile up
                // per home until the barrier arrival sends them as
                // one message.
                for (int k = 0; k < 4; ++k) {
                    for (int i = k * 64; i < (k + 1) * 64; ++i)
                        a.set(i, 7000 + i);
                    if (k < 3) {
                        rt.acquire(static_cast<LockId>(2 + 2 * k),
                                   AccessMode::Write);
                        rt.release(static_cast<LockId>(2 + 2 * k));
                    }
                }
            }
            rt.barrier(1);
            if (rt.self() == 0) {
                for (int i = 0; i < 256; ++i)
                    ASSERT_EQ(a.get(i), 7000 + i);
            }
            rt.barrier(2);
        });
        std::vector<std::byte> bytes(1024);
        std::memcpy(bytes.data(), cluster->memory(0, 0), bytes.size());
        return bytes;
    };

    const std::vector<std::byte> eager_bytes = run(false);
    const RunResult eager = result;
    const std::vector<std::byte> deferred_bytes = run(true);
    const RunResult deferred = result;

    EXPECT_EQ(deferred_bytes, eager_bytes);
    EXPECT_GE(deferred.total.homeFlushesDeferred, 3u)
        << "three closes should have merged into the pending flush";
    EXPECT_LT(deferred.total.homeFlushesSent,
              eager.total.homeFlushesSent)
        << "merging must reduce flush messages";
    EXPECT_EQ(deferred.total.homeFlushesSent, 1u);
}

} // namespace
} // namespace dsm
