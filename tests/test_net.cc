/**
 * @file
 * Unit tests for the network layer: wire serialization, delivery,
 * loss/retransmission modeling, endpoint RPC and virtual-time
 * causality.
 */

#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "net/endpoint.hh"
#include "net/network.hh"
#include "net/fault_injector.hh"
#include "net/serde.hh"

namespace dsm {
namespace {

TEST(Serde, PodRoundTrip)
{
    WireWriter w;
    w.putU8(0xab);
    w.putU16(0x1234);
    w.putU32(0xdeadbeef);
    w.putU64(0x0123456789abcdefull);
    w.putI64(-42);
    w.putF64(3.25);
    w.putString("hello");
    w.putBlob({std::byte{1}, std::byte{2}});

    auto bytes = w.take();
    WireReader r(bytes);
    EXPECT_EQ(r.getU8(), 0xab);
    EXPECT_EQ(r.getU16(), 0x1234);
    EXPECT_EQ(r.getU32(), 0xdeadbeefu);
    EXPECT_EQ(r.getU64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.getI64(), -42);
    EXPECT_EQ(r.getF64(), 3.25);
    EXPECT_EQ(r.getString(), "hello");
    auto blob = r.getBlob();
    ASSERT_EQ(blob.size(), 2u);
    EXPECT_EQ(blob[1], std::byte{2});
    EXPECT_TRUE(r.done());
}

TEST(Network, DeliversInSendOrder)
{
    CostModel cm;
    Network net(2, cm);
    NodeStats stats;
    for (int i = 0; i < 10; ++i) {
        Message m;
        m.src = 0;
        m.dst = 1;
        m.type = MsgType::LockRequest;
        m.replyToken = i;
        net.send(std::move(m), stats);
    }
    for (int i = 0; i < 10; ++i) {
        Message out;
        ASSERT_TRUE(net.recv(1, out));
        EXPECT_EQ(out.replyToken, static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(stats.messagesSent, 10u);
    EXPECT_EQ(net.totalMessages(), 10u);
}

TEST(Network, ArrivalTimeUsesCostModel)
{
    CostModel cm;
    cm.msgFixedNs = 1000;
    cm.perByteNs = 2;
    Network net(2, cm);
    NodeStats stats;
    Message m;
    m.src = 0;
    m.dst = 1;
    m.type = MsgType::LockRequest;
    m.vtSendNs = 500;
    m.payload.resize(10);
    const std::size_t wire = m.wireSize();
    net.send(std::move(m), stats);
    Message out;
    ASSERT_TRUE(net.recv(1, out));
    EXPECT_EQ(out.vtArriveNs, 500 + 1000 + 2 * wire);
    EXPECT_EQ(stats.bytesSent, wire);
}

TEST(Network, LossChargesTimeoutAndCountsRetransmissions)
{
    CostModel cm;
    cm.msgFixedNs = 100;
    cm.perByteNs = 0;
    cm.retransTimeoutNs = 50'000;
    // Drop the first attempt of every message.
    Network net(2, cm, [](NodeId, NodeId, std::uint64_t, int attempt) {
        return attempt == 0;
    });
    NodeStats stats;
    Message m;
    m.src = 0;
    m.dst = 1;
    m.type = MsgType::LockRequest;
    m.vtSendNs = 0;
    net.send(std::move(m), stats);
    Message out;
    ASSERT_TRUE(net.recv(1, out));
    EXPECT_EQ(out.vtArriveNs, 50'000u + 100u);
    EXPECT_EQ(stats.retransmissions, 1u);
    EXPECT_EQ(stats.messagesSent, 2u); // original + retransmission
}

TEST(Network, DropEveryNthPlan)
{
    auto plan = dropEveryNth(3);
    int drops = 0;
    for (std::uint64_t seq = 1; seq <= 9; ++seq) {
        if (plan(0, 1, seq, 0))
            ++drops;
        EXPECT_FALSE(plan(0, 1, seq, 1)); // retransmissions succeed
    }
    EXPECT_EQ(drops, 3);
}

TEST(Network, ShutdownUnblocksReceivers)
{
    CostModel cm;
    Network net(1, cm);
    std::thread t([&] {
        Message out;
        EXPECT_FALSE(net.recv(0, out));
    });
    net.shutdown();
    t.join();
}

class EndpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        net = std::make_unique<Network>(2, cm);
        for (int i = 0; i < 2; ++i) {
            eps.push_back(std::make_unique<Endpoint>(*net, i, clocks[i],
                                                     stats[i]));
        }
    }

    void
    TearDown() override
    {
        for (auto &ep : eps)
            ep->stop();
        net->shutdown();
    }

    CostModel cm;
    std::unique_ptr<Network> net;
    VirtualClock clocks[2];
    NodeStats stats[2];
    std::vector<std::unique_ptr<Endpoint>> eps;
};

TEST_F(EndpointTest, RpcRoundTripAdvancesClock)
{
    // Node 1 echoes requests back with a marker byte.
    eps[1]->setHandler([&](Message &msg) {
        WireWriter w;
        w.putU32(1234);
        eps[1]->reply(msg.src, MsgType::LockGrant, w.take(),
                      msg.replyToken);
    });
    eps[0]->setHandler([](Message &) { FAIL(); });
    eps[0]->start();
    eps[1]->start();

    Message reply = eps[0]->call(1, MsgType::LockRequest, {});
    WireReader r(reply.payload);
    EXPECT_EQ(r.getU32(), 1234u);
    EXPECT_TRUE(reply.isReply);
    // The caller's clock must be at least two one-way transits.
    EXPECT_GE(clocks[0].now(), 2 * cm.msgFixedNs);
    // Causality: replier observed the request before replying.
    EXPECT_GE(clocks[1].now(), cm.msgFixedNs);
}

TEST_F(EndpointTest, FireAndForgetReachesHandler)
{
    std::atomic<int> got{0};
    eps[1]->setHandler([&](Message &msg) {
        got.fetch_add(static_cast<int>(msg.payload.size()));
    });
    eps[0]->setHandler([](Message &) {});
    eps[0]->start();
    eps[1]->start();

    eps[0]->send(1, MsgType::LockForward, std::vector<std::byte>(7));
    while (got.load() == 0)
        std::this_thread::yield();
    EXPECT_EQ(got.load(), 7);
}

// ---------------------------------------------------------------------
// MPSC reply bypass: a sender's thread hands a reply straight to the
// parked caller's futex slot, skipping the receiver's inbox and
// service thread.

TEST_F(EndpointTest, ReplyBypassSkipsInboxAndAccountsAtCaller)
{
    eps[1]->setHandler([&](Message &msg) {
        WireWriter w;
        w.putU32(77);
        eps[1]->reply(msg.src, MsgType::LockGrant, w.take(),
                      msg.replyToken);
    });
    eps[0]->setHandler([](Message &) { FAIL(); });
    eps[0]->start();
    eps[1]->start();

    Message reply = eps[0]->call(1, MsgType::LockRequest, {});
    // Bypassed replies never pass the inbox, so they carry no pair
    // sequence stamp (the ring assigns it at push) — the stamp's
    // absence is the observable proof the fast path ran.
    EXPECT_EQ(reply.pairSeq, 0u);
    WireReader r(reply.payload);
    EXPECT_EQ(r.getU32(), 77u);
    // The receiver-side wire accounting moved to the woken caller.
    EXPECT_EQ(stats[0].messagesReceived, 1u);
    EXPECT_GT(stats[0].bytesReceived, 0u);
}

TEST_F(EndpointTest, BypassedDuplicateReply)
{
    // Seeded regression: with faults armed the bypass stays engaged,
    // so a retransmitted duplicate of a reply that already landed via
    // the futex slot must lose the race exactly once. The responder
    // sends the same reply twice; the first fills the slot, the second
    // finds ready != 0 (or no waiter at all) and drains through the
    // service thread's duplicate handling without double-applying.
    eps[1]->setHandler([&](Message &msg) {
        WireWriter w;
        w.putU32(0x51);
        eps[1]->reply(msg.src, MsgType::LockGrant, w.take(),
                      msg.replyToken);
        // The recorded-reply resend a dedup hit would emit.
        WireWriter w2;
        w2.putU32(0x51);
        eps[1]->reply(msg.src, MsgType::LockGrant, w2.take(),
                      msg.replyToken);
    });
    eps[0]->setHandler([](Message &) {});
    eps[0]->setFaultsEnabled(true);
    eps[1]->setFaultsEnabled(true);
    eps[0]->start();
    eps[1]->start();

    constexpr int kRounds = 200;
    for (int i = 0; i < kRounds; ++i) {
        Message reply = eps[0]->call(1, MsgType::LockRequest, {});
        WireReader r(reply.payload);
        EXPECT_EQ(r.getU32(), 0x51u) << "round " << i;
    }
    // Exactly one copy per round was applied: every duplicate either
    // bounced off the occupied slot (a counted refusal) or arrived
    // after the token was erased and fell into the faults-on drop.
    EXPECT_EQ(stats[1].repliesBypassed + stats[1].replyBypassRefusals,
              2u * kRounds);
    EXPECT_GE(stats[1].repliesBypassed, 1u);
}

TEST_F(EndpointTest, BypassedReplyNeverOvertakesHomeMigrateInstall)
{
    // The ordering hazard the per-pair guard exists for: the responder
    // first fire-and-forgets a HomeMigrate install, *then* replies.
    // A bypassed reply that overtook the install would let the caller
    // touch a page whose home it believes already moved. The guard
    // refuses the bypass until the install's handler has fully run, so
    // whenever call() returns — via slot or inbox — the install for
    // that round is complete.
    std::atomic<int> migrates{0};
    eps[1]->setHandler([&](Message &msg) {
        eps[1]->send(msg.src, MsgType::HomeMigrate,
                     std::vector<std::byte>(3));
        eps[1]->reply(msg.src, MsgType::HomePageReply, {},
                      msg.replyToken);
    });
    eps[0]->setHandler([&](Message &msg) {
        ASSERT_EQ(msg.type, MsgType::HomeMigrate);
        // Widen the race window: an unguarded bypass would return
        // from call() while this handler still sleeps.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        migrates.fetch_add(1);
    });
    eps[0]->start();
    eps[1]->start();

    constexpr int kRounds = 300;
    for (int i = 0; i < kRounds; ++i) {
        Message reply = eps[0]->call(1, MsgType::HomePageRequest, {});
        EXPECT_EQ(reply.type, MsgType::HomePageReply);
        // The install choreographed before this reply is visible
        // before the caller resumes, on both delivery paths.
        EXPECT_EQ(migrates.load(), i + 1) << "round " << i;
    }
    // Both paths must actually get exercised for the test to bite:
    // with the sleep in the install handler most replies are refused
    // into the inbox, but some rounds race past it and bypass.
    EXPECT_EQ(stats[1].repliesBypassed + stats[1].replyBypassRefusals,
              static_cast<std::uint64_t>(kRounds));
}

TEST_F(EndpointTest, BypassedLockGrantNeverOvertakesLockForward)
{
    // Same invariant, lock-protocol shape: a manager forwards an
    // in-flight request to the new owner (fire-and-forget LockForward)
    // and then grants a waiting caller. The grant must not wake the
    // caller before the forward's handler ran — the caller could
    // release into a chain the forward has not yet established.
    std::atomic<int> forwards{0};
    eps[1]->setHandler([&](Message &msg) {
        eps[1]->send(msg.src, MsgType::LockForward,
                     std::vector<std::byte>(8));
        eps[1]->reply(msg.src, MsgType::LockGrant, {}, msg.replyToken);
    });
    eps[0]->setHandler([&](Message &msg) {
        ASSERT_EQ(msg.type, MsgType::LockForward);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        forwards.fetch_add(1);
    });
    eps[0]->start();
    eps[1]->start();

    constexpr int kRounds = 300;
    for (int i = 0; i < kRounds; ++i) {
        Message reply = eps[0]->call(1, MsgType::LockRequest, {});
        EXPECT_EQ(reply.type, MsgType::LockGrant);
        EXPECT_EQ(forwards.load(), i + 1) << "round " << i;
    }
}

TEST(TinyRing, MpscStressWithBypassArmed)
{
    // A deliberately tiny inbox ring (8 slots) forces constant
    // producer backpressure while the bypass is armed: replies skip
    // the ring, fire-and-forget chatter fights for the 8 slots, and
    // the per-pair guard flips between zero and nonzero on every
    // message. Multiple caller threads make the pending map and the
    // guard counters genuinely concurrent.
    CostModel cm;
    Network net(2, cm, nullptr, InboxPolicy::LockFreeRing, 8);
    VirtualClock clocks[2];
    NodeStats stats[2];
    Endpoint ep0(net, 0, clocks[0], stats[0]);
    Endpoint ep1(net, 1, clocks[1], stats[1]);

    std::atomic<int> chatter{0};
    ep1.setHandler([&](Message &msg) {
        // Echo the payload and shower the caller's tiny ring with
        // non-reply traffic the bypassed reply must not overtake.
        ep1.send(msg.src, MsgType::HomeDiffFlush,
                 std::vector<std::byte>(5));
        ep1.reply(msg.src, MsgType::LockGrant, msg.payload,
                  msg.replyToken);
    });
    ep0.setHandler([&](Message &msg) {
        ASSERT_EQ(msg.type, MsgType::HomeDiffFlush);
        chatter.fetch_add(1);
    });
    ep0.start();
    ep1.start();

    constexpr int kThreads = 4;
    constexpr int kCallsPerThread = 250;
    std::vector<std::thread> callers;
    for (int t = 0; t < kThreads; ++t) {
        callers.emplace_back([&, t] {
            for (int i = 0; i < kCallsPerThread; ++i) {
                WireWriter w;
                w.putU32(static_cast<std::uint32_t>(t * 1000 + i));
                Message reply =
                    ep0.call(1, MsgType::LockRequest, w.take());
                WireReader r(reply.payload);
                ASSERT_EQ(r.getU32(),
                          static_cast<std::uint32_t>(t * 1000 + i));
            }
        });
    }
    for (auto &th : callers)
        th.join();
    while (chatter.load() < kThreads * kCallsPerThread)
        std::this_thread::yield();
    EXPECT_EQ(chatter.load(), kThreads * kCallsPerThread);

    ep0.stop();
    ep1.stop();
    net.shutdown();
}

// ---------------------------------------------------------------------
// Send-side coalescing: small same-destination one-way messages ride
// one framed ring slot, flushed at request boundaries.

TEST_F(EndpointTest, CoalescedFrameDeliversAllBeforeRequest)
{
    eps[0]->setCoalescing(true);
    std::vector<MsgType> order;
    std::mutex orderMu;
    eps[1]->setHandler([&](Message &msg) {
        {
            std::lock_guard<std::mutex> g(orderMu);
            order.push_back(msg.type);
        }
        if (msg.replyToken != 0)
            eps[1]->reply(msg.src, MsgType::HomePageReply, {},
                          msg.replyToken);
    });
    eps[0]->setHandler([](Message &) {});
    eps[0]->start();
    eps[1]->start();

    // Three coalescable one-way sends buffer locally...
    for (int i = 0; i < 3; ++i)
        eps[0]->send(1, MsgType::HomeDiffFlush,
                     std::vector<std::byte>(4));
    EXPECT_EQ(stats[0].coalesceFramesSent, 0u);
    // ...and the request boundary flushes them ahead of the call.
    Message reply = eps[0]->call(1, MsgType::HomePageRequest, {});
    EXPECT_EQ(reply.type, MsgType::HomePageReply);

    std::lock_guard<std::mutex> g(orderMu);
    ASSERT_EQ(order.size(), 4u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(order[i], MsgType::HomeDiffFlush);
    EXPECT_EQ(order[3], MsgType::HomePageRequest);
    EXPECT_EQ(stats[0].coalesceFramesSent, 1u);
    EXPECT_EQ(stats[0].messagesCoalesced, 3u);
}

TEST_F(EndpointTest, SingleBufferedMessageShipsUnframed)
{
    eps[0]->setCoalescing(true);
    std::atomic<int> flushes{0};
    eps[1]->setHandler([&](Message &msg) {
        if (msg.type == MsgType::HomeDiffFlush)
            flushes.fetch_add(1);
        if (msg.replyToken != 0)
            eps[1]->reply(msg.src, MsgType::HomePageReply, {},
                          msg.replyToken);
    });
    eps[0]->setHandler([](Message &) {});
    eps[0]->start();
    eps[1]->start();

    eps[0]->send(1, MsgType::HomeDiffFlush, std::vector<std::byte>(4));
    Message reply = eps[0]->call(1, MsgType::HomePageRequest, {});
    EXPECT_EQ(reply.type, MsgType::HomePageReply);
    EXPECT_EQ(flushes.load(), 1);
    // A buffer of one skips the frame: no framing overhead, and no
    // degenerate single-entry CoalescedFrame on the wire.
    EXPECT_EQ(stats[0].coalesceFramesSent, 0u);
    EXPECT_EQ(stats[0].messagesCoalesced, 0u);
}

// ---------------------------------------------------------------------
// The dedup window's eviction edge. An in-window duplicate of an
// already-answered request resends the recorded reply without
// re-running the handler; once kDedupWindow newer requests from the
// same peer have evicted the entry, a very late duplicate re-executes
// — the window bounds memory, and handlers behind it must therefore
// be idempotent (ours reply with recomputable state). The test pins
// both halves of that contract.
TEST_F(EndpointTest, DedupWindowEvictionReexecutesLateDuplicate)
{
    std::mutex mu;
    std::map<std::uint64_t, int> execs; // token -> handler runs
    eps[1]->setHandler([&](Message &msg) {
        {
            std::lock_guard<std::mutex> g(mu);
            ++execs[msg.replyToken];
        }
        eps[1]->reply(msg.src, MsgType::BarrierDepart, msg.payload,
                      msg.replyToken);
    });
    eps[0]->setHandler([](Message &) {});
    eps[0]->setFaultsEnabled(true);
    eps[1]->setFaultsEnabled(true);
    eps[0]->start();
    eps[1]->start();

    std::uint64_t t0 = 0;
    {
        WireWriter w;
        w.putU32(0xa1);
        Message reply = eps[0]->call(1, MsgType::BarrierArrive, w.take());
        t0 = reply.replyToken;
        ASSERT_NE(t0, 0u);
    }

    const auto duplicate = [&] {
        Message dup;
        dup.src = 0;
        dup.dst = 1;
        dup.type = MsgType::BarrierArrive;
        dup.replyToken = t0;
        // A real retransmission would carry a late attempt; immune so
        // an armed injector could never eat the test's probe.
        dup.attempt = FaultInjector::kAttemptImmunity;
        dup.vtSendNs = clocks[0].now();
        net->send(std::move(dup), stats[0]);
        // Fence: per-pair FIFO delivery means this call returns only
        // after the service thread has consumed the duplicate.
        (void)eps[0]->call(1, MsgType::BarrierArrive, {});
    };

    duplicate();
    {
        std::lock_guard<std::mutex> g(mu);
        EXPECT_EQ(execs[t0], 1)
            << "in-window duplicate re-ran the handler instead of "
               "resending the recorded reply";
    }

    // Push t0 out of the per-src window (the probe calls above also
    // count towards it), then replay the duplicate: the entry is gone
    // and the handler legitimately runs again. Its reply lands at an
    // endpoint with no matching waiter; the armed fault path drops it
    // as a duplicate of an already-taken reply.
    for (std::size_t i = 0; i < 2 * Endpoint::kDedupWindow; ++i)
        (void)eps[0]->call(1, MsgType::BarrierArrive, {});
    duplicate();
    {
        std::lock_guard<std::mutex> g(mu);
        EXPECT_EQ(execs[t0], 2)
            << "evicted duplicate should re-execute (bounded window)";
    }
}

TEST(VirtualClock, AdvanceSemantics)
{
    VirtualClock c;
    EXPECT_EQ(c.now(), 0u);
    EXPECT_EQ(c.add(10), 10u);
    EXPECT_EQ(c.advanceTo(5), 10u);  // no going back
    EXPECT_EQ(c.advanceTo(25), 25u);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
}

} // namespace
} // namespace dsm
