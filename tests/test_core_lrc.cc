/**
 * @file
 * Protocol tests for the LRC runtime: lazy invalidation at acquires
 * and barriers, access-miss fetches (diffs and timestamps), multiple
 * concurrent writers per page, interval/vector bookkeeping.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/cluster.hh"
#include "core/shared_array.hh"

namespace dsm {
namespace {

ClusterConfig
lrcConfig(const std::string &name, int nprocs = 4,
          std::size_t page_size = 1024)
{
    ClusterConfig cc;
    cc.nprocs = nprocs;
    cc.arenaBytes = 1u << 20;
    cc.pageSize = page_size;
    cc.runtime = RuntimeConfig::parse(name);
    // Per-node scripted protocol test: roles key off rt.self(), so the
    // scenario only makes sense with one app thread per node (SMP
    // coverage lives in the worker-parametrized app/conformance/smp
    // suites). Pin T=1 so a DSM_THREADS sweep cannot redefine it.
    cc.threadsPerNode = 1;
    return cc;
}

class LrcConfigTest : public ::testing::TestWithParam<std::string>
{};

/** Lock acquire makes *all* shared data consistent (no binding). */
TEST_P(LrcConfigTest, AcquireCoversAllSharedData)
{
    Cluster cluster(lrcConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 64);
        auto b = SharedArray<int>::alloc(rt, 64);
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Write);
            a.set(3, 33);
            b.set(5, 55);
            rt.release(1);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(1, AccessMode::Write);
            // Both arrays are consistent after one acquire.
            ASSERT_EQ(a.get(3), 33);
            ASSERT_EQ(b.get(5), 55);
            rt.release(1);
        }
        rt.barrier(2);
    });
}

/** Causal chain through different locks: A -(L1)-> B -(L2)-> C must
 *  deliver A's writes to C. */
TEST_P(LrcConfigTest, CausalChainAcrossLocks)
{
    Cluster cluster(lrcConfig(GetParam(), 3));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 16);
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.acquire(1, AccessMode::Write);
            a.set(0, 100);
            rt.release(1);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            rt.acquire(1, AccessMode::Write);
            ASSERT_EQ(a.get(0), 100);
            a.set(1, a.get(0) + 1);
            rt.release(1);
            rt.acquire(2, AccessMode::Write);
            rt.release(2);
        }
        rt.barrier(2);
        if (rt.self() == 2) {
            rt.acquire(2, AccessMode::Write);
            ASSERT_EQ(a.get(0), 100);
            ASSERT_EQ(a.get(1), 101);
            rt.release(2);
        }
        rt.barrier(3);
    });
}

/** The multiple-writer protocol: two nodes write disjoint halves of
 *  the same page concurrently; both sets of writes survive the merge
 *  (no ping-pong, no lost updates). */
TEST_P(LrcConfigTest, MultiWriterPageMerges)
{
    Cluster cluster(lrcConfig(GetParam(), 2, 1024));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 256); // exactly one page
        rt.barrier(0);
        const int self = rt.self();
        // Concurrent writers, disjoint words, same page.
        for (int i = 0; i < 128; ++i)
            a.set(self * 128 + i, self * 1000 + i);
        rt.barrier(1);
        for (int i = 0; i < 128; ++i) {
            ASSERT_EQ(a.get(i), i);
            ASSERT_EQ(a.get(128 + i), 1000 + i);
        }
        rt.barrier(2);
    });
}

/** Barrier distributes write notices globally. */
TEST_P(LrcConfigTest, BarrierPropagatesToAll)
{
    Cluster cluster(lrcConfig(GetParam(), 4));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 64);
        rt.barrier(0);
        if (rt.self() == 2)
            a.set(7, 77);
        rt.barrier(1);
        ASSERT_EQ(a.get(7), 77);
        rt.barrier(2);
    });
}

/** Repeated producer/consumer rounds: intervals accumulate and the
 *  consumer always sees the newest value. */
TEST_P(LrcConfigTest, ProducerConsumerRounds)
{
    Cluster cluster(lrcConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 8);
        rt.barrier(0);
        for (int round = 1; round <= 5; ++round) {
            if (rt.self() == 0)
                a.set(0, round);
            rt.barrier(2 * round - 1);
            ASSERT_EQ(a.get(0), round);
            rt.barrier(2 * round);
        }
    });
}

/** Migratory data under locks (the IS bucket pattern). */
TEST_P(LrcConfigTest, MigratoryCounterRing)
{
    Cluster cluster(lrcConfig(GetParam(), 4));
    RunResult result = cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 64);
        rt.barrier(0);
        for (int round = 0; round < 8; ++round) {
            rt.acquire(5, AccessMode::Write);
            // Each node increments every word once per turn; the lock
            // serializes, the protocol must deliver the predecessor's
            // writes.
            if (round % rt.nprocs() == static_cast<unsigned>(rt.self())
                % rt.nprocs()) {
                for (int i = 0; i < 64; ++i)
                    a.set(i, a.get(i) + 1);
            }
            rt.release(5);
            rt.barrier(1 + round);
        }
        for (int i = 0; i < 64; ++i)
            ASSERT_EQ(a.get(i), 8);
        rt.barrier(100);
    });
    EXPECT_GT(result.total.pagesInvalidated, 0u);
    EXPECT_GT(result.total.accessMisses, 0u);
}

/** Stale pages are only refreshed on access (laziness): acquiring an
 *  unrelated lock does not fetch data, the later read does. */
TEST_P(LrcConfigTest, FetchIsLazy)
{
    Cluster cluster(lrcConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 64);
        rt.barrier(0);
        if (rt.self() == 0) {
            for (int i = 0; i < 64; ++i)
                a.set(i, 9);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            const auto misses_before = rt.stats().accessMisses;
            rt.acquire(3, AccessMode::Write);
            rt.release(3);
            // No data was touched: no access misses yet.
            EXPECT_EQ(rt.stats().accessMisses, misses_before);
            ASSERT_EQ(a.get(0), 9); // now the miss happens
            EXPECT_GT(rt.stats().accessMisses, misses_before);
        }
        rt.barrier(2);
    });
}

/** Sub-word stores are trapped at word granularity. */
TEST_P(LrcConfigTest, SubWordStores)
{
    Cluster cluster(lrcConfig(GetParam(), 2));
    cluster.run([](Runtime &rt) {
        GlobalAddr base = rt.sharedAlloc(64, 8, 4, "bytes");
        rt.barrier(0);
        if (rt.self() == 0) {
            rt.write<std::uint8_t>(base + 13, 0x5a);
            rt.write<std::uint16_t>(base + 30, 0xbeef);
        }
        rt.barrier(1);
        if (rt.self() == 1) {
            ASSERT_EQ(rt.read<std::uint8_t>(base + 13), 0x5a);
            ASSERT_EQ(rt.read<std::uint16_t>(base + 30), 0xbeef);
        }
        rt.barrier(2);
    });
}

INSTANTIATE_TEST_SUITE_P(Configs, LrcConfigTest,
                         ::testing::Values("LRC-ci", "LRC-time",
                                           "LRC-diff"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

TEST(LrcRuntimeMisc, BindLockIsEcOnly)
{
    ClusterConfig cc = lrcConfig("LRC-diff", 1);
    Cluster cluster(cc);
    EXPECT_DEATH(
        {
            cluster.run([](Runtime &rt) {
                GlobalAddr a = rt.sharedAlloc(16);
                rt.bindLock(1, {{a, 16}});
            });
        },
        "EC-only");
}

TEST(LrcRuntimeMisc, StatsReflectMechanisms)
{
    auto run = [](const std::string &name) {
        Cluster cluster(lrcConfig(name, 2));
        return cluster.run([](Runtime &rt) {
            auto arr = SharedArray<int>::alloc(rt, 64);
            rt.barrier(0);
            if (rt.self() == 0) {
                for (int i = 0; i < 64; ++i)
                    arr.set(i, i);
            }
            rt.barrier(1);
            if (rt.self() == 1)
                ASSERT_EQ(arr.get(10), 10);
            rt.barrier(2);
        });
    };
    RunResult ci = run("LRC-ci");
    EXPECT_GT(ci.total.dirtyStores, 0u);
    EXPECT_GT(ci.total.tsRunsSent, 0u);
    EXPECT_EQ(ci.total.twinsCreated, 0u);

    RunResult time = run("LRC-time");
    EXPECT_GT(time.total.twinsCreated, 0u);
    EXPECT_GT(time.total.tsRunsSent, 0u);
    EXPECT_EQ(time.total.diffsCreated, 0u);

    RunResult diff = run("LRC-diff");
    EXPECT_GT(diff.total.twinsCreated, 0u);
    EXPECT_GT(diff.total.diffsCreated, 0u);
    EXPECT_GT(diff.total.writeNoticesSent, 0u);
}

/**
 * Write-notice piggybacking: an access-miss reply that carries data
 * (and records) for intervals the requester has not yet heard of must
 * prevent the later arrival of those write notices from invalidating
 * the page again.
 *
 * Choreography (4 nodes, one shared page; phases sequenced with a
 * plain process atomic so no extra DSM synchronization leaks records):
 *   1. C writes word 8 under L2            -> interval (C,1)
 *   2. B writes word 4 under L1            -> interval (B,1)
 *   3. D acquires L1 from B                -> D knows (B,1) only
 *   4. B acquires L2 from C, reads word 8  -> B's copy + store hold
 *      (C,1), B's log holds its record
 *   5. A acquires L1 from D (learns (B,1) but NOT (C,1)), reads
 *      word 4 -> fetches from B, whose reply carries (C,1)'s data and
 *      piggybacks its record
 *   6. A acquires L2 from B: the (C,1) notice arrives, finds the copy
 *      already covering it, and the page stays valid — word 8 is
 *      readable with no second miss.
 */
RunResult
runNoticeChoreography(const std::string &config, bool piggyback,
                      std::uint64_t *a_misses)
{
    ClusterConfig cc = lrcConfig(config, 4);
    cc.piggybackWriteNotices = piggyback;
    // The choreography below sequences nodes through captured host
    // atomics and reports misses through a captured pointer — both
    // require one address space, so this test stays on the in-process
    // transport regardless of DSM_TRANSPORT.
    cc.transport = "ring";
    Cluster cluster(cc);
    std::atomic<int> phase{0};
    auto reach = [&phase](int p) { phase.store(p); };
    auto await = [&phase](int p) {
        while (phase.load() < p)
            std::this_thread::yield();
    };

    RunResult result = cluster.run([&](Runtime &rt) {
        auto arr = SharedArray<int>::alloc(rt, 64);
        rt.barrier(0);
        switch (rt.self()) {
          case 2: // C
            rt.acquire(2, AccessMode::Write);
            arr.set(8, 42);
            rt.release(2);
            reach(1);
            break;
          case 1: // B
            await(1);
            rt.acquire(1, AccessMode::Write);
            arr.set(4, 7);
            rt.release(1);
            reach(2);
            await(3);
            rt.acquire(2, AccessMode::Write);
            EXPECT_EQ(arr.get(8), 42);
            rt.release(2);
            reach(4);
            break;
          case 3: // D
            await(2);
            rt.acquire(1, AccessMode::Write);
            rt.release(1);
            reach(3);
            break;
          case 0: { // A
            await(4);
            rt.acquire(1, AccessMode::Write);
            EXPECT_EQ(arr.get(4), 7);
            rt.release(1);
            const std::uint64_t misses_before = rt.stats().accessMisses;
            EXPECT_EQ(misses_before, 1u);
            rt.acquire(2, AccessMode::Write);
            EXPECT_EQ(arr.get(8), 42);
            rt.release(2);
            if (a_misses)
                *a_misses = rt.stats().accessMisses;
            reach(5);
            break;
          }
        }
        await(5);
    });
    return result;
}

TEST(LrcNoticePiggyback, DiffReplyOutrunsNotice)
{
    std::uint64_t a_misses = 0;
    RunResult r = runNoticeChoreography("LRC-diff", true, &a_misses);
    // The diff reply carried (C,1)'s data and record: the later
    // notice found the copy current and the page valid.
    EXPECT_EQ(a_misses, 1u);
    EXPECT_GE(r.perNode[0].reinvalidationsAvoided, 1u);
    EXPECT_GE(r.perNode[1].noticesPiggybacked, 1u);
}

TEST(LrcNoticePiggyback, TimestampCapLiftedVsSeed)
{
    // LRC-time is where the seed protocol genuinely re-invalidates:
    // without piggybacked records the responder must cap transmitted
    // stamps at the requester's vector, so the (C,1) words are held
    // back and the later notice forces a second miss on the same page.
    std::uint64_t misses_on = 0;
    std::uint64_t misses_off = 0;
    RunResult on = runNoticeChoreography("LRC-time", true, &misses_on);
    RunResult off =
        runNoticeChoreography("LRC-time", false, &misses_off);
    EXPECT_EQ(misses_on, 1u);
    EXPECT_EQ(misses_off, 2u);
    EXPECT_GE(on.perNode[0].reinvalidationsAvoided, 1u);
    EXPECT_EQ(off.perNode[0].reinvalidationsAvoided, 0u);
    EXPECT_GT(off.perNode[0].pagesInvalidated,
              on.perNode[0].pagesInvalidated);
}

// ---------------------------------------------------------------------
// The writerMask first-contact regression (adaptive gap coalescing).
//
// Choreography (3 nodes, homeless LRC-diff, gap coalescing on): node A
// inflates its vector time with remote acquires of C-managed locks
// (each request closes the previous interval), writes words 0 and 4 of
// page p under its own lock L1, and still believes it is p's single
// writer — nothing has told it otherwise. Node B concurrently writes
// word 1 of p under its own lock L2 (both acquires are local: no
// messages, no record exchange), then requests L1. Pre-fix, A cuts its
// grant-side diff with the single-writer gap coalescing still engaged:
// the [0..4] run bridges word 1 with A's stale local zero. Node C then
// collects both records (L2 then L1) and reads p — diffs apply in
// vtSum order, so A's inflated diff lands after B's, and the bridged
// stale word silently clobbers B's 42. The fix piggybacks B's written
// pages on its lock *request*, widening A's writerMask before the
// grant-side close, which forces A's diff word-exact.
TEST(LrcWriterMask, LockRequestAnnouncementPreventsStaleCoalesce)
{
    ClusterConfig cc = lrcConfig("LRC-diff", 3);
    cc.diffGapWords = 8; // bridge runs up to 8 words apart
    Cluster cluster(cc);
    cluster.run([](Runtime &rt) {
        // 4 pages of ints: page 0 is the contended page p, pages 1-3
        // absorb A's vector-time inflation writes.
        auto a = SharedArray<int>::alloc(rt, 1024, 4, "wmask");
        const int self = rt.self();
        rt.barrier(0);
        // Lock managers (lock % 3): L1=3 -> A, L2=4 -> B, the
        // inflation locks 5/8/11 -> C.
        if (self == 0) {
            // Inflate vt[A] past B's: every remote request closes the
            // previous interval (the grants from C close only empty
            // intervals, so vt[C] stays zero).
            for (LockId l : {5, 8, 11}) {
                rt.acquire(l, AccessMode::Write);
                a.set(256 * (l == 5 ? 1 : l == 8 ? 2 : 3), 7);
                rt.release(l);
            }
            rt.acquire(3, AccessMode::Write); // local: no close
            a.set(0, 1);
            a.set(4, 2);
            rt.release(3);
            // Idle past B's L1 request: the barrier arrival below
            // would close the open {q3, p} interval early (with no
            // announcement in sight). The grant-side close must
            // happen on our service thread when B's request lands.
            std::this_thread::sleep_for(std::chrono::milliseconds(600));
        } else if (self == 1) {
            // Real-time ordering only (no causal edge — that would
            // leak A's records here or B's record to A early): A must
            // hold L1 before our request arrives so the grant-side
            // close covers A's writes to p.
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            rt.acquire(4, AccessMode::Write); // local: no messages
            a.set(1, 42);
            rt.release(4);
            rt.acquire(3, AccessMode::Write); // closes {p}, vtSum 1
            rt.release(3);
        } else {
            // C joins last, collects both records through the lock
            // chain, and reads the contested word.
            std::this_thread::sleep_for(std::chrono::milliseconds(900));
            rt.acquire(4, AccessMode::Write); // B's record: p @ vtSum 1
            rt.release(4);
            rt.acquire(3, AccessMode::Write); // A's record: p @ vtSum 3
            ASSERT_EQ(a.get(1), 42)
                << "A's gap-coalesced diff bridged word 1 with its "
                   "stale zero and clobbered B's concurrent write";
            ASSERT_EQ(a.get(0), 1);
            ASSERT_EQ(a.get(4), 2);
            rt.release(3);
        }
        rt.barrier(1);
    });
}

// ---------------------------------------------------------------------
// The barrier half of the announcement channel, driven by the
// declareWriteIntent API. B never sends A a lock request (the PR
// above's channel), and its write to word 1 happens only *after* A's
// epoch has started — so the only way A can learn that page p is
// multi-writer before cutting its grant-side diff is B's declared
// intent riding the barrier: arrival carries B's intended pages, the
// barrier manager folds every arrival's set into the departures, and
// A's applyDepart widens its writerMask one epoch ahead of the write
// itself. Without that edge A's [0..4] diff run would bridge word 1
// with its stale zero and, applying after B's lower-vtSum diff at C,
// clobber B's 42.
TEST(LrcWriterMask, DeclaredIntentRidesBarrierChannel)
{
    ClusterConfig cc = lrcConfig("LRC-diff", 3);
    cc.diffGapWords = 8;
    Cluster cluster(cc);
    cluster.run([](Runtime &rt) {
        auto a = SharedArray<int>::alloc(rt, 1024, 4, "intent");
        const int self = rt.self();
        if (self == 1) {
            // Epoch 1: intent only — no store, so barrier 1 spreads
            // no write notice for p, only the announcement. A's copy
            // of p stays valid (and stale at word 1).
            rt.declareWriteIntent(a.addr(1), sizeof(int));
        }
        rt.barrier(0);
        // Lock managers (lock % 3): L1=3 -> A, L2=4 -> B, the
        // inflation locks 5/8/11 -> C.
        if (self == 0) {
            // Epoch 2. Inflate vt[A] past B's so A's diff applies
            // last at C, then write around the word B declared.
            for (LockId l : {5, 8, 11}) {
                rt.acquire(l, AccessMode::Write);
                a.set(256 * (l == 5 ? 1 : l == 8 ? 2 : 3), 7);
                rt.release(l);
            }
            rt.acquire(3, AccessMode::Write); // local: no close
            a.set(0, 1);
            a.set(4, 2);
            rt.release(3);
            // Stay idle past C's L1 request: the diff must be cut on
            // our service thread at grant time, with the writerMask
            // already widened by B's barrier-borne intent.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1400));
        } else if (self == 1) {
            // The declared write, performed under a lock local to B:
            // no message ever reaches A about it this epoch.
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            rt.acquire(4, AccessMode::Write);
            a.set(1, 42);
            rt.release(4);
        } else {
            // C collects B's record (vtSum low) then A's (vtSum
            // high); diffs apply in vtSum order, so a gap-coalesced
            // diff from A would land last and stomp word 1.
            std::this_thread::sleep_for(std::chrono::milliseconds(900));
            rt.acquire(4, AccessMode::Write);
            rt.release(4);
            rt.acquire(3, AccessMode::Write);
            ASSERT_EQ(a.get(1), 42)
                << "A never learned of B's declared intent through the "
                   "barrier channel and bridged word 1 with stale data";
            ASSERT_EQ(a.get(0), 1);
            ASSERT_EQ(a.get(4), 2);
            rt.release(3);
        }
        rt.barrier(1);
    });
}

} // namespace
} // namespace dsm
